#!/usr/bin/env python
"""Trouble-locator triage: rank dispositions before the truck rolls.

Section 6 of the paper: when a dispatch is scheduled, the trouble locator
hands the field technician a list of candidate dispositions ordered by
likelihood, so she tests the probable locations first.  This example

1. trains the three locator models on historical dispatches -- the
   experience baseline (prior frequencies), the flat one-vs-rest model,
   and the combined hierarchical model of Eq. 2;
2. prints a technician-style triage card for a real test dispatch,
   showing each model's top candidates against the truth;
3. reports the paper's summary metrics: tests-to-locate-50% and the
   average rank improvement on deep basic ranks (Fig. 10).

Run:  python examples/dispatch_triage.py
"""

import numpy as np

from repro import (
    CombinedLocator,
    DslSimulator,
    ExperienceModel,
    FlatLocator,
    LocatorConfig,
    PopulationConfig,
    SimulationConfig,
    build_locator_dataset,
    rank_improvement_by_bin,
    ranks_of_truth,
    tests_to_locate,
)
from repro.netsim.components import DISPOSITIONS, Location


def triage_card(probs_row: np.ndarray, truth: int, model_name: str) -> None:
    order = np.argsort(-probs_row)
    print(f"  {model_name}:")
    for rank, code in enumerate(order[:5], start=1):
        marker = " <-- actual fault" if code == truth else ""
        d = DISPOSITIONS[code]
        print(f"    {rank}. [{Location(d.location).name}] {d.name}"
              f" (p={probs_row[code]:.3f}){marker}")
    true_rank = int(np.flatnonzero(order == truth)[0]) + 1
    print(f"    ... true disposition found at rank {true_rank}")


def main() -> None:
    print("=== Trouble-locator triage ===")
    print("Simulating a plant with a dense dispatch history ...")
    result = DslSimulator(
        SimulationConfig(
            n_weeks=26,
            population=PopulationConfig(n_lines=3000),
            fault_rate_scale=4.0,
        )
    ).run()

    horizon = 26 * 7
    cut = int(horizon * 0.6)
    train = build_locator_dataset(result, first_day=30, last_day=cut)
    test = build_locator_dataset(result, first_day=cut + 1, last_day=horizon)
    print(f"  {train.n_examples} training dispatches, "
          f"{test.n_examples} evaluation dispatches")

    config = LocatorConfig(n_rounds=50)
    print("Training experience / flat / combined locators ...")
    basic = ExperienceModel(config).fit(train)
    flat = FlatLocator(config).fit(train)
    combined = CombinedLocator(config).fit(train)

    X = test.features.matrix
    probs = {
        "experience (prior only)": basic.predict_proba(X),
        "flat model": flat.predict_proba(X),
        "combined model (Eq. 2)": combined.predict_proba(X),
    }

    # A triage card for one dispatch where the models disagree with the prior.
    basic_ranks = ranks_of_truth(probs["experience (prior only)"], test.disposition)
    interesting = int(np.argmax(basic_ranks))  # deep-ranked under the prior
    truth = int(test.disposition[interesting])
    print(f"\nDispatch for line {test.line_ids[interesting]} "
          f"(ticket day {test.ticket_days[interesting]}):")
    for name, matrix in probs.items():
        triage_card(matrix[interesting], truth, name)

    print("\nFleet-wide rank metrics (Section 6.3):")
    print(f"{'model':>26} {'median tests':>13} {'mean rank':>10}")
    ranks = {}
    for name, matrix in probs.items():
        r = ranks_of_truth(matrix, test.disposition)
        ranks[name] = r
        print(f"{name:>26} {tests_to_locate(r):>13} {r.mean():>10.1f}")

    print("\nAverage rank improvement over the basic ranks, by basic-rank "
          "bin (Fig. 10):")
    rb = ranks["experience (prior only)"]
    for name in ("flat model", "combined model (Eq. 2)"):
        rows = rank_improvement_by_bin(rb, ranks[name], bin_width=5)
        cells = ", ".join(
            f"{int(r['bin_low'])}-{int(r['bin_high'])}: "
            f"{r['mean_rank_change']:+.1f}"
            for r in rows[:6]
        )
        print(f"  {name}: {cells}")

    # Fig-9-style explanation of one combined inference.
    if truth in combined.blend_:
        info = combined.explain(X[interesting], truth, top_k=4)
        names = test.features.names
        print(f"\nFig-9-style breakdown for '{DISPOSITIONS[truth].name}':")
        g1, g2, g0 = info["gammas"]
        print(f"  disposition margin f_Cij = {info['disposition_margin']:+.2f}, "
              f"location margin f_Ci. = {info['location_margin']:+.2f}")
        print(f"  gammas: ({g1:+.2f}, {g2:+.2f}, {g0:+.2f})  ->  "
              f"P_adj = {info['posterior']:.3f}")
        print("  top line-feature contributions to f_Cij:")
        for feat, value in info["disposition_contributions"]:
            print(f"    {names[feat]:<24} {value:+.2f}")

    # Section 6.1's deferred improvement: order tests by p/cost instead of
    # p alone when per-location test times differ.
    from repro.core.triage import (
        DEFAULT_TEST_MINUTES,
        cost_aware_order,
        expected_search_cost,
    )

    probs_row = probs["combined model (Eq. 2)"][interesting]
    prob_order = np.argsort(-probs_row)
    cost_order = cost_aware_order(probs_row)
    by_prob = expected_search_cost(probs_row, prob_order, DEFAULT_TEST_MINUTES)
    by_ratio = expected_search_cost(probs_row, cost_order, DEFAULT_TEST_MINUTES)
    print("\nCost-aware triage (Section 6.1's deferred extension):")
    print(f"  expected minutes, probability order : {by_prob:6.1f}")
    print(f"  expected minutes, p/cost order      : {by_ratio:6.1f}")


if __name__ == "__main__":
    main()
