#!/usr/bin/env python
"""Run the paper's entire evaluation program in one shot.

Simulates a plant scenario, trains the ticket predictor, and produces the
full Section-5/Section-6 report: world characterisation, disposition mix,
predictor accuracy/urgency and incorrect-prediction forensics, and the
three-way trouble-locator comparison.

Pick a plant with the first argument:

    python examples/full_evaluation.py [suburban|urban|rural|storm_season|outage_prone]
"""

import sys

from repro.core.locator import LocatorConfig
from repro.core.predictor import PredictorConfig
from repro.core.reporting import full_evaluation_report
from repro.data.splits import paper_style_split
from repro.netsim.scenarios import scenario, scenario_names
from repro.netsim.simulator import DslSimulator

N_LINES = 3500
N_WEEKS = 24


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "suburban"
    if name not in scenario_names():
        raise SystemExit(
            f"unknown scenario {name!r}; choose from {', '.join(scenario_names())}"
        )
    print(f"=== Full NEVERMIND evaluation on the '{name}' plant ===")
    print(f"Simulating {N_LINES} lines x {N_WEEKS} weeks ...")
    result = DslSimulator(scenario(name, N_LINES, N_WEEKS)).run()

    split = paper_style_split(N_WEEKS, history=9, train=4, selection=2, test=2)
    print("Training and evaluating (this takes a few minutes) ...\n")
    report = full_evaluation_report(
        result,
        split,
        predictor_config=PredictorConfig(
            capacity=max(40, N_LINES // 50), train_rounds=120,
        ),
        locator_config=LocatorConfig(n_rounds=40),
    )
    print(report.render())
    print("headline metrics:")
    for key in (
        "accuracy_at_capacity", "lift_at_capacity", "cdf_14_days",
        "incorrect_real_fault_fraction", "locator_median_basic",
        "locator_median_combined",
    ):
        if key in report.metrics:
            print(f"  {key:<32} {report.metrics[key]:.3f}")


if __name__ == "__main__":
    main()
