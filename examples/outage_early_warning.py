#!/usr/bin/env python
"""DSLAM outage early warning from clustered ticket predictions.

Section 5.2 of the paper observes that the per-line ticket predictor is
accidentally also an outage detector: when shared DSLAM equipment starts
failing, *many* lines on that DSLAM degrade at once, so the predictor's
top-N clusters geographically -- and a logistic regression shows the
per-DSLAM prediction count significantly predicts outages in the following
weeks (Table 5).  The paper suggests operators can "group predictions by
DSLAMs and send one truck to resolve most of the problems".

This example trains the predictor, aggregates its top-N by DSLAM, fits the
Table-5 regression, and prints an early-warning watchlist.

Run:  python examples/outage_early_warning.py
"""

import numpy as np

from repro import (
    DslSimulator,
    PopulationConfig,
    PredictorConfig,
    SimulationConfig,
    TicketPredictor,
    paper_style_split,
)
from repro.ml.logistic import fit_logistic_regression
from repro.tickets.outage import OutageConfig

N_LINES = 4000
N_WEEKS = 24
CAPACITY = 150


def main() -> None:
    print("=== DSLAM outage early warning ===")
    result = DslSimulator(
        SimulationConfig(
            n_weeks=N_WEEKS,
            population=PopulationConfig(n_lines=N_LINES),
            outages=OutageConfig(weekly_rate=0.02),  # outage-prone plant
            fault_rate_scale=3.0,
        )
    ).run()
    print(f"  {len(result.outages.events)} outages scheduled across "
          f"{result.population.topology.n_dslams} DSLAMs")

    split = paper_style_split(N_WEEKS, history=8, train=3, selection=2, test=3)
    predictor = TicketPredictor(
        PredictorConfig(capacity=CAPACITY, train_rounds=100)
    ).fit(result, split)

    dslam_of = result.population.dslam_idx
    n_dslams = result.population.topology.n_dslams

    counts_all = []
    outage_all = []
    for week in split.test_weeks:
        top = predictor.predict_top(result, week)
        day = int(result.measurements.saturday_day[week])
        counts = np.bincount(dslam_of[top], minlength=n_dslams).astype(float)
        indicator = result.outages.outage_indicator(day, 4 * 7).astype(float)
        counts_all.append(counts)
        outage_all.append(indicator)

    counts = np.concatenate(counts_all)
    outages = np.concatenate(outage_all)
    fit = fit_logistic_regression(counts[:, None], outages)
    print("\nTable-5-style regression  outage(d, t, 4wk) ~ #predictions(d):")
    print(f"  coefficient : {fit.coefficients[0]:+.4f}")
    print(f"  p-value     : {fit.p_values[0]:.4f}")
    verdict = ("significant positive correlation -- prediction clusters "
               "foreshadow outages"
               if fit.coefficients[0] > 0 and fit.p_values[0] < 0.05
               else "no significant signal at this scale; raise the outage "
                    "rate or population size")
    print(f"  -> {verdict}")

    # Watchlist for the final test week.
    week = split.test_weeks[-1]
    day = int(result.measurements.saturday_day[week])
    top = predictor.predict_top(result, week)
    counts = np.bincount(dslam_of[top], minlength=n_dslams)
    watchlist = np.argsort(-counts)[:8]
    print(f"\nWeek-{week} watchlist (top DSLAMs by prediction count):")
    print(f"{'DSLAM':>6} {'predictions':>12} {'lines':>6} {'outage<=4wk?':>13}")
    for dslam in watchlist:
        if counts[dslam] == 0:
            break
        size = len(result.population.topology.lines_of_dslam(int(dslam)))
        hit = "YES" if result.outages.outage_in_window(int(dslam), day, 28) else "-"
        print(f"{dslam:>6} {counts[dslam]:>12} {size:>6} {hit:>13}")
    print("\nOperators can dispatch one truck per clustered DSLAM instead of "
          "one per line.")


if __name__ == "__main__":
    main()
