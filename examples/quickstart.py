#!/usr/bin/env python
"""Quickstart: simulate a DSL plant, train the ticket predictor, evaluate.

This walks the full NEVERMIND ticket-prediction pipeline (Section 4 of the
paper) at laptop scale:

1. simulate a year-slice of a DSL access network (plant faults, weekly
   Saturday line tests, customer tickets);
2. lay out the paper's temporal split (history / train / selection / test);
3. train the ticket predictor: Table-3 feature encoding, top-N average
   precision feature selection, BStump with Platt calibration;
4. rank all lines at the test week and measure accuracy at the ATDS
   capacity, exactly as Section 5.1 does.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    DslSimulator,
    PopulationConfig,
    PredictorConfig,
    SimulationConfig,
    TicketPredictor,
    evaluate_predictions,
    paper_style_split,
    urgency_cdf,
)

N_LINES = 4000
N_WEEKS = 22
CAPACITY = 120  # our scaled-down "top 20K" (2% of lines)


def main() -> None:
    print("=== NEVERMIND quickstart ===")
    print(f"Simulating {N_LINES} DSL lines for {N_WEEKS} weeks ...")
    simulator = DslSimulator(
        SimulationConfig(
            n_weeks=N_WEEKS,
            population=PopulationConfig(n_lines=N_LINES),
            fault_rate_scale=3.0,
        )
    )
    result = simulator.run()
    edge = result.ticket_log.edge_tickets()
    print(f"  {len(edge)} customer-edge tickets, "
          f"{len(result.outages.events)} DSLAM outages, "
          f"{len(result.fault_events)} plant faults")

    split = paper_style_split(N_WEEKS, history=8, train=3, selection=2, test=1)
    print(f"Training the ticket predictor (capacity N = {CAPACITY}) ...")
    predictor = TicketPredictor(
        PredictorConfig(capacity=CAPACITY, train_rounds=150)
    ).fit(result, split)
    recipes = predictor.recipes
    print(f"  selected {len(recipes.base_indices)} base, "
          f"{len(recipes.quad_indices)} quadratic, "
          f"{len(recipes.product_pairs)} product features")

    week = split.test_weeks[0]
    ranked = predictor.rank_week(result, week)
    outcome = evaluate_predictions(result, ranked, week)
    base_rate = float(np.mean(outcome.hits))
    print(f"\nTest week {week} (prediction day {outcome.day}):")
    print(f"  base ticket rate within 4 weeks : {base_rate:6.3f}")
    for n in (CAPACITY // 2, CAPACITY, CAPACITY * 4):
        print(f"  accuracy @ top {n:>5}            : {outcome.accuracy_at(n):6.3f}")

    cdf = urgency_cdf([outcome], CAPACITY, max_days=28)
    print(f"\nOf the correctly predicted tickets (Fig 8):")
    for day in (2, 7, 14, 28):
        print(f"  arrive within {day:>2} days : {cdf[day]:5.1%}")
    print("\nDone.  See examples/proactive_operations.py for the closed loop.")


if __name__ == "__main__":
    main()
