#!/usr/bin/env python
"""The closed NEVERMIND operational loop (Fig. 3, bottom box).

Runs a DSL plant reactively for a warm-up period, then switches on the
proactive loop: every Saturday the ticket predictor re-ranks all lines and
the top-N are dispatched over the quiet weekend window, before customers
call.  The script reports, week by week, how many dispatched lines had a
real problem (prediction precision in the field) and how many faults were
fixed proactively -- the paper's "NEVERMIND, the problem is already fixed"
moment.

Run:  python examples/proactive_operations.py
"""

from repro import DslSimulator, NevermindPipeline, PipelineConfig, PopulationConfig
from repro.core.predictor import PredictorConfig
from repro.netsim.simulator import SimulationConfig
from repro.tickets.churn import estimate_churn

N_LINES = 2500
N_WEEKS = 26
WARMUP = 15
CAPACITY = 80


def main() -> None:
    print("=== NEVERMIND proactive operations ===")
    simulation = SimulationConfig(
        n_weeks=N_WEEKS,
        population=PopulationConfig(n_lines=N_LINES),
        fault_rate_scale=3.5,
    )
    pipeline = NevermindPipeline(
        simulation,
        PipelineConfig(
            warmup_weeks=WARMUP,
            fix_delay_days=2,  # fixes land by Monday (Fig-8 reference SLA)
            predictor=PredictorConfig(capacity=CAPACITY, train_rounds=100),
        ),
    )

    print(f"Weeks 0-{WARMUP - 1}: reactive warm-up (training data accrues)")
    print(f"{'week':>5} {'submitted':>10} {'real':>6} {'fixed':>6} "
          f"{'no-trouble':>11} {'precision':>10}")
    while pipeline.simulator.week < N_WEEKS:
        report = pipeline.step()
        if report is None:
            continue
        print(f"{report.week:>5} {len(report.submitted):>10} "
              f"{report.real_problems:>6} {report.fixed:>6} "
              f"{report.no_trouble_found:>11} {report.precision:>10.2f}")

    summary = pipeline.summary()
    result = pipeline.simulator.result()
    proactive = [e for e in result.fault_events if e.clear_cause == "proactive"]
    reactive = [e for e in result.fault_events if e.clear_cause == "dispatch"]
    print("\nSummary over the live weeks:")
    print(f"  proactive dispatches      : {summary['submitted']}")
    print(f"  real problems found       : {summary['real_problems']} "
          f"({summary['precision']:.0%} of dispatches)")
    print(f"  faults fixed before a call: {len(proactive)}")
    print(f"  faults fixed reactively   : {len(reactive)}")

    # The business metric the paper's introduction argues about: churn.
    # Re-run the identical world without the proactive loop and compare
    # the expected churner count under the dissatisfaction model.
    print("\nEstimating churn impact (identical world, reactive only) ...")
    reactive_world = DslSimulator(simulation).run()
    churn_reactive = estimate_churn(reactive_world)
    churn_proactive = estimate_churn(result)
    saved = churn_reactive.expected_churners - churn_proactive.expected_churners
    print(f"  expected churners, reactive : {churn_reactive.expected_churners:.1f}")
    print(f"  expected churners, proactive: {churn_proactive.expected_churners:.1f}")
    print(f"  churn avoided               : {saved:+.1f} customers "
          f"({saved / N_LINES:+.2%} of the base)")
    print("\nEvery proactively fixed fault is a customer call that never "
          "happened.")


if __name__ == "__main__":
    main()
