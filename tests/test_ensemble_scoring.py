"""Equivalence tests for the compiled ensemble scorer.

The contract: ``CompiledEnsemble.decision_function`` is *bit-identical*
(``np.array_equal``, no tolerance) to summing ``Stump.predict`` outputs
grouped by (feature, kind) in the compiled fold order
(:func:`naive_grouped_margin`), and agrees with the historical
round-interleaved sum (``BStump.decision_function_naive``) to within
float-addition reordering.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml.boostexter import BStump, BStumpConfig
from repro.ml.ensemble_scoring import (
    CompiledEnsemble,
    compile_stumps,
    naive_grouped_margin,
)
from repro.ml.serialize import bstump_from_dict, bstump_to_dict
from repro.ml.stumps import Stump


def _random_stumps(rng, n_stumps, n_features, categorical_frac=0.3):
    stumps = []
    for _ in range(n_stumps):
        feature = int(rng.integers(n_features))
        if rng.random() < categorical_frac:
            stumps.append(
                Stump(
                    feature=feature,
                    threshold=float(rng.integers(0, 5)),
                    s_lo=float(rng.normal()),
                    s_hi=float(rng.normal()),
                    s_miss=float(rng.normal()),
                    categorical=True,
                    z=1.0,
                )
            )
        else:
            threshold = float(rng.normal())
            if rng.random() < 0.05:
                threshold = float(rng.choice([-np.inf, np.inf]))
            stumps.append(
                Stump(
                    feature=feature,
                    threshold=threshold,
                    s_lo=float(rng.normal()),
                    s_hi=float(rng.normal()),
                    s_miss=float(rng.normal()),
                    categorical=False,
                    z=1.0,
                )
            )
    return stumps


def _random_matrix(rng, n, n_features, nan_frac):
    X = rng.normal(size=(n, n_features))
    X[rng.random((n, n_features)) < nan_frac] = np.nan
    # Sprinkle categorical-looking codes so equality matches happen.
    codes = rng.integers(0, 5, size=(n, n_features)).astype(float)
    use_codes = rng.random((n, n_features)) < 0.5
    X[use_codes] = codes[use_codes]
    return X


@pytest.mark.parametrize("seed", range(6))
@pytest.mark.parametrize("nan_frac", [0.0, 0.3, 0.8])
def test_compiled_bit_identical_to_grouped_naive(seed, nan_frac):
    rng = np.random.default_rng(seed)
    n_features = 7
    stumps = _random_stumps(rng, 40, n_features)
    X = _random_matrix(rng, 300, n_features, nan_frac)
    compiled = compile_stumps(stumps, n_features)
    expected = naive_grouped_margin(stumps, X, n_features)
    got = compiled.decision_function(X)
    assert np.array_equal(got, expected)


def test_compiled_matches_round_order_within_ulps():
    rng = np.random.default_rng(11)
    n_features = 6
    stumps = _random_stumps(rng, 60, n_features)
    X = _random_matrix(rng, 500, n_features, 0.25)
    compiled = compile_stumps(stumps, n_features)
    naive = np.zeros(X.shape[0])
    for stump in stumps:
        naive += stump.predict(X)
    got = compiled.decision_function(X)
    np.testing.assert_allclose(got, naive, rtol=1e-12, atol=1e-12)


def test_infinite_thresholds_and_all_nan_rows():
    stumps = [
        Stump(feature=0, threshold=-np.inf, s_lo=1.0, s_hi=2.0, s_miss=-3.0,
              categorical=False, z=1.0),
        Stump(feature=0, threshold=np.inf, s_lo=5.0, s_hi=7.0, s_miss=0.5,
              categorical=False, z=1.0),
    ]
    compiled = compile_stumps(stumps, 1)
    X = np.array([[-1e300], [0.0], [1e300], [np.inf], [-np.inf], [np.nan]])
    got = compiled.decision_function(X)
    # Finite values: >= -inf fires high (2), < inf fires low (5).
    assert got[0] == got[1] == got[2] == 2.0 + 5.0
    # v = inf fires both high; v = -inf fires high on the -inf stump only.
    assert got[3] == 2.0 + 7.0
    assert got[4] == 2.0 + 5.0
    assert got[5] == -3.0 + 0.5


def test_abstain_policy_missing_contribution_is_zero():
    rng = np.random.default_rng(3)
    X = _random_matrix(rng, 200, 4, 0.5)
    y = (np.nansum(X, axis=1) > 0).astype(float)
    model = BStump(
        BStumpConfig(n_rounds=25, calibrate=False, missing_policy="abstain")
    ).fit(X, y)
    assert all(learner.stump.s_miss == 0.0 for learner in model.learners)
    expected = naive_grouped_margin(
        [learner.stump for learner in model.learners], X, 4
    )
    assert np.array_equal(model.decision_function(X), expected)
    all_nan = np.full((3, 4), np.nan)
    assert np.array_equal(model.decision_function(all_nan), np.zeros(3))


def test_fitted_model_routes_through_compiled_scorer():
    rng = np.random.default_rng(5)
    X = _random_matrix(rng, 400, 8, 0.2)
    y = (np.nansum(X, axis=1) > 0).astype(float)
    cat = np.zeros(8, dtype=bool)
    cat[2] = True
    model = BStump(BStumpConfig(n_rounds=60)).fit(X, y, categorical=cat)
    compiled = model.compiled()
    assert isinstance(compiled, CompiledEnsemble)
    assert model.compiled() is compiled  # cached
    assert compiled.n_used_features <= 8
    X_test = _random_matrix(rng, 150, 8, 0.4)
    stumps = [learner.stump for learner in model.learners]
    assert np.array_equal(
        model.decision_function(X_test), naive_grouped_margin(stumps, X_test, 8)
    )
    np.testing.assert_allclose(
        model.decision_function(X_test),
        model.decision_function_naive(X_test),
        rtol=1e-12,
        atol=1e-12,
    )
    # predict_proba rides the same margin.
    probs = model.predict_proba(X_test)
    assert probs.shape == (150,)
    assert np.all((probs >= 0) & (probs <= 1))


def test_single_feature_model_bit_identical_to_round_order():
    # With one used feature there is a single group, so the compiled fold
    # order equals round order and even the historical scorer matches
    # bit for bit.  This is what selection relies on.
    rng = np.random.default_rng(7)
    X = rng.normal(size=(300, 1))
    X[rng.random(300) < 0.3, 0] = np.nan
    y = (np.where(np.isnan(X[:, 0]), 0.0, X[:, 0]) > 0).astype(float)
    model = BStump(BStumpConfig(n_rounds=6, calibrate=False)).fit(X, y)
    assert np.array_equal(
        model.decision_function(X), model.decision_function_naive(X)
    )


def test_serialized_roundtrip_scores_identically(tmp_path):
    rng = np.random.default_rng(9)
    X = _random_matrix(rng, 300, 5, 0.2)
    y = (np.nansum(X, axis=1) > 0).astype(float)
    model = BStump(BStumpConfig(n_rounds=30)).fit(X, y)
    clone = bstump_from_dict(bstump_to_dict(model))
    X_test = _random_matrix(rng, 100, 5, 0.3)
    assert np.array_equal(
        clone.decision_function(X_test), model.decision_function(X_test)
    )


def test_compile_rejects_bad_inputs():
    with pytest.raises(ValueError):
        compile_stumps([], 0)
    stump = Stump(feature=3, threshold=0.0, s_lo=0.0, s_hi=1.0, s_miss=0.0,
                  categorical=False, z=1.0)
    with pytest.raises(ValueError):
        compile_stumps([stump], 2)
    compiled = compile_stumps([stump], 4)
    with pytest.raises(ValueError):
        compiled.decision_function(np.zeros((5, 3)))


def test_empty_ensemble_scores_zero():
    compiled = compile_stumps([], 3)
    assert compiled.n_used_features == 0
    assert np.array_equal(
        compiled.decision_function(np.full((4, 3), np.nan)), np.zeros(4)
    )


def test_duplicate_thresholds_fold_in_round_order():
    # Two stumps sharing a threshold on the same feature: the stable sort
    # must preserve round order inside the tied bucket totals.
    stumps = [
        Stump(feature=1, threshold=0.5, s_lo=0.1, s_hi=-0.2, s_miss=0.0,
              categorical=False, z=1.0),
        Stump(feature=1, threshold=0.5, s_lo=-0.3, s_hi=0.4, s_miss=0.0,
              categorical=False, z=1.0),
        Stump(feature=1, threshold=-0.5, s_lo=0.7, s_hi=0.2, s_miss=1.0,
              categorical=False, z=1.0),
    ]
    X = np.array([[0.0, v] for v in (-1.0, -0.5, 0.0, 0.5, 1.0, np.nan)])
    compiled = compile_stumps(stumps, 2)
    assert np.array_equal(
        compiled.decision_function(X), naive_grouped_margin(stumps, X, 2)
    )


try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is in the dev deps
    HAVE_HYPOTHESIS = False


if HAVE_HYPOTHESIS:

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        n_stumps=st.integers(1, 50),
        n_features=st.integers(1, 6),
        nan_frac=st.floats(0.0, 0.9),
    )
    def test_property_compiled_equals_grouped_naive(
        seed, n_stumps, n_features, nan_frac
    ):
        rng = np.random.default_rng(seed)
        stumps = _random_stumps(rng, n_stumps, n_features)
        X = _random_matrix(rng, 64, n_features, nan_frac)
        compiled = compile_stumps(stumps, n_features)
        assert np.array_equal(
            compiled.decision_function(X),
            naive_grouped_margin(stumps, X, n_features),
        )
