"""Tests for the extension modules: cost-aware triage, churn, serialization."""

import json

import numpy as np
import pytest

from repro.core.triage import (
    DEFAULT_TEST_MINUTES,
    cost_aware_order,
    expected_search_cost,
    expected_tests,
)
from repro.ml.boostexter import BStump, BStumpConfig
from repro.ml.serialize import (
    bstump_from_dict,
    bstump_to_dict,
    load_bstump,
    save_bstump,
)
from repro.tickets.churn import ChurnConfig, estimate_churn


class TestCostAwareTriage:
    def test_default_costs_align_with_catalog(self):
        assert DEFAULT_TEST_MINUTES.shape == (52,)
        assert np.all(DEFAULT_TEST_MINUTES > 0)

    def test_order_by_probability_when_costs_equal(self):
        probs = np.array([0.1, 0.5, 0.4])
        order = cost_aware_order(probs, costs=np.ones(3))
        assert list(order) == [1, 2, 0]

    def test_cheap_tests_jump_the_queue(self):
        probs = np.array([0.5, 0.5])
        costs = np.array([10.0, 1.0])
        assert list(cost_aware_order(probs, costs)) == [1, 0]

    def test_pc_order_minimises_expected_cost(self, rng):
        """Exchange-argument optimality: p/c order beats random orders."""
        probs = rng.dirichlet(np.ones(8))
        costs = rng.uniform(1, 20, size=8)
        best = expected_search_cost(probs, cost_aware_order(probs, costs), costs)
        for _ in range(50):
            perm = rng.permutation(8)
            assert best <= expected_search_cost(probs, perm, costs) + 1e-9

    def test_expected_tests_unit_costs(self):
        probs = np.array([1.0, 0.0, 0.0])
        assert expected_tests(probs, np.array([0, 1, 2])) == pytest.approx(1.0)
        assert expected_tests(probs, np.array([2, 1, 0])) == pytest.approx(3.0)

    def test_residual_mass_pays_full_sweep(self):
        probs = np.array([0.5, 0.0])
        costs = np.array([1.0, 1.0])
        # 0.5 chance found at cost 1; 0.5 residual pays both tests.
        value = expected_search_cost(probs, np.array([0, 1]), costs)
        assert value == pytest.approx(0.5 * 1 + 0.5 * 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            cost_aware_order(np.array([0.5, -0.1]), np.ones(2))
        with pytest.raises(ValueError):
            cost_aware_order(np.array([0.5, 0.5]), np.array([1.0, 0.0]))
        with pytest.raises(ValueError):
            expected_search_cost(np.array([0.5, 0.5]), np.array([0, 0]),
                                 np.ones(2))


class TestChurn:
    def test_report_structure(self, small_result):
        report = estimate_churn(small_result)
        assert report.dissatisfaction.shape == (small_result.n_lines,)
        assert 0.0 <= report.churn_rate <= 1.0
        assert report.expected_churners >= 0

    def test_problem_days_track_fault_events(self, small_result):
        report = estimate_churn(small_result)
        lines_with_faults = {e.line_id for e in small_result.fault_events}
        with_faults = report.problem_days[list(lines_with_faults)]
        assert np.all(with_faults >= 0)
        assert with_faults.sum() > 0
        untouched = np.setdiff1d(
            np.arange(small_result.n_lines), list(lines_with_faults)
        )
        assert np.all(report.problem_days[untouched] == 0)

    def test_churn_increases_with_dissatisfaction_weight(self, small_result):
        low = estimate_churn(small_result, ChurnConfig(problem_day_weight=0.001))
        high = estimate_churn(small_result, ChurnConfig(problem_day_weight=0.1))
        assert high.expected_churners > low.expected_churners

    def test_baseline_churn_positive(self, small_result):
        config = ChurnConfig(problem_day_weight=0.0, repeat_ticket_weight=0.0)
        report = estimate_churn(small_result, config)
        expected_baseline = small_result.n_lines * (
            1 - (1 - config.base_weekly_hazard) ** small_result.config.n_weeks
        )
        assert report.expected_churners == pytest.approx(expected_baseline, rel=1e-6)


class TestSerialization:
    @pytest.fixture()
    def model(self, rng):
        X = rng.normal(size=(600, 5))
        X[rng.random(X.shape) < 0.1] = np.nan
        y = (np.nan_to_num(X[:, 0]) > 0.3).astype(float)
        return BStump(BStumpConfig(n_rounds=25)).fit(X, y), X

    def test_roundtrip_preserves_predictions(self, model):
        fitted, X = model
        clone = bstump_from_dict(bstump_to_dict(fitted))
        assert np.allclose(
            clone.decision_function(X), fitted.decision_function(X)
        )
        assert np.allclose(clone.predict_proba(X), fitted.predict_proba(X))

    def test_json_file_roundtrip(self, model, tmp_path):
        fitted, X = model
        path = tmp_path / "model.json"
        save_bstump(fitted, path)
        clone = load_bstump(path)
        assert np.allclose(
            clone.decision_function(X), fitted.decision_function(X)
        )

    def test_payload_is_plain_json(self, model):
        fitted, _ = model
        payload = bstump_to_dict(fitted)
        json.dumps(payload)  # must not raise
        assert payload["format_version"] == 1
        assert len(payload["learners"]) == len(fitted.learners)

    def test_unfitted_rejected(self):
        with pytest.raises(ValueError):
            bstump_to_dict(BStump())

    def test_bad_version_rejected(self, model):
        fitted, _ = model
        payload = bstump_to_dict(fitted)
        payload["format_version"] = 99
        with pytest.raises(ValueError):
            bstump_from_dict(payload)

    def test_uncalibrated_roundtrip(self, rng):
        X = rng.normal(size=(200, 3))
        y = (X[:, 1] > 0).astype(float)
        fitted = BStump(BStumpConfig(n_rounds=5, calibrate=False)).fit(X, y)
        clone = bstump_from_dict(bstump_to_dict(fitted))
        assert clone.calibrator is None
        assert np.allclose(
            clone.decision_function(X), fitted.decision_function(X)
        )
