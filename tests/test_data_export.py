"""Tests for the CSV extracts (repro.data.export)."""

import csv

import pytest

from repro.data.export import (
    export_all,
    export_dispatches_csv,
    export_measurements_csv,
    export_subscribers_csv,
    export_tickets_csv,
)
from repro.measurement.records import FEATURE_NAMES


def read_csv(path):
    with open(path, newline="") as handle:
        return list(csv.reader(handle))


class TestMeasurementsExport:
    def test_row_count_and_header(self, small_result, tmp_path):
        path = tmp_path / "m.csv"
        rows = export_measurements_csv(small_result, path, weeks=[5, 6])
        assert rows == 2 * small_result.n_lines
        content = read_csv(path)
        assert content[0] == ["subscriber", "week", "test_day", *FEATURE_NAMES]
        assert len(content) == rows + 1

    def test_missing_cells_empty(self, small_result, tmp_path):
        path = tmp_path / "m.csv"
        export_measurements_csv(small_result, path, weeks=[10])
        content = read_csv(path)
        state_col = 3 + FEATURE_NAMES.index("state")
        dnbr_col = 3 + FEATURE_NAMES.index("dnbr")
        off_rows = [r for r in content[1:] if r[state_col] == "0"]
        assert off_rows, "some modems should be off in week 10"
        assert all(r[dnbr_col] == "" for r in off_rows)

    def test_no_raw_line_ids(self, small_result, tmp_path):
        path = tmp_path / "m.csv"
        export_measurements_csv(small_result, path, weeks=[5])
        content = read_csv(path)
        subscribers = {r[0] for r in content[1:]}
        # Anonymous tokens are 16-char hex, not small integers.
        assert all(len(s) == 16 for s in subscribers)


class TestTicketExport:
    def test_ticket_rows(self, small_result, tmp_path):
        path = tmp_path / "t.csv"
        rows = export_tickets_csv(small_result, path)
        assert rows == len(small_result.ticket_log.tickets)
        content = read_csv(path)
        categories = {r[3] for r in content[1:]}
        assert "customer_edge" in categories

    def test_dispatch_rows(self, small_result, tmp_path):
        path = tmp_path / "d.csv"
        rows = export_dispatches_csv(small_result, path)
        assert rows == len(small_result.dispatcher.records)
        content = read_csv(path)
        locations = {r[5] for r in content[1:] if r[5]}
        assert locations <= {"HN", "F2", "F1", "DS"}

    def test_subscriber_rows(self, small_result, tmp_path):
        path = tmp_path / "s.csv"
        rows = export_subscribers_csv(small_result, path)
        assert rows == small_result.n_lines
        content = read_csv(path)
        profiles = {r[1] for r in content[1:]}
        assert "basic" in profiles


class TestExportAll:
    def test_writes_all_files(self, small_result, tmp_path):
        counts = export_all(small_result, tmp_path / "extract", salt="s")
        directory = tmp_path / "extract"
        for name in ("measurements", "tickets", "dispatches", "subscribers"):
            assert (directory / f"{name}.csv").exists()
            assert counts[name] > 0

    def test_salt_changes_tokens_consistently(self, small_result, tmp_path):
        path_a = tmp_path / "a.csv"
        path_b = tmp_path / "b.csv"
        export_subscribers_csv(small_result, path_a, salt="one")
        export_subscribers_csv(small_result, path_b, salt="two")
        a = {r[0] for r in read_csv(path_a)[1:]}
        b = {r[0] for r in read_csv(path_b)[1:]}
        assert a.isdisjoint(b)
