"""Tests for cohort analysis and seasonal fault modulation."""

import numpy as np
import pytest

from repro.core.analysis import evaluate_predictions
from repro.core.cohorts import (
    cohort_by_loop_length,
    cohort_by_profile,
    hit_location_mix,
)
from repro.netsim.population import PopulationConfig
from repro.netsim.seasonality import (
    SeasonalDslSimulator,
    SeasonalProfile,
    seasonal_rate_multipliers,
)
from repro.netsim.simulator import SimulationConfig


@pytest.fixture(scope="module")
def outcome(request):
    result = request.getfixturevalue("small_result")
    # A simple oracle-free ranking: any ranking works for slicing tests.
    rng = np.random.default_rng(3)
    ranked = rng.permutation(result.n_lines)
    return result, evaluate_predictions(result, ranked, week=12, horizon_weeks=3)


class TestCohorts:
    def test_loop_length_partition(self, outcome):
        result, out = outcome
        cohorts = cohort_by_loop_length(result, out, n=500)
        assert sum(c.submitted for c in cohorts) == 500
        assert sum(c.population for c in cohorts) == result.n_lines
        for c in cohorts:
            assert 0.0 <= c.precision <= 1.0
            assert 0.0 <= c.coverage <= 1.0

    def test_profile_partition(self, outcome):
        result, out = outcome
        cohorts = cohort_by_profile(result, out, n=500)
        assert sum(c.submitted for c in cohorts) == 500
        names = {c.name for c in cohorts}
        assert "basic" in names and "elite" in names

    def test_bad_edges_rejected(self, outcome):
        result, out = outcome
        with pytest.raises(ValueError):
            cohort_by_loop_length(result, out, n=10, edges_kft=(5.0, 1.0))

    def test_hit_location_mix_distribution(self, outcome):
        result, out = outcome
        mix = hit_location_mix(result, out, n=result.n_lines)
        assert set(mix) == {"HN", "F2", "F1", "DS"}
        total = sum(mix.values())
        assert total == pytest.approx(1.0, abs=1e-9) or total == 0.0


class TestSeasonality:
    def test_multipliers_shape_and_floor(self):
        m = seasonal_rate_multipliers(0)
        assert m.shape == (52,)
        assert np.all(m >= 1.0 - 1e-12)

    def test_moisture_peak_week(self):
        profile = SeasonalProfile(moisture_amplitude=0.6, moisture_peak_week=14)
        peak = profile.moisture_factor(14)
        trough = profile.moisture_factor(14 + 26)
        assert peak == pytest.approx(1.6)
        assert trough == pytest.approx(1.0)

    def test_storm_faults_track_storm_season(self):
        from repro.netsim.components import DISPOSITION_INDEX
        drop = DISPOSITION_INDEX["f2-aerial-drop-damaged"]
        modem = DISPOSITION_INDEX["hn-modem-defective"]
        at_peak = seasonal_rate_multipliers(34)
        assert at_peak[drop] > 1.3
        assert at_peak[modem] == 1.0

    def test_seasonal_simulator_runs_and_modulates(self):
        config = SimulationConfig(
            n_weeks=8, population=PopulationConfig(n_lines=800, seed=4),
            fault_rate_scale=5.0, seed=6,
        )
        profile = SeasonalProfile(storm_amplitude=3.0, storm_peak_week=2,
                                  moisture_amplitude=0.0)
        sim = SeasonalDslSimulator(config, profile)
        result = sim.run()
        assert len(result.measurements.filled_weeks) == 8
        # Storm-class faults should be over-represented near the peak.
        from repro.netsim.seasonality import _CLASSES
        storm_codes = set(np.flatnonzero(_CLASSES == "storm").tolist())
        early = [e for e in result.fault_events if e.onset_day < 28]
        share = np.mean([e.disposition in storm_codes for e in early])
        baseline_sim = SeasonalDslSimulator(
            config, SeasonalProfile(storm_amplitude=0.0, moisture_amplitude=0.0)
        )
        baseline = baseline_sim.run()
        early_base = [e for e in baseline.fault_events if e.onset_day < 28]
        share_base = np.mean([e.disposition in storm_codes for e in early_base])
        assert share > share_base

    def test_total_rate_capped(self):
        config = SimulationConfig(
            n_weeks=2, population=PopulationConfig(n_lines=100),
            fault_rate_scale=50.0,
        )
        profile = SeasonalProfile(storm_amplitude=50.0)
        sim = SeasonalDslSimulator(config, profile)
        sim.run()
        assert sim.fault_model._total_rate <= 0.99
