"""Unit tests for Platt calibration (repro.ml.calibration)."""

import numpy as np
import pytest

from repro.ml.calibration import PlattCalibrator


def sigmoid_data(rng, n=4000, a=1.5, b=-0.3):
    margins = rng.normal(size=n) * 2.0
    p = 1.0 / (1.0 + np.exp(-(a * margins + b)))
    labels = (rng.random(n) < p).astype(float)
    return margins, labels


class TestFit:
    def test_recovers_monotone_map(self, rng):
        margins, labels = sigmoid_data(rng)
        cal = PlattCalibrator().fit(margins, labels)
        probs = cal.transform(np.array([-3.0, 0.0, 3.0]))
        assert probs[0] < probs[1] < probs[2]

    def test_mean_probability_matches_rate(self, rng):
        margins, labels = sigmoid_data(rng)
        cal = PlattCalibrator().fit(margins, labels)
        assert abs(cal.transform(margins).mean() - labels.mean()) < 0.02

    def test_calibration_quality_binned(self, rng):
        margins, labels = sigmoid_data(rng, n=20000)
        cal = PlattCalibrator().fit(margins, labels)
        probs = cal.transform(margins)
        for lo in (0.1, 0.3, 0.5, 0.7):
            mask = (probs >= lo) & (probs < lo + 0.2)
            if mask.sum() > 200:
                assert abs(probs[mask].mean() - labels[mask].mean()) < 0.06

    def test_separable_data_does_not_blow_up(self):
        margins = np.array([-2.0, -1.0, 1.0, 2.0])
        labels = np.array([0.0, 0.0, 1.0, 1.0])
        cal = PlattCalibrator().fit(margins, labels)
        probs = cal.transform(margins)
        assert np.all(np.isfinite(probs))
        assert probs[0] < 0.5 < probs[-1]

    def test_minus_one_labels_accepted(self, rng):
        margins, labels = sigmoid_data(rng, n=500)
        cal = PlattCalibrator().fit(margins, np.where(labels > 0, 1.0, -1.0))
        assert cal.fitted_

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            PlattCalibrator().fit(np.zeros(3), np.zeros(4))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            PlattCalibrator().fit(np.array([]), np.array([]))


class TestTransform:
    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            PlattCalibrator().transform(np.zeros(3))

    def test_output_in_unit_interval(self, rng):
        margins, labels = sigmoid_data(rng, n=500)
        cal = PlattCalibrator().fit(margins, labels)
        extreme = cal.transform(np.array([-1e6, 1e6]))
        assert np.all((extreme >= 0) & (extreme <= 1))

    def test_fit_transform_equals_fit_then_transform(self, rng):
        margins, labels = sigmoid_data(rng, n=500)
        a = PlattCalibrator().fit_transform(margins, labels)
        b = PlattCalibrator().fit(margins, labels).transform(margins)
        assert np.allclose(a, b)
