"""End-to-end observability: pipeline telemetry, serving endpoints, CLI."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro import (
    PipelineConfig,
    PopulationConfig,
    PredictorConfig,
    SimulationConfig,
)
from repro.core.pipeline import NevermindPipeline
from repro.obs import (
    MetricsRegistry,
    Tracer,
    check_prometheus_text,
    collect_telemetry,
    render_report,
    set_registry,
    set_tracer,
    set_tracing,
)
from repro.serve import ModelBundle, ModelRegistry, ScoringService


@pytest.fixture()
def fresh_obs():
    """Isolated registry + tracer with tracing on; restores the globals."""
    registry = MetricsRegistry()
    tracer = Tracer()
    prev_registry = set_registry(registry)
    prev_tracer = set_tracer(tracer)
    set_tracing(True)
    try:
        yield registry, tracer
    finally:
        set_tracing(None)
        set_tracer(prev_tracer)
        set_registry(prev_registry)


@pytest.fixture(scope="module")
def traced_pipeline_telemetry():
    """One tiny instrumented proactive run, shared by the module's tests."""
    registry = MetricsRegistry()
    tracer = Tracer()
    prev_registry = set_registry(registry)
    prev_tracer = set_tracer(tracer)
    set_tracing(True)
    try:
        pipeline = NevermindPipeline(
            SimulationConfig(
                n_weeks=18,
                population=PopulationConfig(n_lines=500, seed=3),
                fault_rate_scale=5.0,
                seed=41,
            ),
            PipelineConfig(
                warmup_weeks=14,
                predictor=PredictorConfig(
                    capacity=25, train_rounds=12, selection_rounds=2
                ),
            ),
        )
        reports = pipeline.run()
        telemetry = collect_telemetry(
            registry, tracer, meta={"live_weeks": len(reports)}
        )
        return telemetry, pipeline
    finally:
        set_tracing(None)
        set_tracer(prev_tracer)
        set_registry(prev_registry)


class TestPipelineTelemetry:
    def test_quality_counters_match_the_reports(self, traced_pipeline_telemetry):
        telemetry, pipeline = traced_pipeline_telemetry
        metrics = telemetry["metrics"]

        def scalar(name):
            [sample] = metrics[name]["samples"]
            return sample["value"]

        assert scalar("repro_pipeline_weeks_total") == len(pipeline.reports)
        assert scalar("repro_pipeline_submitted_total") == sum(
            len(r.submitted) for r in pipeline.reports
        )
        assert scalar("repro_pipeline_real_problems_total") == sum(
            r.real_problems for r in pipeline.reports
        )
        assert scalar("repro_pipeline_precision") == pytest.approx(
            pipeline.reports[-1].precision
        )

    def test_stage_histogram_covers_the_weekly_stages(
        self, traced_pipeline_telemetry
    ):
        telemetry, pipeline = traced_pipeline_telemetry
        entry = telemetry["metrics"]["repro_pipeline_stage_seconds"]
        stages = {s["labels"]["stage"]: s["count"] for s in entry["samples"]}
        assert stages["train"] >= 1
        assert stages["score"] == len(pipeline.reports)
        assert stages["dispatch"] == len(pipeline.reports)

    def test_calibration_drift_is_bounded(self, traced_pipeline_telemetry):
        telemetry, _ = traced_pipeline_telemetry
        [sample] = telemetry["metrics"]["repro_pipeline_calibration_drift"][
            "samples"
        ]
        # drift = mean predicted P of submitted lines - realized precision;
        # both terms live in [0, 1].
        assert -1.0 <= sample["value"] <= 1.0

    def test_span_tree_has_the_weekly_structure(self, traced_pipeline_telemetry):
        telemetry, pipeline = traced_pipeline_telemetry
        weeks = [s for s in telemetry["trace"] if s["name"] == "pipeline.week"]
        assert len(weeks) == 18  # every simulated week, warm-up included
        live = [w for w in weeks if w["children"]]
        child_names = {c["name"] for w in live for c in w["children"]}
        assert {"pipeline.score", "pipeline.dispatch"} <= child_names
        trained = [
            c for w in weeks for c in w["children"] if c["name"] == "pipeline.train"
        ]
        assert trained, "no training span recorded"
        deep = {g["name"] for c in trained for g in c["children"]}
        assert "predict.fit" in deep

    def test_train_round_metrics_recorded(self, traced_pipeline_telemetry):
        telemetry, _ = traced_pipeline_telemetry
        metrics = telemetry["metrics"]
        [rounds] = metrics["repro_train_rounds_total"]["samples"]
        assert rounds["value"] >= 1
        [z] = metrics["repro_train_round_z"]["samples"]
        assert z["count"] == rounds["value"]

    def test_render_report_shows_all_sections(self, traced_pipeline_telemetry):
        telemetry, _ = traced_pipeline_telemetry
        text = render_report(telemetry)
        assert "== span timing" in text
        assert "pipeline.week" in text
        assert "== stage timings / distributions ==" in text
        assert "repro_pipeline_stage_seconds{stage=score}" in text
        assert "== counters and gauges ==" in text
        assert "repro_pipeline_precision" in text

    def test_prometheus_view_of_the_run_is_valid(self, traced_pipeline_telemetry):
        from repro.obs.metrics import exposition

        telemetry, _ = traced_pipeline_telemetry
        assert check_prometheus_text(exposition(telemetry["metrics"])) == []


class TestServiceObservability:
    @pytest.fixture()
    def service(self, fresh_obs, small_store, small_predictor, tmp_path):
        registry_root = tmp_path / "registry"
        ModelRegistry(registry_root).publish(
            ModelBundle(predictor=small_predictor), activate=True
        )
        return ScoringService(small_store.root, registry_root, shard_size=500)

    def test_prometheus_endpoint_is_valid_and_registry_backed(self, service):
        service.dispatch_request("GET", "/dispatch")
        status, text = service.dispatch_request(
            "GET", "/metrics?format=prometheus"
        )
        assert status == 200 and isinstance(text, str)
        assert check_prometheus_text(text) == []
        assert 'repro_http_requests_total{route="/dispatch"} 1' in text
        assert "repro_serve_lines_scored_total" in text
        assert "repro_http_request_seconds_bucket" in text

    def test_json_metrics_keep_the_legacy_keys(self, service):
        service.dispatch_request("GET", "/dispatch")
        status, payload = service.dispatch_request("GET", "/metrics")
        assert status == 200
        assert payload["requests"]["/dispatch"] == 1
        assert payload["lines_scored"] > 0
        assert payload["mean_lines_per_sec"] > 0
        assert "repro_serve_score_week_seconds" in payload["metrics"]

    def test_trace_endpoint_exports_scoring_spans(self, service):
        service.dispatch_request("GET", "/dispatch")
        status, payload = service.dispatch_request("GET", "/trace")
        assert status == 200
        assert payload["tracing_enabled"] is True
        names = {s["name"] for s in payload["spans"]}
        assert "serve.score_week" in names
        status, text = service.dispatch_request("GET", "/trace?format=text")
        assert status == 200 and "serve.score_week" in text

    def test_shard_spans_nest_under_the_scoring_run(self, service):
        service.dispatch_request("GET", "/dispatch")
        _, payload = service.dispatch_request("GET", "/trace")
        [run] = [s for s in payload["spans"] if s["name"] == "serve.score_week"]
        shard_spans = [c for c in run["children"] if c["name"] == "serve.shard"]
        assert len(shard_spans) == run["tags"]["shards"] >= 2


class TestDegradedService:
    def test_registry_only_mount_degrades_to_503(
        self, fresh_obs, small_store, small_predictor, tmp_path
    ):
        registry_root = tmp_path / "empty-registry"
        ModelRegistry(registry_root)  # initialised, nothing published
        service = ScoringService(
            small_store.root, registry_root, require_model=False
        )
        status, payload = service.dispatch_request("GET", "/healthz")
        assert status == 200 and payload["status"] == "degraded"
        assert payload["model_version"] == "none"
        for path in ("/dispatch", "/score?line=1", "/locate?line=1"):
            status, payload = service.dispatch_request("GET", path)
            assert status == 503, path
            assert "no active model" in payload["error"]
        status, payload = service.dispatch_request("POST", "/reload")
        assert status == 503

        # Publishing + reloading brings it back without a restart.
        service.registry.publish(
            ModelBundle(predictor=small_predictor), activate=True
        )
        status, payload = service.dispatch_request("POST", "/reload")
        assert status == 200 and payload["model_version"] == "v0001"
        status, _ = service.dispatch_request("GET", "/dispatch")
        assert status == 200

    def test_default_construction_still_requires_a_model(
        self, fresh_obs, small_store, tmp_path
    ):
        ModelRegistry(tmp_path / "empty")
        with pytest.raises(RuntimeError, match="active"):
            ScoringService(small_store.root, tmp_path / "empty")


class TestCli:
    def test_obs_report_renders_saved_telemetry(
        self, fresh_obs, tmp_path, capsys
    ):
        from repro.cli import main

        registry, tracer = fresh_obs
        registry.counter("repro_pipeline_weeks_total").inc(4)
        with tracer.span("pipeline.week", week=1):
            pass
        telemetry_path = tmp_path / "telemetry.json"
        telemetry_path.write_text(
            json.dumps(collect_telemetry(registry, tracer))
        )
        assert main(["obs", "report", "--input", str(telemetry_path)]) == 0
        out = capsys.readouterr().out
        assert "pipeline.week" in out
        assert "repro_pipeline_weeks_total" in out

    def test_verbose_flag_parses(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["obs", "report", "--verbose", "--input", "x.json"]
        )
        assert args.verbose is True and args.command == "obs"


class TestFlightRecorderAcrossSubsystems:
    """One HistoryStore carries pipeline, lifecycle, and serve series."""

    @pytest.fixture(scope="class")
    def shared_history(self, tmp_path_factory):
        from repro.lifecycle import LifecycleConfig, LifecycleController
        from repro.obs.history import HistoryStore
        from repro.serve import LineWeekStore

        root = tmp_path_factory.mktemp("flight")
        history = HistoryStore(root / "flight.jsonl")
        simulation = SimulationConfig(
            n_weeks=17,
            population=PopulationConfig(n_lines=400, seed=3),
            fault_rate_scale=5.0,
            seed=7,
        )
        pipeline = NevermindPipeline(
            simulation,
            PipelineConfig(
                warmup_weeks=13,
                retrain_every=0,  # the controller owns retrains
                predictor=PredictorConfig(
                    capacity=20, horizon_weeks=3, train_rounds=20,
                    selection_rounds=2, include_derived=False,
                ),
            ),
            store=LineWeekStore.create(
                root / "store", 400, simulation.population
            ),
            registry=ModelRegistry(root / "registry"),
            history=history,
        )
        controller = LifecycleController(
            pipeline,
            LifecycleConfig(
                cadence_weeks=2, shadow_weeks=2, bootstrap_samples=50,
                seed=4,
            ),
        )
        controller.run()

        service = ScoringService(
            root / "store", root / "registry", shard_size=200,
            history=history,
        )
        for _ in range(6):
            status, _ = service.dispatch_request("GET", "/score?line=7")
            assert status == 200
        status, _ = service.dispatch_request("GET", "/dispatch")
        assert status == 200
        assert service.slo_monitor.tick() is not None
        return history, service

    def test_one_store_holds_all_three_series(self, shared_history):
        history, _ = shared_history
        kinds = history.kinds()
        assert kinds.get("pipeline_week", 0) >= 3
        assert kinds.get("lifecycle_decision", 0) >= 1
        assert kinds.get("serve_tick", 0) >= 1

    def test_pipeline_records_carry_quality_and_resources(
        self, shared_history
    ):
        history, _ = shared_history
        weekly = history.records("pipeline_week")
        for record in weekly:
            assert record.week is not None
            assert "precision" in record.values
            assert "peak_rss_kb" in record.values
            assert "wall_seconds.score" in record.values

    def test_lifecycle_records_name_their_action(self, shared_history):
        history, _ = shared_history
        actions = [
            r["meta"]["action"]
            for r in history.records("lifecycle_decision")
        ]
        assert "bootstrap" in actions

    def test_serve_tick_carries_route_percentiles(self, shared_history):
        history, _ = shared_history
        [tick] = history.records("serve_tick")
        assert tick.values["requests./score"] == 6.0
        assert tick.values["latency_p99./score"] > 0
        assert tick.values["attainment.score_latency"] == 1.0

    def test_health_route_reads_the_same_monitor(self, shared_history):
        _, service = shared_history
        status, payload = service.dispatch_request("GET", "/health")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["has_data"] is True

    def test_dashboard_renders_from_the_shared_store(self, shared_history):
        from repro.obs.health import HealthDetector, render_dashboard

        history, _ = shared_history
        text = render_dashboard(history)
        assert "flight recorder dashboard" in text
        assert "score_stage_wall" in text
        assert "DEGRADATION" not in text  # a clean run stays quiet
        assert HealthDetector(history).summary()["status"] != "alert"

    def test_reopened_store_round_trips_every_series(self, shared_history):
        from repro.obs.history import HistoryStore

        history, _ = shared_history
        reopened = HistoryStore(history.path)
        assert len(reopened) == len(history)
        assert reopened.kinds() == history.kinds()
        precision = reopened.query("precision", kind="pipeline_week")
        assert len(precision) >= 3
        assert all(0.0 <= p <= 1.0 for p in precision)
