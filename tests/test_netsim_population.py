"""Unit tests for the population builder (repro.netsim.population)."""

import numpy as np
import pytest

from repro.netsim.population import PopulationConfig, build_population
from repro.netsim.profiles import PROFILES


@pytest.fixture(scope="module")
def population():
    return build_population(PopulationConfig(n_lines=4000, seed=3))


class TestBuild:
    def test_size(self, population):
        assert population.n_lines == 4000
        assert population.loop_kft.shape == (4000,)
        assert population.profile_idx.shape == (4000,)

    def test_deterministic_under_seed(self):
        a = build_population(PopulationConfig(n_lines=500, seed=8))
        b = build_population(PopulationConfig(n_lines=500, seed=8))
        assert np.array_equal(a.loop_kft, b.loop_kft)
        assert np.array_equal(a.profile_idx, b.profile_idx)

    def test_seed_changes_population(self):
        a = build_population(PopulationConfig(n_lines=500, seed=8))
        b = build_population(PopulationConfig(n_lines=500, seed=9))
        assert not np.array_equal(a.loop_kft, b.loop_kft)

    def test_loop_lengths_plausible(self, population):
        assert population.loop_kft.min() >= 0.3
        assert population.loop_kft.max() <= 22.0
        assert 3.0 < population.loop_kft.mean() < 9.0
        # Long tail past the basic 15 kft rule exists but is small.
        frac_long = np.mean(population.loop_kft > 15.0)
        assert 0.0 < frac_long < 0.15

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            build_population(PopulationConfig(n_lines=0))


class TestProvisioning:
    def test_most_lines_within_tier_reach(self, population):
        reach = np.array([p.max_loop_kft for p in PROFILES])
        ok = population.loop_kft <= reach[population.profile_idx]
        # Only the misprovisioned fraction (default 5%) may exceed reach,
        # plus loops beyond every tier's reach.
        assert np.mean(ok) > 0.9

    def test_misprovisioned_lines_exist(self, population):
        reach = np.array([p.max_loop_kft for p in PROFILES])
        assert np.any(population.loop_kft > reach[population.profile_idx])

    def test_all_tiers_used(self, population):
        assert set(np.unique(population.profile_idx)) == set(range(len(PROFILES)))


class TestTopology:
    def test_validates(self, population):
        population.topology.validate()

    def test_dslam_fill_several_tens(self, population):
        sizes = [len(d.line_ids) for d in population.topology.dslams]
        assert 8 <= min(sizes)
        assert np.mean(sizes) == pytest.approx(48, rel=0.35)

    def test_line_maps_consistent(self, population):
        topo = population.topology
        for dslam in topo.dslams[:10]:
            assert np.all(topo.line_dslam[dslam.line_ids] == dslam.dslam_id)
            assert np.all(topo.line_bras[dslam.line_ids] == dslam.bras_id)

    def test_lines_of_bras_roundtrip(self, population):
        topo = population.topology
        lines = topo.lines_of_bras(0)
        assert np.all(topo.line_bras[lines] == 0)

    def test_conditions_bundle(self, population):
        cond = population.conditions()
        assert cond.n_lines == population.n_lines
        expected_down = np.array([p.down_kbps for p in PROFILES])
        assert np.array_equal(
            cond.profile_down_kbps, expected_down[population.profile_idx]
        )
