"""Unit tests for decision stumps (repro.ml.stumps)."""

import math

import numpy as np
import pytest

from repro.ml.stumps import Stump, StumpSearch, fit_stump


def uniform_weights(n):
    return np.full(n, 1.0 / n)


class TestStumpPredict:
    def test_threshold_routing(self):
        stump = Stump(feature=0, threshold=0.5, s_lo=-1.0, s_hi=2.0)
        X = np.array([[0.0], [1.0], [0.5]])
        out = stump.predict(X)
        assert list(out) == [-1.0, 2.0, 2.0]  # >= threshold goes high

    def test_missing_abstains(self):
        stump = Stump(feature=0, threshold=0.5, s_lo=-1.0, s_hi=2.0)
        out = stump.predict(np.array([[np.nan]]))
        assert out[0] == 0.0

    def test_categorical_equality(self):
        stump = Stump(feature=0, threshold=2.0, s_lo=-1.0, s_hi=3.0,
                      categorical=True)
        out = stump.predict(np.array([[1.0], [2.0], [3.0]]))
        assert list(out) == [-1.0, 3.0, -1.0]


class TestFitStump:
    def test_separable_threshold_found(self):
        column = np.array([0.0, 1.0, 2.0, 3.0, 10.0, 11.0, 12.0, 13.0])
        y = np.array([-1, -1, -1, -1, 1, 1, 1, 1], dtype=float)
        stump = fit_stump(column, y, uniform_weights(8))
        assert 3.0 < stump.threshold < 10.0
        assert stump.s_hi > 0 > stump.s_lo
        assert stump.z < 0.5

    def test_sign_orientation_flips(self):
        column = np.array([0.0, 1.0, 2.0, 3.0])
        y = np.array([1, 1, -1, -1], dtype=float)
        stump = fit_stump(column, y, uniform_weights(4))
        assert stump.s_lo > 0 > stump.s_hi

    def test_useless_feature_has_high_z(self, rng):
        column = rng.normal(size=400)
        y = np.where(rng.random(400) < 0.5, 1.0, -1.0)
        stump = fit_stump(column, y, uniform_weights(400))
        assert stump.z > 0.9

    def test_missing_contributes_to_z(self):
        column = np.array([0.0, 1.0, np.nan, np.nan])
        y = np.array([-1, 1, 1, -1], dtype=float)
        stump = fit_stump(column, y, uniform_weights(4))
        # Perfect split on present values; the mixed missing block costs
        # 2*sqrt(0.25 * 0.25) = 0.5 under either missing policy here.
        assert stump.z == pytest.approx(0.5)

    def test_missing_block_scored_when_informative(self):
        # All missing records are positive: the "score" policy should
        # emit a positive missing score and a lower Z than "abstain".
        column = np.array([0.0, 1.0, 2.0, np.nan, np.nan, np.nan])
        y = np.array([-1, -1, -1, 1, 1, 1], dtype=float)
        scored = fit_stump(column, y, uniform_weights(6), missing_policy="score")
        abstained = fit_stump(column, y, uniform_weights(6), missing_policy="abstain")
        assert scored.s_miss > 0
        assert abstained.s_miss == 0.0
        assert scored.z < abstained.z

    def test_all_missing_column_abstain(self):
        column = np.full(4, np.nan)
        y = np.array([1, -1, 1, -1], dtype=float)
        stump = fit_stump(column, y, uniform_weights(4), missing_policy="abstain")
        assert stump.s_lo == 0.0 and stump.s_hi == 0.0 and stump.s_miss == 0.0
        assert stump.z == pytest.approx(1.0)

    def test_all_missing_column_scored(self):
        column = np.full(4, np.nan)
        y = np.array([1, 1, 1, -1], dtype=float)
        stump = fit_stump(column, y, uniform_weights(4))
        assert stump.s_miss > 0  # 3:1 positive missing block

    def test_invalid_missing_policy(self):
        with pytest.raises(ValueError):
            fit_stump(np.ones(2), np.array([1.0, -1.0]), np.ones(2),
                      missing_policy="drop")

    def test_categorical_picks_best_value(self):
        column = np.array([0, 0, 1, 1, 2, 2], dtype=float)
        y = np.array([-1, -1, 1, 1, -1, -1], dtype=float)
        stump = fit_stump(column, y, uniform_weights(6), categorical=True)
        assert stump.threshold == 1.0
        assert stump.categorical
        assert stump.s_hi > 0

    def test_never_splits_between_equal_values(self):
        column = np.array([1.0, 1.0, 1.0, 2.0])
        y = np.array([1, -1, 1, -1], dtype=float)
        stump = fit_stump(column, y, uniform_weights(4))
        assert stump.threshold not in (1.0,)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            fit_stump(np.ones(3), np.ones(4), np.ones(3))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            fit_stump(np.array([]), np.array([]), np.array([]))

    def test_weighted_fit_respects_weights(self):
        column = np.array([0.0, 1.0, 2.0, 3.0])
        y = np.array([1, -1, -1, 1], dtype=float)
        # Crushing weight on the last example makes "high is positive" win.
        weights = np.array([0.01, 0.01, 0.01, 10.0])
        stump = fit_stump(column, y, weights)
        assert stump.s_hi > 0


class TestStumpSearch:
    def test_matches_single_column_fit(self, rng):
        X = rng.normal(size=(300, 6))
        y = np.where(X[:, 3] > 0.2, 1.0, -1.0)
        w = uniform_weights(300)
        search = StumpSearch(X, y)
        best = search.best_stump(w)
        assert best.feature == 3
        reference = fit_stump(X[:, 3], y, w, feature=3)
        assert best.z == pytest.approx(reference.z, rel=1e-9)
        assert best.threshold == pytest.approx(reference.threshold)

    def test_prefers_cleanest_feature(self, rng):
        X = rng.normal(size=(500, 3))
        y = np.where(X[:, 1] > 0, 1.0, -1.0)
        X[:, 0] = np.where(y > 0, 1.0, -1.0) + rng.normal(0, 2.0, 500)  # noisy copy
        search = StumpSearch(X, y)
        assert search.best_stump(uniform_weights(500)).feature == 1

    def test_categorical_column_supported(self, rng):
        X = np.column_stack([
            rng.normal(size=400),
            rng.integers(0, 3, size=400).astype(float),
        ])
        y = np.where(X[:, 1] == 2, 1.0, -1.0)
        search = StumpSearch(X, y, categorical=np.array([False, True]))
        best = search.best_stump(uniform_weights(400))
        assert best.feature == 1
        assert best.categorical
        assert best.threshold == 2.0

    def test_missing_values_tolerated(self, rng):
        X = rng.normal(size=(200, 2))
        y = np.where(X[:, 0] > 0, 1.0, -1.0)
        X[rng.random((200, 2)) < 0.3] = np.nan
        search = StumpSearch(X, y)
        best = search.best_stump(uniform_weights(200))
        assert best.feature == 0
        assert np.isfinite(best.z)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            StumpSearch(np.ones(3), np.ones(3))
        with pytest.raises(ValueError):
            StumpSearch(np.ones((3, 2)), np.ones(4))
        with pytest.raises(ValueError):
            StumpSearch(np.empty((0, 2)), np.empty(0))

    def test_weight_shape_checked(self, rng):
        X = rng.normal(size=(10, 2))
        y = np.where(X[:, 0] > 0, 1.0, -1.0)
        search = StumpSearch(X, y)
        with pytest.raises(ValueError):
            search.best_stump(np.ones(5))
