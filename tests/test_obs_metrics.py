"""The metrics registry: bucket math, escaping, exposition, concurrency."""

from __future__ import annotations

import math
import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    exposition,
    get_registry,
    set_registry,
)
from repro.obs.promcheck import check_prometheus_text, parse_samples


@pytest.fixture()
def registry():
    """A fresh, isolated registry (not the process-global one)."""
    return MetricsRegistry()


class TestCounterAndGauge:
    def test_counter_accumulates_per_label_set(self, registry):
        c = registry.counter("req_total", "requests")
        c.inc()
        c.inc(2, route="/score")
        c.inc(3, route="/score")
        assert c.value() == 1
        assert c.value(route="/score") == 5
        assert c.value(route="/other") == 0

    def test_counter_rejects_decrease(self, registry):
        with pytest.raises(ValueError, match="cannot decrease"):
            registry.counter("c_total").inc(-1)

    def test_gauge_moves_both_ways(self, registry):
        g = registry.gauge("depth")
        g.inc(5)
        g.dec(2)
        assert g.value() == 3
        g.set(7.5)
        assert g.value() == 7.5

    def test_get_or_create_returns_same_object(self, registry):
        assert registry.counter("x_total") is registry.counter("x_total")

    def test_kind_mismatch_raises(self, registry):
        registry.counter("taken")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("taken")

    def test_invalid_names_rejected(self, registry):
        with pytest.raises(ValueError, match="invalid metric name"):
            registry.counter("bad-name")
        with pytest.raises(ValueError, match="invalid label name"):
            registry.counter("ok_total").inc(**{"bad-label": "x"})


class TestHistogramBuckets:
    def test_boundaries_are_inclusive_upper_bounds(self, registry):
        h = registry.histogram("lat", buckets=(1.0, 2.0, 5.0))
        for value in (0.5, 1.0, 2.0, 2.0001, 5.0, 99.0):
            h.observe(value)
        counts, total, count = h.series()
        # 0.5 and 1.0 land in le=1; 2.0 in le=2; 2.0001 and 5.0 in le=5;
        # 99 overflows to +Inf.
        assert counts == [2, 1, 2, 1]
        assert count == 6
        assert total == pytest.approx(0.5 + 1.0 + 2.0 + 2.0001 + 5.0 + 99.0)

    def test_bucket_validation(self, registry):
        with pytest.raises(ValueError, match="at least one"):
            registry.histogram("h1", buckets=())
        with pytest.raises(ValueError, match="strictly increasing"):
            registry.histogram("h2", buckets=(1.0, 1.0))
        with pytest.raises(ValueError, match="finite"):
            registry.histogram("h3", buckets=(1.0, math.inf))

    def test_reregistering_with_other_buckets_raises(self, registry):
        registry.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ValueError, match="different"):
            registry.histogram("h", buckets=(1.0, 3.0))

    def test_timer_observes_block_duration(self, registry):
        h = registry.histogram("t", buckets=DEFAULT_BUCKETS)
        with h.time(stage="x"):
            pass
        _, total, count = h.series(stage="x")
        assert count == 1
        assert 0 <= total < 1.0


class TestPrometheusExposition:
    def test_output_passes_the_format_checker(self, registry):
        registry.counter("req_total", "requests").inc(3, route="/score")
        registry.gauge("up", "uptime").set(1.5)
        h = registry.histogram("lat_seconds", "latency", buckets=(0.1, 1.0))
        h.observe(0.05, route="/score")
        h.observe(2.0, route="/score")
        text = registry.to_prometheus()
        assert check_prometheus_text(text) == []

    def test_histogram_samples_are_cumulative_with_inf(self, registry):
        h = registry.histogram("lat_seconds", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 2.0):
            h.observe(v)
        samples = dict(
            ((name, tuple(sorted(labels.items()))), value)
            for name, labels, value in parse_samples(registry.to_prometheus())
        )
        assert samples[("lat_seconds_bucket", (("le", "0.1"),))] == 1
        assert samples[("lat_seconds_bucket", (("le", "1"),))] == 2
        assert samples[("lat_seconds_bucket", (("le", "+Inf"),))] == 3
        assert samples[("lat_seconds_count", ())] == 3
        assert samples[("lat_seconds_sum", ())] == pytest.approx(2.55)

    def test_label_values_are_escaped_and_round_trip(self, registry):
        nasty = 'quote " slash \\ newline \n end'
        registry.counter("esc_total").inc(1, path=nasty)
        text = registry.to_prometheus()
        assert check_prometheus_text(text) == []
        [(name, labels, value)] = parse_samples(text)
        assert name == "esc_total"
        assert labels == {"path": nasty}
        assert value == 1

    def test_special_float_values_render(self):
        snapshot = {
            "g": {
                "kind": "gauge",
                "help": "h",
                "samples": [
                    {"labels": {}, "value": math.inf},
                ],
            }
        }
        assert "g +Inf" in exposition(snapshot)

    def test_checker_flags_broken_text(self):
        assert check_prometheus_text("no_type_metric 1\n")
        assert check_prometheus_text('# TYPE m counter\nm{l="x} 1\n')
        bad_cumulative = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 5\n'
            'h_bucket{le="+Inf"} 3\n'
            "h_sum 1\nh_count 3\n"
        )
        assert any(
            "decrease" in p for p in check_prometheus_text(bad_cumulative)
        )


class TestRegistryBehavior:
    def test_snapshot_is_isolated_from_later_writes(self, registry):
        c = registry.counter("c_total")
        c.inc(1)
        snap = registry.snapshot()
        c.inc(41)
        assert snap["c_total"]["samples"][0]["value"] == 1

    def test_reset_clears_samples_but_keeps_definitions(self, registry):
        c = registry.counter("c_total", "help text")
        c.inc(9)
        registry.reset()
        assert c.value() == 0
        assert registry.counter("c_total") is c
        assert registry.snapshot()["c_total"]["help"] == "help text"

    def test_concurrent_increments_do_not_lose_updates(self, registry):
        c = registry.counter("c_total")
        h = registry.histogram("h", buckets=(0.5,))

        def work():
            for _ in range(5_000):
                c.inc()
                h.observe(0.1)

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value() == 40_000
        counts, _, count = h.series()
        assert count == 40_000 and counts[0] == 40_000

    def test_global_registry_swap_restores(self, registry):
        previous = set_registry(registry)
        try:
            assert get_registry() is registry
        finally:
            set_registry(previous)
        assert get_registry() is previous
