"""Tests for the canned plant scenarios (repro.netsim.scenarios)."""

import numpy as np
import pytest

from repro.netsim.scenarios import SCENARIOS, scenario, scenario_names
from repro.netsim.simulator import DslSimulator


class TestCatalog:
    def test_names(self):
        assert set(scenario_names()) == {
            "suburban", "urban", "rural", "storm_season", "outage_prone",
            "correlated_faults",
        }

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            scenario("underwater")

    def test_all_scenarios_build_and_seed(self):
        for name in SCENARIOS:
            config = scenario(name, n_lines=300, n_weeks=4, seed=9)
            assert config.n_weeks == 4
            assert config.population.n_lines == 300


class TestScenarioCharacter:
    def test_urban_loops_shorter_than_rural(self):
        urban = DslSimulator(scenario("urban", n_lines=2000, n_weeks=1))
        rural = DslSimulator(scenario("rural", n_lines=2000, n_weeks=1))
        assert urban.population.loop_kft.mean() < 0.5 * rural.population.loop_kft.mean()

    def test_rural_has_more_marginal_lines(self):
        urban = DslSimulator(scenario("urban", n_lines=2000, n_weeks=1))
        rural = DslSimulator(scenario("rural", n_lines=2000, n_weeks=1))
        assert np.mean(rural.population.loop_kft > 15.0) > 5 * np.mean(
            urban.population.loop_kft > 15.0
        )

    def test_urban_crosstalk_rate(self):
        urban = DslSimulator(scenario("urban", n_lines=2000, n_weeks=1))
        assert urban.population.static_crosstalk.mean() > 0.15

    def test_storm_season_generates_more_problems(self):
        calm = DslSimulator(scenario("suburban", n_lines=1500, n_weeks=8)).run()
        storm = DslSimulator(scenario("storm_season", n_lines=1500, n_weeks=8)).run()
        assert len(storm.fault_events) > 1.4 * len(calm.fault_events)
        assert len(storm.outages.events) >= len(calm.outages.events)

    def test_outage_prone_outage_density(self):
        world = DslSimulator(scenario("outage_prone", n_lines=1500, n_weeks=8)).run()
        n_dslams = world.population.topology.n_dslams
        # ~5%/week/DSLAM over 8 weeks.
        assert len(world.outages.events) > 0.2 * n_dslams

    def test_correlated_faults_schedules_group_events(self):
        world = DslSimulator(
            scenario("correlated_faults", n_lines=1500, n_weeks=12)
        ).run()
        counts = world.group_faults.schedule.event_counts()
        assert counts["dslam"] >= 1
        assert counts["binder"] >= 2
        # Escalation: every DSLAM event that ends inside the horizon
        # becomes a tickets-side outage on the same DSLAM.
        dslam_events = [
            e for e in world.group_faults.schedule.dslam_events()
            if e.end_day + 1 < 12 * 7
        ]
        assert {o.dslam_id for o in world.outages.events} == {
            e.group_id for e in dslam_events
        }
