"""Flight recorder: round-trips, recovery, concurrency, retention."""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs.history import (
    DEFAULT_FILENAME,
    SCHEMA_VERSION,
    HistoryStore,
)


@pytest.fixture()
def store(tmp_path):
    return HistoryStore(tmp_path / "flight.jsonl")


class TestRoundTrip:
    def test_append_then_read_back(self, store):
        written = store.append(
            "pipeline_week", {"precision": 0.45, "submitted": 20},
            week=17, meta={"run": "unit"},
        )
        assert written["v"] == SCHEMA_VERSION
        [record] = store.records()
        assert record.kind == "pipeline_week"
        assert record.week == 17
        assert record.values == {"precision": 0.45, "submitted": 20.0}
        assert record["meta"] == {"run": "unit"}
        assert record.ts > 0

    def test_directory_path_gets_default_filename(self, tmp_path):
        store = HistoryStore(tmp_path / "obs")
        assert store.path.name == DEFAULT_FILENAME
        store.append("serve_tick", {"requests.total": 3})
        assert len(HistoryStore(tmp_path / "obs")) == 1

    def test_values_are_coerced_to_float_at_write_time(self, store):
        with pytest.raises((TypeError, ValueError)):
            store.append("pipeline_week", {"precision": "not-a-number"})
        assert len(store) == 0

    def test_three_weeks_of_mixed_kinds_round_trip(self, store):
        # The acceptance shape: weekly pipeline snapshots, a few
        # lifecycle decisions, and serve ticks interleaved over 21 weeks.
        base = 1_700_000_000.0
        week_seconds = 7 * 24 * 3600.0
        for week in range(21):
            ts = base + week * week_seconds
            store.append(
                "pipeline_week",
                {"precision": 0.4 + 0.001 * week, "wall_seconds.score": 0.01},
                week=week, ts=ts,
            )
            store.append(
                "serve_tick", {"latency_p99./score": 0.002}, ts=ts + 60
            )
            if week % 7 == 0:
                store.append(
                    "lifecycle_decision", {"version": week // 7 + 1.0},
                    week=week, ts=ts, meta={"action": "retrain"},
                )
        reopened = HistoryStore(store.path)
        assert reopened.kinds() == {
            "pipeline_week": 21, "serve_tick": 21, "lifecycle_decision": 3,
        }
        series = reopened.query("precision", kind="pipeline_week")
        assert len(series) == 21
        assert series[0] == pytest.approx(0.4)
        assert series[-1] == pytest.approx(0.42)


class TestQuery:
    def test_window_keeps_newest_points(self, store):
        for week in range(10):
            store.append("pipeline_week", {"precision": float(week)}, week=week)
        assert store.query("precision", window=3) == [7.0, 8.0, 9.0]

    def test_kind_filter_separates_namespaces(self, store):
        store.append("pipeline_week", {"rss_kb": 100.0})
        store.append("serve_tick", {"rss_kb": 999.0})
        assert store.query("rss_kb", kind="serve_tick") == [999.0]
        assert store.query("rss_kb") == [100.0, 999.0]

    def test_records_missing_the_name_are_skipped(self, store):
        store.append("pipeline_week", {"precision": 0.4})
        store.append("pipeline_week", {"submitted": 20.0})
        assert store.query("precision") == [0.4]

    def test_records_limit_keeps_newest(self, store):
        for week in range(5):
            store.append("pipeline_week", {"w": float(week)}, week=week)
        kept = store.records(limit=2)
        assert [r.week for r in kept] == [3, 4]


class TestSchemaVersioning:
    def test_future_schema_records_are_skipped_not_misparsed(self, store):
        store.append("pipeline_week", {"precision": 0.4}, week=1)
        future = {
            "v": SCHEMA_VERSION + 1, "ts": 1.0, "kind": "pipeline_week",
            "week": 2, "values": {"precision": "reshaped-in-v2"},
        }
        with open(store.path, "a") as fh:
            fh.write(json.dumps(future) + "\n")
        store.append("pipeline_week", {"precision": 0.5}, week=3)

        reopened = HistoryStore(store.path)
        assert [r.week for r in reopened.records()] == [1, 3]
        assert reopened.query("precision") == [0.4, 0.5]

    def test_future_schema_line_is_not_a_torn_tail(self, store):
        # Recovery keeps the complete-but-newer line on disk (a later
        # upgrade can still read it); only readers skip it.
        future_line = json.dumps({"v": SCHEMA_VERSION + 1, "ts": 1.0,
                                  "kind": "x", "values": {}}) + "\n"
        store.path.write_text(future_line)
        reopened = HistoryStore(store.path)
        assert reopened.path.read_text() == future_line
        assert reopened.records() == []


class TestRecovery:
    def test_torn_tail_is_truncated_on_reopen(self, store):
        store.append("pipeline_week", {"precision": 0.4}, week=1)
        store.append("pipeline_week", {"precision": 0.5}, week=2)
        intact = store.path.read_bytes()
        with open(store.path, "ab") as fh:
            fh.write(b'{"v": 1, "ts": 3.0, "kind": "pipeline_we')  # kill -9

        reopened = HistoryStore(store.path)
        assert len(reopened) == 2
        assert reopened.path.read_bytes() == intact
        # And the store appends cleanly after recovery.
        reopened.append("pipeline_week", {"precision": 0.6}, week=3)
        assert reopened.query("precision") == [0.4, 0.5, 0.6]

    def test_torn_tail_without_newline_midnumber(self, store):
        store.append("serve_tick", {"requests.total": 10.0})
        with open(store.path, "ab") as fh:
            fh.write(b'{"v": 1, "ts": 17')
        assert len(HistoryStore(store.path)) == 1

    def test_missing_file_is_an_empty_store(self, tmp_path):
        store = HistoryStore(tmp_path / "never-written.jsonl")
        assert len(store) == 0
        assert store.records() == []
        assert store.query("anything") == []

    def test_reader_skips_garbage_written_since_recovery(self, store):
        # A *different* process dying mid-write after our recovery pass:
        # the read path skips the bad line instead of raising.
        store.append("pipeline_week", {"precision": 0.4})
        with open(store.path, "ab") as fh:
            fh.write(b"not json at all\n")
        store.append("pipeline_week", {"precision": 0.5})
        assert store.query("precision") == [0.4, 0.5]


class TestConcurrentWriters:
    def test_two_store_handles_interleave_whole_records(self, tmp_path):
        # Two processes (serve + pipeline) share one history file; model
        # that with two independent handles on the same path, each
        # appending from its own thread.  O_APPEND keeps lines whole.
        path = tmp_path / "shared.jsonl"
        first, second = HistoryStore(path), HistoryStore(path)
        n_each = 200

        def writer(store, kind):
            for i in range(n_each):
                store.append(kind, {"i": float(i)})

        threads = [
            threading.Thread(target=writer, args=(first, "serve_tick")),
            threading.Thread(target=writer, args=(second, "pipeline_week")),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        merged = HistoryStore(path)
        assert len(merged) == 2 * n_each
        assert merged.kinds() == {
            "serve_tick": n_each, "pipeline_week": n_each,
        }
        # Every record parsed back intact and in per-writer order.
        for kind in ("serve_tick", "pipeline_week"):
            assert merged.query("i", kind=kind) == [
                float(i) for i in range(n_each)
            ]

    def test_one_handle_shared_by_threads(self, store):
        n_threads, n_each = 4, 100

        def writer(t):
            for i in range(n_each):
                store.append("serve_tick", {"v": float(t * n_each + i)})

        threads = [
            threading.Thread(target=writer, args=(t,))
            for t in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(store) == n_threads * n_each
        assert len(store.records()) == n_threads * n_each


class TestRetention:
    def test_compact_keeps_newest_records(self, store):
        for week in range(10):
            store.append("pipeline_week", {"w": float(week)}, week=week)
        kept = store.compact(max_records=4)
        assert kept == 4
        assert len(store) == 4
        assert store.query("w") == [6.0, 7.0, 8.0, 9.0]
        # Reopen agrees: the rewrite really hit the disk.
        assert HistoryStore(store.path).query("w") == [6.0, 7.0, 8.0, 9.0]

    def test_compact_by_age(self, store, monkeypatch):
        import repro.obs.history as history_mod
        for day, week in ((1.0, 1), (2.0, 2), (100.0, 3)):
            store.append("pipeline_week", {"w": float(week)},
                         week=week, ts=day * 86400.0)
        monkeypatch.setattr(history_mod.time, "time",
                            lambda: 103.0 * 86400.0)
        store.compact(max_age_seconds=7 * 86400.0)
        assert [r.week for r in store.records()] == [3]

    def test_appends_auto_compact_past_twice_the_bound(self, tmp_path):
        store = HistoryStore(tmp_path / "bounded.jsonl", max_records=5)
        for i in range(11):  # 11th append crosses 2 * max_records
            store.append("serve_tick", {"i": float(i)})
        assert len(store) == 5
        assert store.query("i") == [6.0, 7.0, 8.0, 9.0, 10.0]

    def test_max_records_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="max_records"):
            HistoryStore(tmp_path / "x.jsonl", max_records=0)
