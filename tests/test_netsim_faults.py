"""Unit tests for the fault model (repro.netsim.faults)."""

import numpy as np
import pytest

from repro.netsim.components import DISPOSITION_INDEX, disposition_arrays
from repro.netsim.faults import FaultModel, FaultState


class TestFaultState:
    def test_healthy_start(self):
        state = FaultState.healthy(10)
        assert not state.active.any()
        assert np.all(state.severity == 0)

    def test_clear(self):
        state = FaultState.healthy(5)
        state.disposition[2] = 7
        state.severity[2] = 0.5
        state.onset_day[2] = 3
        state.clear(np.array([2]))
        assert not state.active.any()


class TestOnsets:
    def test_rates_respected(self, rng):
        model = FaultModel(rate_scale=10.0)
        state = FaultState.healthy(50_000)
        struck = model.sample_onsets(state, rng, week_start_day=0)
        expected = model.weekly_onset_probability * 50_000
        assert struck.size == pytest.approx(expected, rel=0.15)

    def test_onset_day_within_week(self, rng):
        model = FaultModel(rate_scale=10.0)
        state = FaultState.healthy(20_000)
        struck = model.sample_onsets(state, rng, week_start_day=14)
        days = state.onset_day[struck]
        assert np.all((days >= 14) & (days < 21))

    def test_hard_failures_start_at_full_severity(self, rng):
        model = FaultModel(rate_scale=10.0)
        state = FaultState.healthy(100_000)
        model.sample_onsets(state, rng, 0)
        arrays = disposition_arrays()
        active = np.flatnonzero(state.active)
        hard = arrays.hard_failure[state.disposition[active]]
        assert np.all(state.severity[active[hard]] == 1.0)
        assert np.all(state.severity[active[~hard]] < 0.5)

    def test_faulty_lines_not_restruck(self, rng):
        model = FaultModel(rate_scale=10.0)
        state = FaultState.healthy(1000)
        state.disposition[:] = 0  # everyone already faulty
        state.severity[:] = 0.5
        struck = model.sample_onsets(state, rng, 0)
        assert struck.size == 0

    def test_rate_scale_cap(self):
        with pytest.raises(ValueError):
            FaultModel(rate_scale=1e9)

    def test_negative_rate_scale_rejected(self):
        with pytest.raises(ValueError):
            FaultModel(rate_scale=-1.0)


class TestAdvance:
    def test_severity_grows_and_clips(self, rng):
        model = FaultModel()
        state = FaultState.healthy(3)
        code = DISPOSITION_INDEX["hn-inside-wire-corroded"]  # growth 0.12
        state.disposition[:] = code
        state.severity[:] = 0.95
        state.onset_day[:] = 0
        model.advance_week(state, rng)
        surviving = state.active
        assert np.all(state.severity[surviving] == 1.0)

    def test_self_clearing_faults_clear_eventually(self, rng):
        model = FaultModel()
        code = DISPOSITION_INDEX["hn-cable-loose"]  # self_clear 0.12
        state = FaultState.healthy(5000)
        state.disposition[:] = code
        state.severity[:] = 0.5
        state.onset_day[:] = 0
        cleared = model.advance_week(state, rng)
        assert cleared.size == pytest.approx(5000 * 0.12, rel=0.25)

    def test_non_clearing_faults_persist(self, rng):
        model = FaultModel()
        code = DISPOSITION_INDEX["hn-modem-defective"]  # self_clear 0
        state = FaultState.healthy(1000)
        state.disposition[:] = code
        state.severity[:] = 1.0
        state.onset_day[:] = 0
        cleared = model.advance_week(state, rng)
        assert cleared.size == 0


class TestEffects:
    def test_healthy_lines_have_neutral_effects(self):
        model = FaultModel()
        effects = model.effects(FaultState.healthy(4))
        assert np.all(effects.noise_db == 0)
        assert np.all(effects.rate_factor == 1.0)
        assert np.all(effects.cells_factor == 1.0)
        assert not effects.bridge_tap.any()

    def test_effects_scale_with_severity(self):
        model = FaultModel()
        code = DISPOSITION_INDEX["f1-wire-conductor-wet"]
        state = FaultState.healthy(2)
        state.disposition[:] = code
        state.severity[:] = [0.2, 1.0]
        state.onset_day[:] = 0
        effects = model.effects(state)
        assert effects.noise_db[1] == pytest.approx(5 * effects.noise_db[0])
        assert effects.cv_rate[1] > effects.cv_rate[0]

    def test_flags_gate_on_severity(self):
        model = FaultModel()
        code = DISPOSITION_INDEX["f1-bridge-tap-removed"]
        state = FaultState.healthy(2)
        state.disposition[:] = code
        state.severity[:] = [0.1, 0.9]
        state.onset_day[:] = 0
        effects = model.effects(state)
        assert not effects.bridge_tap[0]
        assert effects.bridge_tap[1]
