"""Model registry: publish, activate/rollback, checksum enforcement."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.serve import ModelBundle, ModelRegistry, RegistryError


@pytest.fixture()
def registry(tmp_path):
    return ModelRegistry(tmp_path / "registry")


class TestVersioning:
    def test_publish_assigns_sequential_versions(self, registry, small_predictor):
        bundle = ModelBundle(predictor=small_predictor, meta={"note": "a"})
        assert registry.publish(bundle) == "v0001"
        assert registry.publish(bundle) == "v0002"
        assert registry.versions == ["v0001", "v0002"]
        assert registry.active is None  # publish alone does not activate

    def test_activate_and_rollback(self, registry, small_predictor):
        bundle = ModelBundle(predictor=small_predictor)
        registry.publish(bundle, activate=True)
        registry.publish(bundle, activate=True)
        assert registry.active == "v0002"
        assert registry.rollback() == "v0001"
        assert registry.active == "v0001"

    def test_rollback_needs_a_previous_activation(self, registry, small_predictor):
        with pytest.raises(RuntimeError):
            registry.rollback()
        registry.publish(ModelBundle(predictor=small_predictor), activate=True)
        with pytest.raises(RuntimeError):
            registry.rollback()

    def test_rollback_error_is_specific_and_explanatory(
        self, registry, small_predictor
    ):
        # RegistryError subclasses RuntimeError, so old callers still
        # catch it; the message says what to do about it.
        with pytest.raises(RegistryError, match="predecessor"):
            registry.rollback()
        registry.publish(ModelBundle(predictor=small_predictor), activate=True)
        with pytest.raises(RegistryError, match="1 version"):
            registry.rollback()

    def test_activate_unknown_version(self, registry):
        with pytest.raises(KeyError):
            registry.activate("v0099")

    def test_meta_round_trips(self, registry, small_predictor):
        meta = {"trained_week": 17, "note": "weekly retrain"}
        version = registry.publish(
            ModelBundle(predictor=small_predictor, meta=meta)
        )
        assert registry.meta(version) == meta

    def test_manifest_survives_reopen(self, tmp_path, small_predictor):
        root = tmp_path / "registry"
        first = ModelRegistry(root)
        first.publish(ModelBundle(predictor=small_predictor), activate=True)
        first.publish(ModelBundle(predictor=small_predictor), activate=True)
        first.rollback()
        reopened = ModelRegistry(root)
        assert reopened.versions == ["v0001", "v0002"]
        assert reopened.active == "v0001"
        reopened.activate("v0002")
        assert reopened.rollback() == "v0001"


class TestEventTrail:
    def test_publish_activate_rollback_are_recorded(
        self, registry, small_predictor
    ):
        bundle = ModelBundle(predictor=small_predictor)
        registry.publish(bundle, activate=True)
        registry.publish(bundle, activate=True)
        registry.rollback()
        actions = [e["action"] for e in registry.events]
        assert actions == [
            "publish", "activate", "publish", "activate", "rollback",
        ]
        rollback = registry.events[-1]
        assert rollback["version"] == "v0001"
        assert rollback["rolled_back"] == "v0002"
        assert all("at" in e for e in registry.events)

    def test_events_survive_reopen(self, tmp_path, small_predictor):
        root = tmp_path / "registry"
        first = ModelRegistry(root)
        first.publish(ModelBundle(predictor=small_predictor), activate=True)
        first.publish(ModelBundle(predictor=small_predictor), activate=True)
        first.rollback()
        reopened = ModelRegistry(root)
        assert reopened.events == first.events

    def test_events_list_is_a_defensive_copy(self, registry, small_predictor):
        registry.publish(ModelBundle(predictor=small_predictor))
        registry.events.append({"action": "forged"})
        assert [e["action"] for e in registry.events] == ["publish"]

    def test_manifest_without_events_key_still_loads(
        self, tmp_path, small_predictor
    ):
        # Manifests written before the audit trail existed lack "events".
        root = tmp_path / "registry"
        ModelRegistry(root).publish(
            ModelBundle(predictor=small_predictor), activate=True
        )
        manifest_path = root / "MANIFEST.json"
        manifest = json.loads(manifest_path.read_text())
        del manifest["events"]
        manifest_path.write_text(json.dumps(manifest))
        reopened = ModelRegistry(root)
        assert reopened.events == []
        assert reopened.active == "v0001"
        reopened.publish(ModelBundle(predictor=small_predictor))
        assert [e["action"] for e in reopened.events] == ["publish"]


class TestLoading:
    def test_loaded_predictor_scores_identically(
        self, registry, small_predictor, small_result
    ):
        registry.publish(ModelBundle(predictor=small_predictor), activate=True)
        loaded = registry.load()
        week = int(small_result.measurements.filled_weeks[-1])
        expected = small_predictor.score_week(small_result, week)
        actual = loaded.predictor.score_week(small_result, week)
        assert np.array_equal(actual, expected)

    def test_load_without_activation_requires_version(
        self, registry, small_predictor
    ):
        version = registry.publish(ModelBundle(predictor=small_predictor))
        with pytest.raises(RuntimeError):
            registry.load()
        assert registry.load(version) is not None

    def test_tampered_bundle_is_rejected(self, registry, small_predictor):
        version = registry.publish(
            ModelBundle(predictor=small_predictor), activate=True
        )
        bundle_path = registry.root / version / "bundle.json"
        payload = json.loads(bundle_path.read_text())
        payload["meta"]["note"] = "edited after publish"
        bundle_path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="checksum"):
            registry.load(version)

    def test_bundle_dict_checksum_is_self_validating(self, small_predictor):
        payload = ModelBundle(predictor=small_predictor).to_dict()
        ModelBundle.from_dict(json.loads(json.dumps(payload)))  # clean load
        payload["meta"]["x"] = 1
        with pytest.raises(ValueError, match="checksum"):
            ModelBundle.from_dict(payload)
