"""Paper-quote regression tests.

Each test pins one *quoted claim* from the paper to the behaviour of this
reproduction at small scale.  These are deliberately coarse -- their job
is to fail loudly if a refactor breaks the qualitative story the paper
tells, not to re-verify magnitudes (the benchmarks do that at scale).
"""

import numpy as np
import pytest

from repro.measurement.records import FEATURE_NAMES, feature_index
from repro.netsim.components import DISPOSITIONS, Location, dispositions_at
from repro.netsim.physics import LinePhysics
from repro.netsim.profiles import profile_by_name
from repro.tickets.ticketing import DAY_OF_WEEK_WEIGHTS


class TestSection2Claims:
    def test_each_dslam_serves_several_tens(self, small_result):
        """'Each DSLAM typically terminates ... several tens of
        customers.'"""
        sizes = [len(d.line_ids) for d in small_result.population.topology.dslams]
        assert 10 <= np.median(sizes) <= 100

    def test_customer_edge_problems_dominate(self, small_result):
        """'customer edge problems form the overwhelming majority of all
        problems occurring in DSL networks' -- edge tickets outnumber
        network-level (outage-class) tickets."""
        from repro.tickets.ticketing import TicketCategory
        edge = sum(1 for t in small_result.ticket_log.tickets
                   if t.category is TicketCategory.CUSTOMER_EDGE)
        other = sum(1 for t in small_result.ticket_log.tickets
                    if t.category is TicketCategory.OTHER)
        assert edge > 3 * other

    def test_four_major_locations(self):
        """'These dispositions can be partitioned into four major
        categories ... HN, DS, F1, F2.'"""
        assert len(Location) == 4
        for location in Location:
            assert dispositions_at(location)


class TestSection3Claims:
    def test_25_line_features(self):
        """'We summarize these 25 line features in Table 2.'"""
        assert len(FEATURE_NAMES) == 25

    def test_basic_profile_rates(self):
        """'DSL customers with the basic profile are expected to have a
        downloading rate of 768kbps and an uploading rate of 384kbps.'"""
        basic = profile_by_name("basic")
        assert basic.down_kbps == 768.0
        assert basic.up_kbps == 384.0

    def test_weekly_tests_on_saturday(self, small_result):
        """'Every Saturday, each DSLAM server initiates connections with
        the DSL modem on each DSL line.'"""
        days = small_result.measurements.saturday_day
        assert all(int(d) % 7 == 5 for d in days)  # day 0 is a Monday

    def test_tickets_peak_monday(self):
        """'the number of tickets peaks on Monday and hits the bottom over
        the weekend.'"""
        assert int(np.argmax(DAY_OF_WEEK_WEIGHTS)) == 0
        assert DAY_OF_WEEK_WEIGHTS[5:].sum() < DAY_OF_WEEK_WEIGHTS[:2].sum()

    def test_92_percent_relative_capacity_is_escalation_regime(self):
        """'the relative capacity is greater than 92%' as an escalation
        rule -- a line in that regime has almost no margin left."""
        physics = LinePhysics()
        margin = physics.noise_margin_db(
            np.array([1000.0]), np.array([0.93 * 1000.0])
        )
        healthy_margin = physics.noise_margin_db(
            np.array([4000.0]), np.array([768.0])
        )
        assert margin[0] < 0.2 * healthy_margin[0]

    def test_15000_ft_rule(self):
        """'an estimated loop length greater than 15,000 ft often indicates
        that the current customer profile is not supported.'"""
        physics = LinePhysics()
        attainable = physics.clean_attainable_kbps(np.array([15.5]))
        basic = profile_by_name("basic")
        # At 15.5 kft the attainable rate barely covers the basic profile.
        assert attainable[0] < 2.0 * basic.down_kbps


class TestSection4Claims:
    def test_max_52_records_per_year(self):
        """'only a maximum of 52 records are available for each DSL line
        over a whole year period.'"""
        from repro.measurement.records import MeasurementStore
        store = MeasurementStore(n_lines=1, n_weeks=52)
        assert store.n_weeks == 52

    def test_mislabeled_negatives_exist(self, small_result):
        """'training data corresponding to these problems are mislabeled as
        negative examples' -- some active faults never become tickets
        within the horizon."""
        day = 7 * 10 + 5
        active = small_result.fault_active_on(day)
        delays = small_result.ticket_log.first_edge_ticket_after(
            small_result.n_lines, day, 28
        )
        silent_faulty = active & (delays < 0)
        assert silent_faulty.sum() > 0


class TestSection6Claims:
    def test_52_dispositions_cover_the_bulk(self, small_result):
        """'we select 52 dispositions ... which account for 81.9% of all
        the customer edge problems' -- our catalog IS the 52, and they
        recur."""
        assert len(DISPOSITIONS) == 52
        counts = small_result.dispatcher.disposition_counts()
        assert (counts > 0).sum() > 40

    def test_multi_fault_closest_to_host_convention(self):
        """'If a problem is caused by multiple devices, the code is always
        associated with the device closest to the end host' -- our
        single-dominant-fault model makes this vacuous by construction,
        but the catalog ordering exists to honour it."""
        assert [d.location for d in DISPOSITIONS[:16]] == [Location.HN] * 16


class TestMeasurementSemantics:
    def test_modem_off_means_missing_record(self, small_result):
        """'When a modem is off during the test, we have a missing record
        for that customer.'"""
        matrix = small_result.measurements.week_matrix(8)
        off = matrix[:, feature_index("state")] == 0.0
        assert off.any()
        non_state = [i for i in range(25) if i != feature_index("state")]
        assert np.all(np.isnan(matrix[np.flatnonzero(off)[:, None], non_state]))
