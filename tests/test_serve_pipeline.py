"""End-to-end: the operational loop persists, the service reproduces it.

This is the serving subsystem's acceptance test: run the closed
NEVERMIND loop with a store and a registry attached, then prove a
scoring engine reading *only* the persisted artefacts emits the exact
dispatch list the live pipeline submitted to ATDS.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    NevermindPipeline,
    PipelineConfig,
    PopulationConfig,
    PredictorConfig,
    SimulationConfig,
)
from repro.serve import (
    LineWeekStore,
    ModelRegistry,
    ScoringEngine,
    StoredWorld,
)


@pytest.fixture(scope="module")
def served_pipeline(tmp_path_factory):
    """A small closed loop run to completion with persistence attached."""
    root = tmp_path_factory.mktemp("pipeline")
    store = LineWeekStore.create(
        root / "store", n_lines=1500,
        population=PopulationConfig(n_lines=1500, seed=3),
    )
    registry = ModelRegistry(root / "registry")
    pipeline = NevermindPipeline(
        SimulationConfig(
            n_weeks=16,
            population=PopulationConfig(n_lines=1500, seed=3),
            fault_rate_scale=4.0,
            seed=42,
        ),
        PipelineConfig(
            warmup_weeks=12,
            predictor=PredictorConfig(capacity=30, train_rounds=25),
        ),
        store=store,
        registry=registry,
    )
    pipeline.run()
    return pipeline, store, registry


class TestPersistence:
    def test_every_week_is_stored(self, served_pipeline):
        _, store, _ = served_pipeline
        assert store.weeks == list(range(16))
        store.verify()

    def test_training_published_and_activated_a_version(self, served_pipeline):
        pipeline, _, registry = served_pipeline
        assert registry.versions == ["v0001"]
        assert registry.active == "v0001"
        meta = registry.meta("v0001")
        assert meta["trained_week"] == 11  # warmup_weeks=12 -> week index 11
        assert meta["n_lines"] == 1500

    def test_reports_cover_the_live_weeks(self, served_pipeline):
        pipeline, _, _ = served_pipeline
        assert [r.week for r in pipeline.reports] == list(range(11, 16))


class TestEndToEndParity:
    def test_served_dispatch_equals_the_submitted_list(self, served_pipeline):
        """The acceptance criterion: store + registry -> identical top-N."""
        pipeline, store, registry = served_pipeline
        engine = ScoringEngine(
            registry.load(),
            StoredWorld(store),
            shard_size=173,
            model_version=registry.active,
        )
        final = pipeline.reports[-1]
        dispatch = engine.dispatch(final.week)
        assert np.array_equal(dispatch.line_ids, final.submitted)

    def test_served_scores_match_live_ranking_for_all_live_weeks(
        self, served_pipeline
    ):
        pipeline, store, registry = served_pipeline
        engine = ScoringEngine(registry.load(), StoredWorld(store))
        result = pipeline.simulator.result()
        for report in pipeline.reports:
            served = engine.score_week(report.week).scores
            live = pipeline.predictor.score_week(result, report.week)
            assert np.array_equal(served, live)

    def test_pipeline_without_persistence_is_unchanged(self, served_pipeline):
        """Attaching store+registry must not perturb the simulation."""
        pipeline, _, _ = served_pipeline
        plain = NevermindPipeline(
            SimulationConfig(
                n_weeks=16,
                population=PopulationConfig(n_lines=1500, seed=3),
                fault_rate_scale=4.0,
                seed=42,
            ),
            PipelineConfig(
                warmup_weeks=12,
                predictor=PredictorConfig(capacity=30, train_rounds=25),
            ),
        )
        plain.run()
        assert len(plain.reports) == len(pipeline.reports)
        for a, b in zip(plain.reports, pipeline.reports):
            assert np.array_equal(a.submitted, b.submitted)
            assert a.real_problems == b.real_problems
