"""Unit tests for the measurement layer (repro.measurement)."""

import numpy as np
import pytest

from repro.measurement.linetest import LineTestConfig, LineTester
from repro.measurement.records import (
    CATEGORICAL_FEATURES,
    FEATURE_NAMES,
    N_FEATURES,
    MeasurementStore,
    feature_index,
)
from repro.netsim.faults import FaultModel, FaultState
from repro.netsim.population import PopulationConfig, build_population


class TestSchema:
    def test_25_features(self):
        """Table 2 defines 25 line features."""
        assert N_FEATURES == 25

    def test_paper_feature_names_present(self):
        for name in ("state", "dnbr", "upbr", "dnnmr", "upnmr", "dnaten",
                     "dnrelcap", "dncvcnt1", "dnescnt1", "dnfeccnt1",
                     "hicar", "bt", "crosstalk", "looplength",
                     "dnmaxattainfbr", "dncells"):
            assert name in FEATURE_NAMES

    def test_feature_index_roundtrip(self):
        for i, name in enumerate(FEATURE_NAMES):
            assert feature_index(name) == i

    def test_unknown_feature_raises(self):
        with pytest.raises(KeyError):
            feature_index("fiber_attenuation")

    def test_categoricals_are_flags(self):
        assert CATEGORICAL_FEATURES == {"state", "bt", "crosstalk"}


class TestStore:
    def test_add_and_read_week(self, rng):
        store = MeasurementStore(n_lines=10, n_weeks=3)
        features = rng.normal(size=(10, N_FEATURES))
        store.add_week(1, day=12, features=features)
        assert np.allclose(store.week_matrix(1), features, atol=1e-5)
        assert store.saturday_day[1] == 12
        assert list(store.filled_weeks) == [1]

    def test_unfilled_week_raises(self):
        store = MeasurementStore(n_lines=2, n_weeks=2)
        with pytest.raises(ValueError):
            store.week_matrix(0)

    def test_double_fill_rejected(self, rng):
        store = MeasurementStore(n_lines=2, n_weeks=2)
        features = rng.normal(size=(2, N_FEATURES))
        store.add_week(0, 5, features)
        with pytest.raises(ValueError):
            store.add_week(0, 5, features)

    def test_shape_checked(self):
        store = MeasurementStore(n_lines=2, n_weeks=2)
        with pytest.raises(ValueError):
            store.add_week(0, 5, np.zeros((3, N_FEATURES)))

    def test_week_range_checked(self):
        store = MeasurementStore(n_lines=2, n_weeks=2)
        with pytest.raises(IndexError):
            store.add_week(5, 5, np.zeros((2, N_FEATURES)))

    def test_line_series_view(self, rng):
        store = MeasurementStore(n_lines=4, n_weeks=2)
        store.add_week(0, 5, rng.normal(size=(4, N_FEATURES)))
        series = store.line_series(2)
        assert series.shape == (2, N_FEATURES)

    def test_modem_off_fraction(self):
        store = MeasurementStore(n_lines=2, n_weeks=4)
        state_col = feature_index("state")
        for week in range(4):
            features = np.zeros((2, N_FEATURES))
            features[0, state_col] = 1.0  # line 0 always on
            features[1, state_col] = 1.0 if week < 1 else 0.0  # line 1 mostly off
            store.add_week(week, week * 7 + 5, features)
        off = store.modem_off_fraction()
        assert off[0] == 0.0
        assert off[1] == pytest.approx(0.75)

    def test_modem_off_fraction_bounded_history(self):
        store = MeasurementStore(n_lines=1, n_weeks=3)
        state_col = feature_index("state")
        for week, on in enumerate([0.0, 1.0, 1.0]):
            features = np.zeros((1, N_FEATURES))
            features[0, state_col] = on
            store.add_week(week, week * 7 + 5, features)
        assert store.modem_off_fraction(upto_week=1)[0] == 1.0
        assert store.modem_off_fraction()[0] == pytest.approx(1 / 3)

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            MeasurementStore(n_lines=0, n_weeks=1)


class TestLineTester:
    @pytest.fixture(scope="class")
    def world(self):
        population = build_population(PopulationConfig(n_lines=3000, seed=21))
        return population, population.conditions()

    def run_test(self, world, rng, fault_state=None, dslam_down=None,
                 usage=None):
        population, conditions = world
        model = FaultModel()
        state = fault_state or FaultState.healthy(population.n_lines)
        effects = model.effects(state)
        n = population.n_lines
        tester = LineTester()
        return tester.run(
            conditions,
            effects,
            usage if usage is not None else np.full(n, 0.6),
            dslam_down if dslam_down is not None else np.zeros(n, dtype=bool),
            rng,
        )

    def test_output_shape(self, world, rng):
        out = self.run_test(world, rng)
        assert out.shape == (3000, N_FEATURES)

    def test_off_modems_have_nan_features(self, world, rng):
        out = self.run_test(world, rng)
        state = out[:, feature_index("state")]
        off = state == 0.0
        assert off.any()
        assert np.all(np.isnan(out[off][:, feature_index("dnbr")]))
        on = state == 1.0
        assert not np.isnan(out[on][:, feature_index("dnbr")]).any()

    def test_dslam_down_blocks_all_records(self, world, rng):
        population, _ = world
        down = np.ones(population.n_lines, dtype=bool)
        out = self.run_test(world, rng, dslam_down=down)
        assert np.all(out[:, feature_index("state")] == 0.0)

    def test_rates_respect_profiles(self, world, rng):
        population, conditions = world
        out = self.run_test(world, rng)
        on = out[:, feature_index("state")] == 1.0
        dnbr = out[on, feature_index("dnbr")]
        # No line syncs meaningfully above its provisioned rate.
        provisioned = conditions.profile_down_kbps[on]
        assert np.all(dnbr <= provisioned * 1.05)

    def test_long_loops_attenuate_more(self, world, rng):
        population, _ = world
        out = self.run_test(world, rng)
        on = out[:, feature_index("state")] == 1.0
        atten = out[on, feature_index("dnaten")]
        loops = population.loop_kft[on]
        assert np.corrcoef(loops, atten)[0, 1] > 0.95

    def test_loop_estimate_tracks_truth(self, world, rng):
        population, _ = world
        out = self.run_test(world, rng)
        on = out[:, feature_index("state")] == 1.0
        est_kft = out[on, feature_index("looplength")] / 1000.0
        assert np.corrcoef(population.loop_kft[on], est_kft)[0, 1] > 0.9

    def test_faulty_lines_look_worse(self, world, rng):
        population, _ = world
        n = population.n_lines
        state = FaultState.healthy(n)
        from repro.netsim.components import DISPOSITION_INDEX
        code = DISPOSITION_INDEX["f1-wire-conductor-wet"]
        faulty = np.arange(0, n, 2)
        state.disposition[faulty] = code
        state.severity[faulty] = 1.0
        state.onset_day[faulty] = 0
        out = self.run_test(world, rng, fault_state=state)
        on = out[:, feature_index("state")] == 1.0
        cv = out[:, feature_index("dncvcnt1")]
        is_faulty = np.zeros(n, dtype=bool)
        is_faulty[faulty] = True
        assert np.nanmean(cv[on & is_faulty]) > 3 * np.nanmean(cv[on & ~is_faulty])

    def test_heavy_users_push_more_cells(self, world, rng):
        population, _ = world
        n = population.n_lines
        usage = np.where(np.arange(n) % 2 == 0, 0.9, 0.1)
        out = self.run_test(world, rng, usage=usage)
        on = out[:, feature_index("state")] == 1.0
        cells = out[:, feature_index("dncells")]
        heavy = (np.arange(n) % 2 == 0) & on
        light = (np.arange(n) % 2 == 1) & on
        assert np.nanmean(cells[heavy]) > 3 * np.nanmean(cells[light])

    def test_counter_features_are_nonnegative_integers(self, world, rng):
        out = self.run_test(world, rng)
        on = out[:, feature_index("state")] == 1.0
        for name in ("dncvcnt1", "dncvcnt2", "dncvcnt3", "dnescnt1",
                     "dnescnt2", "dnfeccnt1"):
            col = out[on, feature_index(name)]
            assert np.all(col >= 0)
            assert np.allclose(col, np.round(col))

    def test_cv_thresholds_nested(self, world, rng):
        out = self.run_test(world, rng)
        on = out[:, feature_index("state")] == 1.0
        cv1 = out[on, feature_index("dncvcnt1")]
        cv2 = out[on, feature_index("dncvcnt2")]
        cv3 = out[on, feature_index("dncvcnt3")]
        assert np.all(cv2 <= cv1)
        assert np.all(cv3 <= cv2)

    def test_shape_validation(self, world, rng):
        population, conditions = world
        tester = LineTester()
        effects = FaultModel().effects(FaultState.healthy(population.n_lines))
        with pytest.raises(ValueError):
            tester.run(conditions, effects, np.ones(3),
                       np.zeros(population.n_lines, dtype=bool), rng)
