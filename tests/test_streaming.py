"""Streaming generation and out-of-core store: chunk-size invariance.

The paper-scale cycle only works if chunking is *free* -- any chunk size
must produce bit-identical features, ticket vectors, stored shards and
scores.  These tests pin that invariant at every stage: generator,
store, reader, encoder and scorer.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.features.encoding import EncoderConfig, LineFeatureEncoder
from repro.netsim import (
    STREAM_BLOCK_LINES,
    SimulationConfig,
    StreamingSimulator,
    stream_weeks,
)
from repro.netsim.groupfaults import GroupFaultConfig
from repro.netsim.population import PopulationConfig
from repro.serve.store import LineWeekStore, StoredWorld

N_LINES = 3 * STREAM_BLOCK_LINES - 1000  # deliberately not block-aligned
N_WEEKS = 4


def _config() -> SimulationConfig:
    """A small plant with group faults that straddle block boundaries."""
    return SimulationConfig(
        n_weeks=N_WEEKS,
        population=PopulationConfig(n_lines=N_LINES, seed=13),
        fault_rate_scale=3.0,
        group_faults=GroupFaultConfig(
            n_dslam_events=2,
            n_binder_events=3,
            event_window=(0.0, 0.6),
            seed=29,
        ),
        seed=77,
    )


def _collect(chunk_lines):
    """Assemble full per-week matrices from a streaming run."""
    feats = [[] for _ in range(N_WEEKS)]
    lasts = [[] for _ in range(N_WEEKS)]
    blocks = []
    for blk in stream_weeks(_config(), chunk_lines=chunk_lines):
        feats[blk.week].append(blk.features)
        lasts[blk.week].append(blk.last_ticket_day)
        blocks.append(blk)
    return (
        [np.concatenate(parts, axis=0) for parts in feats],
        [np.concatenate(parts) for parts in lasts],
        blocks,
    )


@pytest.fixture(scope="module")
def monolithic():
    return _collect(chunk_lines=None)


class TestGeneratorInvariance:
    def test_monolithic_shapes(self, monolithic):
        feats, lasts, blocks = monolithic
        assert len(blocks) == N_WEEKS  # one chunk -> one block per week
        for week, (f, l) in enumerate(zip(feats, lasts)):
            assert f.shape == (N_LINES, 25)
            assert f.dtype == np.float32
            assert l.shape == (N_LINES,)
            assert l.dtype == np.int64
            assert blocks[week].day == week * 7 + 5

    @pytest.mark.parametrize(
        "chunk_lines",
        [STREAM_BLOCK_LINES, 10_000, 2 * STREAM_BLOCK_LINES],
    )
    def test_chunked_bit_identical_to_monolithic(self, monolithic, chunk_lines):
        feats, lasts, _ = monolithic
        c_feats, c_lasts, c_blocks = _collect(chunk_lines)
        for week in range(N_WEEKS):
            assert np.array_equal(c_feats[week], feats[week], equal_nan=True)
            assert np.array_equal(c_lasts[week], lasts[week])
        # a sub-block request rounds UP to one whole block
        if chunk_lines == 10_000:
            starts = sorted({b.start for b in c_blocks})
            assert starts[:2] == [0, 2 * STREAM_BLOCK_LINES]

    def test_group_event_straddles_a_block_boundary(self):
        sim = StreamingSimulator(_config())
        assert sim.group_faults is not None
        straddles = False
        for event in sim.group_faults.schedule.events:
            blocks = set(event.line_ids // STREAM_BLOCK_LINES)
            straddles = straddles or len(blocks) > 1
            day = event.start_day + 20  # well past every onset lag
            full = sim.group_faults.line_strength(day)
            for start in range(0, N_LINES, STREAM_BLOCK_LINES):
                stop = min(start + STREAM_BLOCK_LINES, N_LINES)
                part = sim.group_faults.line_strength_range(day, start, stop)
                assert np.array_equal(part, full[start:stop])
        assert straddles, "fixture config must produce a straddling event"

    def test_tickets_and_faults_actually_fire(self, monolithic):
        _, lasts, _ = monolithic
        assert (lasts[-1] >= 0).sum() > 0  # some lines have ticket history

    def test_chunk_lines_must_be_positive(self):
        with pytest.raises(ValueError, match="positive"):
            list(StreamingSimulator(_config()).run_streaming(chunk_lines=0))


class TestChunkedStore:
    @pytest.fixture(scope="class")
    def stores(self, tmp_path_factory, monolithic):
        feats, lasts, blocks = monolithic
        root = tmp_path_factory.mktemp("streams")
        pop = _config().population
        whole = LineWeekStore.create(root / "whole", N_LINES, pop)
        for week in range(N_WEEKS):
            whole.append_week(week, week * 7 + 5, feats[week], lasts[week])
        chunked = LineWeekStore.create(root / "chunked", N_LINES, pop)
        appended = chunked.append_week_chunks(
            stream_weeks(_config(), chunk_lines=STREAM_BLOCK_LINES)
        )
        assert appended == list(range(N_WEEKS))
        return whole, chunked

    def test_shard_files_byte_identical(self, stores):
        whole, chunked = stores
        for week in range(N_WEEKS):
            for prefix in ("week", "tickets"):
                name = f"{prefix}_{week:05d}.npy"
                assert (whole.root / name).read_bytes() == (
                    chunked.root / name
                ).read_bytes()

    def test_checksums_verify_after_reopen(self, stores):
        _, chunked = stores
        reopened = LineWeekStore.open(chunked.root)
        reopened.verify()
        assert reopened.weeks == list(range(N_WEEKS))

    def test_read_rows_matches_full_matrix(self, stores, monolithic):
        feats, lasts, _ = monolithic
        _, chunked = stores
        for start, stop in [(0, 100), (8000, 9000), (N_LINES - 7, N_LINES)]:
            got = chunked.read_rows(1, start, stop)
            assert np.array_equal(got, feats[1][start:stop], equal_nan=True)
            ticks = chunked.read_ticket_rows(1, start, stop)
            assert np.array_equal(ticks, lasts[1][start:stop])

    def test_read_rows_rejects_bad_ranges(self, stores):
        _, chunked = stores
        assert chunked.read_rows(0, 10, 10).shape == (0, 25)
        with pytest.raises(ValueError):
            chunked.read_rows(0, 0, N_LINES + 1)
        with pytest.raises(ValueError):
            chunked.read_rows(0, 50, 10)

    def test_partial_stream_publishes_nothing(self, tmp_path, monolithic):
        feats, lasts, blocks = monolithic

        def bad_stream():
            yield blocks[0]
            raise RuntimeError("disk on fire")

        store = LineWeekStore.create(
            tmp_path / "partial", N_LINES, _config().population
        )
        with pytest.raises(RuntimeError, match="disk on fire"):
            store.append_week_chunks(bad_stream())
        reopened = LineWeekStore.open(store.root)
        assert reopened.weeks == []


class TestOutOfCoreWorld:
    @pytest.fixture(scope="class")
    def store(self, tmp_path_factory, monolithic):
        feats, lasts, _ = monolithic
        root = tmp_path_factory.mktemp("ooc") / "store"
        store = LineWeekStore.create(root, N_LINES, _config().population)
        for week in range(N_WEEKS):
            store.append_week(week, week * 7 + 5, feats[week], lasts[week])
        return store

    def test_encode_week_chunked_matches_dense(self, store):
        encoder = LineFeatureEncoder(EncoderConfig())
        dense = StoredWorld(store, out_of_core=False)
        ooc = StoredWorld(store, out_of_core=True)
        ref = dense.encode_week(N_WEEKS - 1, encoder)
        for chunk_lines in (5_000, 9_999, None):
            got = ooc.encode_week(N_WEEKS - 1, encoder, chunk_lines=chunk_lines)
            assert np.array_equal(got.matrix, ref.matrix, equal_nan=True)
            assert got.names == ref.names
            assert got.groups == ref.groups

    def test_iter_encode_week_streams_the_same_matrix(self, store):
        encoder = LineFeatureEncoder(EncoderConfig())
        dense = StoredWorld(store, out_of_core=False)
        ooc = StoredWorld(store, out_of_core=True)
        ref = dense.encode_week(N_WEEKS - 1, encoder)
        rows = 0
        for shard, piece in ooc.iter_encode_week(
            N_WEEKS - 1, encoder, chunk_lines=6_000
        ):
            assert np.array_equal(
                piece.matrix, ref.matrix[shard], equal_nan=True
            )
            assert piece.names == ref.names
            rows += piece.matrix.shape[0]
        assert rows == N_LINES

    def test_shard_measurements_match_dense_view(self, store):
        dense = StoredWorld(store, out_of_core=False)
        ooc = StoredWorld(store, out_of_core=True)
        shard = slice(4_000, 12_345)
        d = dense.shard_measurements(shard)
        o = ooc.shard_measurements(shard)
        assert np.array_equal(d.data, o.data, equal_nan=True)
        assert np.array_equal(
            d.saturday_day[:N_WEEKS], o.saturday_day[:N_WEEKS]
        )

    def test_auto_heuristic(self, store):
        # 3 blocks x 4 weeks is far below the dense budget
        assert not StoredWorld(store).out_of_core_active()
        assert StoredWorld(store, out_of_core=True).out_of_core_active()

    def test_ooc_rejects_degenerate_shards(self, store):
        ooc = StoredWorld(store, out_of_core=True)
        with pytest.raises(ValueError):
            ooc.shard_measurements(slice(100, 100))
