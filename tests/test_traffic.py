"""Unit tests for the traffic model (repro.traffic)."""

import numpy as np
import pytest

from repro.traffic.usage import TrafficConfig, TrafficLog, TrafficModel


def fill_week(model, week, rng, present=None, usage=None, throughput=None,
              down=None):
    n = len(model.line_ids)
    model.record_week(
        week,
        usage_intensity=usage if usage is not None else np.full(n, 0.5),
        present=present if present is not None else np.ones(n, dtype=bool),
        throughput_factor=throughput if throughput is not None else np.ones(n),
        dslam_down_days=down if down is not None else np.zeros((n, 7), dtype=bool),
        rng=rng,
    )


class TestTrafficModel:
    def test_basic_recording(self, rng):
        model = TrafficModel(line_ids=np.array([3, 1, 7]), n_days=14)
        fill_week(model, 0, rng)
        fill_week(model, 1, rng)
        log = model.finish()
        assert log.daily_bytes.shape == (3, 14)
        assert log.daily_bytes.sum() > 0

    def test_line_ids_sorted(self):
        model = TrafficModel(line_ids=np.array([9, 2, 5]), n_days=7)
        assert list(model.line_ids) == [2, 5, 9]

    def test_absent_customers_emit_nothing(self, rng):
        model = TrafficModel(line_ids=np.arange(4), n_days=7)
        present = np.array([True, False, True, False])
        fill_week(model, 0, rng, present=present)
        log = model.finish()
        assert log.bytes_in_window(1, 0, 6) == 0.0
        assert log.bytes_in_window(3, 0, 6) == 0.0
        assert log.bytes_in_window(0, 0, 6) > 0.0

    def test_outage_days_zeroed(self, rng):
        model = TrafficModel(line_ids=np.arange(2), n_days=7)
        down = np.zeros((2, 7), dtype=bool)
        down[0, :] = True
        fill_week(model, 0, rng, down=down)
        log = model.finish()
        assert log.bytes_in_window(0, 0, 6) == 0.0

    def test_usage_scales_volume(self, rng):
        model = TrafficModel(line_ids=np.arange(2000), n_days=7)
        usage = np.where(np.arange(2000) < 1000, 0.9, 0.1)
        fill_week(model, 0, rng, usage=usage)
        log = model.finish()
        heavy = log.daily_bytes[:1000].mean()
        light = log.daily_bytes[1000:].mean()
        assert heavy > 4 * light

    def test_week_out_of_range(self, rng):
        model = TrafficModel(line_ids=np.arange(2), n_days=7)
        with pytest.raises(IndexError):
            fill_week(model, 1, rng)

    def test_shape_validation(self, rng):
        model = TrafficModel(line_ids=np.arange(3), n_days=7)
        with pytest.raises(ValueError):
            model.record_week(0, np.ones(2), np.ones(3, dtype=bool),
                              np.ones(3), np.zeros((3, 7), dtype=bool), rng)


class TestTrafficLog:
    def test_is_sampled(self):
        log = TrafficLog(line_ids=np.array([2, 5]), daily_bytes=np.zeros((2, 7)))
        assert log.is_sampled(5)
        assert not log.is_sampled(4)

    def test_unsampled_raises(self):
        log = TrafficLog(line_ids=np.array([2]), daily_bytes=np.zeros((1, 7)))
        with pytest.raises(KeyError):
            log.bytes_in_window(3, 0, 6)

    def test_window_clipping(self):
        log = TrafficLog(
            line_ids=np.array([0]), daily_bytes=np.ones((1, 7), dtype=np.float32)
        )
        assert log.bytes_in_window(0, -5, 100) == pytest.approx(7.0)
        assert log.bytes_in_window(0, 6, 3) == 0.0

    def test_not_on_site_definition(self):
        """The paper: no traffic from one week before to one week after."""
        daily = np.zeros((1, 28), dtype=np.float32)
        daily[0, 20] = 100.0
        log = TrafficLog(line_ids=np.array([0]), daily_bytes=daily)
        assert not log.not_on_site(0, day=14, window_days=7)  # traffic day 20
        assert log.not_on_site(0, day=5, window_days=7)       # silent window
