"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.command == "simulate"
        assert args.lines == 5000
        assert args.weeks == 22

    def test_predict_flags(self):
        args = build_parser().parse_args(
            ["predict", "--lines", "800", "--capacity", "30", "--rounds", "10"]
        )
        assert args.capacity == 30
        assert args.rounds == 10

    def test_locate_flags(self):
        args = build_parser().parse_args(["locate", "--rounds", "15"])
        assert args.rounds == 15

    def test_snapshot_flags(self):
        args = build_parser().parse_args(
            ["snapshot", "--store", "s", "--registry", "r", "--capacity", "40"]
        )
        assert args.command == "snapshot"
        assert args.store == "s"
        assert args.registry == "r"
        assert args.capacity == 40

    def test_serve_flags(self):
        args = build_parser().parse_args(
            ["serve", "--port", "9999", "--shard-size", "512", "--smoke"]
        )
        assert args.command == "serve"
        assert args.port == 9999
        assert args.shard_size == 512
        assert args.smoke

    def test_obs_flags(self):
        args = build_parser().parse_args(
            ["obs", "dashboard", "--history", "h.jsonl"]
        )
        assert args.command == "obs"
        assert args.action == "dashboard"
        assert args.history == "h.jsonl"

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["deploy"])


class TestCommands:
    def test_simulate_runs(self, capsys):
        code = main(["simulate", "--lines", "600", "--weeks", "6",
                     "--fault-scale", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "customer-edge tickets" in out
        assert "DSLAM outages" in out

    def test_predict_runs(self, capsys):
        code = main([
            "predict", "--lines", "1200", "--weeks", "18",
            "--fault-scale", "5", "--capacity", "25", "--rounds", "20",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "accuracy" in out
        assert "lift" in out

    def test_locate_runs(self, capsys):
        code = main([
            "locate", "--lines", "1500", "--weeks", "16",
            "--fault-scale", "6", "--rounds", "15",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "median tests" in out

    def test_export_runs(self, capsys, tmp_path):
        out_dir = tmp_path / "extracts"
        code = main([
            "export", "--lines", "300", "--weeks", "4",
            "--out", str(out_dir),
        ])
        assert code == 0
        assert (out_dir / "measurements.csv").exists()
        assert (out_dir / "tickets.csv").exists()

    def test_scenario_flag(self, capsys):
        code = main([
            "simulate", "--lines", "400", "--weeks", "4",
            "--scenario", "urban",
        ])
        assert code == 0

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError):
            main(["simulate", "--lines", "100", "--weeks", "2",
                  "--scenario", "lunar"])

    def test_snapshot_writes_store_and_registry(self, capsys, tmp_path):
        store = tmp_path / "store"
        registry = tmp_path / "registry"
        code = main([
            "snapshot", "--lines", "800", "--weeks", "14",
            "--fault-scale", "4", "--rounds", "15",
            "--store", str(store), "--registry", str(registry),
        ])
        assert code == 0
        assert (store / "manifest.json").exists()
        assert (registry / "MANIFEST.json").exists()
        out = capsys.readouterr().out
        assert "stored 14 weeks" in out
        assert "published v0001" in out

    def test_serve_smoke_runs(self, capsys):
        code = main([
            "serve", "--smoke", "--lines", "800", "--weeks", "14",
            "--fault-scale", "4",
        ])
        assert code == 0
        assert "smoke ok" in capsys.readouterr().out

    def test_obs_dashboard_reads_a_seeded_history(self, capsys, tmp_path):
        from repro.obs.history import HistoryStore

        history = tmp_path / "flight.jsonl"
        store = HistoryStore(history)
        for week in range(12):
            store.append(
                "pipeline_week",
                {"precision": 0.45, "wall_seconds.score": 0.01},
                week=week,
            )
        code = main(["obs", "dashboard", "--history", str(history)])
        assert code == 0
        out = capsys.readouterr().out
        assert "flight recorder dashboard" in out
        assert "pipeline_week=12" in out
        assert "no degradation detected" in out

    def test_obs_dashboard_alerts_on_degraded_history(self, capsys, tmp_path):
        from repro.obs.history import HistoryStore

        history = tmp_path / "flight.jsonl"
        store = HistoryStore(history)
        walls = [0.010] * 12 + [0.035, 0.036, 0.034]
        for week, wall in enumerate(walls):
            store.append(
                "pipeline_week", {"wall_seconds.score": wall}, week=week
            )
        code = main(["obs", "dashboard", "--history", str(history)])
        assert code == 1  # degradation -> non-zero exit for CI
        assert "DEGRADATION" in capsys.readouterr().out

    def test_obs_dashboard_missing_history_fails_cleanly(
        self, capsys, tmp_path
    ):
        code = main([
            "obs", "dashboard", "--history", str(tmp_path / "none.jsonl"),
        ])
        assert code == 1
        assert "no flight-recorder records" in capsys.readouterr().out
