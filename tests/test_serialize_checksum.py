"""Serialization hardening: checksums, compile-on-load, locator round-trip."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.ml.boostexter import BStump, BStumpConfig
from repro.ml.serialize import (
    bstump_from_dict,
    bstump_to_dict,
    combined_locator_from_dict,
    combined_locator_to_dict,
    payload_checksum,
)


@pytest.fixture(scope="module")
def fitted(rng_module):
    X = rng_module.normal(size=(400, 6))
    y = (X[:, 0] + 0.5 * X[:, 2] ** 2 > 0.3).astype(int) * 2 - 1
    return BStump(BStumpConfig(n_rounds=25)).fit(X, y), X


@pytest.fixture(scope="module")
def rng_module():
    return np.random.default_rng(7)


class TestChecksum:
    def test_payload_carries_a_checksum(self, fitted):
        payload = bstump_to_dict(fitted[0])
        assert payload["checksum"] == payload_checksum(payload)

    def test_checksum_ignores_key_order_and_itself(self, fitted):
        payload = bstump_to_dict(fitted[0])
        reordered = dict(reversed(list(payload.items())))
        assert payload_checksum(reordered) == payload["checksum"]

    def test_tampered_payload_is_rejected(self, fitted):
        payload = json.loads(json.dumps(bstump_to_dict(fitted[0])))
        payload["learners"][0]["threshold"] += 1e-9
        with pytest.raises(ValueError, match="checksum"):
            bstump_from_dict(payload)

    def test_pre_checksum_payloads_still_load(self, fitted):
        payload = bstump_to_dict(fitted[0])
        del payload["checksum"]
        model = bstump_from_dict(payload)
        assert len(model.learners) == len(fitted[0].learners)


class TestCompileOnLoad:
    def test_round_trip_margins_are_bit_identical(self, fitted):
        model, X = fitted
        loaded = bstump_from_dict(
            json.loads(json.dumps(bstump_to_dict(model)))
        )
        assert np.array_equal(
            loaded.decision_function(X), model.decision_function(X)
        )
        assert np.array_equal(
            loaded.predict_proba(X), model.predict_proba(X)
        )

    def test_loaded_model_is_precompiled(self, fitted):
        loaded = bstump_from_dict(bstump_to_dict(fitted[0]))
        compiled = loaded.compiled()
        assert compiled is loaded.compiled()  # cached, not rebuilt
        X = fitted[1]
        assert np.array_equal(
            compiled.decision_function(X), loaded.decision_function(X)
        )


class TestLocatorRoundTrip:
    def test_predict_proba_is_bit_identical(self, small_locator, rng_module):
        payload = json.loads(json.dumps(combined_locator_to_dict(small_locator)))
        loaded = combined_locator_from_dict(payload)
        n_features = next(iter(small_locator.flat.models_.values())).n_features_
        sample = rng_module.normal(size=(50, n_features))
        assert np.array_equal(
            loaded.predict_proba(sample), small_locator.predict_proba(sample)
        )

    def test_locator_tamper_detection(self, small_locator):
        payload = json.loads(json.dumps(combined_locator_to_dict(small_locator)))
        payload["prior"][0] += 1e-12
        with pytest.raises(ValueError, match="checksum"):
            combined_locator_from_dict(payload)

    def test_unfitted_locator_is_rejected(self):
        from repro.core.locator import CombinedLocator

        with pytest.raises(ValueError, match="unfitted"):
            combined_locator_to_dict(CombinedLocator())
