"""Tests for the Section-5 analyses (repro.core.analysis)."""

import numpy as np
import pytest

from repro.core.analysis import (
    PredictionOutcome,
    accuracy_curve,
    evaluate_predictions,
    explain_incorrect_by_absence,
    explain_incorrect_by_outage,
    ground_truth_problem_fraction,
    missed_ticket_fraction,
    urgency_cdf,
)
from repro.traffic.usage import TrafficLog


def make_outcome(hits, delays=None, week=10, day=75):
    hits = np.asarray(hits, dtype=bool)
    if delays is None:
        delays = np.where(hits, 3, -1)
    return PredictionOutcome(
        week=week,
        day=day,
        ranked_lines=np.arange(len(hits)),
        hits=hits,
        delays=np.asarray(delays),
    )


class TestPredictionOutcome:
    def test_accuracy_at(self):
        outcome = make_outcome([1, 1, 0, 0, 1])
        assert outcome.accuracy_at(2) == 1.0
        assert outcome.accuracy_at(4) == 0.5

    def test_incorrect_and_correct_partition(self):
        outcome = make_outcome([1, 0, 1, 0])
        assert list(outcome.correct_top(4)) == [0, 2]
        assert list(outcome.incorrect_top(4)) == [1, 3]

    def test_evaluate_against_simulation(self, small_result):
        week = 12
        ranked = np.arange(small_result.n_lines)
        outcome = evaluate_predictions(small_result, ranked, week, horizon_weeks=3)
        assert outcome.day == int(small_result.measurements.saturday_day[week])
        delays = small_result.ticket_log.first_edge_ticket_after(
            small_result.n_lines, outcome.day, 21
        )
        assert np.array_equal(outcome.hits, delays >= 0)


class TestAccuracyCurve:
    def test_curve_averages_outcomes(self):
        a = make_outcome([1, 1, 0, 0])
        b = make_outcome([0, 1, 1, 0])
        curve = accuracy_curve([a, b], grid=np.array([2, 4]))
        assert curve[0] == pytest.approx((1.0 + 0.5) / 2)
        assert curve[1] == pytest.approx(0.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            accuracy_curve([], np.array([1]))


class TestUrgency:
    def test_cdf_monotone_and_bounded(self):
        outcome = make_outcome([1, 1, 1, 0], delays=[1, 5, 20, -1])
        cdf = urgency_cdf([outcome], n=4, max_days=28)
        assert np.all(np.diff(cdf) >= 0)
        assert cdf[0] == 0.0
        assert cdf[28] == 1.0
        assert cdf[5] == pytest.approx(2 / 3)

    def test_cdf_ignores_unticketed(self):
        outcome = make_outcome([0, 0], delays=[-1, -1])
        cdf = urgency_cdf([outcome], n=2)
        assert np.all(cdf == 0)

    def test_missed_fraction(self):
        # tickets at days 1, 5, 20: fixing within 2 days misses day-1 only.
        outcome = make_outcome([1, 1, 1], delays=[1, 5, 20])
        assert missed_ticket_fraction([outcome], n=3, fix_days=2) == pytest.approx(1 / 3)
        assert missed_ticket_fraction([outcome], n=3, fix_days=30) == 1.0

    def test_missed_fraction_empty(self):
        outcome = make_outcome([0], delays=[-1])
        assert missed_ticket_fraction([outcome], n=1, fix_days=2) == 0.0


class TestOutageExplanation:
    def test_structure_and_monotonicity(self, small_result):
        week = 10
        ranked = np.arange(small_result.n_lines)
        outcome = evaluate_predictions(small_result, ranked, week, horizon_weeks=3)
        rows = explain_incorrect_by_outage(small_result, outcome, n=200,
                                           horizons_weeks=(1, 2, 3, 4))
        assert [r.horizon_weeks for r in rows] == [1, 2, 3, 4]
        fracs = [r.incorrect_fraction for r in rows]
        # Larger windows can only include more outages (Table 5, row 1).
        assert all(b >= a - 1e-12 for a, b in zip(fracs, fracs[1:]))
        for row in rows:
            assert 0.0 <= row.incorrect_fraction <= 1.0
            assert 0.0 <= row.p_value <= 1.0


class TestAbsence:
    def test_counts_only_sampled_lines(self):
        daily = np.zeros((2, 40), dtype=np.float32)
        daily[0, :] = 5.0  # line 0 always active
        log = TrafficLog(line_ids=np.array([0, 1]), daily_bytes=daily)
        observed, absent = explain_incorrect_by_absence(
            log, incorrect_lines=np.array([0, 1, 99]), day=20
        )
        assert observed == 2
        assert absent == 1  # line 1 silent, line 99 not sampled


class TestGroundTruth:
    def test_fraction_of_active_faults(self, small_result):
        day = 80
        active = small_result.fault_active_on(day)
        lines = np.flatnonzero(active)[:10]
        assert ground_truth_problem_fraction(small_result, lines, day) == 1.0
        idle = np.flatnonzero(~active)[:10]
        assert ground_truth_problem_fraction(small_result, idle, day) == 0.0

    def test_empty_lines(self, small_result):
        assert ground_truth_problem_fraction(small_result, np.array([]), 10) == 0.0
