"""Tests for deployment drift monitoring (repro.core.drift)."""

from dataclasses import dataclass

import numpy as np
import pytest

import repro.core.drift as drift_mod
from repro.core.analysis import PredictionOutcome
from repro.core.drift import (
    DriftReport,
    WeeklyPerformance,
    drift_report,
    live_drift_signals,
    weekly_performance,
)
from repro.core.predictor import PredictorConfig, TicketPredictor


@pytest.fixture(scope="module")
def deployed(request):
    result = request.getfixturevalue("small_result")
    split = request.getfixturevalue("small_split")
    predictor = TicketPredictor(
        PredictorConfig(capacity=60, horizon_weeks=3, train_rounds=40,
                        selection_rounds=3, include_derived=False)
    ).fit(result, split)
    return result, split, predictor


class TestWeeklyPerformance:
    def test_measures_each_week(self, deployed):
        result, split, predictor = deployed
        weeks = list(split.test_weeks)
        perf = weekly_performance(result, predictor, weeks)
        assert [w.week for w in perf] == weeks
        for w in perf:
            assert 0.0 <= w.accuracy <= 1.0
            assert 0.0 < w.base_rate < 1.0
            assert w.calibration_error >= 0.0
            assert w.lift == pytest.approx(w.accuracy / w.base_rate)

    def test_calibration_is_reasonable(self, deployed):
        result, split, predictor = deployed
        perf = weekly_performance(result, predictor, list(split.test_weeks))
        # Platt calibration keeps mean probability near the base rate.
        assert all(w.calibration_error < 0.1 for w in perf)

    def test_empty_weeks_rejected(self, deployed):
        result, _, predictor = deployed
        with pytest.raises(ValueError):
            weekly_performance(result, predictor, [])


class TestDriftReport:
    def test_report_structure(self, deployed):
        result, split, predictor = deployed
        report = drift_report(result, predictor, list(split.test_weeks))
        assert isinstance(report, DriftReport)
        assert len(report.weekly) == len(split.test_weeks)
        assert 0.0 <= report.relative_drop <= 1.0
        text = report.render()
        assert "retrain" in text

    def test_threshold_validation(self, deployed):
        result, split, predictor = deployed
        with pytest.raises(ValueError):
            drift_report(result, predictor, list(split.test_weeks),
                         relative_drop_threshold=0.0)

    def test_recommendation_logic(self):
        # Synthetic weekly series exercising the decision rule directly.
        def make(accs):
            weekly = tuple(
                WeeklyPerformance(week=i, accuracy=a, base_rate=0.05,
                                  calibration_error=0.0)
                for i, a in enumerate(accs)
            )
            first, last = accs[0], accs[-1]
            drop = max(0.0, (first - last) / first)
            return DriftReport(
                weekly=weekly, accuracy_slope=0.0, relative_drop=drop,
                retrain_recommended=drop >= 0.25, threshold=0.25,
            )

        assert make([0.4, 0.38, 0.37]).retrain_recommended is False
        assert make([0.4, 0.32, 0.25]).retrain_recommended is True

    def test_single_week_has_flat_trend(self, deployed):
        result, split, predictor = deployed
        week = list(split.test_weeks)[:1]
        report = drift_report(result, predictor, week)
        assert len(report.weekly) == 1
        assert report.accuracy_slope == 0.0
        assert report.relative_drop == 0.0
        assert report.retrain_recommended is False

    def test_all_zero_label_weeks_do_not_crash(self, deployed, monkeypatch):
        # A quiet plant (no tickets at all in the horizon) must yield a
        # clean zero-accuracy report, not a divide-by-zero.
        result, split, predictor = deployed

        def all_miss(result, ranked, week, horizon):
            n = len(ranked)
            return PredictionOutcome(
                week=week,
                day=0,
                ranked_lines=ranked,
                hits=np.zeros(n, dtype=bool),
                delays=np.full(n, -1),
            )

        monkeypatch.setattr(drift_mod, "evaluate_predictions", all_miss)
        report = drift_report(result, predictor, list(split.test_weeks))
        assert all(w.accuracy == 0.0 for w in report.weekly)
        assert all(w.base_rate == 0.0 for w in report.weekly)
        assert all(w.lift == 0.0 for w in report.weekly)
        assert report.relative_drop == 0.0
        assert report.retrain_recommended is False


@dataclass
class _FakeReport:
    precision: float
    mean_top_p: float


class TestLiveDriftSignals:
    def _reports(self, precisions, mean_top_p=0.5):
        return [_FakeReport(p, mean_top_p) for p in precisions]

    def test_empty_run_returns_none(self):
        assert live_drift_signals([]) is None

    def test_short_run_returns_none(self):
        # baseline_window + recent_window reports are required.
        reports = self._reports([0.5, 0.5, 0.5, 0.5])
        assert live_drift_signals(reports, 3, 2) is None
        assert live_drift_signals(reports, 2, 2) is not None

    def test_window_validation(self):
        reports = self._reports([0.5] * 6)
        with pytest.raises(ValueError):
            live_drift_signals(reports, baseline_window=0)
        with pytest.raises(ValueError):
            live_drift_signals(reports, recent_window=0)

    def test_signals_are_computed(self):
        reports = self._reports(
            [0.6, 0.6, 0.6, 0.4, 0.4], mean_top_p=0.5
        )
        signals = live_drift_signals(reports, 3, 2)
        assert signals.n_reports == 5
        assert signals.baseline_precision == pytest.approx(0.6)
        assert signals.recent_precision == pytest.approx(0.4)
        assert signals.relative_drop == pytest.approx(1 / 3)
        assert signals.calibration_drift == pytest.approx(0.1)

    def test_improvement_clips_drop_at_zero(self):
        reports = self._reports([0.3, 0.3, 0.3, 0.5, 0.5])
        signals = live_drift_signals(reports, 3, 2)
        assert signals.relative_drop == 0.0

    def test_all_zero_precision_baseline_is_safe(self):
        # Every live week missed: baseline 0 must not divide by zero.
        reports = self._reports([0.0] * 5, mean_top_p=0.2)
        signals = live_drift_signals(reports, 3, 2)
        assert signals.relative_drop == 0.0
        assert signals.calibration_drift == pytest.approx(0.2)
