"""Tests for deployment drift monitoring (repro.core.drift)."""

import numpy as np
import pytest

from repro.core.drift import DriftReport, WeeklyPerformance, drift_report, weekly_performance
from repro.core.predictor import PredictorConfig, TicketPredictor


@pytest.fixture(scope="module")
def deployed(request):
    result = request.getfixturevalue("small_result")
    split = request.getfixturevalue("small_split")
    predictor = TicketPredictor(
        PredictorConfig(capacity=60, horizon_weeks=3, train_rounds=40,
                        selection_rounds=3, include_derived=False)
    ).fit(result, split)
    return result, split, predictor


class TestWeeklyPerformance:
    def test_measures_each_week(self, deployed):
        result, split, predictor = deployed
        weeks = list(split.test_weeks)
        perf = weekly_performance(result, predictor, weeks)
        assert [w.week for w in perf] == weeks
        for w in perf:
            assert 0.0 <= w.accuracy <= 1.0
            assert 0.0 < w.base_rate < 1.0
            assert w.calibration_error >= 0.0
            assert w.lift == pytest.approx(w.accuracy / w.base_rate)

    def test_calibration_is_reasonable(self, deployed):
        result, split, predictor = deployed
        perf = weekly_performance(result, predictor, list(split.test_weeks))
        # Platt calibration keeps mean probability near the base rate.
        assert all(w.calibration_error < 0.1 for w in perf)

    def test_empty_weeks_rejected(self, deployed):
        result, _, predictor = deployed
        with pytest.raises(ValueError):
            weekly_performance(result, predictor, [])


class TestDriftReport:
    def test_report_structure(self, deployed):
        result, split, predictor = deployed
        report = drift_report(result, predictor, list(split.test_weeks))
        assert isinstance(report, DriftReport)
        assert len(report.weekly) == len(split.test_weeks)
        assert 0.0 <= report.relative_drop <= 1.0
        text = report.render()
        assert "retrain" in text

    def test_threshold_validation(self, deployed):
        result, split, predictor = deployed
        with pytest.raises(ValueError):
            drift_report(result, predictor, list(split.test_weeks),
                         relative_drop_threshold=0.0)

    def test_recommendation_logic(self):
        # Synthetic weekly series exercising the decision rule directly.
        def make(accs):
            weekly = tuple(
                WeeklyPerformance(week=i, accuracy=a, base_rate=0.05,
                                  calibration_error=0.0)
                for i, a in enumerate(accs)
            )
            first, last = accs[0], accs[-1]
            drop = max(0.0, (first - last) / first)
            return DriftReport(
                weekly=weekly, accuracy_slope=0.0, relative_drop=drop,
                retrain_recommended=drop >= 0.25, threshold=0.25,
            )

        assert make([0.4, 0.38, 0.37]).retrain_recommended is False
        assert make([0.4, 0.32, 0.25]).retrain_recommended is True
