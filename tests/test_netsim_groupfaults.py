"""Correlated group-fault scheduling, strengths, and the outage bridge."""

from __future__ import annotations

import numpy as np
import pytest

from repro.netsim.groupfaults import (
    LEVEL_BINDER,
    LEVEL_DSLAM,
    GroupFaultConfig,
    GroupFaultModel,
    GroupFaultSchedule,
)
from repro.netsim.population import PopulationConfig, build_population
from repro.tickets.outage import OutageConfig, OutageSchedule


@pytest.fixture(scope="module")
def plant():
    return build_population(PopulationConfig(n_lines=1200, seed=3))


@pytest.fixture(scope="module")
def schedule(plant):
    config = GroupFaultConfig(n_dslam_events=1, n_binder_events=2, seed=11)
    return GroupFaultSchedule.generate(plant.topology, 20, config)


class TestSchedule:
    def test_event_counts(self, schedule):
        counts = schedule.event_counts()
        assert counts[LEVEL_DSLAM] == 1
        assert counts[LEVEL_BINDER] == 2

    def test_deterministic_under_fixed_seed(self, plant, schedule):
        config = GroupFaultConfig(n_dslam_events=1, n_binder_events=2, seed=11)
        again = GroupFaultSchedule.generate(plant.topology, 20, config)
        assert len(again.events) == len(schedule.events)
        for a, b in zip(again.events, schedule.events):
            assert (a.level, a.group_id, a.start_day, a.end_day) == \
                (b.level, b.group_id, b.start_day, b.end_day)
            np.testing.assert_array_equal(a.line_ids, b.line_ids)
            np.testing.assert_array_equal(a.onset_lags, b.onset_lags)

    def test_seed_changes_schedule(self, plant, schedule):
        config = GroupFaultConfig(n_dslam_events=1, n_binder_events=2, seed=12)
        other = GroupFaultSchedule.generate(plant.topology, 20, config)
        keys = {(e.level, e.group_id, e.start_day) for e in schedule.events}
        other_keys = {(e.level, e.group_id, e.start_day) for e in other.events}
        assert keys != other_keys

    def test_events_start_in_window(self, schedule):
        lo, hi = schedule.config.event_window
        for event in schedule.events:
            assert int(20 * lo) * 7 <= event.start_day < int(20 * hi) * 7 + 7
            weeks = (event.end_day - event.start_day + 1) / 7
            assert schedule.config.min_duration_weeks <= weeks \
                <= schedule.config.max_duration_weeks

    def test_binder_events_avoid_chosen_dslams(self, plant, schedule):
        topology = plant.topology
        dslam_ids = {e.group_id for e in schedule.dslam_events()}
        for event in schedule.events:
            if event.level == LEVEL_BINDER:
                assert topology.dslam_of_binder(event.group_id) not in dslam_ids

    def test_lags_bounded(self, schedule):
        for event in schedule.events:
            assert event.onset_lags.size == event.line_ids.size
            assert event.onset_lags.min() >= 0
            assert event.onset_lags.max() <= schedule.config.onset_lag_max_days

    def test_binder_events_need_binder_topology(self, plant):
        from dataclasses import replace

        topology = plant.topology
        bare = type(topology)(
            brases=topology.brases, dslams=topology.dslams,
            line_dslam=topology.line_dslam, line_bras=topology.line_bras,
        )
        config = GroupFaultConfig(n_binder_events=1)
        with pytest.raises(ValueError):
            GroupFaultSchedule.generate(bare, 20, config)
        # DSLAM-only events still work without binders.
        GroupFaultSchedule.generate(
            bare, 20, replace(config, n_binder_events=0)
        )


class TestModel:
    def test_strength_ramps_from_lagged_onset(self, plant, schedule):
        model = GroupFaultModel(schedule, plant.topology.n_lines)
        event = schedule.events[0]
        ramp = schedule.config.ramp_days
        before = model.line_strength(event.start_day - 1)
        assert not np.any(before[event.line_ids] > 0)
        # A zero-lag member is at 1/ramp on the start day and saturates.
        zero_lag = event.line_ids[event.onset_lags == 0]
        if zero_lag.size:
            day0 = model.line_strength(event.start_day)
            assert day0[zero_lag[0]] == pytest.approx(1.0 / ramp)
        full_day = event.start_day + schedule.config.onset_lag_max_days + ramp
        if full_day <= event.end_day:
            full = model.line_strength(full_day)
            assert np.all(full[event.line_ids] == 1.0)

    def test_strength_zero_for_nonmembers_and_after_end(self, plant, schedule):
        model = GroupFaultModel(schedule, plant.topology.n_lines)
        event = schedule.events[0]
        mid = (event.start_day + event.end_day) // 2
        members = set()
        for active in schedule.active_on(mid):
            members.update(int(i) for i in active.line_ids)
        strength = model.line_strength(mid)
        outside = np.setdiff1d(
            np.arange(model.n_lines), np.array(sorted(members), dtype=int)
        )
        assert not np.any(strength[outside] > 0)
        horizon = max(e.end_day for e in schedule.events)
        assert not np.any(model.line_strength(horizon + 1) > 0)

    def test_clear_event_stops_degradation(self, plant, schedule):
        config = GroupFaultConfig(n_dslam_events=1, n_binder_events=2, seed=11)
        fresh = GroupFaultSchedule.generate(plant.topology, 20, config)
        model = GroupFaultModel(fresh, plant.topology.n_lines)
        event = fresh.events[0]
        mid = (event.start_day + event.end_day) // 2
        assert event.active_on(mid)
        found = model.find_active(event.level, event.group_id, mid)
        assert found is event
        model.clear_event(event, mid)
        assert event.cleared_day == mid
        assert event.clear_cause == "group-dispatch"
        assert not event.active_on(mid)          # cleared from that day on
        assert event.active_on(mid - 1)
        assert model.find_active(event.level, event.group_id, mid) is None


class TestOutageBridge:
    def test_dslam_events_become_outages(self, plant, schedule):
        bridged = OutageSchedule.from_group_faults(
            schedule.dslam_events(), plant.topology.n_dslams, 20,
            outage_days=2,
        )
        dslam_events = schedule.dslam_events()
        assert len(bridged.events) == len(dslam_events)
        for outage, source in zip(bridged.events, dslam_events):
            assert outage.dslam_id == source.group_id
            assert outage.start_day == source.end_day + 1
            assert outage.end_day == outage.start_day + 1

    def test_bridge_disables_independent_precursor(self, plant, schedule):
        bridged = OutageSchedule.from_group_faults(
            schedule.dslam_events(), plant.topology.n_dslams, 20,
            config=OutageConfig(precursor_weeks=2),
        )
        # The group degradation IS the precursor; a second, independent
        # precursor ramp would double-count the signal.
        assert bridged.config.precursor_weeks == 0
        assert not np.any(bridged.precursor_strength(10) > 0)

    def test_bridge_skips_binder_events_and_late_events(self, plant, schedule):
        binder_only = [e for e in schedule.events if e.level == LEVEL_BINDER]
        bridged = OutageSchedule.from_group_faults(
            binder_only, plant.topology.n_dslams, 20
        )
        assert bridged.events == []
        # An event ending on the last day cannot escalate inside the run.
        late = schedule.dslam_events()[0]
        late.end_day = 20 * 7 - 1
        bridged = OutageSchedule.from_group_faults(
            [late], plant.topology.n_dslams, 20
        )
        assert bridged.events == []


class TestOutageGenerateDeterminism:
    def test_generate_deterministic_under_fixed_seed(self):
        config = OutageConfig(weekly_rate=0.05, seed=7)
        first = OutageSchedule.generate(40, 20, config)
        second = OutageSchedule.generate(40, 20, config)
        assert len(first.events) > 0
        assert [
            (e.dslam_id, e.start_day, e.end_day) for e in first.events
        ] == [
            (e.dslam_id, e.start_day, e.end_day) for e in second.events
        ]

    def test_generate_seed_changes_events(self):
        base = OutageSchedule.generate(40, 20, OutageConfig(weekly_rate=0.05, seed=7))
        other = OutageSchedule.generate(40, 20, OutageConfig(weekly_rate=0.05, seed=8))
        assert [
            (e.dslam_id, e.start_day) for e in base.events
        ] != [
            (e.dslam_id, e.start_day) for e in other.events
        ]
