"""The locator on the shared-binning fabric (PR 6).

Covers the row-subset support in :class:`BinnedDataset`, the stacked
multi-head compiled scorer, hist-vs-exact locator parity (identical
ranked lists on NaN-heavy, categorical, and class-starved training
sets), the hoisted CV fold assignment, locator serialization with
per-head backends, the vectorised ``ranks_of_truth``, and byte-identical
serve ``/locate`` responses.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import locator as locator_mod
from repro.core.locator import (
    CombinedLocator,
    FlatLocator,
    LocatorConfig,
    _fold_assignment,
    ranks_of_truth,
)
from repro.data.joins import LocatorDataset
from repro.features.encoding import FeatureSet
from repro.ml.binning import BinnedDataset
from repro.ml.boostexter import BStump, BStumpConfig
from repro.ml.ensemble_scoring import compile_multihead, compile_stumps
from repro.ml.serialize import (
    _CHECKSUM_FIELD,
    combined_locator_from_dict,
    combined_locator_to_dict,
    payload_checksum,
)
from repro.ml.stumps import Stump
from repro.netsim.components import disposition_arrays

N_CODES = 52


# ----- synthetic locator datasets -----------------------------------------


def _make_dataset(
    seed: int,
    n: int = 360,
    n_features: int = 10,
    nan_frac: float = 0.0,
    categorical_slots: tuple[int, ...] = (),
    starve_code: int | None = None,
) -> LocatorDataset:
    """A small quantised LocatorDataset with feature-driven labels.

    Features take few distinct values (integer grid), so every fold
    subset sees the full value set and the hist and uncapped-exact
    candidate grids coincide -- the stump-for-stump parity regime.
    """
    rng = np.random.default_rng(seed)
    latent = rng.normal(size=(n, n_features))
    X = np.clip(np.round(latent * 1.5), -3, 3)
    cat = np.zeros(n_features, dtype=bool)
    for j in categorical_slots:
        cat[j] = True
        X[:, j] = rng.integers(0, 5, size=n).astype(float)
    if nan_frac:
        X[rng.random((n, n_features)) < nan_frac] = np.nan

    # Labels lean on the first features so heads learn real structure.
    # The signal is deliberately weak: near-perfect separation makes
    # several features tie on the exact same split partition, and a Z
    # tie between *features* is broken by ~1e-16 summation noise that
    # legitimately differs between the two backends.
    drivers = rng.normal(size=(n_features, 12))
    logits = np.zeros((n, N_CODES))
    logits[:, :12] = np.nan_to_num(X) @ drivers
    prior = 1.0 / (np.arange(N_CODES) + 2.0)
    gumbel = -np.log(-np.log(rng.random((n, N_CODES))))
    disposition = np.argmax(np.log(prior) + 0.35 * logits + gumbel, axis=1)
    if starve_code is not None:
        # Exactly two examples of the starved code: below min_positive,
        # so both backends must fall back to the prior for it.
        disposition[disposition == starve_code] = 0
        disposition[:2] = starve_code
    location = disposition_arrays().location[disposition]
    features = FeatureSet(
        matrix=X,
        names=[f"f{j}" for j in range(n_features)],
        groups=["basic"] * n_features,
        categorical=cat,
    )
    return LocatorDataset(
        features=features,
        disposition=disposition.astype(np.int64),
        location=location.astype(np.int64),
        line_ids=np.arange(n, dtype=np.int64),
        ticket_days=np.zeros(n, dtype=np.int64),
    )


def _config(backend: str, n: int, **kw) -> LocatorConfig:
    # max_split_points = n + 1 keeps the exact search uncapped, so its
    # candidate grid matches the per-value hist bins exactly.
    defaults = dict(
        n_rounds=12, cv_folds=2, backend=backend, max_split_points=n + 1
    )
    defaults.update(kw)
    return LocatorConfig(**defaults)


# ----- reference (pre-PR-6) implementations -------------------------------


def _reference_decision_matrix(flat: FlatLocator, X: np.ndarray) -> np.ndarray:
    X = np.atleast_2d(np.asarray(X, dtype=float))
    out = np.tile(np.log(flat.prior_ / (1.0 - flat.prior_)), (X.shape[0], 1))
    for code, model in flat.models_.items():
        out[:, code] = model.decision_function(X)
    return out


def _reference_flat_proba(flat: FlatLocator, X: np.ndarray) -> np.ndarray:
    X = np.atleast_2d(np.asarray(X, dtype=float))
    out = np.tile(flat.prior_, (X.shape[0], 1))
    for code, model in flat.models_.items():
        out[:, code] = flat.calibrators_[code].transform(
            model.decision_function(X)
        )
    return out


def _reference_combined_proba(model: CombinedLocator, X: np.ndarray) -> np.ndarray:
    X = np.atleast_2d(np.asarray(X, dtype=float))
    f_disp = _reference_decision_matrix(model.flat, X)
    f_loc = np.zeros((X.shape[0], 4))
    for loc, head in model.location_models_.items():
        f_loc[:, loc] = head.decision_function(X)
    out = np.tile(model.flat.prior_, (X.shape[0], 1))
    for code, (g1, g2, g0) in model.blend_.items():
        z = g1 * f_disp[:, code] + g2 * f_loc[:, model._location_of[code]] + g0
        out[:, code] = 1.0 / (1.0 + np.exp(-np.clip(z, -500, 500)))
    return out


def _reference_ranks(prob_matrix: np.ndarray, truth: np.ndarray) -> np.ndarray:
    ranks = np.empty(len(truth), dtype=int)
    for i, label in enumerate(truth):
        order = np.argsort(-prob_matrix[i], kind="stable")
        ranks[i] = int(np.flatnonzero(order == label)[0]) + 1
    return ranks


# ----- BinnedDataset.rows -------------------------------------------------


class TestBinnedRows:
    def _binned(self, rng):
        X = rng.normal(size=(40, 5))
        X[rng.random((40, 5)) < 0.2] = np.nan
        return X, BinnedDataset.from_matrix(X)

    def test_mask_and_indices_agree(self, rng):
        _, binned = self._binned(rng)
        mask = rng.random(40) < 0.5
        by_mask = binned.rows(mask)
        by_idx = binned.rows(np.flatnonzero(mask))
        assert np.array_equal(by_mask.codes, by_idx.codes)
        assert by_mask.n_rows == int(mask.sum())

    def test_codes_are_column_subset(self, rng):
        _, binned = self._binned(rng)
        idx = np.array([3, 1, 7, 7])
        sub = binned.rows(idx)
        assert np.array_equal(sub.codes, binned.codes[:, idx])

    def test_parent_edges_shared(self, rng):
        X, binned = self._binned(rng)
        sub = binned.rows(np.arange(10))
        assert sub.edges[0] is binned.edges[0]
        assert sub.max_bins == binned.max_bins
        assert np.array_equal(sub.n_value_bins, binned.n_value_bins)

    def test_validation(self, rng):
        _, binned = self._binned(rng)
        with pytest.raises(ValueError):
            binned.rows(np.ones(7, dtype=bool))  # wrong mask length
        with pytest.raises(IndexError):
            binned.rows(np.array([0, 40]))
        with pytest.raises(ValueError):
            binned.rows(np.zeros((2, 2), dtype=np.int64))

    def test_shifted_codes_cached_and_correct(self, rng):
        _, binned = self._binned(rng)
        first = binned.shifted_codes()
        assert first is binned.shifted_codes()  # cached
        assert np.array_equal(first, binned.codes.astype(np.uint16) << 1)


# ----- the stacked multi-head scorer --------------------------------------


def _random_heads(rng, n_features=6, n_heads=5):
    heads = {}
    for col in range(0, n_heads, 2):  # leave gaps: not every column trained
        stumps = []
        for _ in range(rng.integers(3, 9)):
            feature = int(rng.integers(0, n_features))
            categorical = feature == 2  # feature 2 is categorical
            threshold = (
                float(rng.integers(0, 4))
                if categorical
                else float(rng.normal())
            )
            stumps.append(
                Stump(
                    feature=feature,
                    threshold=threshold,
                    categorical=categorical,
                    s_lo=float(rng.normal()),
                    s_hi=float(rng.normal()),
                    s_miss=float(rng.normal()),
                    z=0.5,
                )
            )
        heads[col] = compile_stumps(stumps, n_features)
    return heads


class TestMultiHeadEnsemble:
    def test_bit_identical_to_per_head_scoring(self, rng):
        n_features, n_heads = 6, 5
        heads = _random_heads(rng, n_features, n_heads)
        stacked = compile_multihead(heads, n_heads=n_heads, n_features=n_features)
        X = rng.normal(size=(200, n_features))
        X[:, 2] = rng.integers(0, 5, size=200).astype(float)
        X[rng.random((200, n_features)) < 0.25] = np.nan
        out = stacked.decision_matrix(X)
        assert out.shape == (200, n_heads)
        for col in range(n_heads):
            if col in heads:
                assert np.array_equal(out[:, col], heads[col].decision_function(X))
            else:
                assert np.all(out[:, col] == 0.0)

    def test_out_parameter_preserves_untrained_columns(self, rng):
        heads = _random_heads(rng)
        stacked = compile_multihead(heads, n_heads=5, n_features=6)
        X = rng.normal(size=(10, 6))
        out = np.full((10, 5), 7.5)
        result = stacked.decision_matrix(X, out=out)
        assert result is out
        for col in range(5):
            if col not in heads:
                assert np.all(out[:, col] == 7.5)

    def test_validation(self, rng):
        heads = _random_heads(rng)
        stacked = compile_multihead(heads, n_heads=5, n_features=6)
        with pytest.raises(ValueError):
            stacked.decision_matrix(np.zeros((3, 4)))
        with pytest.raises(ValueError):
            stacked.decision_matrix(np.zeros((3, 6)), out=np.zeros((3, 4)))
        with pytest.raises(ValueError):
            compile_multihead(heads, n_heads=2, n_features=6)


# ----- vectorised locator scoring parity ----------------------------------


@pytest.fixture(scope="module")
def fitted_pair():
    """One dataset fitted with both backends (shared across tests)."""
    train = _make_dataset(seed=11, n=360)
    n = train.n_examples
    exact = CombinedLocator(_config("exact", n)).fit(train)
    hist = CombinedLocator(_config("hist", n)).fit(train)
    test = _make_dataset(seed=12, n=120)
    return train, test, exact, hist


class TestVectorisedScoring:
    def test_flat_decision_matrix_bit_identical(self, fitted_pair):
        _, test, exact, _ = fitted_pair
        X = test.features.matrix
        assert np.array_equal(
            exact.flat.decision_matrix(X),
            _reference_decision_matrix(exact.flat, X),
        )

    def test_flat_proba_bit_identical(self, fitted_pair):
        _, test, exact, _ = fitted_pair
        X = test.features.matrix
        assert np.array_equal(
            exact.flat.predict_proba(X), _reference_flat_proba(exact.flat, X)
        )

    def test_combined_proba_bit_identical(self, fitted_pair):
        _, test, exact, hist = fitted_pair
        X = test.features.matrix
        for model in (exact, hist):
            assert np.array_equal(
                model.predict_proba(X), _reference_combined_proba(model, X)
            )


# ----- hist-vs-exact parity -----------------------------------------------


def _assert_locator_parity(train: LocatorDataset, test: LocatorDataset):
    n = train.n_examples
    exact = CombinedLocator(_config("exact", n)).fit(train)
    hist = CombinedLocator(_config("hist", n)).fit(train)

    assert set(exact.flat.models_) == set(hist.flat.models_)
    for code, e_model in exact.flat.models_.items():
        h_model = hist.flat.models_[code]
        assert len(e_model.learners) == len(h_model.learners)
        for e_learner, h_learner in zip(e_model.learners, h_model.learners):
            e_stump, h_stump = e_learner.stump, h_learner.stump
            assert e_stump.feature == h_stump.feature
            assert e_stump.categorical == h_stump.categorical
            assert e_stump.threshold == pytest.approx(h_stump.threshold)

    X = test.features.matrix
    # Margins within 1e-6 (per-bin weight sums group additions
    # differently from the sorted-domain prefix sums).
    e_margin = exact.flat.decision_matrix(X)
    h_margin = hist.flat.decision_matrix(X)
    assert float(np.abs(e_margin - h_margin).max()) < 1e-6

    # The hard guarantee: identical ranked disposition lists.
    e_probs = exact.predict_proba(X)
    h_probs = hist.predict_proba(X)
    assert np.array_equal(
        np.argsort(-e_probs, axis=1, kind="stable"),
        np.argsort(-h_probs, axis=1, kind="stable"),
    )
    return exact, hist


class TestHistExactParity:
    def test_plain(self):
        train = _make_dataset(seed=21, n=360)
        test = _make_dataset(seed=22, n=100)
        _assert_locator_parity(train, test)

    def test_nan_heavy(self):
        train = _make_dataset(seed=31, n=360, nan_frac=0.35)
        test = _make_dataset(seed=32, n=100, nan_frac=0.35)
        _assert_locator_parity(train, test)

    def test_categorical(self):
        train = _make_dataset(seed=41, n=360, categorical_slots=(2, 5))
        test = _make_dataset(seed=42, n=100, categorical_slots=(2, 5))
        _assert_locator_parity(train, test)

    def test_class_starved_falls_back_to_prior(self):
        starved = 37
        train = _make_dataset(seed=51, n=360, starve_code=starved)
        test = _make_dataset(seed=52, n=100)
        exact, hist = _assert_locator_parity(train, test)
        assert starved not in exact.flat.models_
        assert starved not in hist.flat.models_
        X = test.features.matrix
        # Untrained code: both backends emit the (identical) prior.
        assert np.array_equal(
            exact.predict_proba(X)[:, starved], hist.predict_proba(X)[:, starved]
        )


# ----- CV fold assignment hoisting ----------------------------------------


class TestFoldAssignment:
    def test_flat_stores_assignment(self):
        train = _make_dataset(seed=61, n=200)
        cfg = _config("hist", 200)
        flat = FlatLocator(cfg).fit(train)
        folds = max(2, cfg.cv_folds)
        expected = _fold_assignment(train.n_examples, folds, cfg.cv_seed)
        assert np.array_equal(flat.fold_assignment_, expected)

    def test_combined_fit_computes_assignment_once(self, monkeypatch):
        train = _make_dataset(seed=62, n=200)
        calls = []
        original = locator_mod._fold_assignment

        def counting(n, folds, seed):
            calls.append((n, folds, seed))
            return original(n, folds, seed)

        monkeypatch.setattr(locator_mod, "_fold_assignment", counting)
        CombinedLocator(_config("hist", 200)).fit(train)
        # The Eq.-2 blend must see fold-consistent disposition and
        # location margins: one shared assignment, not one per pass.
        assert len(calls) == 1

    def test_location_margins_reuse_flat_assignment(self):
        train = _make_dataset(seed=63, n=200)
        model = CombinedLocator(_config("hist", 200)).fit(train)
        cfg = model.config
        folds = max(2, cfg.cv_folds)
        assert np.array_equal(
            model.flat.fold_assignment_,
            _fold_assignment(train.n_examples, folds, cfg.cv_seed),
        )
        # Recomputing the location OOF margins after fit reuses the
        # stored assignment and the shared binning: deterministic.
        again = model._oof_location_margins(train)
        assert np.array_equal(again, model._oof_location_margins(train))

    def test_small_n_skips_folds(self):
        train = _make_dataset(seed=64, n=6)
        cfg = LocatorConfig(
            n_rounds=4, cv_folds=3, backend="hist", min_positive=1
        )
        flat = FlatLocator(cfg).fit(train)
        assert flat.fold_assignment_ is None


# ----- serialization -------------------------------------------------------


class TestLocatorSerialization:
    def test_round_trip_preserves_per_head_backend(self):
        train = _make_dataset(seed=71, n=240)
        model = CombinedLocator(_config("hist", 240)).fit(train)
        payload = json.loads(json.dumps(combined_locator_to_dict(model)))
        loaded = combined_locator_from_dict(payload)
        assert loaded.config.backend == "hist"
        assert loaded.config.n_bins == model.config.n_bins
        for head in loaded.flat.models_.values():
            assert head.config.backend == "hist"
        for head in loaded.location_models_.values():
            assert head.config.backend == "hist"
        X = _make_dataset(seed=72, n=60).features.matrix
        assert np.array_equal(loaded.predict_proba(X), model.predict_proba(X))

    def test_old_payload_loads_as_exact(self):
        train = _make_dataset(seed=73, n=240)
        model = CombinedLocator(_config("exact", 240)).fit(train)
        payload = combined_locator_to_dict(model)
        # Simulate a pre-PR-6 payload: no locator-level backend knobs.
        for key in ("backend", "n_bins", "max_split_points"):
            del payload["config"][key]
        payload.pop(_CHECKSUM_FIELD)
        payload[_CHECKSUM_FIELD] = payload_checksum(payload)
        loaded = combined_locator_from_dict(payload)
        assert loaded.config.backend == "exact"
        X = _make_dataset(seed=74, n=60).features.matrix
        assert np.array_equal(loaded.predict_proba(X), model.predict_proba(X))


# ----- vectorised ranks_of_truth ------------------------------------------


class TestRanksOfTruth:
    def test_matches_old_implementation_on_ties(self, rng):
        # Quantised probabilities force many exact ties per row.
        probs = np.round(rng.random((60, 13)) * 4) / 4
        truth = rng.integers(0, 13, size=60)
        assert np.array_equal(
            ranks_of_truth(probs, truth), _reference_ranks(probs, truth)
        )

    def test_all_tied_row(self):
        probs = np.full((3, 5), 0.2)
        truth = np.array([0, 2, 4])
        # Stable descending order keeps column order among ties.
        assert list(ranks_of_truth(probs, truth)) == [1, 3, 5]

    def test_random_matrices(self, rng):
        probs = rng.random((200, 52))
        truth = rng.integers(0, 52, size=200)
        assert np.array_equal(
            ranks_of_truth(probs, truth), _reference_ranks(probs, truth)
        )

    def test_out_of_range_truth_raises(self):
        with pytest.raises(IndexError):
            ranks_of_truth(np.random.rand(2, 3), np.array([0, 3]))
        with pytest.raises(IndexError):
            ranks_of_truth(np.random.rand(2, 3), np.array([-1, 0]))


# ----- serve /locate parity -----------------------------------------------


class TestServeLocate:
    @pytest.fixture(scope="class")
    def engine(self, small_predictor, small_store, small_locator):
        from repro.serve import ModelBundle, ScoringEngine, StoredWorld

        return ScoringEngine(
            ModelBundle(predictor=small_predictor, locator=small_locator),
            StoredWorld(small_store),
        )

    def test_locate_byte_identical_to_golden(
        self, engine, small_store, small_locator
    ):
        """The served ranking equals the pre-change per-code-loop path."""
        from repro.tickets.dispatch import Dispatcher

        week = small_store.latest_week
        base = engine.base_features(week)
        for line_id in (0, 3, 17):
            probs = _reference_combined_proba(
                small_locator, base.matrix[line_id][None, :]
            )[0]
            order = np.argsort(-probs, kind="stable")[:10]
            golden = [
                {
                    "rank": rank + 1,
                    "disposition": int(code),
                    "name": Dispatcher.disposition_name(int(code)),
                    "posterior": float(probs[code]),
                }
                for rank, code in enumerate(order)
            ]
            served = engine.locate(week, line_id)
            assert json.dumps(served, sort_keys=True) == json.dumps(
                golden, sort_keys=True
            )

    def test_locate_batch_matches_single_calls(self, engine, small_store):
        week = small_store.latest_week
        ids = [5, 0, 11, 5]
        batched = engine.locate_batch(week, ids, top_k=7)
        for line_id, ranking in zip(ids, batched):
            assert ranking == engine.locate(week, line_id, top_k=7)

    def test_locate_batch_validation(self, engine, small_store):
        week = small_store.latest_week
        with pytest.raises(ValueError):
            engine.locate_batch(week, [])
        with pytest.raises(IndexError):
            engine.locate_batch(week, [0, 10**9])

    def test_service_batched_endpoint(
        self, small_store, small_predictor, small_locator, tmp_path
    ):
        from repro.serve import ModelBundle, ModelRegistry, ScoringService

        registry_root = tmp_path / "registry"
        registry = ModelRegistry(registry_root)
        registry.publish(
            ModelBundle(
                predictor=small_predictor,
                meta={"gen": 1},
                locator=small_locator,
            ),
            activate=True,
        )
        service = ScoringService(small_store.root, registry_root)
        week = small_store.latest_week

        status, single = service.dispatch_request(
            "GET", f"/locate?line=4&week={week}&top=6"
        )
        assert status == 200
        status, batched = service.dispatch_request(
            "GET", f"/locate?lines=4,0,9&week={week}&top=6"
        )
        assert status == 200
        assert batched["lines"] == [4, 0, 9]
        assert batched["rankings"][0] == single["ranking"]

        status, _ = service.dispatch_request("GET", "/locate?lines=a,b")
        assert status == 400
        status, _ = service.dispatch_request("GET", "/locate?lines=")
        assert status == 400
        status, _ = service.dispatch_request(
            "GET", f"/locate?lines=0,999999&week={week}"
        )
        assert status == 404
