"""Span tracing: nesting, exception safety, propagation, idle cost."""

from __future__ import annotations

import multiprocessing
import time

import pytest

from repro.obs.tracing import (
    SpanContext,
    Tracer,
    _NOOP_SPAN,
    flame_report,
    set_tracer,
    set_tracing,
    span,
    trace_in_subprocess,
    traced,
    tracing_enabled,
)
from repro.parallel import parallel_map


@pytest.fixture()
def tracer():
    """A fresh global tracer with tracing forced on; restores both after."""
    fresh = Tracer()
    previous = set_tracer(fresh)
    set_tracing(True)
    try:
        yield fresh
    finally:
        set_tracing(None)
        set_tracer(previous)


@pytest.fixture()
def disabled():
    set_tracing(False)
    try:
        yield
    finally:
        set_tracing(None)


class TestDisabledMode:
    def test_span_returns_the_shared_noop(self, disabled):
        assert not tracing_enabled()
        assert span("anything", week=3) is _NOOP_SPAN
        with span("anything") as s:
            s.set_tag("ignored", 1)  # must not raise

    def test_nothing_is_recorded(self, disabled):
        fresh = Tracer()
        previous = set_tracer(fresh)
        try:
            with span("a"):
                with span("b"):
                    pass
            assert fresh.export() == []
        finally:
            set_tracer(previous)

    def test_disabled_calls_are_cheap(self, disabled):
        # Loose sanity bound, not a benchmark: 50k no-op spans must be
        # far under a second (the bench guard enforces the real budget).
        start = time.perf_counter()
        for _ in range(50_000):
            with span("hot", index=1):
                pass
        assert time.perf_counter() - start < 1.0


class TestRecording:
    def test_nesting_builds_a_tree_with_tags(self, tracer):
        with span("parent", week=7) as p:
            with span("child.a"):
                pass
            with span("child.b"):
                pass
            p.set_tag("extra", "yes")
        [root] = tracer.export()
        assert root["name"] == "parent"
        assert root["tags"] == {"week": 7, "extra": "yes"}
        assert [c["name"] for c in root["children"]] == ["child.a", "child.b"]
        assert root["duration_seconds"] >= 0
        assert root["status"] == "ok"

    def test_exceptions_mark_the_span_and_propagate(self, tracer):
        with pytest.raises(RuntimeError, match="boom"):
            with span("failing"):
                raise RuntimeError("boom")
        [root] = tracer.export()
        assert root["status"] == "error"
        assert "RuntimeError: boom" in root["error"]

    def test_decorator_names_default_to_the_function(self, tracer):
        @traced()
        def do_work(x):
            return x * 2

        assert do_work(21) == 42
        [root] = tracer.export()
        assert root["name"].endswith("do_work")

    def test_flame_report_aggregates_siblings(self, tracer):
        with span("round"):
            pass
        with span("round"):
            pass
        text = flame_report(tracer.export())
        assert "round" in text and "x2" in text

    def test_flame_report_empty_mentions_the_toggle(self):
        assert "REPRO_TRACE" in flame_report([])


class TestPropagation:
    def test_worker_thread_spans_attach_to_the_submitting_span(self, tracer):
        with span("fanout"):
            parallel_map(
                lambda x: x + 1, range(6), workers=3, task_label="unit.task"
            )
        [root] = tracer.export()
        tasks = [c for c in root["children"] if c["name"] == "unit.task"]
        assert len(tasks) == 6
        assert sorted(c["tags"]["index"] for c in tasks) == list(range(6))

    def test_adopt_without_context_is_a_noop(self, tracer):
        with tracer.adopt(None):
            with span("lonely"):
                pass
        [root] = tracer.export()
        assert root["name"] == "lonely"
        assert root["parent_id"] is None

    def test_merge_remote_grafts_under_the_open_parent(self, tracer):
        with span("parent") as p:
            remote = {
                "span_id": "ffff-1",
                "parent_id": p.span_id,
                "name": "remote.task",
                "tags": {},
                "duration_seconds": 0.25,
                "status": "ok",
                "children": [],
            }
            tracer.merge_remote([remote])
        [root] = tracer.export()
        assert [c["name"] for c in root["children"]] == ["remote.task"]

    def test_merge_remote_unknown_parent_becomes_a_root(self, tracer):
        tracer.merge_remote([
            {
                "span_id": "ffff-2",
                "parent_id": "gone-99",
                "name": "orphan",
                "tags": {},
                "duration_seconds": 0.1,
                "status": "ok",
                "children": [],
            }
        ])
        names = [s["name"] for s in tracer.export()]
        assert names == ["orphan"]

    def test_merge_remote_overlapping_span_ids_merge_once(self, tracer):
        """Duplicate delivery (retried pipe send) must not duplicate trees."""
        with span("parent") as p:
            batch = [
                {
                    "span_id": "ffff-dup",
                    "parent_id": p.span_id,
                    "name": "remote.task",
                    "tags": {},
                    "duration_seconds": 0.25,
                    "status": "ok",
                    "children": [
                        {
                            "span_id": "ffff-dup-child",
                            "parent_id": "ffff-dup",
                            "name": "remote.subtask",
                            "tags": {},
                            "duration_seconds": 0.1,
                            "status": "ok",
                            "children": [],
                        }
                    ],
                }
            ]
            tracer.merge_remote(batch)
            tracer.merge_remote(batch)  # at-least-once delivery: second copy
        [root] = tracer.export()
        assert [c["name"] for c in root["children"]] == ["remote.task"]
        [task] = root["children"]
        assert [c["name"] for c in task["children"]] == ["remote.subtask"]

    def test_merge_remote_late_batch_grafts_onto_merged_span(self, tracer):
        """A follow-up batch may parent onto a span merged earlier."""
        with span("parent") as p:
            tracer.merge_remote([
                {
                    "span_id": "ffff-a", "parent_id": p.span_id,
                    "name": "remote.first", "tags": {},
                    "duration_seconds": 0.2, "status": "ok", "children": [],
                }
            ])
            tracer.merge_remote([
                {
                    "span_id": "ffff-b", "parent_id": "ffff-a",
                    "name": "remote.second", "tags": {},
                    "duration_seconds": 0.1, "status": "ok", "children": [],
                }
            ])
        [root] = tracer.export()
        [first] = root["children"]
        assert [c["name"] for c in first["children"]] == ["remote.second"]

    def test_span_context_wire_round_trip(self):
        context = SpanContext("abc-1")
        assert SpanContext.from_wire(context.to_wire()) == context
        assert SpanContext.from_wire(None) == SpanContext(None)


def _child_work(context_wire, pipe):
    """Runs in the forked child: trace a task, ship the spans back."""
    def task():
        with span("child.compute", pid_tagged=True):
            return 123

    result, spans = trace_in_subprocess(context_wire, task)
    pipe.send((result, spans))
    pipe.close()


class TestCrossProcess:
    def test_spans_cross_a_fork_boundary(self, tracer):
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:
            pytest.skip("fork start method unavailable")

        parent_conn, child_conn = ctx.Pipe()
        with span("parent.fanout") as p:
            context = tracer.current_context()
            process = ctx.Process(
                target=_child_work, args=(context.to_wire(), child_conn)
            )
            process.start()
            result, spans = parent_conn.recv()
            process.join(timeout=30)
            assert result == 123
            tracer.merge_remote(spans)
        assert p.span_id == context.span_id
        [root] = tracer.export()
        assert root["name"] == "parent.fanout"
        child_names = [c["name"] for c in root["children"]]
        assert "child.compute" in child_names
