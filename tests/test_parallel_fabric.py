"""Tests of the parallel-map fabric and worker-count determinism.

The fabric's contract is that ``REPRO_WORKERS`` is purely a throughput
knob: every consumer must produce bit-identical results at any worker
count.  That is checked here directly for ``parallel_map`` and end to end
for the feature-selection sweep and a small trouble locator.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.locator import FlatLocator, LocatorConfig
from repro.data.joins import build_locator_dataset
from repro.features import selection
from repro.features.encoding import FeatureSet
from repro.parallel import WORKERS_ENV_VAR, parallel_map, worker_count


def test_preserves_order_serial_and_threaded():
    items = list(range(57))
    assert parallel_map(lambda v: v * v, items, workers=1) == [v * v for v in items]
    assert parallel_map(lambda v: v * v, items, workers=4) == [v * v for v in items]


def test_actually_runs_concurrently():
    seen = set()
    barrier = threading.Barrier(3, timeout=5)

    def task(v):
        seen.add(threading.get_ident())
        barrier.wait()  # deadlocks (-> Barrier timeout) unless 3 threads run
        return v

    assert parallel_map(task, [1, 2, 3], workers=3) == [1, 2, 3]
    assert len(seen) == 3


def test_exceptions_propagate():
    def boom(v):
        raise RuntimeError(f"task {v}")

    with pytest.raises(RuntimeError):
        parallel_map(boom, [1], workers=1)
    with pytest.raises(RuntimeError):
        parallel_map(boom, [1, 2, 3], workers=2)


def test_worker_count_env_parsing(monkeypatch):
    monkeypatch.delenv(WORKERS_ENV_VAR, raising=False)
    assert worker_count() == 1
    monkeypatch.setenv(WORKERS_ENV_VAR, "")
    assert worker_count() == 1
    monkeypatch.setenv(WORKERS_ENV_VAR, " 6 ")
    assert worker_count() == 6
    assert worker_count(2) == 2  # explicit beats environment
    monkeypatch.setenv(WORKERS_ENV_VAR, "zero")
    with pytest.raises(ValueError):
        worker_count()
    monkeypatch.setenv(WORKERS_ENV_VAR, "0")
    with pytest.raises(ValueError):
        worker_count()
    with pytest.raises(ValueError):
        worker_count(-1)


def _selection_fixture(rng):
    n, n_features = 500, 20
    M = rng.normal(size=(n, n_features))
    M[rng.random((n, n_features)) < 0.25] = np.nan
    M[:, 4] = rng.integers(0, 3, size=n).astype(float)
    cat = np.zeros(n_features, dtype=bool)
    cat[4] = True
    names = [f"f{i}" for i in range(n_features)]
    groups = ["default"] * n_features
    y = (np.nansum(M, axis=1) > 0.5).astype(float)
    half = n // 2
    return (
        FeatureSet(M[:half], names, groups, cat),
        y[:half],
        FeatureSet(M[half:], names, groups, cat),
        y[half:],
    )


def test_selection_sweep_identical_across_worker_counts(rng):
    train, y_train, test, y_test = _selection_fixture(rng)
    scores = {
        workers: selection.single_feature_ap(
            train, y_train, test, y_test, n=40, n_rounds=3, workers=workers
        )
        for workers in (1, 4)
    }
    assert np.array_equal(scores[1], scores[4])


def test_baseline_selectors_identical_across_worker_counts(rng):
    train, y_train, _, _ = _selection_fixture(rng)
    for select in (
        selection.select_features_auc,
        selection.select_features_average_precision,
        selection.select_features_gain_ratio,
    ):
        serial = select(train, y_train, top_k=8, workers=1)
        threaded = select(train, y_train, top_k=8, workers=4)
        assert np.array_equal(serial.scores, threaded.scores)
        assert np.array_equal(serial.selected, threaded.selected)


def test_locator_identical_across_worker_counts(locator_world, monkeypatch):
    horizon = locator_world.config.n_weeks * 7
    train = build_locator_dataset(
        locator_world, first_day=30, last_day=horizon * 2 // 3
    )
    config = LocatorConfig(n_rounds=12, cv_folds=2)

    probs = {}
    for workers in ("1", "4"):
        monkeypatch.setenv(WORKERS_ENV_VAR, workers)
        model = FlatLocator(config).fit(train)
        probs[workers] = model.predict_proba(train.features.matrix[:50])
    monkeypatch.delenv(WORKERS_ENV_VAR, raising=False)
    assert np.array_equal(probs["1"], probs["4"])
