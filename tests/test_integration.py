"""End-to-end integration tests spanning all modules.

These walk the full paper pipeline on the shared small world: simulate ->
encode -> select -> train -> rank -> analyse, plus the locator chain and
the Section-5.2 post-analyses.
"""

import numpy as np
import pytest

from repro import (
    CombinedLocator,
    ExperienceModel,
    LocatorConfig,
    PredictorConfig,
    TicketPredictor,
    accuracy_curve,
    build_locator_dataset,
    evaluate_predictions,
    explain_incorrect_by_absence,
    explain_incorrect_by_outage,
    ground_truth_problem_fraction,
    missed_ticket_fraction,
    ranks_of_truth,
    urgency_cdf,
)


@pytest.fixture(scope="module")
def full_chain(request):
    result = request.getfixturevalue("small_result")
    split = request.getfixturevalue("small_split")
    predictor = TicketPredictor(
        PredictorConfig(capacity=60, horizon_weeks=3, train_rounds=60,
                        selection_rounds=3, product_pool=8)
    ).fit(result, split)
    outcomes = [
        evaluate_predictions(result, predictor.rank_week(result, week), week,
                             horizon_weeks=3)
        for week in split.test_weeks
    ]
    return result, split, predictor, outcomes


class TestPredictorChain:
    def test_accuracy_curve_decreasing_tail(self, full_chain):
        result, _, _, outcomes = full_chain
        grid = np.array([30, 60, 200, 1000, result.n_lines])
        curve = accuracy_curve(outcomes, grid)
        # The curve converges to the base rate as the cut grows.
        base_rate = np.mean([o.hits.mean() for o in outcomes])
        assert curve[-1] == pytest.approx(base_rate, abs=1e-6)
        assert curve[0] > 2 * base_rate

    def test_urgency_cdf_shape(self, full_chain):
        _, _, predictor, outcomes = full_chain
        cdf = urgency_cdf(outcomes, n=predictor.config.capacity, max_days=21)
        assert np.all(np.diff(cdf) >= 0)
        assert cdf[-1] == 1.0

    def test_missed_fraction_monotone_in_sla(self, full_chain):
        _, _, predictor, outcomes = full_chain
        n = predictor.config.capacity
        fractions = [missed_ticket_fraction(outcomes, n, d) for d in (1, 2, 5, 10)]
        assert all(b >= a for a, b in zip(fractions, fractions[1:]))

    def test_incorrect_predictions_are_often_real_problems(self, full_chain):
        """Section 5.2's central point: many 'incorrect' predictions are
        unreported real problems."""
        result, _, predictor, outcomes = full_chain
        outcome = outcomes[0]
        incorrect = outcome.incorrect_top(predictor.config.capacity)
        frac = ground_truth_problem_fraction(result, incorrect, outcome.day)
        base = ground_truth_problem_fraction(
            result, np.arange(result.n_lines), outcome.day
        )
        assert frac > base

    def test_outage_explanation_runs(self, full_chain):
        result, _, predictor, outcomes = full_chain
        rows = explain_incorrect_by_outage(
            result, outcomes[0], predictor.config.capacity
        )
        assert len(rows) == 4

    def test_absence_analysis_runs(self, full_chain):
        result, _, predictor, outcomes = full_chain
        incorrect = outcomes[0].incorrect_top(predictor.config.capacity)
        observed, absent = explain_incorrect_by_absence(
            result.traffic, incorrect, outcomes[0].day
        )
        assert 0 <= absent <= observed <= len(incorrect)


class TestLocatorChain:
    def test_combined_beats_basic_end_to_end(self, locator_world):
        small_result = locator_world
        horizon = small_result.config.n_weeks * 7
        train = build_locator_dataset(small_result, 30, horizon * 2 // 3)
        test = build_locator_dataset(small_result, horizon * 2 // 3 + 1, horizon)
        config = LocatorConfig(n_rounds=30)
        basic = ExperienceModel(config).fit(train)
        combined = CombinedLocator(config).fit(train)
        X = test.features.matrix
        rb = ranks_of_truth(basic.predict_proba(X), test.disposition)
        rc = ranks_of_truth(combined.predict_proba(X), test.disposition)
        assert rc.mean() < rb.mean()
        # Fig-10 shape: the gain concentrates on deep basic ranks.
        deep = rb >= 16
        if deep.sum() >= 20:
            assert (rb - rc)[deep].mean() > 0
