"""Tests for TicketPredictor serialization (deploy-host round trips)."""

import json

import numpy as np
import pytest

from repro.core.predictor import PredictorConfig, TicketPredictor


@pytest.fixture(scope="module")
def fitted_predictor(request):
    result = request.getfixturevalue("small_result")
    split = request.getfixturevalue("small_split")
    config = PredictorConfig(
        capacity=50, horizon_weeks=3, train_rounds=30, selection_rounds=3,
        product_pool=6,
    )
    return result, TicketPredictor(config).fit(result, split)


class TestPredictorPersistence:
    def test_roundtrip_scores_identical(self, fitted_predictor):
        result, predictor = fitted_predictor
        payload = predictor.to_dict()
        json.dumps(payload)  # plain JSON
        clone = TicketPredictor.from_dict(payload)
        week = int(result.measurements.filled_weeks[-1])
        assert np.allclose(
            clone.score_week(result, week), predictor.score_week(result, week)
        )

    def test_recipes_preserved(self, fitted_predictor):
        _, predictor = fitted_predictor
        clone = TicketPredictor.from_dict(predictor.to_dict())
        assert clone.recipes.base_indices == predictor.recipes.base_indices
        assert clone.recipes.quad_indices == predictor.recipes.quad_indices
        assert clone.recipes.product_pairs == predictor.recipes.product_pairs
        assert clone.feature_names == predictor.feature_names

    def test_unfitted_rejected(self):
        with pytest.raises(RuntimeError):
            TicketPredictor().to_dict()

    def test_bad_version_rejected(self, fitted_predictor):
        _, predictor = fitted_predictor
        payload = predictor.to_dict()
        payload["format_version"] = 9
        with pytest.raises(ValueError):
            TicketPredictor.from_dict(payload)
