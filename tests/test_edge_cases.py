"""Failure-injection and degenerate-configuration tests.

These exercise the paths a healthy experiment never hits: plants with no
faults at all, worlds where no one reports anything, fully-missing
measurement weeks, and learners fed degenerate matrices.
"""

import numpy as np
import pytest

from repro import (
    DslSimulator,
    PopulationConfig,
    PredictorConfig,
    SimulationConfig,
    TicketPredictor,
    build_ticket_dataset,
    paper_style_split,
)
from repro.features.encoding import LineFeatureEncoder
from repro.measurement.records import N_FEATURES, MeasurementStore, feature_index
from repro.ml.boostexter import BStump, BStumpConfig
from repro.netsim.faults import FaultModel, FaultState
from repro.tickets.customers import CustomerConfig, build_customers


class TestFaultFreePlant:
    @pytest.fixture(scope="class")
    def quiet_world(self):
        config = SimulationConfig(
            n_weeks=14,
            population=PopulationConfig(n_lines=600, seed=1),
            fault_rate_scale=0.0,
            billing_ticket_rate=0.0,
            seed=3,
        )
        return DslSimulator(config).run()

    def test_no_faults_no_edge_tickets(self, quiet_world):
        assert len(quiet_world.fault_events) == 0
        assert len(quiet_world.ticket_log.edge_tickets()) == 0

    def test_measurements_still_produced(self, quiet_world):
        assert len(quiet_world.measurements.filled_weeks) == 14

    def test_predictor_refuses_single_class(self, quiet_world):
        split = paper_style_split(14, history=4, train=2, selection=2, test=1,
                                  horizon_weeks=2)
        with pytest.raises(ValueError):
            TicketPredictor(
                PredictorConfig(capacity=20, horizon_weeks=2, train_rounds=5)
            ).fit(quiet_world, split)

    def test_healthy_lines_measure_healthy(self, quiet_world):
        matrix = quiet_world.measurements.week_matrix(10)
        on = matrix[:, feature_index("state")] == 1.0
        nmr = matrix[on, feature_index("dnnmr")]
        # Without faults, only provisioning determines margins; the median
        # line has solid headroom.
        assert np.median(nmr) > 5.0


class TestSilentCustomers:
    def test_zero_propensity_means_no_reports(self):
        config = SimulationConfig(
            n_weeks=10,
            population=PopulationConfig(n_lines=500, seed=2),
            customers=CustomerConfig(propensity_alpha=1e-4,
                                     propensity_beta=100.0),
            fault_rate_scale=5.0,
            billing_ticket_rate=0.0,
            seed=4,
        )
        result = DslSimulator(config).run()
        assert len(result.fault_events) > 0
        assert len(result.ticket_log.edge_tickets()) == 0


class TestDegenerateMeasurements:
    def test_encoder_with_all_modems_off(self):
        store = MeasurementStore(n_lines=5, n_weeks=3)
        for week in range(3):
            features = np.full((5, N_FEATURES), np.nan, dtype=float)
            features[:, feature_index("state")] = 0.0
            store.add_week(week, week * 7 + 5, features)
        from repro.netsim.population import build_population
        population = build_population(PopulationConfig(n_lines=5))
        fs = LineFeatureEncoder().encode(store, 2, population)
        # Basic block: state present, everything else missing.
        assert np.all(fs.column("basic:state") == 0.0)
        assert np.all(np.isnan(fs.column("basic:dnbr")))
        assert np.all(fs.column("modem:off_fraction") == 1.0)

    def test_bstump_survives_mostly_missing_matrix(self, rng):
        X = rng.normal(size=(500, 4))
        y = (X[:, 0] > 0).astype(float)
        X[rng.random(X.shape) < 0.9] = np.nan
        model = BStump(BStumpConfig(n_rounds=10)).fit(X, y)
        out = model.decision_function(X)
        assert np.all(np.isfinite(out))


class TestFaultModelDegenerate:
    def test_zero_rate_never_strikes(self, rng):
        model = FaultModel(rate_scale=0.0)
        state = FaultState.healthy(1000)
        struck = model.sample_onsets(state, rng, 0)
        assert struck.size == 0

    def test_advance_on_healthy_plant_is_noop(self, rng):
        model = FaultModel()
        state = FaultState.healthy(10)
        cleared = model.advance_week(state, rng)
        assert cleared.size == 0
        assert not state.active.any()


class TestDatasetDegenerate:
    def test_dataset_on_first_week_has_nan_history(self, small_result):
        ds = build_ticket_dataset(small_result, [0], horizon_weeks=2)
        delta = ds.features.matrix[:, 25:50]
        ts = ds.features.matrix[:, 50:75]
        assert np.all(np.isnan(delta))
        assert np.all(np.isnan(ts))

    def test_customers_all_away(self):
        customers = build_customers(
            50, 6, CustomerConfig(away_start_prob=1.0, away_min_weeks=6,
                                  away_max_weeks=6),
        )
        assert customers.away.all()
        assert not customers.present(3).any()
