"""Sharded scoring engine: parity with the batch predictor, determinism."""

from __future__ import annotations

import numpy as np
import pytest

from repro.parallel import split_shards
from repro.serve import ModelBundle, ScoringEngine, StoredWorld


@pytest.fixture(scope="module")
def engine(small_predictor, small_store):
    return ScoringEngine(
        ModelBundle(predictor=small_predictor),
        StoredWorld(small_store),
        shard_size=257,  # deliberately odd: shards must not matter
        model_version="v0001",
    )


class TestSplitShards:
    def test_covers_the_range_contiguously(self):
        shards = split_shards(10, 3)
        assert shards == [slice(0, 3), slice(3, 6), slice(6, 9), slice(9, 10)]

    def test_empty_and_oversized(self):
        assert split_shards(0, 4) == []
        assert split_shards(3, 100) == [slice(0, 3)]

    def test_validation(self):
        with pytest.raises(ValueError):
            split_shards(5, 0)
        with pytest.raises(ValueError):
            split_shards(-1, 4)


class TestParity:
    def test_scores_bit_identical_to_batch_predictor(
        self, engine, small_predictor, small_result, small_store
    ):
        for week in (small_store.latest_week, small_store.latest_week - 3):
            served = engine.score_week(week).scores
            batch = small_predictor.score_week(small_result, week)
            assert np.array_equal(served, batch)

    def test_dispatch_matches_predict_top(
        self, engine, small_predictor, small_result, small_store
    ):
        week = small_store.latest_week
        dispatch = engine.dispatch(week)
        expected = small_predictor.predict_top(small_result, week)
        assert np.array_equal(dispatch.line_ids, expected)
        assert len(dispatch) == small_predictor.config.capacity
        assert dispatch.model_version == "v0001"
        # ranked best-first
        assert np.all(np.diff(dispatch.scores) <= 0)

    def test_dispatch_capacity_override(self, engine, small_store):
        week = small_store.latest_week
        full = engine.dispatch(week)
        top5 = engine.dispatch(week, capacity=5)
        assert np.array_equal(top5.line_ids, full.line_ids[:5])

    def test_locate_matches_locator_posteriors(
        self, small_predictor, small_store, small_locator
    ):
        locator = small_locator
        engine = ScoringEngine(
            ModelBundle(predictor=small_predictor, locator=locator),
            StoredWorld(small_store),
        )
        week = small_store.latest_week
        ranking = engine.locate(week, line_id=3, top_k=5)
        base = engine.base_features(week)
        probs = locator.predict_proba(base.matrix[3][None, :])[0]
        order = np.argsort(-probs, kind="stable")[:5]
        assert [r["disposition"] for r in ranking] == [int(c) for c in order]
        assert ranking[0]["posterior"] == pytest.approx(float(probs[order[0]]))
        assert all(r["name"] for r in ranking)


class TestDeterminism:
    def test_any_shard_size_gives_identical_scores(
        self, small_predictor, small_store
    ):
        week = small_store.latest_week
        world = StoredWorld(small_store)
        bundle = ModelBundle(predictor=small_predictor)
        reference = ScoringEngine(bundle, world, shard_size=10_000)
        baseline = reference.score_week(week).scores
        for shard_size in (1_000, 333, 97):
            engine = ScoringEngine(bundle, world, shard_size=shard_size)
            assert np.array_equal(engine.score_week(week).scores, baseline)

    def test_worker_count_does_not_change_scores(
        self, small_predictor, small_store, monkeypatch
    ):
        week = small_store.latest_week
        world = StoredWorld(small_store)
        bundle = ModelBundle(predictor=small_predictor)
        results = []
        for workers in ("1", "4"):
            monkeypatch.setenv("REPRO_WORKERS", workers)
            engine = ScoringEngine(bundle, world, shard_size=199)
            results.append(engine.score_week(week).scores)
        assert np.array_equal(results[0], results[1])

    def test_errors_on_unfitted_bundle(self, small_store, small_predictor):
        from repro import PredictorConfig, TicketPredictor

        empty = TicketPredictor(PredictorConfig())
        engine = ScoringEngine(
            ModelBundle(predictor=empty), StoredWorld(small_store)
        )
        with pytest.raises(RuntimeError):
            engine.score_week(small_store.latest_week)
        plain = ScoringEngine(
            ModelBundle(predictor=small_predictor), StoredWorld(small_store)
        )
        with pytest.raises(RuntimeError, match="locator"):
            plain.locate(small_store.latest_week, 0)
