"""Lifecycle components in isolation: scheduler, gate, watchdog, ledger.

The full closed loop (drift-triggered retrain -> shadow -> promotion ->
injected regression -> rollback) lives in ``test_lifecycle_loop.py``;
these tests pin down each component's decision rule on synthetic inputs.
"""

from __future__ import annotations

import json

import pytest

from repro.core.drift import LiveDriftSignals
from repro.lifecycle import (
    DecisionLog,
    LifecycleConfig,
    PromotionGate,
    PromotionWatchdog,
    RetrainScheduler,
    ShadowReport,
    lifecycle_status,
)


def signals(relative_drop=0.0, calibration_drift=0.0):
    return LiveDriftSignals(
        n_reports=5,
        baseline_precision=0.5,
        recent_precision=0.5 * (1 - relative_drop),
        relative_drop=relative_drop,
        calibration_drift=calibration_drift,
    )


def shadow_report(delta=0.0, ci_low=-0.01, ci_high=0.01):
    return ShadowReport(
        weeks=(10, 11),
        capacity=40,
        champion_precision=0.5,
        challenger_precision=0.5 + delta,
        precision_delta=delta,
        delta_ci_low=ci_low,
        delta_ci_high=ci_high,
        champion_ap=0.5,
        challenger_ap=0.5 + delta,
        shadow_seconds=0.1,
        bootstrap_samples=100,
        confidence=0.9,
    )


class TestLifecycleConfig:
    def test_defaults_are_valid(self):
        LifecycleConfig()

    @pytest.mark.parametrize("overrides", [
        {"cadence_weeks": -1},
        {"confidence": 0.0},
        {"confidence": 1.0},
        {"watchdog_drop": 1.0},
        {"watchdog_patience": 0},
        {"shadow_weeks": 0},
        {"bootstrap_samples": 0},
        {"non_inferiority_margin": -0.1},
    ])
    def test_rejects_bad_values(self, overrides):
        with pytest.raises(ValueError):
            LifecycleConfig(**overrides)

    def test_to_dict_round_trips(self):
        config = LifecycleConfig(cadence_weeks=2, seed=7)
        assert LifecycleConfig(**config.to_dict()) == config


class TestRetrainScheduler:
    def config(self, **kw):
        defaults = dict(
            cadence_weeks=4,
            drift_relative_drop=0.25,
            drift_calibration_threshold=0.15,
            drift_cooldown_weeks=1,
        )
        defaults.update(kw)
        return LifecycleConfig(**defaults)

    def test_cadence_triggers_after_interval(self):
        scheduler = RetrainScheduler(self.config(), trained_at=10)
        assert not scheduler.decide(12, None).due
        decision = scheduler.decide(14, None)
        assert decision.due and decision.reason == "cadence"
        # The trigger resets the clock.
        assert scheduler.last_retrain_week == 14
        assert not scheduler.decide(16, None).due

    def test_cadence_zero_disables_the_clock(self):
        scheduler = RetrainScheduler(self.config(cadence_weeks=0), trained_at=0)
        assert not scheduler.decide(50, None).due

    def test_precision_drift_fires_early(self):
        scheduler = RetrainScheduler(self.config(), trained_at=10)
        decision = scheduler.decide(12, signals(relative_drop=0.30))
        assert decision.due and decision.reason == "precision_drift"
        assert "0.30" in decision.detail or "30" in decision.detail

    def test_calibration_drift_fires_early(self):
        scheduler = RetrainScheduler(self.config(), trained_at=10)
        decision = scheduler.decide(12, signals(calibration_drift=0.2))
        assert decision.due and decision.reason == "calibration_drift"

    def test_sub_threshold_drift_waits_for_cadence(self):
        scheduler = RetrainScheduler(self.config(), trained_at=10)
        weak = signals(relative_drop=0.1, calibration_drift=0.05)
        assert not scheduler.decide(12, weak).due
        assert scheduler.decide(14, weak).reason == "cadence"

    def test_cooldown_suppresses_drift_thrash(self):
        scheduler = RetrainScheduler(
            self.config(drift_cooldown_weeks=3), trained_at=10
        )
        hot = signals(relative_drop=0.9)
        assert not scheduler.decide(11, hot).due
        assert not scheduler.decide(12, hot).due
        assert scheduler.decide(13, hot).due


class TestPromotionGate:
    def test_clear_winner_promotes(self):
        gate = PromotionGate(LifecycleConfig(non_inferiority_margin=0.02))
        decision = gate.decide(shadow_report(delta=0.1, ci_low=0.05, ci_high=0.15))
        assert decision.promote and decision.reason == "non_inferior"

    def test_noisy_tie_promotes_within_margin(self):
        gate = PromotionGate(LifecycleConfig(non_inferiority_margin=0.02))
        decision = gate.decide(shadow_report(delta=0.0, ci_low=-0.015))
        assert decision.promote

    def test_regression_is_held(self):
        gate = PromotionGate(LifecycleConfig(non_inferiority_margin=0.02))
        decision = gate.decide(shadow_report(delta=-0.1, ci_low=-0.15, ci_high=-0.05))
        assert not decision.promote and decision.reason == "inferior"
        assert "margin" in decision.detail

    def test_zero_margin_requires_nonnegative_bound(self):
        gate = PromotionGate(LifecycleConfig(non_inferiority_margin=0.0))
        assert not gate.decide(shadow_report(ci_low=-0.001)).promote
        assert gate.decide(shadow_report(ci_low=0.0)).promote


class TestPromotionWatchdog:
    def test_consecutive_strikes_trigger_rollback(self):
        dog = PromotionWatchdog(baseline_precision=0.5, drop=0.4, patience=2)
        assert dog.floor == pytest.approx(0.3)
        first = dog.observe(0.2)
        assert first.strike and not first.rollback
        second = dog.observe(0.25)
        assert second.rollback

    def test_good_week_resets_the_count(self):
        dog = PromotionWatchdog(baseline_precision=0.5, drop=0.4, patience=2)
        assert dog.observe(0.1).strike
        assert not dog.observe(0.45).strike  # recovery
        assert dog.strikes == 0
        assert not dog.observe(0.1).rollback  # needs 2 consecutive again

    def test_healthy_weeks_never_strike(self):
        dog = PromotionWatchdog(baseline_precision=0.5, drop=0.4, patience=1)
        for precision in (0.5, 0.35, 0.31, 0.9):
            verdict = dog.observe(precision)
            assert not verdict.strike and not verdict.rollback

    def test_state_is_serialisable(self):
        dog = PromotionWatchdog(baseline_precision=0.5, drop=0.4, patience=2)
        dog.observe(0.1)
        state = json.loads(json.dumps(dog.state()))
        assert state["strikes"] == 1
        assert state["weeks_observed"] == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            PromotionWatchdog(0.5, drop=1.0, patience=2)
        with pytest.raises(ValueError):
            PromotionWatchdog(0.5, drop=0.4, patience=0)


class TestDecisionLog:
    def test_chain_grows_and_verifies(self, tmp_path):
        log = DecisionLog(tmp_path / "LIFECYCLE.jsonl")
        log.append("bootstrap", 12, version="v0001")
        log.append("retrain", 14, reason="cadence")
        log.append("promote", 14, version="v0002")
        assert len(log) == 3
        assert log.verify() == []
        records = log.records()
        assert records[0].prev_hash == "0" * 64
        assert records[1].prev_hash == records[0].hash
        assert records[2].prev_hash == records[1].hash

    def test_reload_continues_the_chain(self, tmp_path):
        path = tmp_path / "LIFECYCLE.jsonl"
        first = DecisionLog(path)
        first.append("bootstrap", 12, version="v0001")
        head = first.head_hash
        reopened = DecisionLog(path)
        assert reopened.head_hash == head
        reopened.append("retrain", 14, reason="cadence")
        assert reopened.verify() == []
        assert reopened.records()[1].prev_hash == head

    def test_edited_record_breaks_the_chain(self, tmp_path):
        path = tmp_path / "LIFECYCLE.jsonl"
        log = DecisionLog(path)
        log.append("bootstrap", 12, version="v0001")
        log.append("promote", 14, version="v0002")
        lines = path.read_text().splitlines()
        doctored = json.loads(lines[0])
        doctored["details"]["version"] = "v0009"  # rewrite history
        lines[0] = json.dumps(doctored)
        path.write_text("\n".join(lines) + "\n")
        problems = DecisionLog(path).verify()
        assert any("record 0" in p and "content hash" in p for p in problems)

    def test_dropped_record_breaks_the_chain(self, tmp_path):
        path = tmp_path / "LIFECYCLE.jsonl"
        log = DecisionLog(path)
        log.append("bootstrap", 12, version="v0001")
        log.append("retrain", 14, reason="cadence")
        log.append("promote", 14, version="v0002")
        lines = path.read_text().splitlines()
        path.write_text("\n".join([lines[0], lines[2]]) + "\n")
        problems = DecisionLog(path).verify()
        assert problems  # sequence and prev_hash both snap

    def test_record_round_trips_through_dicts(self, tmp_path):
        log = DecisionLog(tmp_path / "log.jsonl")
        record = log.append("hold", 15, reason="inferior", detail="ci below")
        from repro.lifecycle import DecisionRecord

        clone = DecisionRecord.from_dict(
            json.loads(json.dumps(record.to_dict()))
        )
        assert clone == record
        assert clone.expected_hash() == clone.hash


class TestLifecycleStatusFromDisk:
    def test_empty_registry_reads_clean(self, tmp_path):
        status = lifecycle_status(tmp_path / "registry")
        assert status["active_version"] is None
        assert status["decisions"] == []
        assert status["chain_valid"] is True

    def test_decisions_and_counts_surface(self, tmp_path):
        root = tmp_path / "registry"
        root.mkdir()
        log = DecisionLog(root / "LIFECYCLE.jsonl")
        log.append("bootstrap", 12, version="v0001")
        log.append("retrain", 14, reason="cadence")
        log.append("hold", 14, reason="inferior")
        status = lifecycle_status(root)
        assert status["decision_counts"] == {
            "bootstrap": 1, "retrain": 1, "hold": 1,
        }
        assert status["chain_valid"] is True
        assert [d["action"] for d in status["decisions"]] == [
            "bootstrap", "retrain", "hold",
        ]
