"""Plant-level triage: grouping test, suppression policy, loop wiring."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pipeline import NevermindPipeline, PipelineConfig
from repro.core.predictor import PredictorConfig
from repro.fleet import (
    TriageConfig,
    evaluate_plan,
    find_clusters,
    plan_dispatches,
)
from repro.fleet.aggregation import CLASS_IN_HOME, CLASS_UPSTREAM
from repro.fleet.suppression import TriagePlan
from repro.netsim.groupfaults import GroupFaultConfig
from repro.netsim.population import PopulationConfig
from repro.netsim.simulator import SimulationConfig
from repro.netsim.topology import Binder, Bras, Dslam, Topology


def grid_topology(n_dslams: int = 4, binders_per: int = 4,
                  lines_per_binder: int = 8) -> Topology:
    """A regular plant: every DSLAM has the same binder layout."""
    dslams, binders, line_dslam, line_binder = [], [], [], []
    next_line = 0
    for d in range(n_dslams):
        dslam_lines = []
        for _ in range(binders_per):
            ids = np.arange(next_line, next_line + lines_per_binder)
            next_line += lines_per_binder
            binders.append(Binder(binder_id=len(binders), dslam_id=d,
                                  line_ids=ids))
            dslam_lines.append(ids)
            line_binder.extend([len(binders) - 1] * lines_per_binder)
        all_ids = np.concatenate(dslam_lines)
        dslams.append(Dslam(dslam_id=d, bras_id=0, geo=0, line_ids=all_ids))
        line_dslam.extend([d] * all_ids.size)
    topology = Topology(
        brases=[Bras(bras_id=0, dslam_ids=np.arange(n_dslams))],
        dslams=dslams,
        line_dslam=np.array(line_dslam),
        line_bras=np.zeros(next_line, dtype=int),
        binders=binders,
        line_binder=np.array(line_binder),
    )
    topology.validate()
    return topology


def scores_with_hotspots(topology: Topology, hot_lines: np.ndarray,
                         seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    scores = rng.standard_normal(topology.n_lines)
    scores[hot_lines] += 5.0
    return scores


class TestFindClusters:
    def test_binder_hotspot_classified_upstream(self):
        topology = grid_topology()
        hot = topology.lines_of_binder(5)
        triage = find_clusters(scores_with_hotspots(topology, hot), topology,
                               capacity=10)
        upstream = triage.upstream_clusters
        assert [(c.level, c.group_id) for c in upstream] == [("binder", 5)]
        np.testing.assert_array_equal(
            np.sort(upstream[0].anomalous_line_ids), hot
        )
        # The parent DSLAM never surfaces as an upstream cluster of its
        # own -- at most an in-home informational entry.
        dslam_clusters = [c for c in triage.clusters if c.level == "dslam"]
        assert all(c.classification == CLASS_IN_HOME for c in dslam_clusters)

    def test_significant_parent_dropped_as_shadow(self):
        # A small DSLAM (2 binders) where ONE binder is hot: the parent
        # reaches significance too (half its lines anomalous) but the
        # concentration lives in the binder, so the parent is dropped.
        topology = grid_topology(n_dslams=8, binders_per=2,
                                 lines_per_binder=8)
        hot = topology.lines_of_binder(4)
        config = TriageConfig(min_fraction=0.3, dslam_spread=0.75)
        triage = find_clusters(scores_with_hotspots(topology, hot), topology,
                               capacity=8, config=config)
        kept = {(c.level, c.group_id) for c in triage.clusters}
        parent = topology.dslam_of_binder(4)
        assert ("binder", 4) in kept
        assert ("dslam", parent) not in kept

    def test_spread_dslam_subsumes_binders(self):
        topology = grid_topology()
        hot = topology.lines_of_dslam(2)
        triage = find_clusters(scores_with_hotspots(topology, hot), topology,
                               capacity=12)
        upstream = triage.upstream_clusters
        assert [(c.level, c.group_id) for c in upstream] == [("dslam", 2)]
        # Its binders were individually significant but got subsumed.
        kept = {(c.level, c.group_id) for c in triage.clusters}
        for binder_id in np.unique(topology.line_binder[hot]):
            assert ("binder", int(binder_id)) not in kept

    def test_uniform_anomalies_stay_in_home(self):
        topology = grid_topology()
        # One anomalous line per binder: no concentration anywhere.
        hot = np.array([b.line_ids[0] for b in topology.binders])
        triage = find_clusters(scores_with_hotspots(topology, hot), topology,
                               capacity=6)
        assert triage.upstream_clusters == []
        assert all(c.classification == CLASS_IN_HOME for c in triage.clusters)
        assert not triage.upstream_line_mask().any()

    def test_min_anomalous_floor(self):
        topology = grid_topology()
        hot = topology.lines_of_binder(5)[:2]  # concentrated but only 2
        config = TriageConfig(min_anomalous=3)
        triage = find_clusters(scores_with_hotspots(topology, hot), topology,
                               capacity=4, config=config)
        assert all(c.n_anomalous >= 3 for c in triage.clusters)
        assert triage.upstream_clusters == []

    def test_min_fraction_floor(self):
        topology = grid_topology(binders_per=1, lines_per_binder=40)
        hot = topology.lines_of_binder(0)[:4]  # 10% of a big binder
        config = TriageConfig(min_fraction=0.3, anomaly_pool=1.0)
        triage = find_clusters(scores_with_hotspots(topology, hot), topology,
                               capacity=4, config=config)
        assert triage.upstream_clusters == []

    def test_pool_uses_stable_dispatch_ranking(self):
        topology = grid_topology()
        scores = np.zeros(topology.n_lines)  # all ties
        triage = find_clusters(scores, topology, capacity=10)
        np.testing.assert_array_equal(triage.pool_line_ids, np.arange(30))

    def test_input_validation(self):
        topology = grid_topology()
        with pytest.raises(ValueError):
            find_clusters(np.zeros(topology.n_lines + 1), topology, 10)
        with pytest.raises(ValueError):
            find_clusters(np.zeros(topology.n_lines), topology, 0)

    def test_to_dict_roundtrips_to_json(self):
        import json

        topology = grid_topology()
        hot = topology.lines_of_binder(5)
        triage = find_clusters(scores_with_hotspots(topology, hot), topology,
                               capacity=10)
        payload = json.loads(json.dumps(triage.to_dict()))
        assert payload["n_upstream"] == 1
        assert payload["clusters"][0]["classification"] == CLASS_UPSTREAM


class TestPlanDispatches:
    def test_no_upstream_plan_is_exactly_baseline(self):
        topology = grid_topology()
        scores = np.random.default_rng(1).standard_normal(topology.n_lines)
        triage = find_clusters(scores, topology, capacity=10)
        assert triage.upstream_clusters == []
        plan = plan_dispatches(scores, 10, triage, week=4)
        np.testing.assert_array_equal(plan.line_ids, plan.baseline_line_ids)
        np.testing.assert_array_equal(
            plan.line_ids, np.argsort(-scores, kind="stable")[:10]
        )
        assert plan.group_dispatches == []
        assert plan.suppressed_line_ids.size == 0
        assert plan.backfilled_line_ids.size == 0
        assert plan.n_slots_used == 10

    def test_suppression_and_backfill_accounting(self):
        topology = grid_topology()
        hot = topology.lines_of_binder(5)
        scores = scores_with_hotspots(topology, hot)
        capacity = 12
        triage = find_clusters(scores, topology, capacity)
        plan = plan_dispatches(scores, capacity, triage, week=7)
        assert len(plan.group_dispatches) == 1
        # Every member of the upstream binder vanished from per-line slots.
        assert not np.isin(plan.line_ids, hot).any()
        assert np.isin(plan.suppressed_line_ids, hot).all()
        # One slot paid for the group dispatch, the rest stay per-line.
        assert plan.line_ids.size == capacity - 1
        assert plan.n_slots_used == capacity
        # Backfilled lines are exactly the per-line picks not in baseline.
        promoted = np.setdiff1d(plan.line_ids, plan.baseline_line_ids)
        np.testing.assert_array_equal(
            np.sort(plan.backfilled_line_ids), promoted
        )
        assert plan.to_dict()["group_targets"] == [
            {"level": "binder", "group_id": 5}
        ]

    def test_evaluate_plan_arithmetic(self):
        fault = np.zeros(20, dtype=bool)
        fault[[0, 1, 5]] = True
        plan = TriagePlan(
            week=3, capacity=4,
            baseline_line_ids=np.array([0, 1, 2, 3]),
            line_ids=np.array([0, 5, 6]),
            group_dispatches=[object()],  # only len() is used
            suppressed_line_ids=np.array([1, 2]),
            backfilled_line_ids=np.array([5, 6]),
        )
        plan.group_dispatches = []
        scored = evaluate_plan(plan, fault)
        assert scored["baseline_hits"] == 2
        assert scored["baseline_precision"] == pytest.approx(0.5)
        assert scored["per_line_hits"] == 2
        assert scored["group_hits"] == 0
        assert scored["triage_precision"] == pytest.approx(0.5)

    def test_evaluate_plan_group_hits_need_active_fault(self):
        topology = grid_topology()
        hot = topology.lines_of_binder(5)
        scores = scores_with_hotspots(topology, hot)
        triage = find_clusters(scores, topology, 12)
        plan = plan_dispatches(scores, 12, triage)
        fault = np.zeros(topology.n_lines, dtype=bool)
        missed = evaluate_plan(plan, fault, active_groups=set())
        hit = evaluate_plan(plan, fault, active_groups={("binder", 5)})
        assert missed["group_hits"] == 0
        assert hit["group_hits"] == 1
        assert hit["triage_hits"] == missed["triage_hits"] + 1


class TestPipelineWiring:
    """The closed loop with and without the triage stage."""

    SIMULATION = dict(
        n_weeks=18,
        population=PopulationConfig(n_lines=1200, seed=13),
        fault_rate_scale=6.0,
        seed=77,
    )
    PREDICTOR = PredictorConfig(
        capacity=30, horizon_weeks=3, train_rounds=30, selection_rounds=3,
        include_derived=False,
    )

    def _run(self, triage, group_faults=None):
        simulation = SimulationConfig(
            group_faults=group_faults, **self.SIMULATION
        )
        pipeline = NevermindPipeline(
            simulation,
            PipelineConfig(warmup_weeks=13, predictor=self.PREDICTOR,
                           triage=triage),
        )
        pipeline.run()
        return pipeline

    def test_disabled_triage_is_bit_identical(self):
        plain = self._run(triage=None)
        triaged = self._run(triage=TriageConfig())
        # No group faults -> no clusters -> the stage must not perturb a
        # single submitted line or score.
        assert len(plain.reports) == len(triaged.reports)
        for a, b in zip(plain.reports, triaged.reports):
            np.testing.assert_array_equal(a.submitted, b.submitted)
            assert b.clusters_found == 0
            assert b.suppressed == 0
            assert b.backfilled == 0

    def test_correlated_world_produces_group_dispatches(self):
        group = GroupFaultConfig(
            n_dslam_events=1, n_binder_events=2, seed=21,
            event_window=(0.55, 0.8),
        )
        pipeline = self._run(triage=TriageConfig(), group_faults=group)
        summary = pipeline.summary()
        assert summary["clusters_found"] > 0
        assert summary["suppressed"] > 0
        dispatcher = pipeline.simulator.dispatcher
        assert len(dispatcher.group_records) == summary["clusters_found"]
        assert summary["group_problems_found"] == sum(
            1 for r in dispatcher.group_records if r.found_fault
        )
        # Capacity is never exceeded: per-line + group slots <= capacity.
        for report in pipeline.reports:
            slots = len(report.submitted) + report.clusters_found
            assert slots <= self.PREDICTOR.capacity


class TestServeEndpoint:
    def test_triage_route(self, small_store, small_predictor, tmp_path):
        from repro.serve import ModelBundle, ModelRegistry, ScoringService

        registry = ModelRegistry(tmp_path / "registry")
        registry.publish(
            ModelBundle(predictor=small_predictor, meta={}), activate=True
        )
        service = ScoringService(
            small_store.root, tmp_path / "registry", shard_size=500
        )
        status, payload = service.dispatch_request("GET", "/triage")
        assert status == 200
        assert payload["week"] == small_store.latest_week
        assert payload["capacity"] == small_predictor.config.capacity
        assert payload["n_clusters"] >= 0
        assert "plan" in payload
        assert payload["plan"]["n_per_line"] + \
            payload["plan"]["n_group_dispatches"] <= payload["capacity"]

        status, _ = service.dispatch_request("GET", "/triage?capacity=-2")
        assert status == 400
