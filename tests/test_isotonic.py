"""Tests for isotonic calibration (repro.ml.isotonic)."""

import numpy as np
import pytest

from repro.ml.calibration import PlattCalibrator
from repro.ml.isotonic import IsotonicCalibrator, pool_adjacent_violators


class TestPav:
    def test_already_monotone_unchanged(self):
        values = np.array([1.0, 2.0, 3.0])
        assert np.array_equal(pool_adjacent_violators(values), values)

    def test_single_violation_pooled(self):
        fit = pool_adjacent_violators(np.array([1.0, 3.0, 2.0]))
        assert list(fit) == [1.0, 2.5, 2.5]

    def test_output_nondecreasing(self, rng):
        values = rng.normal(size=200)
        fit = pool_adjacent_violators(values)
        assert np.all(np.diff(fit) >= -1e-12)

    def test_weighted_pooling(self):
        # Heavy weight on the second value dominates the pooled mean.
        fit = pool_adjacent_violators(
            np.array([3.0, 1.0]), weights=np.array([1.0, 9.0])
        )
        assert fit[0] == pytest.approx(1.2)
        assert fit[0] == fit[1]

    def test_preserves_weighted_mean(self, rng):
        values = rng.normal(size=100)
        weights = rng.uniform(0.5, 2.0, size=100)
        fit = pool_adjacent_violators(values, weights)
        assert np.average(fit, weights=weights) == pytest.approx(
            np.average(values, weights=weights)
        )

    def test_empty(self):
        assert pool_adjacent_violators(np.array([])).size == 0

    def test_bad_weights_rejected(self):
        with pytest.raises(ValueError):
            pool_adjacent_violators(np.ones(3), np.zeros(3))
        with pytest.raises(ValueError):
            pool_adjacent_violators(np.ones(3), np.ones(4))


class TestIsotonicCalibrator:
    def make_data(self, rng, n=20000, link=None):
        margins = rng.normal(scale=2.0, size=n)
        if link is None:
            link = lambda m: 1.0 / (1.0 + np.exp(-m))
        p = link(margins)
        return margins, (rng.random(n) < p).astype(float)

    def test_monotone_output(self, rng):
        margins, labels = self.make_data(rng)
        cal = IsotonicCalibrator().fit(margins, labels)
        grid = np.linspace(-6, 6, 50)
        probs = cal.transform(grid)
        assert np.all(np.diff(probs) >= -1e-12)
        assert np.all((probs > 0) & (probs < 1))

    def test_calibration_quality(self, rng):
        margins, labels = self.make_data(rng)
        cal = IsotonicCalibrator().fit(margins, labels)
        probs = cal.transform(margins)
        assert abs(probs.mean() - labels.mean()) < 0.02

    def test_beats_platt_on_non_sigmoid_link(self, rng):
        """A hard step link breaks the sigmoid assumption; isotonic
        adapts."""
        link = lambda m: np.where(m > 0.5, 0.9, 0.1)
        margins, labels = self.make_data(rng, n=40000, link=link)
        iso = IsotonicCalibrator().fit(margins, labels).transform(margins)
        platt = PlattCalibrator().fit(margins, labels).transform(margins)
        truth = link(margins)
        iso_mse = np.mean((iso - truth) ** 2)
        platt_mse = np.mean((platt - truth) ** 2)
        assert iso_mse < platt_mse

    def test_minus_one_labels(self, rng):
        margins, labels = self.make_data(rng, n=2000)
        cal = IsotonicCalibrator().fit(margins, np.where(labels > 0, 1.0, -1.0))
        assert cal.fitted_

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            IsotonicCalibrator().transform(np.zeros(2))

    def test_validation(self):
        with pytest.raises(ValueError):
            IsotonicCalibrator().fit(np.zeros(3), np.zeros(4))
        with pytest.raises(ValueError):
            IsotonicCalibrator().fit(np.array([]), np.array([]))

    def test_fit_transform(self, rng):
        margins, labels = self.make_data(rng, n=1000)
        a = IsotonicCalibrator().fit_transform(margins, labels)
        b = IsotonicCalibrator().fit(margins, labels).transform(margins)
        assert np.allclose(a, b)
