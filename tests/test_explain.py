"""Exact attribution, technician templates, and the two-stage report."""

from __future__ import annotations

import numpy as np
import pytest

from repro.explain import (
    assemble_model_row,
    attribute_ensemble,
    attribute_head,
    build_report,
    disposition_headline,
    no_locator_steps,
    technician_steps,
)
from repro.ml.boostexter import BStump, BStumpConfig
from repro.ml.ensemble_scoring import compile_multihead
from repro.netsim.components import DISPOSITIONS
from repro.serve import ModelBundle, ScoringEngine, StoredWorld


def _training_matrix(rng, n: int = 400, d: int = 8):
    """NaN-heavy synthetic data with one categorical column (index 2)."""
    X = rng.normal(size=(n, d)) * 4 + 10
    X[:, 2] = rng.integers(0, 5, size=n)
    X[rng.random((n, d)) < 0.15] = np.nan
    y = (
        np.nansum(X[:, :3], axis=1) + rng.normal(scale=2.0, size=n) > 30
    ).astype(int)
    categorical = np.zeros(d, dtype=bool)
    categorical[2] = True
    return X, y, categorical


class TestAttributionParity:
    """The vote fold must reproduce the compiled margin bit-for-bit."""

    @pytest.mark.parametrize("backend", ["exact", "hist"])
    def test_single_head_bit_identical(self, rng, backend):
        X, y, categorical = _training_matrix(rng)
        model = BStump(BStumpConfig(n_rounds=25, backend=backend)).fit(
            X, y, categorical=categorical
        )
        compiled = model.compiled()
        margins = compiled.decision_function(X[:40])
        for i in range(40):
            attribution = attribute_ensemble(compiled, X[i])
            assert attribution.margin == margins[i]
            assert attribution.reconstructed() == attribution.margin
            assert abs(
                sum(c.contribution for c in attribution.contributions)
                - attribution.margin
            ) <= 1e-12
            assert len(attribution.contributions) == len(compiled.groups)

    def test_multi_head_bit_identical(self, rng):
        X, y, categorical = _training_matrix(rng)
        heads = {}
        for head in range(3):
            labels = np.roll(y, 7 * head)
            heads[head] = (
                BStump(BStumpConfig(n_rounds=15))
                .fit(X, labels, categorical=categorical)
                .compiled()
            )
        multi = compile_multihead(heads, n_heads=4, n_features=X.shape[1])
        matrix = multi.decision_matrix(X[:25])
        for head, compiled in heads.items():
            solo = compiled.decision_function(X[:25])
            for i in range(25):
                attribution = attribute_head(multi, X[i], head)
                assert attribution.margin == matrix[i, head]
                assert attribution.margin == solo[i]
                assert attribution.reconstructed() == attribution.margin

    def test_missing_head_raises(self, rng):
        X, y, categorical = _training_matrix(rng)
        compiled = (
            BStump(BStumpConfig(n_rounds=5))
            .fit(X, y, categorical=categorical)
            .compiled()
        )
        multi = compile_multihead({0: compiled}, n_heads=4,
                                  n_features=X.shape[1])
        with pytest.raises(KeyError):
            attribute_head(multi, X[0], 3)

    def test_all_missing_row(self, rng):
        X, y, categorical = _training_matrix(rng)
        compiled = (
            BStump(BStumpConfig(n_rounds=20))
            .fit(X, y, categorical=categorical)
            .compiled()
        )
        row = np.full(X.shape[1], np.nan)
        attribution = attribute_ensemble(compiled, row)
        assert attribution.margin == compiled.decision_function(row[None])[0]
        assert all(c.missing for c in attribution.contributions)
        assert all("missing" in c.evidence for c in attribution.contributions)

    def test_shape_mismatch_rejected(self, rng):
        X, y, categorical = _training_matrix(rng)
        compiled = (
            BStump(BStumpConfig(n_rounds=5))
            .fit(X, y, categorical=categorical)
            .compiled()
        )
        with pytest.raises(ValueError):
            attribute_ensemble(compiled, X[0, :4])

    def test_ranked_fills_ranks_by_magnitude(self, rng):
        X, y, categorical = _training_matrix(rng)
        compiled = (
            BStump(BStumpConfig(n_rounds=25))
            .fit(X, y, categorical=categorical)
            .compiled()
        )
        attribution = attribute_ensemble(compiled, X[0])
        ranked = attribution.ranked()
        magnitudes = [abs(c.contribution) for c in ranked]
        assert magnitudes == sorted(magnitudes, reverse=True)
        assert [c.rank for c in ranked] == list(range(1, len(ranked) + 1))
        assert len(attribution.top(3)) == min(3, len(ranked))
        with pytest.raises(ValueError):
            attribution.top(0)


class TestTemplates:
    """Every catalog disposition must render, with no hand-kept table."""

    def test_all_52_dispositions_render(self):
        assert len(DISPOSITIONS) == 52
        for code in range(len(DISPOSITIONS)):
            steps = technician_steps(code)
            assert len(steps) >= 5
            assert steps[0].startswith("Dispatch to the ")
            assert DISPOSITIONS[code].name.lower() in steps[1]
            headline = disposition_headline(code)
            assert DISPOSITIONS[code].code in headline
            assert DISPOSITIONS[code].location.name in headline

    def test_no_trouble_found(self):
        steps = technician_steps(-1)
        assert steps and "no trouble found" in " ".join(steps)
        assert "no trouble found" in disposition_headline(-1)

    def test_no_locator_fallback(self):
        steps = no_locator_steps()
        assert steps and "No locator" in steps[0]

    def test_out_of_catalog_raises(self):
        with pytest.raises(IndexError):
            technician_steps(len(DISPOSITIONS))


@pytest.fixture(scope="module")
def explain_engine(small_store, small_predictor, small_locator):
    world = StoredWorld(small_store)
    return ScoringEngine(
        ModelBundle(predictor=small_predictor, locator=small_locator),
        world,
        shard_size=500,
        model_version="vtest",
    )


class TestReport:
    """End-to-end: reports reconstruct the served scores exactly."""

    def test_assemble_matches_served_margins(
        self, explain_engine, small_store, small_predictor
    ):
        week = small_store.latest_week
        base = explain_engine.base_features(week)
        compiled = small_predictor.model.compiled()
        sample = np.linspace(0, small_store.n_lines - 1, 30).astype(int)
        rows = np.stack([
            assemble_model_row(base.matrix[i], small_predictor.recipes)
            for i in sample
        ])
        margins = compiled.decision_function(rows)
        scored = explain_engine.score_week(week)
        calibrator = small_predictor.model.calibrator
        for pos, line in enumerate(sample):
            attribution = attribute_ensemble(compiled, rows[pos])
            assert attribution.margin == margins[pos]
            calibrated = float(
                calibrator.transform(np.array([attribution.margin]))[0]
            )
            assert calibrated == float(scored.scores[line])

    def test_report_two_stage_rendering(self, explain_engine, small_store):
        week = small_store.latest_week
        report = explain_engine.explain(week, 123, top_k=5)
        assert report.attribution_exact
        assert report.n_contributors >= 5
        assert len(report.attributions) == 5
        assert report.attributions[0]["rank"] == 1
        assert report.disposition is not None
        assert report.next_steps
        payload = report.to_dict()
        assert payload["line"] == 123 and payload["week"] == week
        rendered = report.render_text()
        assert "=== diagnostic summary ===" in rendered
        assert "=== technician next steps ===" in rendered
        assert report.disposition["headline"] in rendered

    def test_report_plant_context(
        self, explain_engine, small_store, small_result
    ):
        topology = small_result.population.topology
        report = explain_engine.explain(small_store.latest_week, 42)
        assert report.plant["dslam"] == int(topology.line_dslam[42])
        binder = int(topology.binder_of_line(42))
        expected = binder if binder >= 0 else None
        assert report.plant["binder"] == expected

    def test_report_triage_membership(
        self, explain_engine, small_store, small_result, small_predictor
    ):
        from repro.fleet import find_clusters

        week = small_store.latest_week
        scored = explain_engine.score_week(week)
        triage = find_clusters(
            scored.scores,
            small_result.population.topology,
            small_predictor.config.capacity,
        )
        inside = {
            int(i) for c in triage.clusters for i in c.line_ids
        }
        line = min(inside) if inside else 0
        report = explain_engine.explain(week, line, triage=triage)
        if inside:
            cluster = triage.cluster_of_line(line)
            assert report.plant["triage"]["level"] == cluster.level
            assert report.plant["triage"]["group_id"] == cluster.group_id
        else:
            assert report.plant["triage"] is None

    def test_no_locator_falls_back(
        self, small_store, small_predictor, small_result
    ):
        week = small_store.latest_week
        world = StoredWorld(small_store)
        engine = ScoringEngine(
            ModelBundle(predictor=small_predictor), world, shard_size=500
        )
        report = engine.explain(week, 7)
        assert report.disposition is None
        assert report.next_steps == no_locator_steps()
        assert "unavailable (no locator)" in report.render_text()

    def test_build_report_validates_top_k(
        self, explain_engine, small_store, small_predictor, small_result
    ):
        base = explain_engine.base_features(small_store.latest_week)
        with pytest.raises(ValueError):
            build_report(
                line=0,
                week=0,
                day=6,
                model_version=None,
                predictor=small_predictor,
                base_row=base.matrix[0],
                p_ticket=0.5,
                topology=small_result.population.topology,
                top_k=0,
            )

    def test_line_out_of_range(self, explain_engine, small_store):
        with pytest.raises(IndexError):
            explain_engine.explain(small_store.latest_week, 10**6)
