"""Unit tests for the disposition catalog (repro.netsim.components)."""

import numpy as np
import pytest

from repro.netsim.components import (
    DISPOSITION_INDEX,
    DISPOSITIONS,
    Location,
    disposition_arrays,
    dispositions_at,
)


class TestCatalogShape:
    def test_exactly_52_dispositions(self):
        """Section 6.3 trains models for 52 dispositions."""
        assert len(DISPOSITIONS) == 52

    def test_codes_unique_and_indexed(self):
        assert len(DISPOSITION_INDEX) == 52
        for code, idx in DISPOSITION_INDEX.items():
            assert DISPOSITIONS[idx].code == code

    def test_every_location_populated(self):
        for location in Location:
            assert len(dispositions_at(location)) >= 8

    def test_no_dominant_disposition_per_location(self):
        """Section 2.2: 'there is no dominant disposition in these major
        locations'."""
        for location in Location:
            rates = [d.onset_rate for d in dispositions_at(location)]
            assert max(rates) / sum(rates) < 0.5

    def test_total_weekly_rate_below_few_percent(self):
        total = sum(d.onset_rate for d in DISPOSITIONS)
        assert 0.001 < total < 0.05

    def test_code_prefix_matches_location(self):
        prefixes = {Location.HN: "hn-", Location.F2: "f2-",
                    Location.F1: "f1-", Location.DS: "ds-"}
        for d in DISPOSITIONS:
            assert d.code.startswith(prefixes[d.location])


class TestSemantics:
    def test_hard_failures_are_perceivable(self):
        for d in DISPOSITIONS:
            if d.hard_failure:
                assert d.perceivability >= 0.3

    def test_effects_in_valid_ranges(self):
        for d in DISPOSITIONS:
            assert 0.0 <= d.effect.rate_factor <= 1.0
            assert 0.0 <= d.effect.dropout <= 1.0
            assert 0.0 <= d.effect.off_prob <= 1.0
            assert 0.0 < d.effect.cells_factor <= 1.0
            assert d.effect.noise_db >= 0.0
            assert d.effect.atten_db >= 0.0

    def test_probabilities_are_probabilities(self):
        for d in DISPOSITIONS:
            assert 0.0 < d.onset_rate < 1.0
            assert 0.0 < d.perceivability <= 1.0
            assert 0.0 <= d.self_clear < 1.0
            assert 0.0 < d.severity_growth <= 1.0

    def test_bridge_tap_dispositions_set_flag(self):
        bt = DISPOSITIONS[DISPOSITION_INDEX["f1-bridge-tap-removed"]]
        assert bt.effect.sets_bt
        assert bt.effect.rate_factor < 1.0

    def test_location_description_nonempty(self):
        for location in Location:
            assert location.description


class TestArrays:
    def test_arrays_align_with_catalog(self):
        arrays = disposition_arrays()
        assert arrays.n == 52
        for i, d in enumerate(DISPOSITIONS):
            assert arrays.onset_rate[i] == d.onset_rate
            assert arrays.location[i] == int(d.location)
            assert arrays.rate_factor[i] == d.effect.rate_factor

    def test_array_dtypes(self):
        arrays = disposition_arrays()
        assert arrays.hard_failure.dtype == bool
        assert arrays.sets_bt.dtype == bool
        assert np.issubdtype(arrays.location.dtype, np.integer)
