"""Unit tests for the Table-3 feature encoding (repro.features.encoding)."""

import numpy as np
import pytest

from repro.features.encoding import EncoderConfig, FeatureSet, LineFeatureEncoder
from repro.measurement.records import FEATURE_NAMES, feature_index


@pytest.fixture(scope="module")
def encoded(small_result_module):
    encoder = LineFeatureEncoder()
    week = 12
    return encoder.encode(
        small_result_module.measurements, week, small_result_module.population,
        small_result_module.ticket_log,
    )


@pytest.fixture(scope="module")
def small_result_module(request):
    return request.getfixturevalue("small_result")


class TestBaseEncoding:
    def test_family_layout(self, encoded):
        groups = encoded.groups
        assert groups.count("basic") == 25
        assert groups.count("delta") == 25
        assert groups.count("timeseries") == 25
        assert groups.count("profile") == 6
        assert groups.count("ticket") == 1
        assert groups.count("modem") == 1
        assert encoded.n_features == 83

    def test_base_count_helper(self):
        assert LineFeatureEncoder().base_feature_count() == 83

    def test_basic_block_matches_store(self, encoded, small_result_module):
        week_matrix = small_result_module.measurements.week_matrix(12)
        basic = encoded.matrix[:, :25]
        assert np.allclose(basic, week_matrix, equal_nan=True, atol=1e-5)

    def test_delta_block_is_difference(self, encoded, small_result_module):
        store = small_result_module.measurements
        expected = np.asarray(store.week_matrix(12), float) - np.asarray(
            store.week_matrix(11), float
        )
        delta = encoded.matrix[:, 25:50]
        assert np.allclose(delta, expected, equal_nan=True, atol=1e-4)

    def test_timeseries_standardised(self, encoded):
        ts = encoded.matrix[:, 50:75]
        finite = ts[np.isfinite(ts)]
        # Standardised deviations concentrate near zero.
        assert np.abs(np.median(finite)) < 1.0
        assert np.percentile(np.abs(finite), 90) < 6.0

    def test_profile_features_near_one_for_healthy(self, encoded):
        names = encoded.names
        col = encoded.matrix[:, names.index("profile:dnbr")]
        finite = col[np.isfinite(col)]
        # Most lines sync at their profile rate => ratio ~1.
        assert 0.7 < np.median(finite) <= 1.05

    def test_ticket_feature_capped(self, encoded):
        col = encoded.column("ticket:days_since_last")
        assert np.all(col > 0)
        assert np.max(col) == 365.0

    def test_modem_feature_fraction(self, encoded):
        col = encoded.column("modem:off_fraction")
        assert np.all((col >= 0) & (col <= 1))

    def test_categorical_mask(self, encoded):
        for name, flag in zip(encoded.names, encoded.categorical):
            if flag:
                assert name in ("basic:state", "basic:bt", "basic:crosstalk")


class TestDerived:
    def test_quadratic_columns(self, small_result_module):
        encoder = LineFeatureEncoder(EncoderConfig(include_quadratic=True))
        fs = encoder.encode(
            small_result_module.measurements, 12,
            small_result_module.population, small_result_module.ticket_log,
        )
        assert fs.groups.count("quadratic") == 83
        quad = fs.matrix[:, 83:166]
        base = fs.matrix[:, :83]
        assert np.allclose(quad, base**2, equal_nan=True)

    def test_product_pairs(self, small_result_module):
        encoder = LineFeatureEncoder(EncoderConfig(include_products=True))
        pairs = [(0, 1), (5, 7)]
        fs = encoder.encode(
            small_result_module.measurements, 12,
            small_result_module.population, small_result_module.ticket_log,
            product_pairs=pairs,
        )
        assert fs.groups.count("product") == 2
        prod = fs.matrix[:, -2:]
        base = fs.matrix[:, :83]
        assert np.allclose(prod[:, 0], base[:, 0] * base[:, 1], equal_nan=True)
        assert np.allclose(prod[:, 1], base[:, 5] * base[:, 7], equal_nan=True)

    def test_bad_product_pair_rejected(self, small_result_module):
        encoder = LineFeatureEncoder(EncoderConfig(include_products=True))
        with pytest.raises(IndexError):
            encoder.encode(
                small_result_module.measurements, 12,
                small_result_module.population, small_result_module.ticket_log,
                product_pairs=[(0, 999)],
            )


class TestEdgeCases:
    def test_unrecorded_week_rejected(self, small_result_module):
        encoder = LineFeatureEncoder()
        with pytest.raises(ValueError):
            encoder.encode(
                small_result_module.measurements, 999,
                small_result_module.population,
            )

    def test_week_zero_has_nan_delta(self, small_result_module):
        encoder = LineFeatureEncoder()
        fs = encoder.encode(
            small_result_module.measurements, 0,
            small_result_module.population,
        )
        delta = fs.matrix[:, 25:50]
        assert np.all(np.isnan(delta))

    def test_no_ticket_log_defaults(self, small_result_module):
        encoder = LineFeatureEncoder()
        fs = encoder.encode(
            small_result_module.measurements, 12,
            small_result_module.population, ticket_log=None,
        )
        assert np.all(fs.column("ticket:days_since_last") == 365.0)

    def test_min_history_records_gate(self, small_result_module):
        encoder = LineFeatureEncoder(EncoderConfig(min_history_records=999))
        fs = encoder.encode(
            small_result_module.measurements, 12,
            small_result_module.population,
        )
        assert np.all(np.isnan(fs.matrix[:, 50:75]))


class TestFeatureSet:
    def make(self):
        return FeatureSet(
            matrix=np.arange(12, dtype=float).reshape(3, 4),
            names=["a", "b", "c", "d"],
            groups=["basic"] * 4,
            categorical=np.array([False, True, False, False]),
        )

    def test_column_lookup(self):
        fs = self.make()
        assert np.array_equal(fs.column("b"), np.array([1.0, 5.0, 9.0]))
        with pytest.raises(KeyError):
            fs.column("zzz")

    def test_subset(self):
        fs = self.make().subset([1, 3])
        assert fs.names == ["b", "d"]
        assert fs.matrix.shape == (3, 2)
        assert fs.categorical[0]

    def test_hstack(self):
        fs = self.make()
        combined = fs.hstack(fs)
        assert combined.n_features == 8

    def test_hstack_rejects_mismatched_rows(self):
        fs = self.make()
        other = FeatureSet(
            matrix=np.zeros((2, 1)), names=["x"], groups=["basic"],
            categorical=np.array([False]),
        )
        with pytest.raises(ValueError):
            fs.hstack(other)
