"""Unit tests for logistic regression with Wald inference (repro.ml.logistic)."""

import numpy as np
import pytest

from repro.ml.logistic import fit_logistic_regression


def logit_data(rng, n=5000, beta=(0.8, -1.2), intercept=0.4):
    X = rng.normal(size=(n, len(beta)))
    z = intercept + X @ np.array(beta)
    y = (rng.random(n) < 1.0 / (1.0 + np.exp(-z))).astype(float)
    return X, y


class TestFit:
    def test_recovers_coefficients(self, rng):
        X, y = logit_data(rng)
        fit = fit_logistic_regression(X, y)
        assert fit.converged
        assert fit.coefficients == pytest.approx([0.8, -1.2], abs=0.15)
        assert fit.intercept == pytest.approx(0.4, abs=0.15)

    def test_significant_covariate_small_p(self, rng):
        X, y = logit_data(rng)
        fit = fit_logistic_regression(X, y)
        assert np.all(fit.p_values < 0.01)

    def test_noise_covariate_large_p(self, rng):
        X, y = logit_data(rng, beta=(1.0, 0.0))
        fit = fit_logistic_regression(X, y)
        assert fit.p_values[0] < 0.01
        assert fit.p_values[1] > 0.05

    def test_accepts_1d_design(self, rng):
        X, y = logit_data(rng, beta=(1.0,))
        fit = fit_logistic_regression(X[:, 0], y)
        assert fit.coefficients.shape == (1,)

    def test_accepts_plus_minus_labels(self, rng):
        X, y = logit_data(rng, n=500)
        fit = fit_logistic_regression(X, np.where(y > 0, 1.0, -1.0))
        assert fit.converged

    def test_rejects_nonbinary(self, rng):
        X = rng.normal(size=(10, 1))
        with pytest.raises(ValueError):
            fit_logistic_regression(X, np.arange(10.0))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            fit_logistic_regression(np.empty((0, 1)), np.empty(0))

    def test_rejects_shape_mismatch(self, rng):
        with pytest.raises(ValueError):
            fit_logistic_regression(rng.normal(size=(5, 1)), np.zeros(4))

    def test_separable_data_is_finite(self):
        X = np.linspace(-1, 1, 40)[:, None]
        y = (X[:, 0] > 0).astype(float)
        fit = fit_logistic_regression(X, y)
        assert np.all(np.isfinite(fit.coefficients))
        assert np.all(np.isfinite(fit.std_errors))

    def test_standard_errors_shrink_with_n(self, rng):
        X_small, y_small = logit_data(rng, n=300)
        X_big, y_big = logit_data(rng, n=30000)
        se_small = fit_logistic_regression(X_small, y_small).std_errors[0]
        se_big = fit_logistic_regression(X_big, y_big).std_errors[0]
        assert se_big < se_small


class TestPredict:
    def test_predict_proba_range_and_quality(self, rng):
        X, y = logit_data(rng)
        fit = fit_logistic_regression(X, y)
        p = fit.predict_proba(X)
        assert np.all((p >= 0) & (p <= 1))
        assert np.mean((p > 0.5) == (y > 0.5)) > 0.7

    def test_hard_predict(self, rng):
        X, y = logit_data(rng, n=500)
        fit = fit_logistic_regression(X, y)
        labels = fit.predict(X)
        assert set(np.unique(labels)) <= {0, 1}

    def test_log_likelihood_negative(self, rng):
        X, y = logit_data(rng, n=500)
        fit = fit_logistic_regression(X, y)
        assert fit.log_likelihood < 0
