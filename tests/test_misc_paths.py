"""Coverage for smaller paths: pipeline internals, result helpers, reports."""

import numpy as np
import pytest

from repro.core.pipeline import NevermindPipeline, PipelineConfig, WeeklyReport
from repro.core.predictor import PredictorConfig
from repro.netsim.population import PopulationConfig
from repro.netsim.simulator import (
    DslSimulator,
    FaultEvent,
    SimulationConfig,
)


class TestWeeklyReport:
    def test_precision_zero_when_empty(self):
        report = WeeklyReport(
            week=3, submitted=np.array([], dtype=int), real_problems=0,
            fixed=0, no_trouble_found=0,
        )
        assert report.precision == 0.0

    def test_precision_ratio(self):
        report = WeeklyReport(
            week=3, submitted=np.arange(10), real_problems=4, fixed=3,
            no_trouble_found=6,
        )
        assert report.precision == pytest.approx(0.4)


class TestFaultEvent:
    def test_active_window_semantics(self):
        event = FaultEvent(line_id=1, disposition=2, onset_day=10,
                           cleared_day=20)
        assert not event.active_on(9)
        assert event.active_on(10)
        assert event.active_on(19)
        assert not event.active_on(20)  # cleared that day

    def test_open_event_active_forever(self):
        event = FaultEvent(line_id=1, disposition=2, onset_day=10)
        assert event.active_on(10_000)

    def test_fault_active_on_matches_events(self, small_result):
        day = 70
        mask = small_result.fault_active_on(day)
        expected = np.zeros(small_result.n_lines, dtype=bool)
        for event in small_result.fault_events:
            if event.active_on(day):
                expected[event.line_id] = True
        assert np.array_equal(mask, expected)


class TestPipelineTrainingSplit:
    def make_pipeline(self, warmup):
        return NevermindPipeline(
            SimulationConfig(n_weeks=30,
                             population=PopulationConfig(n_lines=100)),
            PipelineConfig(warmup_weeks=warmup,
                           predictor=PredictorConfig(horizon_weeks=4)),
        )

    def test_split_fits_history(self):
        pipeline = self.make_pipeline(warmup=16)
        split = pipeline._training_split(week=15)
        split.validate(16)
        # Every labeled week leaves a full horizon before "now".
        for week in split.train_weeks + split.selection_weeks:
            assert week * 7 + 5 + 28 <= 16 * 7 - 1

    def test_split_scales_with_more_history(self):
        pipeline = self.make_pipeline(warmup=25)
        split = pipeline._training_split(week=24)
        assert len(split.history_weeks) > 5
        assert len(split.train_weeks) >= 2

    def test_retrain_cadence(self):
        config = SimulationConfig(
            n_weeks=24, population=PopulationConfig(n_lines=600, seed=3),
            fault_rate_scale=6.0, seed=9,
        )
        pipeline = NevermindPipeline(
            config,
            PipelineConfig(
                warmup_weeks=16, retrain_every=3,
                predictor=PredictorConfig(
                    capacity=20, train_rounds=10, selection_rounds=2,
                    include_derived=False,
                ),
            ),
        )
        trained_weeks = []
        original_fit = pipeline.predictor.fit

        def tracking_fit(result, split):
            trained_weeks.append(pipeline.simulator.week)
            return original_fit(result, split)

        pipeline.predictor.fit = tracking_fit
        pipeline.run()
        assert len(trained_weeks) >= 2  # initial train + a retrain


class TestSimulationResultHelpers:
    def test_result_snapshot_midway(self):
        sim = DslSimulator(SimulationConfig(
            n_weeks=6, population=PopulationConfig(n_lines=200)))
        sim.run(n_weeks=2)
        snapshot = sim.result()
        assert list(snapshot.measurements.filled_weeks) == [0, 1]
        sim.run()
        assert len(sim.result().measurements.filled_weeks) == 6

    def test_n_lines_property(self, small_result):
        assert small_result.n_lines == small_result.population.n_lines
