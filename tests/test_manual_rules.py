"""Tests for the Section-3.3 manual escalation rules baseline."""

import numpy as np
import pytest

from repro.features.manual_rules import (
    LOOP_LENGTH_DOWNGRADE_FT,
    RELATIVE_CAPACITY_ESCALATION,
    manual_rule_flags,
    manual_rule_score,
)
from repro.ml.metrics import precision_at


@pytest.fixture(scope="module")
def week_state(small_result):
    week = 12
    matrix = small_result.measurements.week_matrix(week)
    day = int(small_result.measurements.saturday_day[week])
    return np.asarray(matrix, dtype=float), day


class TestRuleSemantics:
    def test_paper_constants(self):
        assert RELATIVE_CAPACITY_ESCALATION == 0.92
        assert LOOP_LENGTH_DOWNGRADE_FT == 15_000.0

    def test_flags_shapes_and_types(self, small_result, week_state):
        matrix, _ = week_state
        flags = manual_rule_flags(matrix, small_result.population)
        assert set(flags) == {
            "below_min_rate", "high_relative_capacity", "long_loop",
            "modem_unreachable",
        }
        for values in flags.values():
            assert values.dtype == bool
            assert values.shape == (small_result.n_lines,)

    def test_long_loop_rule_tracks_true_loops(self, small_result, week_state):
        matrix, _ = week_state
        flags = manual_rule_flags(matrix, small_result.population)
        flagged = flags["long_loop"]
        if flagged.any():
            assert small_result.population.loop_kft[flagged].mean() > 13.0

    def test_missing_records_do_not_fire_rate_rules(self, small_result, week_state):
        matrix, _ = week_state
        flags = manual_rule_flags(matrix, small_result.population)
        missing = np.isnan(matrix[:, 1])  # dnbr missing
        assert not flags["below_min_rate"][missing].any()
        assert flags["modem_unreachable"][missing].all()

    def test_size_mismatch_rejected(self, small_result):
        with pytest.raises(ValueError):
            manual_rule_flags(np.zeros((3, 25)), small_result.population)


class TestRuleQuality:
    def test_rules_enrich_for_real_faults(self, small_result, week_state):
        """The manual rules are not useless -- they fire disproportionately
        on genuinely faulty lines (that is why operators used them)."""
        matrix, day = week_state
        score = manual_rule_score(matrix, small_result.population)
        active = small_result.fault_active_on(day)
        flagged = score > 0
        assert active[flagged].mean() > active.mean()

    def test_learned_model_beats_manual_rules(self, small_result, small_split):
        """The paper's premise: learned inference outranks rule counting."""
        from repro.core.predictor import PredictorConfig, TicketPredictor

        week = small_split.test_weeks[0]
        matrix = np.asarray(small_result.measurements.week_matrix(week), float)
        manual = manual_rule_score(matrix, small_result.population)

        predictor = TicketPredictor(
            PredictorConfig(capacity=60, horizon_weeks=3, train_rounds=60,
                            selection_rounds=3, product_pool=8)
        ).fit(small_result, small_split)
        learned = predictor.score_week(small_result, week)

        day = int(small_result.measurements.saturday_day[week])
        labels = (
            small_result.ticket_log.first_edge_ticket_after(
                small_result.n_lines, day, 21
            ) >= 0
        ).astype(float)
        p_manual = precision_at(labels, 60, manual)
        p_learned = precision_at(labels, 60, learned)
        assert p_learned > p_manual
