"""Unit tests for the ranking metrics (repro.ml.metrics)."""

import numpy as np
import pytest

from repro.ml.metrics import (
    accuracy_at_n,
    auc,
    average_precision,
    entropy,
    gain_ratio,
    precision_at,
    rank_by_score,
    roc_curve,
    top_n_average_precision,
)


class TestRankByScore:
    def test_descending_order(self):
        order = rank_by_score(np.array([0.1, 0.9, 0.5]))
        assert list(order) == [1, 2, 0]

    def test_stable_ties(self):
        order = rank_by_score(np.array([0.5, 0.5, 0.5]))
        assert list(order) == [0, 1, 2]


class TestPrecisionAt:
    def test_perfect_prefix(self):
        labels = np.array([1, 1, 0, 0])
        assert precision_at(labels, 2) == 1.0

    def test_with_scores(self):
        labels = np.array([0, 1, 0, 1])
        scores = np.array([0.1, 0.9, 0.2, 0.8])
        assert precision_at(labels, 2, scores) == 1.0

    def test_r_larger_than_list_uses_whole_list(self):
        labels = np.array([1, 0])
        assert precision_at(labels, 10) == 0.5

    def test_rejects_nonpositive_r(self):
        with pytest.raises(ValueError):
            precision_at(np.array([1, 0]), 0)


class TestTopNAveragePrecision:
    def test_perfect_ranking_with_enough_positives(self):
        labels = np.ones(5)
        assert top_n_average_precision(labels, 5) == 1.0

    def test_no_positives_in_top(self):
        labels = np.array([0, 0, 0, 1, 1])
        assert top_n_average_precision(labels, 3) == 0.0

    def test_paper_definition_by_hand(self):
        # ranks:      1  2  3  4
        # labels:     1  0  1  0
        # Prec(r):    1 .5 2/3 .5
        # AP(4) = (1*1 + 2/3*1) / 4
        labels = np.array([1, 0, 1, 0])
        expected = (1.0 + 2.0 / 3.0) / 4.0
        assert top_n_average_precision(labels, 4) == pytest.approx(expected)

    def test_prefers_front_loaded_rankings(self):
        front = top_n_average_precision(np.array([1, 1, 0, 0]), 4)
        back = top_n_average_precision(np.array([0, 0, 1, 1]), 4)
        assert front > back

    def test_scores_reorder_labels(self):
        labels = np.array([0, 1])
        scores = np.array([0.2, 0.9])
        assert top_n_average_precision(labels, 1, scores) == 1.0

    def test_rejects_nonpositive_n(self):
        with pytest.raises(ValueError):
            top_n_average_precision(np.array([1.0]), 0)


class TestAveragePrecision:
    def test_perfect(self):
        assert average_precision(np.array([1, 1, 0, 0])) == 1.0

    def test_no_positives_is_zero(self):
        assert average_precision(np.zeros(4)) == 0.0

    def test_known_value(self):
        # positives at ranks 1 and 3: AP = (1 + 2/3) / 2
        labels = np.array([1, 0, 1, 0])
        assert average_precision(labels) == pytest.approx((1 + 2 / 3) / 2)


class TestAccuracyAtN:
    def test_matches_paper_definition(self):
        labels = np.array([1, 1, 0, 1, 0])
        scores = -np.arange(5.0)
        assert accuracy_at_n(labels, 3, scores) == pytest.approx(2 / 3)


class TestRocAuc:
    def test_perfect_separation(self):
        labels = np.array([1, 1, 0, 0])
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        assert auc(labels, scores) == pytest.approx(1.0)

    def test_reversed_separation(self):
        labels = np.array([1, 1, 0, 0])
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        assert auc(labels, scores) == pytest.approx(0.0)

    def test_random_scores_near_half(self, rng):
        labels = rng.integers(0, 2, size=4000)
        scores = rng.random(4000)
        assert abs(auc(labels, scores) - 0.5) < 0.05

    def test_single_class_defaults_to_half(self):
        assert auc(np.zeros(5), np.arange(5.0)) == 0.5

    def test_roc_endpoints(self):
        labels = np.array([1, 0, 1, 0])
        scores = np.array([0.9, 0.7, 0.5, 0.1])
        fpr, tpr = roc_curve(labels, scores)
        assert fpr[0] == 0.0 and tpr[0] == 0.0
        assert fpr[-1] == 1.0 and tpr[-1] == 1.0
        assert np.all(np.diff(fpr) >= 0)
        assert np.all(np.diff(tpr) >= 0)

    def test_roc_shape_mismatch(self):
        with pytest.raises(ValueError):
            roc_curve(np.array([1, 0]), np.array([0.5]))


class TestEntropyGainRatio:
    def test_entropy_uniform_binary(self):
        assert entropy(np.array([0, 1, 0, 1])) == pytest.approx(1.0)

    def test_entropy_pure(self):
        assert entropy(np.ones(10)) == 0.0

    def test_entropy_empty(self):
        assert entropy(np.array([])) == 0.0

    def test_gain_ratio_informative_feature(self, rng):
        labels = rng.integers(0, 2, size=2000)
        feature = labels + 0.01 * rng.normal(size=2000)
        noise = rng.normal(size=2000)
        assert gain_ratio(feature, labels) > gain_ratio(noise, labels)

    def test_gain_ratio_handles_missing(self, rng):
        labels = rng.integers(0, 2, size=500)
        feature = labels.astype(float)
        feature[:100] = np.nan
        assert gain_ratio(feature, labels) > 0.1

    def test_gain_ratio_constant_feature_is_zero(self):
        labels = np.array([0, 1, 0, 1])
        assert gain_ratio(np.ones(4), labels) == 0.0

    def test_gain_ratio_shape_mismatch(self):
        with pytest.raises(ValueError):
            gain_ratio(np.ones(3), np.ones(4))
