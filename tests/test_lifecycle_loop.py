"""The closed continuous-training loop, end to end and deterministic.

One module-scoped run drives the full drama the subsystem exists for:

1. the pipeline warm-up trains and registers the initial champion;
2. live calibration drift trips the scheduler (the cadence clock is off,
   so the retrain is *drift*-triggered);
3. the challenger is shadow-scored next to the champion and promoted
   through the real gate (the margin is opened wide so the gate path --
   not a forced override -- runs);
4. the next challenger is sabotaged (every stump score negated, so it
   ranks lines exactly backwards) and sails through the wide-open gate;
5. the watchdog sees its live precision collapse and rolls the registry
   back to the previous champion automatically.

Every decision must then be visible in three independent places: the
hash-chained decision log, the registry manifest's event trail, and the
obs metrics registry.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import _inverted_challenger
from repro.core.pipeline import NevermindPipeline, PipelineConfig
from repro.core.predictor import PredictorConfig, TicketPredictor
from repro.lifecycle import (
    DecisionLog,
    LifecycleConfig,
    LifecycleController,
    PromotionGate,
    ShadowEvaluator,
    lifecycle_status,
)
from repro.netsim.population import PopulationConfig
from repro.netsim.simulator import SimulationConfig
from repro.obs.metrics import get_registry
from repro.serve import (
    LineWeekStore,
    ModelBundle,
    ModelRegistry,
    ScoringEngine,
    StoredWorld,
    score_bundles,
)


def _metric_total(snapshot: dict, name: str) -> float:
    return sum(
        s["value"] for s in snapshot.get(name, {}).get("samples", [])
    )


@pytest.fixture(scope="module")
def loop(tmp_path_factory):
    root = tmp_path_factory.mktemp("lifecycle")
    simulation = SimulationConfig(
        n_weeks=20,
        population=PopulationConfig(n_lines=1500, seed=13),
        fault_rate_scale=6.0,
        seed=77,
    )
    pipeline = NevermindPipeline(
        simulation,
        PipelineConfig(
            warmup_weeks=13,
            retrain_every=0,  # the controller owns every retrain
            predictor=PredictorConfig(
                capacity=40, horizon_weeks=3, train_rounds=40,
                selection_rounds=3, include_derived=False,
            ),
        ),
        store=LineWeekStore.create(
            root / "store", 1500, simulation.population
        ),
        registry=ModelRegistry(root / "registry"),
    )
    config = LifecycleConfig(
        cadence_weeks=0,                   # drift triggers only
        drift_calibration_threshold=1e-9,  # any live week trips the wire
        drift_baseline_window=1,
        drift_recent_window=1,
        drift_cooldown_weeks=2,
        shadow_weeks=2,
        bootstrap_samples=100,
        non_inferiority_margin=1.0,        # the real gate passes anything
        watchdog_drop=0.7,
        watchdog_patience=1,
        seed=4,
    )
    before = get_registry().snapshot()
    controller = LifecycleController(pipeline, config)
    sabotaged = False
    rolled_back = False
    while pipeline.simulator.week < simulation.n_weeks:
        controller.step()
        actions = [r.action for r in controller.log.records()]
        if "promote" in actions and not sabotaged:
            controller.challenger_factory = (
                lambda week: _inverted_challenger(pipeline, week)
            )
            sabotaged = True
        if "rollback" in actions:
            rolled_back = True
            break
    after = get_registry().snapshot()
    assert rolled_back, (
        "the drama never reached the rollback act; decisions: "
        f"{[r.action for r in controller.log.records()]}"
    )
    return {
        "controller": controller,
        "pipeline": pipeline,
        "registry": pipeline.registry,
        "root": root,
        "metrics_before": before,
        "metrics_after": after,
    }


class TestFullLoop:
    def test_bootstrap_registers_the_warmup_champion(self, loop):
        records = loop["controller"].log.records()
        assert records[0].action == "bootstrap"
        assert records[0].details["version"] == "v0001"
        assert records[0].details["config"]["watchdog_patience"] == 1

    def test_retrain_is_drift_triggered(self, loop):
        retrains = [
            r for r in loop["controller"].log.records()
            if r.action == "retrain"
        ]
        assert len(retrains) >= 2
        # The cadence clock is disabled, so only drift can have fired.
        assert retrains[0].details["reason"] == "calibration_drift"
        assert retrains[0].details["challenger_version"] == "v0002"
        assert retrains[0].details["champion_version"] == "v0001"

    def test_gated_promotion_records_shadow_evidence(self, loop):
        promotes = [
            r for r in loop["controller"].log.records()
            if r.action == "promote"
        ]
        assert len(promotes) >= 2
        first = promotes[0]
        assert first.details["version"] == "v0002"
        assert first.details["reason"] == "non_inferior"
        shadow = first.details["shadow"]
        assert len(shadow["weeks"]) == 2
        assert shadow["delta_ci_low"] <= shadow["delta_ci_high"]
        assert shadow["capacity"] == 40
        for row in shadow["per_week"]:
            assert 0.0 <= row["champion_precision"] <= 1.0
            assert 0.0 <= row["challenger_precision"] <= 1.0

    def test_saboteur_shadowed_as_clearly_worse(self, loop):
        # The inverted challenger loses the shadow comparison outright; it
        # is promoted only because the margin was opened to 1.0 -- which is
        # precisely why the watchdog exists.
        saboteur = [
            r for r in loop["controller"].log.records()
            if r.action == "promote"
        ][1]
        assert saboteur.details["version"] == "v0003"
        assert saboteur.details["shadow"]["precision_delta"] < -0.2

    def test_watchdog_rolls_back_to_previous_champion(self, loop):
        records = loop["controller"].log.records()
        rollback = [r for r in records if r.action == "rollback"][-1]
        assert rollback.details["rolled_back"] == "v0003"
        assert rollback.details["restored"] == "v0002"
        assert rollback.details["live_precision"] < rollback.details["floor"]
        registry = loop["registry"]
        assert registry.active == "v0002"
        cited = rollback.details["registry_event"]
        assert cited["action"] == "rollback"
        assert cited["rolled_back"] == "v0003"

    def test_pipeline_serves_the_restored_champion(self, loop):
        pipeline = loop["pipeline"]
        restored = loop["registry"].load("v0002").predictor
        result = pipeline.simulator.result()
        week = 13
        assert np.array_equal(
            pipeline.predictor.score_week(result, week),
            restored.score_week(result, week),
        )

    def test_registry_event_trail_matches(self, loop):
        actions = [e["action"] for e in loop["registry"].events]
        assert actions.count("publish") >= 3
        assert actions.count("activate") >= 3
        assert actions.count("rollback") == 1
        reopened = ModelRegistry(loop["registry"].root)
        assert [e["action"] for e in reopened.events] == actions

    def test_decision_chain_verifies_from_disk(self, loop):
        log = loop["controller"].log
        assert log.verify() == []
        reloaded = DecisionLog(log.path)
        assert reloaded.verify() == []
        assert reloaded.head_hash == log.head_hash
        actions = [r.action for r in reloaded.records()]
        # Every promotion is preceded by the retrain that produced it.
        for i, action in enumerate(actions):
            if action == "promote":
                assert actions[i - 1] == "retrain"

    def test_status_agrees_with_disk(self, loop):
        status = loop["controller"].status()
        disk = lifecycle_status(loop["registry"].root)
        assert status["chain_valid"] and disk["chain_valid"]
        assert status["active_version"] == disk["active_version"] == "v0002"
        assert status["decision_counts"] == disk["decision_counts"]
        assert status["watchdog"] is None  # disarmed by the rollback
        assert status["champion_version"] == "v0002"

    def test_obs_metrics_recorded_every_decision(self, loop):
        before, after = loop["metrics_before"], loop["metrics_after"]

        def delta(name):
            return _metric_total(after, name) - _metric_total(before, name)

        assert delta("repro_lifecycle_retrains_total") >= 2
        assert delta("repro_lifecycle_promotions_total") >= 2
        assert delta("repro_lifecycle_rollbacks_total") >= 1
        assert "repro_lifecycle_shadow_delta" in after
        assert _metric_total(after, "repro_lifecycle_active_version") == 2


class TestShadowEvaluator:
    """Shadow scoring against the shared session world (no extra sim)."""

    @pytest.fixture(scope="class")
    def world(self, small_store):
        return StoredWorld(small_store)

    @pytest.fixture(scope="class")
    def bundle(self, small_predictor):
        return ModelBundle(predictor=small_predictor)

    @staticmethod
    def _labels(result, world, weeks, horizon=3):
        labels = {}
        for week in weeks:
            day = world.store.day_of(week)
            delays = result.ticket_log.first_edge_ticket_after(
                result.n_lines, day, horizon * 7
            )
            labels[week] = delays >= 0
        return labels

    def test_self_shadow_is_an_exact_tie(self, world, bundle, small_result):
        weeks = world.store.weeks[-2:]
        evaluator = ShadowEvaluator(
            world, capacity=60, config=LifecycleConfig(bootstrap_samples=50)
        )
        report = evaluator.evaluate(
            bundle, bundle, weeks, self._labels(small_result, world, weeks)
        )
        assert report.precision_delta == 0.0
        assert report.delta_ci_low == 0.0 == report.delta_ci_high
        assert report.champion_ap == report.challenger_ap
        decision = PromotionGate(LifecycleConfig()).decide(report)
        assert decision.promote and decision.reason == "non_inferior"

    def test_bootstrap_ci_is_deterministic(self, world, bundle, small_result):
        weeks = world.store.weeks[-2:]
        labels = self._labels(small_result, world, weeks)
        config = LifecycleConfig(bootstrap_samples=50, seed=99)
        one = ShadowEvaluator(world, 60, config).evaluate(
            bundle, bundle, weeks, labels
        )
        two = ShadowEvaluator(world, 60, config).evaluate(
            bundle, bundle, weeks, labels
        )
        assert one.to_dict() == {**two.to_dict(),
                                 "shadow_seconds": one.shadow_seconds}

    def test_score_bundles_matches_the_serving_engine(
        self, world, bundle, small_store
    ):
        week = small_store.latest_week
        shared = score_bundles(
            {"champion": bundle, "challenger": bundle}, world, week,
            shard_size=500,
        )
        engine = ScoringEngine(bundle, world, shard_size=500)
        expected = engine.score_week(week).scores
        assert np.array_equal(shared["champion"], expected)
        assert np.array_equal(shared["challenger"], expected)

    def test_score_bundles_rejects_empty_input(self, world, small_store):
        with pytest.raises(ValueError):
            score_bundles({}, world, small_store.latest_week)

    def test_evaluate_validates_weeks_and_labels(
        self, world, bundle, small_result
    ):
        evaluator = ShadowEvaluator(world, 60, LifecycleConfig())
        with pytest.raises(ValueError):
            evaluator.evaluate(bundle, bundle, [], {})
        weeks = world.store.weeks[-2:]
        labels = self._labels(small_result, world, weeks[:1])
        with pytest.raises(ValueError, match="labels"):
            evaluator.evaluate(bundle, bundle, weeks, labels)


class TestPipelineHooks:
    def _tiny(self, **config_kw):
        simulation = SimulationConfig(
            n_weeks=3, population=PopulationConfig(n_lines=200)
        )
        return NevermindPipeline(
            simulation, PipelineConfig(warmup_weeks=99, **config_kw)
        )

    def test_hook_fires_with_none_during_warmup(self):
        pipeline = self._tiny()
        seen = []
        pipeline.on_week_end = lambda week, report: seen.append((week, report))
        pipeline.run()
        assert seen == [(0, None), (1, None), (2, None)]

    def test_adopt_rejects_an_unfitted_predictor(self):
        pipeline = self._tiny()
        with pytest.raises(ValueError, match="unfitted"):
            pipeline.adopt(TicketPredictor(PredictorConfig()), week=5)

    def test_controller_requires_store_and_registry(self):
        with pytest.raises(ValueError, match="store"):
            LifecycleController(self._tiny())
