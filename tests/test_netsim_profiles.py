"""Unit tests for service profiles (repro.netsim.profiles)."""

import pytest

from repro.netsim.profiles import PROFILE_NAMES, PROFILES, profile_by_name


class TestCatalog:
    def test_paper_anchor_tiers_present(self):
        basic = profile_by_name("basic")
        assert basic.down_kbps == 768.0
        assert basic.up_kbps == 384.0
        pro = profile_by_name("pro")
        assert pro.down_kbps == pytest.approx(2560.0)
        assert pro.up_kbps == 768.0

    def test_popularity_is_a_distribution(self):
        total = sum(p.popularity for p in PROFILES)
        assert total == pytest.approx(1.0)

    def test_speed_ladder_monotone(self):
        downs = [p.down_kbps for p in PROFILES]
        assert downs == sorted(downs)

    def test_faster_tiers_have_shorter_reach(self):
        reaches = [p.max_loop_kft for p in PROFILES]
        assert reaches == sorted(reaches, reverse=True)

    def test_min_rates_below_provisioned(self):
        for p in PROFILES:
            assert p.min_down_kbps < p.down_kbps
            assert p.min_up_kbps < p.up_kbps

    def test_lookup_unknown_raises(self):
        with pytest.raises(KeyError):
            profile_by_name("gigabit-fiber")

    def test_names_unique(self):
        assert len(set(PROFILE_NAMES)) == len(PROFILE_NAMES)
