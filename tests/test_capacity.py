"""Tests for capacity-planning economics (repro.core.capacity)."""

import numpy as np
import pytest

from repro.core.analysis import PredictionOutcome
from repro.core.capacity import CapacityEconomics, optimal_capacity, value_curve


def outcome_from_hits(hits):
    hits = np.asarray(hits, dtype=bool)
    return PredictionOutcome(
        week=0,
        day=5,
        ranked_lines=np.arange(len(hits)),
        hits=hits,
        delays=np.where(hits, 3, -1),
    )


def declining_precision_outcome(rng, n=2000, top_precision=0.6, decay=500.0):
    """Hits whose local precision decays geometrically with rank."""
    ranks = np.arange(n)
    p = top_precision * np.exp(-ranks / decay)
    return outcome_from_hits(rng.random(n) < p)


class TestEconomicsValidation:
    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            CapacityEconomics(dispatch_cost=0.0)
        with pytest.raises(ValueError):
            CapacityEconomics(avoided_ticket_value=-1.0)
        with pytest.raises(ValueError):
            CapacityEconomics(smoothing_window=0)


class TestValueCurve:
    def test_all_hits_grow_linearly(self):
        outcome = outcome_from_hits(np.ones(10))
        econ = CapacityEconomics(dispatch_cost=1.0, avoided_ticket_value=4.0)
        curve = value_curve([outcome], econ)
        assert np.allclose(curve, 3.0 * np.arange(1, 11))

    def test_all_misses_lose_linearly(self):
        outcome = outcome_from_hits(np.zeros(10))
        curve = value_curve([outcome], CapacityEconomics())
        assert np.allclose(curve, -np.arange(1, 11))

    def test_max_n_truncates(self):
        outcome = outcome_from_hits(np.ones(10))
        assert len(value_curve([outcome], max_n=4)) == 4

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            value_curve([])


class TestOptimalCapacity:
    def test_interior_optimum_for_declining_precision(self, rng):
        outcomes = [declining_precision_outcome(rng) for _ in range(4)]
        econ = CapacityEconomics(dispatch_cost=1.0, avoided_ticket_value=4.0)
        best_n, best_value = optimal_capacity(outcomes, econ)
        # Precision starts at ~0.6 (marginal value +1.4) and decays to ~0
        # (marginal value -1): the optimum is strictly interior.
        assert 50 < best_n < 1950
        assert best_value > 0

    def test_worthless_ranking_returns_zero(self, rng):
        outcome = outcome_from_hits(rng.random(500) < 0.01)
        econ = CapacityEconomics(dispatch_cost=1.0, avoided_ticket_value=2.0)
        best_n, best_value = optimal_capacity([outcome], econ)
        assert best_n == 0
        assert best_value == 0.0

    def test_higher_ticket_value_grows_capacity(self, rng):
        outcomes = [declining_precision_outcome(rng) for _ in range(4)]
        cheap = optimal_capacity(
            outcomes, CapacityEconomics(avoided_ticket_value=2.5)
        )[0]
        rich = optimal_capacity(
            outcomes, CapacityEconomics(avoided_ticket_value=12.0)
        )[0]
        assert rich > cheap

    def test_real_predictor_outcome_yields_positive_capacity(
        self, small_result, small_split
    ):
        from repro.core.analysis import evaluate_predictions
        from repro.core.predictor import PredictorConfig, TicketPredictor

        predictor = TicketPredictor(
            PredictorConfig(capacity=60, horizon_weeks=3, train_rounds=40,
                            selection_rounds=3, include_derived=False)
        ).fit(small_result, small_split)
        week = small_split.test_weeks[0]
        outcome = evaluate_predictions(
            small_result, predictor.rank_week(small_result, week), week,
            horizon_weeks=3,
        )
        best_n, value = optimal_capacity(
            [outcome], CapacityEconomics(avoided_ticket_value=8.0)
        )
        assert best_n > 0
        assert value > 0
