"""Unit tests for the loop physics (repro.netsim.physics)."""

import numpy as np
import pytest

from repro.netsim.physics import LinePhysics, LoopConditions


@pytest.fixture()
def physics():
    return LinePhysics()


def make_conditions(loop_kft, down=768.0, up=384.0):
    loop = np.asarray(loop_kft, dtype=float)
    n = loop.size
    return LoopConditions(
        loop_kft=loop,
        profile_down_kbps=np.full(n, down),
        profile_up_kbps=np.full(n, up),
        ambient_noise_db=np.zeros(n),
        static_bridge_tap=np.zeros(n, dtype=bool),
        static_crosstalk=np.zeros(n, dtype=bool),
    )


def no_fault(n):
    return dict(
        extra_noise_db=np.zeros(n),
        extra_atten_db=np.zeros(n),
        rate_factor=np.ones(n),
        bridge_tap=np.zeros(n, dtype=bool),
        crosstalk=np.zeros(n, dtype=bool),
    )


class TestAttenuation:
    def test_monotone_in_length(self, physics):
        loops = np.array([1.0, 5.0, 10.0, 18.0])
        atten = physics.attenuation_db(loops)
        assert np.all(np.diff(atten) > 0)

    def test_upstream_below_downstream(self, physics):
        loops = np.array([8.0])
        assert physics.attenuation_db(loops, upstream=True) < physics.attenuation_db(loops)


class TestAttainableRate:
    def test_decays_with_distance(self, physics):
        loops = np.array([0.5, 4.0, 9.0, 15.0, 20.0])
        rates = physics.clean_attainable_kbps(loops)
        assert np.all(np.diff(rates) < 0)

    def test_fifteen_kft_rule(self, physics):
        """The paper's manual rule: loops past 15 kft cannot comfortably
        hold even the basic profile -- exactly the regime where a speed
        downgrade stabilises the line."""
        rate_15 = float(physics.clean_attainable_kbps(np.array([15.0]))[0])
        assert rate_15 < 768.0 / physics.sync_headroom * 2.0
        rate_5 = float(physics.clean_attainable_kbps(np.array([5.0]))[0])
        assert rate_5 > 2.0 * 768.0

    def test_noise_reduces_attainable(self, physics):
        cond = make_conditions([6.0, 6.0])
        kw = no_fault(2)
        kw["extra_noise_db"] = np.array([0.0, 8.0])
        rates = physics.attainable_kbps(cond, **kw)
        assert rates[1] < rates[0]

    def test_bridge_tap_penalty(self, physics):
        cond = make_conditions([6.0, 6.0])
        kw = no_fault(2)
        kw["bridge_tap"] = np.array([False, True])
        rates = physics.attainable_kbps(cond, **kw)
        assert rates[1] == pytest.approx(rates[0] * physics.bt_rate_penalty)

    def test_rate_floor(self, physics):
        rates = physics.clean_attainable_kbps(np.array([100.0]))
        assert rates[0] == physics.min_rate_kbps


class TestSyncAndMargin:
    def test_sync_capped_by_profile(self, physics):
        sync = physics.sync_rate_kbps(np.array([9000.0]), np.array([768.0]))
        assert sync[0] == 768.0

    def test_sync_capped_by_loop(self, physics):
        sync = physics.sync_rate_kbps(np.array([500.0]), np.array([768.0]))
        assert sync[0] == pytest.approx(500.0 * physics.sync_headroom)

    def test_margin_grows_with_headroom(self, physics):
        margins = physics.noise_margin_db(
            np.array([1000.0, 3000.0, 8000.0]), np.full(3, 768.0)
        )
        assert np.all(np.diff(margins) > 0)

    def test_margin_clipped_to_range(self, physics):
        margins = physics.noise_margin_db(np.array([1e6, 0.0]), np.array([768.0, 768.0]))
        assert margins[0] == physics.max_noise_margin_db
        assert margins[1] == 0.0

    def test_relative_capacity_92_rule(self, physics):
        """A line syncing at nearly its attainable rate (> 0.92) is the
        operators' escalation trigger; healthy lines sit well below."""
        tight = physics.relative_capacity(np.array([760.0]), np.array([800.0]))
        roomy = physics.relative_capacity(np.array([768.0]), np.array([4000.0]))
        assert tight[0] > 0.92
        assert roomy[0] < 0.5

    def test_relative_capacity_clipped(self, physics):
        rc = physics.relative_capacity(np.array([1000.0]), np.array([500.0]))
        assert rc[0] == 1.0


class TestCounters:
    def test_code_violations_spike_below_knee(self, physics):
        healthy = physics.code_violation_rate(np.array([15.0]), np.zeros(1))
        marginal = physics.code_violation_rate(np.array([1.0]), np.zeros(1))
        assert marginal[0] > healthy[0] * 5

    def test_fault_cv_rate_adds(self, physics):
        base = physics.code_violation_rate(np.array([15.0]), np.zeros(1))
        faulted = physics.code_violation_rate(np.array([15.0]), np.array([20.0]))
        assert faulted[0] == pytest.approx(base[0] + 20.0)

    def test_highest_carrier_decays(self, physics):
        hicar = physics.highest_carrier(np.array([1.0, 8.0, 16.0]), np.zeros(3))
        assert np.all(np.diff(hicar) < 0)
        assert hicar[0] <= physics.max_carrier
