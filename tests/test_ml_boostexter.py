"""Unit tests for the BStump booster (repro.ml.boostexter)."""

import numpy as np
import pytest

from repro.ml.boostexter import BStump, BStumpConfig
from repro.ml.metrics import auc


def make_problem(rng, n=1500, n_features=6, noise=0.3):
    X = rng.normal(size=(n, n_features))
    y = (X[:, 0] + 0.8 * X[:, 1] + noise * rng.normal(size=n) > 0).astype(int)
    return X, y


class TestFit:
    def test_learns_linear_boundary(self, rng):
        X, y = make_problem(rng)
        model = BStump(BStumpConfig(n_rounds=80)).fit(X, y)
        assert auc(y, model.decision_function(X)) > 0.9

    def test_accepts_plus_minus_labels(self, rng):
        X, y = make_problem(rng)
        model = BStump(BStumpConfig(n_rounds=20)).fit(X, np.where(y > 0, 1.0, -1.0))
        assert auc(y, model.decision_function(X)) > 0.8

    def test_rejects_weird_labels(self, rng):
        X, _ = make_problem(rng, n=50)
        with pytest.raises(ValueError):
            BStump().fit(X, np.full(50, 2.0))

    def test_rejects_single_class(self, rng):
        X, _ = make_problem(rng, n=50)
        with pytest.raises(ValueError):
            BStump().fit(X, np.zeros(50))

    def test_rejects_shape_mismatch(self, rng):
        X, y = make_problem(rng, n=50)
        with pytest.raises(ValueError):
            BStump().fit(X, y[:-1])

    def test_training_z_decreasing_early(self, rng):
        X, y = make_problem(rng)
        model = BStump(BStumpConfig(n_rounds=30)).fit(X, y)
        # The first round grabs the strongest stump; later ones are weaker.
        assert model.train_z_[0] <= min(model.train_z_[1:]) + 0.2

    def test_handles_missing_values(self, rng):
        X, y = make_problem(rng)
        X[rng.random(X.shape) < 0.2] = np.nan
        model = BStump(BStumpConfig(n_rounds=60)).fit(X, y)
        assert auc(y, model.decision_function(X)) > 0.8

    def test_sample_weight_shifts_model(self, rng):
        X, y = make_problem(rng, n=400)
        heavy = np.where(y > 0, 10.0, 0.1)
        model = BStump(BStumpConfig(n_rounds=10)).fit(X, y, sample_weight=heavy)
        # Up-weighting positives pushes the average margin up.
        base = BStump(BStumpConfig(n_rounds=10)).fit(X, y)
        assert model.decision_function(X).mean() > base.decision_function(X).mean()

    def test_rejects_negative_sample_weight(self, rng):
        X, y = make_problem(rng, n=60)
        with pytest.raises(ValueError):
            BStump().fit(X, y, sample_weight=np.full(60, -1.0))

    def test_early_stop_on_constant_features(self, rng):
        # A constant feature admits no informative split: Z stays ~1 and
        # boosting stops instead of spinning for all requested rounds.
        X = np.ones((400, 2))
        y = rng.integers(0, 2, size=400)
        model = BStump(BStumpConfig(n_rounds=500)).fit(X, y)
        assert len(model.learners) < 10


class TestPredict:
    def test_margin_and_proba_agree_in_ranking(self, rng):
        X, y = make_problem(rng)
        model = BStump(BStumpConfig(n_rounds=40)).fit(X, y)
        margin = model.decision_function(X)
        proba = model.predict_proba(X)
        assert np.all(np.argsort(margin) == np.argsort(proba))

    def test_proba_in_unit_interval(self, rng):
        X, y = make_problem(rng)
        model = BStump(BStumpConfig(n_rounds=40)).fit(X, y)
        p = model.predict_proba(X)
        assert np.all((p >= 0) & (p <= 1))

    def test_mean_proba_tracks_base_rate(self, rng):
        X, y = make_problem(rng)
        model = BStump(BStumpConfig(n_rounds=40)).fit(X, y)
        assert abs(model.predict_proba(X).mean() - y.mean()) < 0.05

    def test_hard_predict_labels(self, rng):
        X, y = make_problem(rng)
        model = BStump(BStumpConfig(n_rounds=60)).fit(X, y)
        labels = model.predict(X)
        assert set(np.unique(labels)) <= {-1.0, 1.0}
        agreement = np.mean((labels > 0) == (y > 0))
        assert agreement > 0.85

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            BStump().decision_function(np.zeros((1, 2)))

    def test_wrong_width_raises(self, rng):
        X, y = make_problem(rng, n=200)
        model = BStump(BStumpConfig(n_rounds=5)).fit(X, y)
        with pytest.raises(ValueError):
            model.decision_function(X[:, :3])

    def test_no_calibration_mode(self, rng):
        X, y = make_problem(rng, n=200)
        model = BStump(BStumpConfig(n_rounds=5, calibrate=False)).fit(X, y)
        with pytest.raises(RuntimeError):
            model.predict_proba(X)


class TestIntrospection:
    def test_feature_importances_identify_signal(self, rng):
        X, y = make_problem(rng)
        model = BStump(BStumpConfig(n_rounds=50)).fit(X, y)
        importances = model.feature_importances()
        assert set(np.argsort(-importances)[:2]) == {0, 1}

    def test_explain_sums_to_margin(self, rng):
        X, y = make_problem(rng, n=300)
        model = BStump(BStumpConfig(n_rounds=25)).fit(X, y)
        contributions = model.explain(X[0], top_k=X.shape[1])
        total = sum(v for _, v in contributions)
        assert total == pytest.approx(float(model.decision_function(X[:1])[0]))

    def test_explain_validates_shape(self, rng):
        X, y = make_problem(rng, n=100)
        model = BStump(BStumpConfig(n_rounds=5)).fit(X, y)
        with pytest.raises(ValueError):
            model.explain(X[0][:3])


class TestLabelNoiseRobustness:
    def test_still_learns_under_flip_noise(self, rng):
        """The paper's argument for a linear model: mislabeled negatives
        (unreported problems) should not destroy the ranking."""
        X, y = make_problem(rng, n=3000, noise=0.1)
        flipped = y.copy()
        flip = (rng.random(3000) < 0.3) & (y == 1)  # hide 30% of positives
        flipped[flip] = 0
        model = BStump(BStumpConfig(n_rounds=60)).fit(X, flipped)
        assert auc(y, model.decision_function(X)) > 0.85
