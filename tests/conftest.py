"""Shared fixtures: one small simulated world reused across test modules.

The simulation is deterministic (seeded) and session-scoped, so the test
suite pays for it once.  Keep the scale small here -- benchmarks own the
realistic scales.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    DslSimulator,
    PopulationConfig,
    PredictorConfig,
    SimulationConfig,
    TicketPredictor,
    paper_style_split,
)
from repro.serve import snapshot_result


@pytest.fixture(scope="session")
def small_result():
    """A 2,500-line, 20-week simulated world with densified faults."""
    config = SimulationConfig(
        n_weeks=20,
        population=PopulationConfig(n_lines=2500, seed=5),
        fault_rate_scale=4.0,
        seed=99,
    )
    return DslSimulator(config).run()


@pytest.fixture(scope="session")
def locator_world():
    """A dispatch-dense world for the trouble-locator comparisons.

    The basic-vs-learned locator gap is variance-dominated below ~1,000
    training dispatches, so these tests get a denser plant than
    ``small_result``.
    """
    config = SimulationConfig(
        n_weeks=22,
        population=PopulationConfig(n_lines=4000, seed=8),
        fault_rate_scale=6.0,
        seed=17,
    )
    return DslSimulator(config).run()


@pytest.fixture(scope="session")
def small_split(small_result):
    """A paper-style split matching the small world's horizon."""
    return paper_style_split(
        small_result.config.n_weeks, history=6, train=3, selection=2, test=2,
        horizon_weeks=3,
    )


@pytest.fixture(scope="session")
def small_predictor(small_result, small_split):
    """A fitted ticket predictor on the small world (shared, read-only)."""
    return TicketPredictor(
        PredictorConfig(capacity=60, train_rounds=30)
    ).fit(small_result, small_split)


@pytest.fixture(scope="session")
def small_store(small_result, tmp_path_factory):
    """The small world snapshotted into a line-week store (read-only)."""
    return snapshot_result(
        small_result, tmp_path_factory.mktemp("serve") / "store"
    )


@pytest.fixture(scope="session")
def small_locator(small_result):
    """A small fitted combined trouble locator (shared, read-only)."""
    from repro import CombinedLocator, LocatorConfig, build_locator_dataset

    train = build_locator_dataset(
        small_result, 30, small_result.config.n_weeks * 7
    )
    return CombinedLocator(LocatorConfig(n_rounds=6, cv_folds=2)).fit(train)


@pytest.fixture()
def rng():
    """A fresh deterministic generator per test."""
    return np.random.default_rng(1234)
