"""Tests for the ticket predictor (repro.core.predictor)."""

import numpy as np
import pytest

from repro.core.analysis import evaluate_predictions
from repro.core.predictor import PredictorConfig, TicketPredictor


@pytest.fixture(scope="module")
def fitted(request):
    result = request.getfixturevalue("small_result")
    split = request.getfixturevalue("small_split")
    config = PredictorConfig(
        capacity=60, horizon_weeks=3, train_rounds=60, selection_rounds=3,
        product_pool=8,
    )
    predictor = TicketPredictor(config).fit(result, split)
    return result, split, predictor


class TestFit:
    def test_selects_features(self, fitted):
        _, _, predictor = fitted
        assert len(predictor.recipes.base_indices) >= predictor.config.min_selected
        assert len(predictor.feature_names) == predictor.recipes.n_columns
        assert predictor.model is not None

    def test_selection_scores_recorded(self, fitted):
        _, _, predictor = fitted
        assert "base" in predictor.selection_scores_
        assert "quadratic" in predictor.selection_scores_
        assert "product" in predictor.selection_scores_
        assert len(predictor.selection_scores_["base"]) == 83

    def test_unfitted_predictor_raises(self, small_result):
        predictor = TicketPredictor()
        with pytest.raises(RuntimeError):
            predictor.score_week(small_result, 10)


class TestRanking:
    def test_scores_are_probabilities(self, fitted):
        result, split, predictor = fitted
        scores = predictor.score_week(result, split.test_weeks[0])
        assert scores.shape == (result.n_lines,)
        assert np.all((scores >= 0) & (scores <= 1))

    def test_rank_is_permutation(self, fitted):
        result, split, predictor = fitted
        ranked = predictor.rank_week(result, split.test_weeks[0])
        assert sorted(ranked) == list(range(result.n_lines))

    def test_predict_top_respects_capacity(self, fitted):
        result, split, predictor = fitted
        top = predictor.predict_top(result, split.test_weeks[0])
        assert len(top) == predictor.config.capacity

    def test_beats_random_baseline(self, fitted):
        """The core claim: ranked predictions concentrate future tickets."""
        result, split, predictor = fitted
        week = split.test_weeks[0]
        outcome = evaluate_predictions(result, predictor.rank_week(result, week),
                                       week, horizon_weeks=3)
        base_rate = float(np.mean(outcome.hits))
        top_accuracy = outcome.accuracy_at(predictor.config.capacity)
        # At this deliberately tiny scale (2.5k lines, 60 rounds) we ask
        # for a 2x concentration; the benchmark world asserts more.
        assert top_accuracy > 2 * base_rate

    def test_top_ranks_concentrate_active_faults(self, fitted):
        result, split, predictor = fitted
        week = split.test_weeks[0]
        top = predictor.predict_top(result, week)
        day = int(result.measurements.saturday_day[week])
        active = result.fault_active_on(day)
        assert np.mean(active[top]) > 3 * np.mean(active)


class TestDerivedToggle:
    def test_without_derived_features(self, small_result, small_split):
        config = PredictorConfig(
            capacity=60, horizon_weeks=3, train_rounds=30, selection_rounds=3,
            include_derived=False,
        )
        predictor = TicketPredictor(config).fit(small_result, small_split)
        assert predictor.recipes.quad_indices == []
        assert predictor.recipes.product_pairs == []
        scores = predictor.score_week(small_result, small_split.test_weeks[0])
        assert np.all(np.isfinite(scores))


class TestDatasetInterface:
    def test_fit_datasets_direct(self, small_result, small_split):
        from repro.data.joins import build_ticket_dataset
        train = build_ticket_dataset(small_result, small_split.train_weeks,
                                     horizon_weeks=3)
        sel = build_ticket_dataset(small_result, small_split.selection_weeks,
                                   horizon_weeks=3)
        config = PredictorConfig(capacity=60, train_rounds=20,
                                 selection_rounds=3, include_derived=False)
        predictor = TicketPredictor(config).fit_datasets(train, sel)
        assert predictor.model is not None

    def test_misaligned_datasets_rejected(self, small_result, small_split):
        from repro.data.joins import build_ticket_dataset
        train = build_ticket_dataset(small_result, small_split.train_weeks,
                                     horizon_weeks=3)
        sel = build_ticket_dataset(small_result, small_split.selection_weeks,
                                   horizon_weeks=3)
        sel.features = sel.features.subset(list(range(10)))
        with pytest.raises(ValueError):
            TicketPredictor(PredictorConfig(capacity=60)).fit_datasets(train, sel)
