"""Tests for the closed operational loop (repro.core.pipeline)."""

import numpy as np
import pytest

from repro.core.pipeline import NevermindPipeline, PipelineConfig
from repro.core.predictor import PredictorConfig
from repro.netsim.population import PopulationConfig
from repro.netsim.simulator import SimulationConfig
from repro.tickets.ticketing import TicketSource


@pytest.fixture(scope="module")
def finished_pipeline():
    simulation = SimulationConfig(
        n_weeks=20,
        population=PopulationConfig(n_lines=1500, seed=13),
        fault_rate_scale=6.0,
        seed=77,
    )
    config = PipelineConfig(
        warmup_weeks=13,
        predictor=PredictorConfig(
            capacity=40, horizon_weeks=3, train_rounds=40, selection_rounds=3,
            include_derived=False,
        ),
    )
    pipeline = NevermindPipeline(simulation, config)
    pipeline.run()
    return pipeline


class TestLoop:
    def test_warmup_produces_no_reports(self, finished_pipeline):
        weeks = [r.week for r in finished_pipeline.reports]
        assert min(weeks) >= finished_pipeline.config.warmup_weeks - 1

    def test_reports_every_live_week(self, finished_pipeline):
        weeks = [r.week for r in finished_pipeline.reports]
        assert weeks == sorted(weeks)
        assert len(weeks) >= 5

    def test_capacity_respected(self, finished_pipeline):
        for report in finished_pipeline.reports:
            assert len(report.submitted) == 40

    def test_finds_real_problems_above_chance(self, finished_pipeline):
        summary = finished_pipeline.summary()
        assert summary["real_problems"] > 0
        sim = finished_pipeline.simulator
        # Baseline: random lines would hit active faults at the plant's
        # fault prevalence; the predictor should multiply that.
        prevalence = np.mean(sim.result().fault_active_on(14 * 7))
        assert summary["precision"] > 2 * prevalence

    def test_proactive_dispatches_recorded(self, finished_pipeline):
        result = finished_pipeline.simulator.result()
        proactive = [t for t in result.ticket_log.tickets
                     if t.source is TicketSource.NEVERMIND]
        assert len(proactive) == sum(
            len(r.submitted) for r in finished_pipeline.reports
        )

    def test_fixes_clear_faults(self, finished_pipeline):
        result = finished_pipeline.simulator.result()
        proactive_clears = [e for e in result.fault_events
                            if e.clear_cause == "proactive"]
        assert len(proactive_clears) > 0
        summary = finished_pipeline.summary()
        assert summary["fixed"] == len(proactive_clears)

    def test_summary_consistency(self, finished_pipeline):
        summary = finished_pipeline.summary()
        assert summary["weeks"] == len(finished_pipeline.reports)
        assert summary["real_problems"] <= summary["submitted"]
        assert summary["fixed"] <= summary["real_problems"]
        per_report = sum(r.real_problems for r in finished_pipeline.reports)
        assert summary["real_problems"] == per_report


class TestConfig:
    def test_empty_summary_before_run(self):
        simulation = SimulationConfig(
            n_weeks=4, population=PopulationConfig(n_lines=200))
        pipeline = NevermindPipeline(simulation, PipelineConfig(warmup_weeks=99))
        assert pipeline.summary()["weeks"] == 0

    def test_step_returns_none_during_warmup(self):
        simulation = SimulationConfig(
            n_weeks=4, population=PopulationConfig(n_lines=200))
        pipeline = NevermindPipeline(simulation, PipelineConfig(warmup_weeks=99))
        assert pipeline.step() is None
