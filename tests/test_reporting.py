"""Tests for the one-shot evaluation report (repro.core.reporting)."""

import pytest

from repro.core.locator import LocatorConfig
from repro.core.predictor import PredictorConfig
from repro.core.reporting import EvaluationReport, full_evaluation_report


@pytest.fixture(scope="module")
def report(request):
    result = request.getfixturevalue("small_result")
    split = request.getfixturevalue("small_split")
    return full_evaluation_report(
        result,
        split,
        predictor_config=PredictorConfig(
            capacity=60, horizon_weeks=3, train_rounds=40, selection_rounds=3,
            include_derived=False,
        ),
        locator_config=LocatorConfig(n_rounds=25),
    )


class TestStructure:
    def test_all_sections_present(self, report):
        assert set(report.sections) == {
            "world (Section 3.3)",
            "disposition mix (Table 1 / Fig 2)",
            "ticket predictor (Section 5)",
            "trouble locator (Section 6.3 / Fig 10)",
        }

    def test_headline_metrics_present(self, report):
        for key in (
            "edge_tickets", "accuracy_at_capacity", "base_ticket_rate",
            "lift_at_capacity", "cdf_14_days", "missed_with_2day_fix",
            "incorrect_real_fault_fraction", "locator_median_basic",
            "locator_median_flat", "locator_median_combined",
        ):
            assert key in report.metrics, key

    def test_location_shares_sum_to_one(self, report):
        total = sum(
            report.metrics[f"dispatch_share_{name}"]
            for name in ("HN", "F2", "F1", "DS")
        )
        assert total == pytest.approx(1.0, abs=1e-6)

    def test_render_contains_all_sections(self, report):
        text = report.render()
        for name in report.sections:
            assert f"=== {name} ===" in text


class TestMetricSanity:
    def test_accuracy_beats_base_rate(self, report):
        assert report.metrics["accuracy_at_capacity"] > report.metrics[
            "base_ticket_rate"
        ]

    def test_probabilities_bounded(self, report):
        for key in ("accuracy_at_capacity", "base_ticket_rate", "cdf_14_days",
                    "missed_with_2day_fix", "incorrect_real_fault_fraction"):
            assert 0.0 <= report.metrics[key] <= 1.0

    def test_locator_medians_ordered_sanely(self, report):
        assert 1 <= report.metrics["locator_median_combined"] <= 52
        assert 1 <= report.metrics["locator_median_basic"] <= 52

    def test_empty_report_renders(self):
        assert EvaluationReport().render() == ""
