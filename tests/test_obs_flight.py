"""Flight-recorder observability: profiling, SLOs, health, sampling."""

from __future__ import annotations

import logging

import pytest

from repro.obs.health import (
    DEFAULT_CHECKS,
    HealthCheck,
    HealthDetector,
    evaluate_check,
    render_dashboard,
    sparkline,
)
from repro.obs.history import HistoryStore
from repro.obs.log import RateLimitedLogger
from repro.obs.metrics import MetricsRegistry, exposition
from repro.obs.profile import (
    profile_snapshot,
    reset_profiles,
    stage_profile,
)
from repro.obs.promcheck import check_prometheus_text
from repro.obs.slo import DEFAULT_SLOS, SLO, SLOMonitor


@pytest.fixture(autouse=True)
def _clean_profiles():
    reset_profiles()
    yield
    reset_profiles()


@pytest.fixture()
def registry():
    return MetricsRegistry()


# ---------------------------------------------------------------------------
# stage_profile
# ---------------------------------------------------------------------------

class TestStageProfile:
    def test_block_cost_lands_in_profile_and_table(self, registry):
        with stage_profile("unit.alpha", registry=registry) as sp:
            assert sp.profile is None  # nothing to read mid-block
            sum(range(10_000))
        p = sp.profile
        assert p is not None and p.stage == "unit.alpha"
        assert p.wall_seconds > 0
        assert p.peak_rss_kb > 0
        snapshot = profile_snapshot()
        assert snapshot["unit.alpha"]["calls"] == 1
        assert snapshot["unit.alpha"]["wall_seconds"] == pytest.approx(
            p.wall_seconds
        )

    def test_first_call_flushes_registry_metrics(self, registry):
        # promcheck and the dashboard must see stage metrics after a
        # single profiled block -- the flush cadence always emits call 1.
        with stage_profile("unit.first", registry=registry):
            pass
        snapshot = registry.snapshot()
        [sample] = snapshot["repro_stage_wall_seconds"]["samples"]
        assert sample["labels"] == {"stage": "unit.first"}
        assert sample["count"] == 1 and sample["sum"] > 0
        text = exposition(snapshot)
        assert "repro_stage_wall_seconds" in text
        assert check_prometheus_text(text) == []

    def test_flush_batches_keep_wall_sum_exact(self, registry):
        # 32 calls = flushes at call 1, 16 and 32: the histogram's *sum*
        # must equal the accumulated wall time even though its count is
        # batch-sampled.
        for _ in range(32):
            with stage_profile("unit.batched", registry=registry):
                pass
        [sample] = registry.snapshot()["repro_stage_wall_seconds"]["samples"]
        table = profile_snapshot()["unit.batched"]
        assert table["calls"] == 32
        assert sample["count"] == 3  # calls 1, 16, 32
        assert sample["sum"] == pytest.approx(table["wall_seconds"], rel=1e-9)

    def test_exceptions_propagate_and_still_record(self, registry):
        with pytest.raises(RuntimeError, match="boom"):
            with stage_profile("unit.failing", registry=registry):
                raise RuntimeError("boom")
        assert profile_snapshot()["unit.failing"]["calls"] == 1

    def test_calls_accumulate_across_blocks(self, registry):
        for _ in range(3):
            with stage_profile("unit.repeat", registry=registry):
                pass
        entry = profile_snapshot()["unit.repeat"]
        assert entry["calls"] == 3
        assert entry["wall_seconds"] > 0

    def test_mem_mode_captures_allocators(self, registry, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "mem")
        reset_profiles()  # the cached level re-reads the environment
        with stage_profile("unit.mem", registry=registry) as sp:
            hoard = [bytearray(64_000) for _ in range(40)]
        assert len(hoard) == 40
        p = sp.profile
        assert p.allocators, "REPRO_PROFILE=mem must attribute allocations"
        top = p.allocators[0]
        assert ":" in top["site"] and top["size_kb"] > 0
        assert profile_snapshot()["unit.mem"]["allocators"]

    def test_default_level_ignores_stale_env_until_reset(
        self, registry, monkeypatch
    ):
        with stage_profile("unit.warm", registry=registry):
            pass  # primes the cached level as "off"
        monkeypatch.setenv("REPRO_PROFILE", "mem")
        with stage_profile("unit.warm", registry=registry) as sp:
            pass
        assert not sp.profile.allocators  # env change not yet visible
        reset_profiles()
        with stage_profile("unit.warm", registry=registry) as sp:
            data = [bytearray(64_000) for _ in range(40)]
        assert len(data) == 40
        assert sp.profile.allocators


# ---------------------------------------------------------------------------
# SLOs and burn rates
# ---------------------------------------------------------------------------

def _monitor(history=None, **kw):
    slos = kw.pop("slos", (
        SLO(name="score_latency", route="/score", kind="latency",
            threshold_seconds=0.010, target=0.9),
        SLO(name="availability", route="*", kind="availability",
            target=0.9),
    ))
    kw.setdefault("fast_window", 2)
    kw.setdefault("slow_window", 4)
    kw.setdefault("burn_threshold", 2.0)
    kw.setdefault("tick_every", 10_000)  # explicit ticks only
    return SLOMonitor(slos=slos, history=history, **kw)


class TestSLOMonitor:
    def test_fresh_monitor_reports_ok_without_traffic(self):
        status = _monitor().status()
        assert status["status"] == "ok"
        assert status["has_data"] is False
        assert all(o["attainment"] is None for o in status["objectives"])

    def test_clean_traffic_stays_ok_with_attainment(self, tmp_path):
        history = HistoryStore(tmp_path)
        monitor = _monitor(history)
        for _ in range(20):
            monitor.observe("/score", 0.002, 200)
        values = monitor.tick()
        assert values["attainment.score_latency"] == 1.0
        status = monitor.status()
        assert status["status"] == "ok"
        [tick] = history.records("serve_tick")
        assert tick.values["requests./score"] == 20.0
        assert tick.values["latency_p50./score"] == pytest.approx(0.002)

    def test_slow_requests_burn_and_alert(self, tmp_path):
        history = HistoryStore(tmp_path)
        monitor = _monitor(history)
        # Every request blows the 10ms bound: error rate 1.0 against a
        # 0.1 budget = burn 10x in both windows -> alert on first tick.
        for _ in range(10):
            monitor.observe("/score", 0.500, 200)
        monitor.tick()
        status = monitor.status()
        assert status["status"] == "alerting"
        score = next(o for o in status["objectives"]
                     if o["name"] == "score_latency")
        assert score["alerting"] is True
        assert score["burn_fast"] == pytest.approx(10.0)
        [alert] = history.records("slo_alert")
        assert alert["meta"]["slo"] == "score_latency"
        assert alert.values["burn_fast"] == pytest.approx(10.0)

    def test_alert_fires_once_then_clears_on_recovery(self, tmp_path):
        history = HistoryStore(tmp_path)
        monitor = _monitor(history)
        for _ in range(2):  # two bad ticks: still one slo_alert record
            for _ in range(10):
                monitor.observe("/score", 0.500, 200)
            monitor.tick()
        assert len(history.records("slo_alert")) == 1
        # Recovery: enough clean ticks to flush both windows.
        for _ in range(4):
            for _ in range(10):
                monitor.observe("/score", 0.002, 200)
            monitor.tick()
        assert monitor.status()["status"] == "ok"

    def test_server_errors_burn_availability(self):
        monitor = _monitor()
        for _ in range(10):
            monitor.observe("/dispatch", 0.001, 500)
        monitor.tick()
        status = monitor.status()
        avail = next(o for o in status["objectives"]
                     if o["name"] == "availability")
        assert avail["alerting"] is True

    def test_blip_does_not_alert_when_slow_window_is_clean(self):
        monitor = _monitor(slow_window=8)
        # Six clean ticks, then one terrible tick: the fast window
        # burns, the slow window absorbs it -> no page.
        for _ in range(6):
            for _ in range(20):
                monitor.observe("/score", 0.002, 200)
            monitor.tick()
        for _ in range(2):
            monitor.observe("/score", 0.500, 200)
        monitor.tick()
        assert monitor.status()["status"] == "ok"

    def test_tick_without_observations_is_none(self):
        assert _monitor().tick() is None

    def test_auto_tick_every_n_observations(self, tmp_path):
        history = HistoryStore(tmp_path)
        monitor = _monitor(history, tick_every=5)
        for _ in range(12):
            monitor.observe("/score", 0.002, 200)
        assert len(history.records("serve_tick")) == 2  # at 5 and 10

    def test_default_slos_are_well_formed(self):
        assert {s.name for s in DEFAULT_SLOS} == {
            "score_latency", "dispatch_latency", "availability",
        }
        for slo in DEFAULT_SLOS:
            assert 0 < slo.target < 1
            if slo.kind == "latency":
                assert slo.threshold_seconds > 0

    def test_invalid_slo_configs_raise(self):
        with pytest.raises(ValueError, match="needs a threshold"):
            SLO(name="x", route="/score", kind="latency")
        with pytest.raises(ValueError, match="unknown SLO kind"):
            SLO(name="x", route="/score", kind="throughput")
        with pytest.raises(ValueError, match="duplicate SLO names"):
            SLOMonitor(slos=(
                SLO(name="dup", route="*", kind="availability"),
                SLO(name="dup", route="*", kind="availability"),
            ))


# ---------------------------------------------------------------------------
# Health detector
# ---------------------------------------------------------------------------

_LATENCY_CHECK = HealthCheck(
    name="wall", series="wall_seconds.score", kind="pipeline_week",
    direction="high_is_bad", rel_threshold=0.5, abs_floor=0.005,
)

# A stationary series with realistic measurement jitter.
_CLEAN = [0.0100, 0.0104, 0.0097, 0.0101, 0.0099, 0.0103, 0.0098,
          0.0102, 0.0100, 0.0096, 0.0104, 0.0099]


class TestHealthDetector:
    def test_quiet_on_a_clean_run(self):
        finding = evaluate_check(_LATENCY_CHECK, list(_CLEAN))
        assert finding.status == "ok"
        assert finding.deviation <= finding.threshold

    def test_flags_an_injected_regression(self):
        degraded = list(_CLEAN) + [0.030, 0.031, 0.032]  # 3x step
        finding = evaluate_check(_LATENCY_CHECK, degraded)
        assert finding.status == "alert"
        assert finding.recent_mean > 2 * finding.baseline

    def test_low_is_bad_direction(self):
        check = HealthCheck(
            name="precision", series="precision", kind="pipeline_week",
            direction="low_is_bad", rel_threshold=0.3, abs_floor=0.05,
        )
        stable = [0.45 + 0.005 * (i % 3) for i in range(12)]
        assert evaluate_check(check, stable).status == "ok"
        collapsed = stable + [0.10, 0.11, 0.09]
        assert evaluate_check(check, collapsed).status == "alert"

    def test_too_few_points_is_no_data(self):
        finding = evaluate_check(_LATENCY_CHECK, [0.01] * 3)
        assert finding.status == "no_data"
        assert finding.n_points == 3

    def test_detector_over_history_and_summary(self, tmp_path):
        history = HistoryStore(tmp_path)
        for week, wall in enumerate(_CLEAN + [0.030, 0.031, 0.032]):
            history.append(
                "pipeline_week",
                {"wall_seconds.score": wall, "precision": 0.45},
                week=week,
            )
        detector = HealthDetector(history, checks=(_LATENCY_CHECK,))
        summary = detector.summary()
        assert summary["status"] == "alert"
        assert summary["alerts"] == ["wall"]
        assert summary["history_records"] == 15

    def test_summary_no_data_on_empty_history(self, tmp_path):
        detector = HealthDetector(HistoryStore(tmp_path))
        assert detector.summary()["status"] == "no_data"

    def test_default_checks_cover_pipeline_and_serve(self):
        kinds = {c.kind for c in DEFAULT_CHECKS}
        assert kinds == {"pipeline_week", "serve_tick"}
        names = [c.name for c in DEFAULT_CHECKS]
        assert len(set(names)) == len(names)

    def test_direction_validation(self):
        with pytest.raises(ValueError, match="unknown direction"):
            HealthCheck(name="x", series="s", kind="k", direction="sideways")
        with pytest.raises(ValueError, match="min_points"):
            HealthCheck(name="x", series="s", kind="k",
                        recent=8, min_points=8)


class TestSparklineAndDashboard:
    def test_sparkline_shapes(self):
        assert sparkline([]) == ""
        assert sparkline([1.0, 1.0, 1.0]) == "▄▄▄"
        ramp = sparkline([float(i) for i in range(8)])
        assert ramp[0] == "▁" and ramp[-1] == "█"
        assert len(sparkline([float(i) for i in range(100)], width=24)) == 24

    def test_dashboard_renders_trends_and_verdicts(self, tmp_path):
        history = HistoryStore(tmp_path)
        for week, wall in enumerate(_CLEAN):
            history.append(
                "pipeline_week",
                {"wall_seconds.score": wall, "precision": 0.45,
                 "calibration_drift": 0.02, "peak_rss_kb": 90_000.0},
                week=week,
            )
        text = render_dashboard(history)
        assert "flight recorder dashboard" in text
        assert "pipeline_week=12" in text
        assert "score_stage_wall" in text
        assert "no degradation detected" in text

    def test_dashboard_names_the_degraded_series(self, tmp_path):
        history = HistoryStore(tmp_path)
        for week, wall in enumerate(_CLEAN + [0.030, 0.031, 0.032]):
            history.append(
                "pipeline_week", {"wall_seconds.score": wall}, week=week,
            )
        text = render_dashboard(history)
        assert "DEGRADATION: score_stage_wall" in text


# ---------------------------------------------------------------------------
# Sampled logging
# ---------------------------------------------------------------------------

class TestRateLimitedLogger:
    def test_first_emit_then_sampling(self, caplog):
        logger = logging.getLogger("unit_rl.sampled")
        limited = RateLimitedLogger(logger, sample_every=10)
        with caplog.at_level(logging.DEBUG, logger="unit_rl.sampled"):
            for i in range(25):
                limited.debug("unit.shard", shard=i)
        assert len(caplog.records) == 3  # occurrences 0, 10, 20
        first, second, _ = [r.getMessage() for r in caplog.records]
        assert "event=unit.shard" in first
        assert "sampled_1_in=10 skipped=0" in first
        assert "skipped=9" in second  # the line stands for 9 silenced ones

    def test_counters_are_per_event(self, caplog):
        logger = logging.getLogger("unit_rl.sampled2")
        limited = RateLimitedLogger(logger, sample_every=50)
        with caplog.at_level(logging.DEBUG, logger="unit_rl.sampled2"):
            limited.debug("unit.a", i=1)
            limited.debug("unit.b", i=2)
        assert len(caplog.records) == 2  # each event's first always emits

    def test_disabled_level_skips_counting(self, caplog):
        logger = logging.getLogger("unit_rl.sampled3")
        limited = RateLimitedLogger(logger, sample_every=2)
        with caplog.at_level(logging.INFO, logger="unit_rl.sampled3"):
            limited.debug("unit.quiet", i=1)  # below level: not counted
        with caplog.at_level(logging.DEBUG, logger="unit_rl.sampled3"):
            limited.debug("unit.quiet", i=2)
        [record] = caplog.records
        assert "skipped=0" in record.getMessage()

    def test_sample_every_must_be_positive(self):
        with pytest.raises(ValueError, match="sample_every"):
            RateLimitedLogger(logging.getLogger("unit_rl.x"),
                              sample_every=0)


# ---------------------------------------------------------------------------
# Per-metric bucket overrides
# ---------------------------------------------------------------------------

class TestConfigureBuckets:
    def test_override_wins_over_caller_buckets(self, registry):
        registry.configure_buckets("tuned_seconds", (0.001, 0.01, 0.1))
        hist = registry.histogram(
            "tuned_seconds", "t", buckets=(1.0, 2.0)
        )
        assert hist.buckets == (0.001, 0.01, 0.1)
        hist.observe(0.005)
        counts, _, _ = hist.series()
        assert counts[1] == 1  # landed in the 0.01 bucket

    def test_late_configuration_raises(self, registry):
        registry.histogram("taken_seconds", "t")
        with pytest.raises(ValueError, match="already registered"):
            registry.configure_buckets("taken_seconds", (0.5, 1.0))

    def test_noop_reconfiguration_is_fine(self, registry):
        registry.configure_buckets("same_seconds", (0.1, 1.0))
        registry.histogram("same_seconds", "t")
        registry.configure_buckets("same_seconds", (0.1, 1.0))

    def test_invalid_bounds_rejected(self, registry):
        with pytest.raises(ValueError, match="strictly increasing"):
            registry.configure_buckets("bad_seconds", (1.0, 1.0))
        with pytest.raises(ValueError, match="finite"):
            registry.configure_buckets("bad_seconds", (1.0, float("inf")))
        with pytest.raises(ValueError, match="at least one"):
            registry.configure_buckets("bad_seconds", ())

    def test_overridden_histogram_exposition_is_valid(self, registry):
        registry.configure_buckets("tuned2_seconds", (0.0001, 0.001))
        registry.histogram("tuned2_seconds", "t").observe(0.0005)
        text = exposition(registry.snapshot())
        assert check_prometheus_text(text) == []
        assert 'le="0.0001"' in text
