"""Unit tests for PCA (repro.ml.pca)."""

import numpy as np
import pytest

from repro.ml.pca import PCA


class TestFit:
    def test_explained_variance_sorted(self, rng):
        X = rng.normal(size=(500, 6)) * np.array([5, 3, 2, 1, 0.5, 0.1])
        pca = PCA().fit(X)
        ev = pca.explained_variance_
        assert np.all(np.diff(ev) <= 1e-9)

    def test_ratio_sums_to_one(self, rng):
        X = rng.normal(size=(300, 4))
        pca = PCA().fit(X)
        assert pca.explained_variance_ratio_.sum() == pytest.approx(1.0)

    def test_n_components_respected(self, rng):
        X = rng.normal(size=(100, 5))
        pca = PCA(n_components=2).fit(X)
        assert pca.components_.shape == (2, 5)

    def test_handles_missing_values(self, rng):
        X = rng.normal(size=(200, 3))
        X[rng.random((200, 3)) < 0.2] = np.nan
        pca = PCA().fit(X)
        assert np.all(np.isfinite(pca.components_))

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            PCA().fit(np.zeros(5))


class TestTransform:
    def test_projection_shape(self, rng):
        X = rng.normal(size=(50, 4))
        Z = PCA(n_components=2).fit_transform(X)
        assert Z.shape == (50, 2)

    def test_components_decorrelated(self, rng):
        X = rng.normal(size=(2000, 4))
        X[:, 1] += X[:, 0]
        Z = PCA().fit_transform(X)
        cov = np.cov(Z, rowvar=False)
        off_diag = cov - np.diag(np.diag(cov))
        assert np.max(np.abs(off_diag)) < 0.05

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            PCA().transform(np.zeros((2, 2)))


class TestFeatureScores:
    def test_dominant_feature_scores_highest(self, rng):
        X = rng.normal(size=(400, 3))
        X[:, 2] *= 10.0  # after standardisation all scales equal...
        X[:, 0] = X[:, 1] + 0.1 * rng.normal(size=400)  # ...but 0,1 correlate
        scores = PCA(n_components=1).fit(X).feature_scores()
        # The leading component is the correlated pair, not the lone axis.
        assert scores[0] > scores[2] and scores[1] > scores[2]

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            PCA().feature_scores()
