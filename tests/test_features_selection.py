"""Unit tests for feature selection (repro.features.selection)."""

import numpy as np
import pytest

from repro.features.encoding import FeatureSet
from repro.features.selection import (
    select_features_auc,
    select_features_average_precision,
    select_features_gain_ratio,
    select_features_pca,
    select_features_top_n_ap,
    single_feature_ap,
)


def synthetic_sets(rng, n=4000, n_noise=6):
    """Two feature sets (train/test) where feature 0 is strongly
    predictive, feature 1 weakly, and the rest are noise."""
    def make():
        latent = rng.random(n) < 0.08
        strong = latent * 3.0 + rng.normal(size=n)
        weak = latent * 0.8 + rng.normal(size=n)
        noise = rng.normal(size=(n, n_noise))
        X = np.column_stack([strong, weak, noise])
        return X, latent.astype(float)

    X_tr, y_tr = make()
    X_te, y_te = make()
    names = ["strong", "weak"] + [f"noise{i}" for i in range(n_noise)]
    groups = ["basic"] * (2 + n_noise)
    cat = np.zeros(2 + n_noise, dtype=bool)
    train = FeatureSet(X_tr, list(names), list(groups), cat)
    test = FeatureSet(X_te, list(names), list(groups), cat.copy())
    return train, y_tr, test, y_te


class TestSingleFeatureAp:
    def test_strong_feature_scores_highest(self, rng):
        train, y_tr, test, y_te = synthetic_sets(rng)
        scores = single_feature_ap(train, y_tr, test, y_te, n=100)
        assert np.argmax(scores) == 0
        assert scores[0] > 2 * np.max(scores[2:])

    def test_constant_feature_scores_zero(self, rng):
        train, y_tr, test, y_te = synthetic_sets(rng, n=500)
        train.matrix[:, 3] = 1.0
        test.matrix[:, 3] = 1.0
        scores = single_feature_ap(train, y_tr, test, y_te, n=50)
        assert scores[3] == 0.0

    def test_fully_missing_feature_scores_zero(self, rng):
        train, y_tr, test, y_te = synthetic_sets(rng, n=500)
        train.matrix[:, 4] = np.nan
        scores = single_feature_ap(train, y_tr, test, y_te, n=50)
        assert scores[4] == 0.0

    def test_misaligned_sets_rejected(self, rng):
        train, y_tr, test, y_te = synthetic_sets(rng, n=200)
        with pytest.raises(ValueError):
            single_feature_ap(train, y_tr, test.subset([0, 1]), y_te, n=50)

    def test_partial_missing_tolerated(self, rng):
        train, y_tr, test, y_te = synthetic_sets(rng)
        train.matrix[rng.random(train.matrix.shape) < 0.2] = np.nan
        test.matrix[rng.random(test.matrix.shape) < 0.2] = np.nan
        scores = single_feature_ap(train, y_tr, test, y_te, n=100)
        assert np.argmax(scores) == 0


class TestTopNApSelection:
    def test_top_k_mode(self, rng):
        train, y_tr, test, y_te = synthetic_sets(rng)
        result = select_features_top_n_ap(train, y_tr, test, y_te, n=100, top_k=2)
        assert result.method == "top_n_ap"
        assert list(result.selected)[:1] == [0]
        assert len(result.selected) == 2

    def test_threshold_mode_filters_noise(self, rng):
        train, y_tr, test, y_te = synthetic_sets(rng)
        scores = single_feature_ap(train, y_tr, test, y_te, n=100)
        threshold = float(scores[0]) * 0.5
        result = select_features_top_n_ap(
            train, y_tr, test, y_te, n=100,
            thresholds={"default": threshold},
        )
        assert 0 in result.selected
        noise_selected = [j for j in result.selected if j >= 2]
        assert len(noise_selected) == 0


class TestBaselines:
    def test_auc_ranks_signal_first(self, rng):
        train, y_tr, *_ = synthetic_sets(rng)
        result = select_features_auc(train, y_tr, top_k=3)
        assert result.selected[0] == 0

    def test_auc_handles_inverted_features(self, rng):
        train, y_tr, *_ = synthetic_sets(rng)
        train.matrix[:, 5] = -train.matrix[:, 0]  # inverted copy of signal
        result = select_features_auc(train, y_tr, top_k=2)
        assert set(result.selected) == {0, 5}

    def test_average_precision_ranks_signal_first(self, rng):
        train, y_tr, *_ = synthetic_sets(rng)
        result = select_features_average_precision(train, y_tr, top_k=3)
        assert result.selected[0] == 0

    def test_gain_ratio_ranks_signal_first(self, rng):
        train, y_tr, *_ = synthetic_sets(rng)
        result = select_features_gain_ratio(train, y_tr, top_k=3)
        assert result.selected[0] == 0

    def test_pca_is_unsupervised(self, rng):
        train, y_tr, *_ = synthetic_sets(rng)
        a = select_features_pca(train, y_tr, top_k=4)
        b = select_features_pca(train, np.zeros_like(y_tr), top_k=4)
        assert np.array_equal(a.selected, b.selected)

    def test_all_selectors_return_k(self, rng):
        train, y_tr, *_ = synthetic_sets(rng, n=800)
        for select in (select_features_auc, select_features_average_precision,
                       select_features_pca, select_features_gain_ratio):
            result = select(train, y_tr, top_k=5)
            assert len(result.selected) == 5
            assert len(result.scores) == train.n_features
