"""The HTTP scoring service: routing, endpoints, reload semantics."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.serve import ModelBundle, ModelRegistry, ScoringService, make_server


@pytest.fixture(scope="module")
def service(small_store, small_predictor, tmp_path_factory):
    registry_root = tmp_path_factory.mktemp("serve") / "registry"
    registry = ModelRegistry(registry_root)
    registry.publish(
        ModelBundle(predictor=small_predictor, meta={"gen": 1}), activate=True
    )
    registry.publish(
        ModelBundle(predictor=small_predictor, meta={"gen": 2}), activate=True
    )
    return ScoringService(small_store.root, registry_root, shard_size=500)


class TestRouting:
    """Drive the service directly (no sockets) through dispatch_request."""

    def test_healthz(self, service, small_store):
        status, payload = service.dispatch_request("GET", "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["model_version"] == "v0002"
        assert payload["latest_week"] == small_store.latest_week

    def test_dispatch_defaults_to_latest_week(
        self, service, small_predictor, small_result, small_store
    ):
        status, payload = service.dispatch_request("GET", "/dispatch")
        assert status == 200
        assert payload["week"] == small_store.latest_week
        expected = small_predictor.predict_top(
            small_result, small_store.latest_week
        )
        assert payload["line_ids"] == [int(i) for i in expected]
        assert payload["model_version"] == "v0002"

    def test_score_single_line(self, service, small_store):
        week = small_store.latest_week
        status, dispatch = service.dispatch_request("GET", "/dispatch")
        best = dispatch["line_ids"][0]
        status, payload = service.dispatch_request(
            "GET", f"/score?line={best}&week={week}"
        )
        assert status == 200
        assert payload["p_ticket"] == pytest.approx(dispatch["scores"][0])

    def test_metrics_track_requests_and_throughput(self, service):
        service.dispatch_request("GET", "/dispatch")
        status, payload = service.dispatch_request("GET", "/metrics")
        assert status == 200
        assert payload["requests"]["/dispatch"] >= 1
        assert payload["lines_scored"] > 0
        assert payload["mean_lines_per_sec"] > 0
        assert payload["model_version"] == "v0002"

    def test_error_statuses(self, service):
        cases = {
            "/score": 400,                      # missing line param
            "/score?line=abc": 400,             # non-integer
            "/score?line=10&week=9999": 404,    # unknown week
            "/score?line=-1": 404,              # out of range
            "/dispatch?capacity=-2": 400,
            "/locate?line=5": 409,              # bundle has no locator
            "/unknown": 404,
        }
        for path, expected in cases.items():
            status, payload = service.dispatch_request("GET", path)
            assert status == expected, path
            assert "error" in payload

    def test_lifecycle_status_route(self, service):
        status, payload = service.dispatch_request("GET", "/lifecycle")
        assert status == 200
        assert payload["active_version"] == service.model_version
        assert payload["versions"] == ["v0001", "v0002"]
        # No controller has run against this registry: the decision log
        # is empty (and trivially valid), but the registry's own event
        # trail already shows the publishes and activations.
        assert payload["decisions"] == []
        assert payload["chain_valid"] is True
        events = [e["action"] for e in payload["registry_events"]]
        assert "publish" in events and "activate" in events

    def test_health_reports_slo_status(self, service, small_store):
        service.dispatch_request("GET", "/dispatch")
        status, payload = service.dispatch_request("GET", "/health")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["model_version"] == service.model_version
        assert payload["latest_week"] == small_store.latest_week
        names = {o["name"] for o in payload["objectives"]}
        assert names == {"score_latency", "dispatch_latency", "availability"}

    def test_unknown_routes_do_not_burn_error_budget(self, service):
        before = service.slo_monitor._pending_observations
        status, _ = service.dispatch_request("GET", "/favicon.ico")
        assert status == 404
        assert service.slo_monitor._pending_observations == before

    def test_known_routes_feed_the_slo_monitor(self, service):
        before = service.slo_monitor._pending_observations
        service.dispatch_request("GET", "/healthz")
        assert service.slo_monitor._pending_observations == before + 1

    def test_reload_follows_rollback(self, service):
        assert service.model_version == "v0002"
        service.registry.rollback()
        status, payload = service.dispatch_request("POST", "/reload")
        assert status == 200
        assert payload["model_version"] == "v0001"
        assert service.model_version == "v0001"
        # restore for other tests in this module
        service.registry.activate("v0002")
        service.reload()


class TestHttpServer:
    def test_endpoints_over_real_http(self, service):
        server = make_server(service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{server.server_address[1]}"
        try:
            with urllib.request.urlopen(base + "/healthz", timeout=30) as r:
                assert r.status == 200
                assert r.headers["Cache-Control"] == "no-store"
                assert r.headers["Content-Type"] == (
                    "application/json; charset=utf-8"
                )
                health = json.load(r)
            assert health["status"] == "ok"
            with urllib.request.urlopen(base + "/health", timeout=30) as r:
                assert r.status == 200
                assert r.headers["Cache-Control"] == "no-store"
                slo_health = json.load(r)
            assert slo_health["status"] == "ok"
            prom = base + "/metrics?format=prometheus"
            with urllib.request.urlopen(prom, timeout=30) as r:
                assert r.headers["Cache-Control"] == "no-store"
                assert r.headers["Content-Type"] == (
                    "text/plain; version=0.0.4; charset=utf-8"
                )
                assert b"repro_http_requests_total" in r.read()
            trace = base + "/trace?format=text"
            with urllib.request.urlopen(trace, timeout=30) as r:
                assert r.headers["Cache-Control"] == "no-store"
                assert r.headers["Content-Type"] == (
                    "text/plain; charset=utf-8"
                )
            with urllib.request.urlopen(base + "/dispatch", timeout=30) as r:
                over_http = json.load(r)
            _, direct = service.dispatch_request("GET", "/dispatch")
            assert over_http["line_ids"] == direct["line_ids"]
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(base + "/score", timeout=30)
            assert err.value.code == 400
        finally:
            server.shutdown()
            server.server_close()

    def test_service_requires_an_active_version(self, small_store, tmp_path):
        ModelRegistry(tmp_path / "empty")  # initialised, nothing published
        with pytest.raises(RuntimeError, match="active"):
            ScoringService(small_store.root, tmp_path / "empty")
