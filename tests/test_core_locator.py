"""Tests for the trouble locator (repro.core.locator)."""

import numpy as np
import pytest

# ``tests_to_locate`` is aliased so pytest does not collect it as a test.
from repro.core.locator import (
    CombinedLocator,
    ExperienceModel,
    FlatLocator,
    LocatorConfig,
    rank_improvement_by_bin,
    ranks_of_truth,
)
from repro.core.locator import tests_to_locate as locate_quantile
from repro.data.joins import build_locator_dataset


@pytest.fixture(scope="module")
def locator_data(request):
    result = request.getfixturevalue("locator_world")
    horizon = result.config.n_weeks * 7
    cut = int(horizon * 0.68)
    train = build_locator_dataset(result, first_day=30, last_day=cut)
    test = build_locator_dataset(result, first_day=cut + 1, last_day=horizon)
    return train, test


@pytest.fixture(scope="module")
def fast_config():
    return LocatorConfig(n_rounds=40)


class TestExperienceModel:
    def test_prior_is_distribution(self, locator_data, fast_config):
        train, _ = locator_data
        model = ExperienceModel(fast_config).fit(train)
        assert model.prior_.sum() == pytest.approx(1.0)
        assert np.all(model.prior_ > 0)  # smoothing covers unseen codes

    def test_rows_identical(self, locator_data, fast_config):
        train, test = locator_data
        model = ExperienceModel(fast_config).fit(train)
        probs = model.predict_proba(test.features.matrix[:5])
        assert np.allclose(probs, probs[0])

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            ExperienceModel().predict_proba(np.zeros((1, 3)))


class TestFlatLocator:
    def test_probability_matrix_shape(self, locator_data, fast_config):
        train, test = locator_data
        model = FlatLocator(fast_config).fit(train)
        probs = model.predict_proba(test.features.matrix)
        assert probs.shape == (test.n_examples, 52)
        assert np.all((probs >= 0) & (probs <= 1))

    def test_trains_models_for_common_dispositions(self, locator_data, fast_config):
        train, _ = locator_data
        model = FlatLocator(fast_config).fit(train)
        counts = np.bincount(train.disposition, minlength=52)
        common = np.flatnonzero(counts >= 10)
        trained = set(model.models_.keys())
        assert set(common.tolist()) <= trained

    def test_beats_experience_model(self, locator_data, fast_config):
        """Section 6.3: learned ranks beat frequency-only ranks."""
        train, test = locator_data
        experience = ExperienceModel(fast_config).fit(train)
        flat = FlatLocator(fast_config).fit(train)
        X = test.features.matrix
        basic_ranks = ranks_of_truth(experience.predict_proba(X), test.disposition)
        flat_ranks = ranks_of_truth(flat.predict_proba(X), test.disposition)
        assert flat_ranks.mean() < basic_ranks.mean()

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            FlatLocator().predict_proba(np.zeros((1, 3)))


class TestCombinedLocator:
    def test_blend_coefficients_fitted(self, locator_data, fast_config):
        train, _ = locator_data
        model = CombinedLocator(fast_config).fit(train)
        assert len(model.blend_) > 10
        assert len(model.location_models_) == 4

    def test_probability_matrix(self, locator_data, fast_config):
        train, test = locator_data
        model = CombinedLocator(fast_config).fit(train)
        probs = model.predict_proba(test.features.matrix)
        assert probs.shape == (test.n_examples, 52)
        assert np.all((probs >= 0) & (probs <= 1))

    def test_beats_experience_model(self, locator_data, fast_config):
        train, test = locator_data
        experience = ExperienceModel(fast_config).fit(train)
        combined = CombinedLocator(fast_config).fit(train)
        X = test.features.matrix
        basic_ranks = ranks_of_truth(experience.predict_proba(X), test.disposition)
        combined_ranks = ranks_of_truth(combined.predict_proba(X), test.disposition)
        assert combined_ranks.mean() < basic_ranks.mean()

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            CombinedLocator().predict_proba(np.zeros((1, 3)))

    def test_explain_fig9_decomposition(self, locator_data, fast_config):
        train, test = locator_data
        model = CombinedLocator(fast_config).fit(train)
        code = next(iter(model.blend_))
        x = test.features.matrix[0]
        info = model.explain(x, code, top_k=4)
        # The reported posterior must be exactly Eq. 2 of the margins.
        g1, g2, g0 = info["gammas"]
        z = g1 * info["disposition_margin"] + g2 * info["location_margin"] + g0
        assert info["posterior"] == pytest.approx(1 / (1 + np.exp(-z)))
        assert len(info["disposition_contributions"]) <= 4
        # And it must agree with the batch path.
        probs = model.predict_proba(x[None, :])
        assert probs[0, code] == pytest.approx(info["posterior"], rel=1e-9)

    def test_explain_unknown_code_raises(self, locator_data, fast_config):
        train, _ = locator_data
        model = CombinedLocator(fast_config).fit(train)
        untrained = [c for c in range(52) if c not in model.blend_]
        if not untrained:
            pytest.skip("every disposition trained at this scale")
        with pytest.raises(KeyError):
            model.explain(np.zeros(train.features.n_features), untrained[0])


class TestRankMetrics:
    def test_ranks_of_truth_basic(self):
        probs = np.array([[0.1, 0.7, 0.2], [0.5, 0.3, 0.2]])
        truth = np.array([2, 0])
        assert list(ranks_of_truth(probs, truth)) == [2, 1]

    def test_ranks_shape_checked(self):
        with pytest.raises(ValueError):
            ranks_of_truth(np.zeros((2, 3)), np.zeros(3, dtype=int))

    def test_tests_to_locate_median(self):
        ranks = np.array([1, 2, 3, 4, 100])
        assert locate_quantile(ranks, 0.5) == 3
        assert locate_quantile(ranks, 1.0) == 100

    def test_tests_to_locate_validation(self):
        with pytest.raises(ValueError):
            locate_quantile(np.array([]))
        with pytest.raises(ValueError):
            locate_quantile(np.array([1]), quantile=0.0)

    def test_rank_improvement_bins(self):
        basic = np.array([2, 3, 18, 19, 20])
        model = np.array([1, 1, 10, 15, 30])
        rows = rank_improvement_by_bin(basic, model, bin_width=5)
        first = rows[0]
        assert first["bin_low"] == 1 and first["count"] == 2
        assert first["mean_rank_change"] == pytest.approx(1.5)
        deep = [r for r in rows if r["bin_low"] == 16][0]
        assert deep["count"] == 3
        assert deep["mean_rank_change"] == pytest.approx((8 + 4 - 10) / 3)

    def test_rank_improvement_alignment_checked(self):
        with pytest.raises(ValueError):
            rank_improvement_by_bin(np.array([1, 2]), np.array([1]))
