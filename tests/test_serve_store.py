"""Line-week store: round-trips, append-only discipline, integrity."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.measurement.records import N_FEATURES
from repro.netsim.population import PopulationConfig
from repro.serve import LineWeekStore, StoredWorld, snapshot_result


class TestRoundTrip:
    def test_snapshot_covers_every_filled_week(self, small_result, small_store):
        assert small_store.weeks == [
            int(w) for w in small_result.measurements.filled_weeks
        ]
        assert small_store.n_lines == small_result.n_lines

    def test_matrices_read_back_verbatim(self, small_result, small_store):
        for week in (0, 7, small_store.latest_week):
            live = small_result.measurements.week_matrix(week)
            stored = small_store.week_matrix(week)
            # float32 in, float32 out: bit-identical including NaN pattern
            assert stored.dtype == np.float32
            assert np.array_equal(stored, live, equal_nan=True)

    def test_ticket_vectors_read_back_verbatim(self, small_result, small_store):
        week = small_store.latest_week
        day = small_store.day_of(week)
        assert day == int(small_result.measurements.saturday_day[week])
        live = small_result.ticket_log.last_ticket_day_before(
            small_result.n_lines, day
        )
        assert np.array_equal(small_store.last_ticket_day(week), live)

    def test_reopen_sees_the_same_weeks(self, small_store):
        reopened = LineWeekStore.open(small_store.root)
        assert reopened.weeks == small_store.weeks
        assert reopened.n_lines == small_store.n_lines
        week = reopened.latest_week
        assert np.array_equal(
            reopened.week_matrix(week), small_store.week_matrix(week),
            equal_nan=True,
        )

    def test_snapshot_is_idempotent(self, small_result, small_store):
        again = snapshot_result(small_result, small_store.root)
        assert again.weeks == small_store.weeks


class TestAppendDiscipline:
    @pytest.fixture()
    def empty_store(self, tmp_path):
        return LineWeekStore.create(
            tmp_path / "s", n_lines=10, population=PopulationConfig(n_lines=10)
        )

    def test_duplicate_week_is_rejected(self, empty_store):
        features = np.zeros((10, N_FEATURES), dtype=np.float32)
        tickets = np.full(10, -1)
        empty_store.append_week(3, 27, features, tickets)
        with pytest.raises(ValueError, match="append-only"):
            empty_store.append_week(3, 27, features, tickets)

    def test_shape_validation(self, empty_store):
        with pytest.raises(ValueError, match="features"):
            empty_store.append_week(
                0, 6, np.zeros((9, N_FEATURES), dtype=np.float32),
                np.full(10, -1),
            )
        with pytest.raises(ValueError, match="last_ticket_day"):
            empty_store.append_week(
                0, 6, np.zeros((10, N_FEATURES), dtype=np.float32),
                np.full(9, -1),
            )

    def test_create_refuses_existing_store(self, empty_store):
        with pytest.raises(FileExistsError):
            LineWeekStore.create(
                empty_store.root, n_lines=10,
                population=PopulationConfig(n_lines=10),
            )

    def test_open_missing_store(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            LineWeekStore.open(tmp_path / "nowhere")


class TestIntegrity:
    def test_verify_passes_on_a_clean_store(self, small_store):
        small_store.verify()

    def test_corrupted_shard_is_detected(self, tmp_path):
        store = LineWeekStore.create(
            tmp_path / "s", n_lines=4, population=PopulationConfig(n_lines=4)
        )
        store.append_week(
            0, 6, np.ones((4, N_FEATURES), dtype=np.float32), np.full(4, -1)
        )
        shard = store.root / "week_00000.npy"
        data = np.load(shard)
        data[0, 0] = 99.0
        np.save(shard, data)
        with pytest.raises(ValueError, match="checksum"):
            LineWeekStore.open(store.root).verify()

    def test_unsupported_format_version(self, tmp_path):
        store = LineWeekStore.create(
            tmp_path / "s", n_lines=4, population=PopulationConfig(n_lines=4)
        )
        manifest = json.loads((store.root / "manifest.json").read_text())
        manifest["format_version"] = 999
        (store.root / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="format version"):
            LineWeekStore.open(store.root)


class TestStoredWorld:
    def test_population_rebuilds_from_stored_seed(self, small_result, small_store):
        world = StoredWorld(small_store)
        live = small_result.population
        rebuilt = world.population()
        assert rebuilt.n_lines == live.n_lines
        assert np.array_equal(rebuilt.loop_kft, live.loop_kft)
        assert np.array_equal(rebuilt.profile_idx, live.profile_idx)

    def test_encode_week_matches_live_encoding(
        self, small_result, small_store, small_predictor
    ):
        week = small_store.latest_week
        live = small_predictor.encoder.encode(
            small_result.measurements, week, small_result.population,
            small_result.ticket_log,
        )
        stored = StoredWorld(small_store).encode_week(
            week, small_predictor.encoder
        )
        assert np.array_equal(stored.matrix, live.matrix, equal_nan=True)

    def test_ticket_view_rejects_mismatched_queries(self, small_store):
        world = StoredWorld(small_store)
        week = small_store.latest_week
        view_day = small_store.day_of(week)
        encoder_view = world.encode_week  # smoke: encode still works
        del encoder_view
        from repro.serve.store import _StoredTicketView

        view = _StoredTicketView(small_store.last_ticket_day(week), view_day)
        with pytest.raises(ValueError, match="lines"):
            view.last_ticket_day_before(small_store.n_lines + 1, view_day)
        with pytest.raises(ValueError, match="day"):
            view.last_ticket_day_before(small_store.n_lines, view_day + 1)
