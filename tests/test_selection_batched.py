"""Batched single-feature trainer vs the per-column BStump reference.

The acceptance bar of the batched sweep is *unchanged selected feature
sets* -- the per-column scores must agree closely enough that no ranking
or threshold decision flips.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.features import selection
from repro.features.encoding import FeatureSet
from repro.ml.metrics import gain_ratio


def _world(rng, n=700, n_features=24):
    M = rng.normal(size=(n, n_features))
    M[rng.random((n, n_features)) < 0.3] = np.nan
    # Mix in integer-ish and heavy-tailed columns like the Table-3 encoding.
    M[:, 1] = np.round(M[:, 1] * 3)
    M[:, 2] = np.exp(2 * rng.normal(size=n))
    M[:, 5] = rng.integers(0, 4, size=n).astype(float)  # categorical
    M[:, 8] = 0.25  # constant -> ineligible
    M[:, 13] = np.nan  # empty -> ineligible
    cat = np.zeros(n_features, dtype=bool)
    cat[5] = True
    names = [f"f{i}" for i in range(n_features)]
    groups = ["default"] * (n_features // 2) + ["quadratic"] * (
        n_features - n_features // 2
    )
    signal = np.nansum(M[:, :6], axis=1) + rng.normal(scale=2.0, size=n)
    y = (signal > np.quantile(signal, 0.8)).astype(float)
    half = n // 2
    return (
        FeatureSet(M[:half], names, groups, cat),
        y[:half],
        FeatureSet(M[half:], names, groups, cat),
        y[half:],
    )


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_batched_scores_match_per_column_loop(seed):
    rng = np.random.default_rng(seed)
    train, y_train, test, y_test = _world(rng)
    batched = selection.single_feature_ap(
        train, y_train, test, y_test, n=60, n_rounds=4, batched=True
    )
    loop = selection.single_feature_ap(
        train, y_train, test, y_test, n=60, n_rounds=4, batched=False
    )
    # The batched booster replicates the per-column arithmetic exactly
    # (per-column 1-D reductions, shared z/score code), so the scores are
    # bit-identical, not merely close.
    assert np.array_equal(batched, loop)


def test_batched_chunking_is_exercised(monkeypatch):
    # Force multiple chunks so the chunk boundary path is covered.
    monkeypatch.setattr(selection, "_BATCH_CHUNK_COLUMNS", 5)
    rng = np.random.default_rng(3)
    train, y_train, test, y_test = _world(rng)
    batched = selection.single_feature_ap(
        train, y_train, test, y_test, n=60, n_rounds=4, batched=True
    )
    loop = selection.single_feature_ap(
        train, y_train, test, y_test, n=60, n_rounds=4, batched=False
    )
    assert np.array_equal(batched, loop)


def test_selected_sets_identical_between_paths():
    rng = np.random.default_rng(4)
    train, y_train, test, y_test = _world(rng)
    kwargs = dict(n=60, n_rounds=4)
    batched = selection.select_features_top_n_ap(
        train, y_train, test, y_test, batched=True, **kwargs
    )
    loop = selection.select_features_top_n_ap(
        train, y_train, test, y_test, batched=False, **kwargs
    )
    assert set(batched.selected.tolist()) == set(loop.selected.tolist())
    top = selection.select_features_top_n_ap(
        train, y_train, test, y_test, top_k=10, **kwargs
    )
    assert top.selected.size == 10


def test_degenerate_inputs_score_zero():
    rng = np.random.default_rng(5)
    train, y_train, test, y_test = _world(rng)
    # Constant and all-NaN columns are ineligible in both paths.
    for batched in (True, False):
        scores = selection.single_feature_ap(
            train, y_train, test, y_test, n=60, n_rounds=3, batched=batched
        )
        assert scores[8] == 0.0
        assert scores[13] == 0.0
    # Single-class labels: everything scores zero without training.
    ones = np.ones_like(y_train)
    scores = selection.single_feature_ap(train, ones, test, y_test, n=60)
    assert np.array_equal(scores, np.zeros(train.n_features))


def test_gain_ratio_selector_matches_metric_reference():
    rng = np.random.default_rng(6)
    train, y_train, _, _ = _world(rng)
    result = selection.select_features_gain_ratio(train, y_train, top_k=5)
    reference = np.array(
        [gain_ratio(train.matrix[:, j], y_train) for j in range(train.n_features)]
    )
    assert np.array_equal(result.scores, reference)


def test_batched_median_imputation_matches_per_column():
    rng = np.random.default_rng(7)
    train, _, _, _ = _world(rng)
    batched = selection._impute_median_columns(train.matrix)
    loop = np.column_stack(
        [
            selection._impute_median(train.matrix[:, j])
            for j in range(train.n_features)
        ]
    )
    assert np.array_equal(batched, loop)
    assert not np.any(np.isnan(batched))
