"""The serve-side score cache and the explanation routes.

Covers the ScoreCache unit behaviour (version keying, LRU bound,
invalidation semantics), the ``/explain`` route and the enriched
``/dispatch?explain=1`` form, cache survival across reloads, listener-
driven invalidation on registry activate/rollback, and the bit-identity
of cached answers against a fresh uncached engine.
"""

from __future__ import annotations

import json
import types

import numpy as np
import pytest

from repro.serve import (
    ModelBundle,
    ModelRegistry,
    ScoreCache,
    ScoringEngine,
    ScoringService,
    StoredWorld,
)


@pytest.fixture(scope="module")
def service(small_store, small_predictor, small_locator, tmp_path_factory):
    registry_root = tmp_path_factory.mktemp("servecache") / "registry"
    registry = ModelRegistry(registry_root)
    registry.publish(
        ModelBundle(predictor=small_predictor, locator=small_locator,
                    meta={"gen": 1}),
        activate=True,
    )
    registry.publish(
        ModelBundle(predictor=small_predictor, locator=small_locator,
                    meta={"gen": 2}),
        activate=True,
    )
    return ScoringService(small_store.root, registry_root, shard_size=500)


class TestScoreCacheUnit:
    def test_version_keying(self):
        cache = ScoreCache(max_entries=4)
        cache.put("scores", 3, "v1", "entry-v1")
        assert cache.get("scores", 3, "v1") == "entry-v1"
        assert cache.get("scores", 3, "v2") is None
        assert cache.get("features", 3, "v1") is None
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 2
        assert stats["hit_rate"] == pytest.approx(1 / 3)

    def test_lru_eviction_bound(self):
        cache = ScoreCache(max_entries=2)
        cache.put("scores", 0, "v", "a")
        cache.put("scores", 1, "v", "b")
        cache.get("scores", 0, "v")  # week 0 becomes most-recent
        cache.put("scores", 2, "v", "c")
        assert len(cache) == 2
        assert cache.peek("scores", 0, "v")
        assert not cache.peek("scores", 1, "v")
        assert cache.peek("scores", 2, "v")

    def test_peek_does_not_count_or_touch(self):
        cache = ScoreCache(max_entries=2)
        cache.put("scores", 0, "v", "a")
        cache.put("scores", 1, "v", "b")
        cache.peek("scores", 0, "v")  # must NOT refresh week 0
        cache.put("scores", 2, "v", "c")
        assert not cache.peek("scores", 0, "v")
        stats = cache.stats()
        assert stats["hits"] == 0 and stats["misses"] == 0

    def test_invalidate_keeps_surviving_version(self):
        cache = ScoreCache()
        cache.put("scores", 0, "v1", "a")
        cache.put("features", 0, "v1", "b")
        cache.put("scores", 0, "v2", "c")
        dropped = cache.invalidate(reason="test", keep_version="v2")
        assert dropped == 2
        assert cache.peek("scores", 0, "v2")
        assert not cache.peek("scores", 0, "v1")
        assert cache.invalidate(reason="test") == 1
        assert len(cache) == 0
        assert cache.stats()["invalidated"] == 3

    def test_unknown_kind_and_none_entry_rejected(self):
        cache = ScoreCache()
        with pytest.raises(ValueError):
            cache.put("margins", 0, "v", "x")
        with pytest.raises(ValueError):
            cache.put("scores", 0, "v", None)
        with pytest.raises(ValueError):
            ScoreCache(max_entries=0)

    def test_score_convenience_read(self):
        cache = ScoreCache()
        assert cache.score(3, 0, "v") is None
        cache.put("scores", 0, "v",
                  types.SimpleNamespace(scores=np.arange(5.0)))
        assert cache.score(3, 0, "v") == 3.0


class TestExplainRoute:
    def test_two_stage_payload(self, service, small_store):
        week = small_store.latest_week
        status, dispatch = service.dispatch_request(
            "GET", f"/dispatch?week={week}")
        assert status == 200
        line = dispatch["line_ids"][0]
        status, payload = service.dispatch_request(
            "GET", f"/explain?line={line}&week={week}&top=4")
        assert status == 200
        assert payload["line"] == line and payload["week"] == week
        assert payload["model_version"] == "v0002"
        assert payload["attribution_exact"] is True
        assert len(payload["attributions"]) == 4
        assert payload["attributions"][0]["rank"] == 1
        assert payload["disposition"] is not None
        assert payload["ranking"] and payload["next_steps"]
        assert payload["p_ticket"] == dispatch["scores"][0]
        rendered = payload["rendered"]
        assert "=== diagnostic summary ===" in rendered
        assert "=== technician next steps ===" in rendered
        # The served margin must calibrate back to the served score.
        calibrator = service.engine.bundle.predictor.model.calibrator
        calibrated = float(
            calibrator.transform(np.array([payload["margin"]]))[0]
        )
        assert calibrated == payload["p_ticket"]

    def test_error_statuses(self, service):
        cases = {
            "/explain": 400,                    # missing line param
            "/explain?line=abc": 400,           # non-integer
            "/explain?line=999999": 404,        # out of range
            "/explain?line=0&top=0": 400,       # top floor
            "/explain?line=0&week=9999": 404,   # unknown week
        }
        for path, expected in cases.items():
            status, payload = service.dispatch_request("GET", path)
            assert status == expected, path
            assert "error" in payload

    def test_request_metrics_counted(self, service):
        service.dispatch_request("GET", "/explain?line=1")
        status, metrics = service.dispatch_request("GET", "/metrics")
        assert status == 200
        assert metrics["requests"]["/explain"] >= 1

    def test_dispatch_explain_flag(self, service, small_store):
        week = small_store.latest_week
        status, plain = service.dispatch_request(
            "GET", f"/dispatch?week={week}")
        assert "attributions" not in plain
        status, enriched = service.dispatch_request(
            "GET", f"/dispatch?week={week}&explain=1&top=2")
        assert status == 200
        assert enriched["line_ids"] == plain["line_ids"]
        attributions = enriched["attributions"]
        assert len(attributions) == len(enriched["line_ids"])
        for line_id, score, att in zip(
            enriched["line_ids"], enriched["scores"], attributions
        ):
            assert att["line"] == line_id
            assert att["p_ticket"] == score
            assert len(att["contributions"]) == 2
            assert att["contributions"][0]["rank"] == 1
        status, _ = service.dispatch_request(
            "GET", f"/dispatch?week={week}&explain=1&top=0")
        assert status == 400


class TestCacheBehaviour:
    def test_repeat_read_hits_shared_cache(self, service, small_store):
        week = small_store.latest_week
        service.dispatch_request("GET", f"/score?line=0&week={week}")
        assert service.cache.peek("scores", week, service.model_version)
        # Drop the engine-local dict: the repeat must come from the
        # shared cache (the path that survives reloads).
        service.engine._score_cache.clear()
        before = service.cache.stats()["hits"]
        status, _ = service.dispatch_request(
            "GET", f"/score?line=0&week={week}")
        assert status == 200
        assert service.cache.stats()["hits"] > before

    def test_reload_keeps_active_version_warm(self, service, small_store):
        week = small_store.latest_week
        service.dispatch_request("GET", f"/score?line=0&week={week}")
        version = service.model_version
        service.reload()
        assert service.model_version == version
        assert service.cache.peek("scores", week, version)
        assert service.engine.is_cached(week)

    def test_cached_dispatch_and_locate_bit_identical(
        self, service, small_store
    ):
        # Answers served through the warm cache must equal a fresh,
        # cache-less engine's answers bit-for-bit.
        week = small_store.latest_week
        service.dispatch_request("GET", f"/dispatch?week={week}")
        _, served_dispatch = service.dispatch_request(
            "GET", f"/dispatch?week={week}")
        _, served_locate = service.dispatch_request(
            "GET", f"/locate?line=5&week={week}")
        fresh = ScoringEngine(
            service.engine.bundle,
            StoredWorld(small_store),
            shard_size=500,
            model_version=service.model_version,
        )
        assert fresh.cache is None
        dispatch = fresh.dispatch(week)
        assert served_dispatch["line_ids"] == [int(i) for i in dispatch.line_ids]
        assert served_dispatch["scores"] == [float(s) for s in dispatch.scores]
        ranking = fresh.locate(week, 5)
        assert (
            json.dumps(served_locate["ranking"], sort_keys=True)
            == json.dumps(ranking, sort_keys=True)
        )

    def test_rollback_and_activate_invalidate(self, service, small_store):
        week = small_store.latest_week
        service.dispatch_request("GET", f"/dispatch?week={week}")
        assert service.cache.peek("scores", week, "v0002")

        # Rollback fires the registry listener: v0002 entries go, and
        # after the reload the first v0001 read is a fresh scoring run.
        assert service.registry.rollback() == "v0001"
        assert not service.cache.peek("scores", week, "v0002")
        service.reload()
        assert service.model_version == "v0001"
        assert not service.engine.is_cached(week)
        service.dispatch_request("GET", f"/score?line=0&week={week}")
        assert service.cache.peek("scores", week, "v0001")

        # Re-activating v0002 invalidates v0001's entries in turn.
        service.registry.activate("v0002")
        assert not service.cache.peek("scores", week, "v0001")
        service.reload()
        assert service.model_version == "v0002"
