"""The histogram-binned training backend vs the exact search.

The tentpole guarantee under test: when a feature has at most
``max_bins`` distinct values, :class:`HistStumpSearch` scans the
*identical* candidate-threshold set as the uncapped exact search and
recovers the same stump every round -- the two backends then differ only
in float-summation grouping (histogram partial sums vs sorted prefix
sums), so scores agree to ~1e-8 rather than bit-for-bit.  Above the bin
budget both backends share the same quantile-rank grid, so on
distinct-valued data they still pick the same thresholds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.features import selection
from repro.features.encoding import FeatureSet
from repro.ml.binning import DEFAULT_MAX_BINS, BinnedDataset
from repro.ml.boostexter import TRAIN_BACKENDS, BStump, BStumpConfig
from repro.ml.serialize import bstump_from_dict, bstump_to_dict
from repro.ml.stumps import MISSING_POLICIES, HistStumpSearch, StumpSearch

#: Float-summation tolerance between backends (see module docstring).
SCORE_TOL = 1e-8


def _edge_case_matrix(rng, n=600):
    """Columns covering every regime the binning has to get right."""
    X = np.column_stack([
        rng.normal(size=n),                            # continuous, distinct
        np.round(rng.normal(size=n) * 2),              # heavy integer ties
        np.full(n, 3.25),                              # constant
        np.where(rng.random(n) < 0.7, np.nan,
                 rng.normal(size=n)),                  # NaN-heavy
        rng.integers(0, 5, size=n).astype(float),      # categorical
        np.full(n, np.nan),                            # all missing
    ])
    categorical = np.array([False, False, False, False, True, False])
    y = (np.where(np.isnan(X[:, 0]), 0.0, X[:, 0]) + 0.5 * X[:, 1]
         + rng.normal(size=n) > 0)
    return X, categorical, y.astype(float)


class TestBinnedDataset:
    def test_distinct_values_get_exact_edges(self, rng):
        x = rng.permutation(np.arange(50.0))
        binned = BinnedDataset.from_matrix(x[:, None])
        assert binned.exact[0]
        assert binned.n_value_bins[0] == 50
        # Bin edges sit strictly between consecutive distinct values.
        assert np.all(binned.edges[0] > np.arange(49))
        assert np.all(binned.edges[0] < np.arange(1, 50))

    def test_nan_gets_the_trailing_bin(self, rng):
        x = rng.normal(size=100)
        x[::3] = np.nan
        binned = BinnedDataset.from_matrix(x[:, None])
        nan_code = binned.n_value_bins[0]
        assert np.array_equal(binned.codes[0] == nan_code, np.isnan(x))

    def test_capped_column_is_marked_inexact(self, rng):
        x = rng.normal(size=2000)
        binned = BinnedDataset.from_matrix(x[:, None], max_bins=16)
        assert not binned.exact[0]
        assert binned.n_value_bins[0] <= 16

    def test_codes_dtype_follows_bin_budget(self, rng):
        x = rng.normal(size=300)
        assert BinnedDataset.from_matrix(
            x[:, None], max_bins=64).codes.dtype == np.uint8
        assert BinnedDataset.from_matrix(
            np.arange(400.0)[:, None], max_bins=400).codes.dtype == np.uint16

    def test_select_and_hstack_round_trip(self, rng):
        X, categorical, _ = _edge_case_matrix(rng)
        binned = BinnedDataset.from_matrix(X, categorical)
        parts = [binned.select([0, 1]), binned.select([2, 3, 4, 5])]
        joined = BinnedDataset.hstack(parts)
        assert np.array_equal(joined.codes, binned.codes)
        assert np.array_equal(joined.categorical, binned.categorical)
        assert joined.matches(X)

    def test_validation_errors(self, rng):
        with pytest.raises(ValueError):
            BinnedDataset.from_matrix(np.empty((0, 2)))
        with pytest.raises(ValueError):
            BinnedDataset.from_matrix(rng.normal(size=(5, 1)), max_bins=1)
        a = BinnedDataset.from_matrix(rng.normal(size=(10, 1)))
        b = BinnedDataset.from_matrix(rng.normal(size=(11, 1)))
        with pytest.raises(ValueError):
            BinnedDataset.hstack([a, b])


class TestHistVsExactSearch:
    """Round-for-round agreement on the edge-case matrix."""

    @pytest.mark.parametrize("missing_policy", MISSING_POLICIES)
    def test_boosted_rounds_pick_identical_stumps(self, rng, missing_policy):
        X, categorical, y = _edge_case_matrix(rng)
        y_signed = np.where(y > 0, 1.0, -1.0)
        n = len(y)
        exact = StumpSearch(
            X, y_signed, categorical=categorical,
            missing_policy=missing_policy, max_split_points=n + 1,
        )
        binned = BinnedDataset.from_matrix(X, categorical, max_bins=n + 1)
        hist = HistStumpSearch(binned, y_signed, missing_policy=missing_policy)
        weights = np.full(n, 1.0 / n)
        for _ in range(25):
            se = exact.best_stump(weights)
            sh = hist.best_stump(weights)
            assert (sh.feature, sh.categorical) == (se.feature, se.categorical)
            assert sh.threshold == se.threshold
            for field in ("s_lo", "s_hi", "s_miss", "z"):
                assert getattr(sh, field) == pytest.approx(
                    getattr(se, field), abs=SCORE_TOL)
            # The binned score table replays Stump.predict bit-for-bit.
            h = sh.predict(X)
            np.testing.assert_array_equal(hist.round_outputs(sh), h)
            weights = weights * np.exp(-y_signed * h)
            weights /= weights.sum()

    @pytest.mark.parametrize("missing_policy", MISSING_POLICIES)
    def test_near_zero_weights_stay_in_agreement(self, rng, missing_policy):
        # Perfectly separable column: boosting drives most weights to the
        # round-off floor, the regime where histogram partial sums and
        # sorted prefix sums diverge most.
        n = 400
        x = np.arange(float(n))
        X = np.column_stack([x, rng.normal(size=n)])
        y_signed = np.where(x >= n // 2, 1.0, -1.0)
        exact = StumpSearch(X, y_signed, max_split_points=n + 1)
        binned = BinnedDataset.from_matrix(X, max_bins=n + 1)
        hist = HistStumpSearch(binned, y_signed, missing_policy=missing_policy)
        weights = np.full(n, 1.0 / n)
        for _ in range(12):
            se = exact.best_stump(weights)
            sh = hist.best_stump(weights)
            assert (sh.feature, sh.threshold) == (se.feature, se.threshold)
            assert sh.z == pytest.approx(se.z, abs=SCORE_TOL)
            h = sh.predict(X)
            weights = weights * np.exp(-y_signed * h)
            weights /= weights.sum()
            assert weights.min() >= 0.0

    def test_all_missing_column_matches_exact(self, rng):
        X = np.column_stack([np.full(50, np.nan), rng.normal(size=50)])
        y_signed = np.where(rng.random(50) > 0.5, 1.0, -1.0)
        weights = np.full(50, 0.02)
        se = StumpSearch(X, y_signed).best_stump(weights)
        sh = HistStumpSearch(
            BinnedDataset.from_matrix(X), y_signed).best_stump(weights)
        assert (sh.feature, sh.threshold) == (se.feature, se.threshold)


class TestHistBStump:
    @pytest.mark.parametrize("missing_policy", MISSING_POLICIES)
    def test_fitted_models_structurally_identical(self, rng, missing_policy):
        X, categorical, y = _edge_case_matrix(rng)
        kwargs = dict(n_rounds=20, calibrate=False,
                      missing_policy=missing_policy,
                      max_split_points=len(y) + 1)
        exact = BStump(BStumpConfig(**kwargs)).fit(X, y, categorical=categorical)
        hist = BStump(BStumpConfig(backend="hist", n_bins=len(y) + 1,
                                   **kwargs)).fit(X, y, categorical=categorical)
        assert len(exact.learners) == len(hist.learners)
        for a, b in zip(exact.learners, hist.learners):
            assert (b.stump.feature, b.stump.threshold, b.stump.categorical) \
                == (a.stump.feature, a.stump.threshold, a.stump.categorical)
        np.testing.assert_allclose(
            hist.decision_function(X), exact.decision_function(X),
            atol=1e-7,
        )

    def test_prebinned_dataset_is_accepted_and_validated(self, rng):
        X, categorical, y = _edge_case_matrix(rng)
        binned = BinnedDataset.from_matrix(X, categorical)
        config = BStumpConfig(n_rounds=5, calibrate=False, backend="hist")
        direct = BStump(config).fit(X, y, categorical=categorical)
        shared = BStump(config).fit(X, y, categorical=categorical, binned=binned)
        for a, b in zip(direct.learners, shared.learners):
            assert a.stump == b.stump
        with pytest.raises(ValueError):
            BStump(config).fit(X[:-1], y[:-1], binned=binned)

    def test_exact_backend_ignores_binned_and_rejects_bad_backend(self, rng):
        assert TRAIN_BACKENDS == ("exact", "hist")
        with pytest.raises(ValueError):
            BStumpConfig(backend="lightgbm")
        with pytest.raises(ValueError):
            BStumpConfig(backend="hist", n_bins=1)


class TestSerializeBackend:
    def test_round_trip_preserves_backend_fields(self, rng):
        X, categorical, y = _edge_case_matrix(rng)
        model = BStump(BStumpConfig(
            n_rounds=6, calibrate=False, backend="hist", n_bins=128,
        )).fit(X, y, categorical=categorical)
        payload = bstump_to_dict(model)
        assert payload["config"]["backend"] == "hist"
        assert payload["config"]["n_bins"] == 128
        loaded = bstump_from_dict(payload)
        assert loaded.config.backend == "hist"
        assert loaded.config.n_bins == 128
        np.testing.assert_array_equal(
            loaded.decision_function(X), model.decision_function(X))

    def test_pre_backend_payloads_load_as_exact(self, rng):
        X, _, y = _edge_case_matrix(rng)
        model = BStump(BStumpConfig(n_rounds=4, calibrate=False)).fit(X, y)
        payload = bstump_to_dict(model)
        del payload["config"]["backend"], payload["config"]["n_bins"]
        del payload["checksum"]  # pre-backend payloads hash without them
        loaded = bstump_from_dict(payload)
        assert loaded.config.backend == "exact"
        assert loaded.config.n_bins == DEFAULT_MAX_BINS


class TestHistSelection:
    def _world(self, rng, n=400, n_features=18, nan_frac=0.3):
        M = rng.normal(size=(n, n_features))
        M[rng.random((n, n_features)) < nan_frac] = np.nan
        M[:, 2] = np.round(M[:, 2] * 3)
        M[:, 5] = 0.25       # constant -> ineligible
        M[:, 7] = np.nan     # empty -> ineligible
        names = [f"f{i}" for i in range(n_features)]
        groups = ["default"] * n_features
        cat = np.zeros(n_features, dtype=bool)
        signal = np.nansum(M[:, :6], axis=1) + rng.normal(scale=2.0, size=n)
        y = (signal > np.quantile(signal, 0.8)).astype(float)
        half = n // 2
        return (FeatureSet(M[:half], names, groups, cat), y[:half],
                FeatureSet(M[half:], names, groups, cat), y[half:])

    def test_hist_sweep_matches_exact_scores_and_sets(self, rng):
        # 200 training rows <= the 256-candidate cap, so the exact sweep
        # runs uncapped and the hist sweep's per-distinct-value bins scan
        # the identical candidate thresholds.
        train, y_train, test, y_test = self._world(rng)
        kwargs = dict(n=60, n_rounds=4, batched=True)
        exact_scores = selection.single_feature_ap(
            train, y_train, test, y_test, **kwargs)
        hist_scores = selection.single_feature_ap(
            train, y_train, test, y_test, backend="hist", **kwargs)
        np.testing.assert_allclose(hist_scores, exact_scores, atol=1e-6)
        top = lambda s: set(np.argsort(-s, kind="stable")[:8].tolist())  # noqa: E731
        assert top(hist_scores) == top(exact_scores)

    def test_capped_regime_stays_within_ap_tolerance(self, rng):
        # 450 training rows of distinct-valued data: both backends fall
        # back to the shared quantile-rank grid, so even above the bin
        # budget the scanned thresholds -- and therefore the AP(N)
        # scores -- still agree.
        train, y_train, test, y_test = self._world(rng, n=900, n_features=10)
        kwargs = dict(n=80, n_rounds=3, batched=True)
        exact_scores = selection.single_feature_ap(
            train, y_train, test, y_test, **kwargs)
        hist_scores = selection.single_feature_ap(
            train, y_train, test, y_test, backend="hist", **kwargs)
        # Column 2 is integer-rounded: in the capped regime the hist
        # backend bins it exactly while the grid-capped exact sweep can
        # only split where the grid happens to land on a value boundary,
        # so the hist search is strictly finer there (see DESIGN.md
        # section 7) and equality is only claimed for the distinct-valued
        # columns.
        distinct_valued = np.ones(train.n_features, dtype=bool)
        distinct_valued[2] = False
        np.testing.assert_allclose(
            hist_scores[distinct_valued], exact_scores[distinct_valued],
            atol=1e-6,
        )

    def test_shared_binning_changes_nothing(self, rng):
        train, y_train, test, y_test = self._world(rng)
        binned = BinnedDataset.from_matrix(train.matrix, train.categorical)
        kwargs = dict(n=60, n_rounds=4, batched=True, backend="hist")
        fresh = selection.single_feature_ap(
            train, y_train, test, y_test, **kwargs)
        shared = selection.single_feature_ap(
            train, y_train, test, y_test, binned=binned, **kwargs)
        assert np.array_equal(fresh, shared)

    def test_unknown_backend_rejected(self, rng):
        train, y_train, test, y_test = self._world(rng, n=100)
        with pytest.raises(ValueError):
            selection.single_feature_ap(
                train, y_train, test, y_test, n=20, backend="xgboost")


class TestPredictorAndLifecycle:
    def test_predictor_hist_end_to_end(self, small_result, small_split):
        from repro.core.predictor import PredictorConfig, TicketPredictor

        kwargs = dict(capacity=60, train_rounds=20, selection_rounds=2)
        exact = TicketPredictor(PredictorConfig(**kwargs)).fit(
            small_result, small_split)
        hist = TicketPredictor(PredictorConfig(backend="hist", **kwargs)).fit(
            small_result, small_split)
        assert hist.config.backend == "hist"
        assert hist.model is not None
        # Shared pre-binning: selection and the final train agree with the
        # exact pipeline on which features matter.
        overlap = set(hist.feature_names) & set(exact.feature_names)
        assert len(overlap) >= len(exact.feature_names) * 0.6
        # Round-trip keeps the backend provenance.
        restored = TicketPredictor.from_dict(hist.to_dict())
        assert restored.config.backend == "hist"
        assert restored.config.n_bins == hist.config.n_bins

    def test_train_challenger_backend_override(self, small_result):
        from repro.core.pipeline import NevermindPipeline, PipelineConfig
        from repro.core.predictor import PredictorConfig

        pipeline = NevermindPipeline(
            small_result.config,
            PipelineConfig(
                warmup_weeks=13,
                predictor=PredictorConfig(
                    capacity=40, horizon_weeks=3, train_rounds=10,
                    selection_rounds=2, include_derived=False,
                ),
            ),
        )
        pipeline.simulator.run(16)
        challenger = pipeline.train_challenger(15, backend="hist", n_bins=128)
        assert challenger.config.backend == "hist"
        assert challenger.config.n_bins == 128
        assert challenger.model is not None
        # The pipeline's own config is untouched.
        assert pipeline.config.predictor.backend == "exact"

    def test_lifecycle_config_backend_knobs(self):
        from repro.lifecycle.config import LifecycleConfig

        config = LifecycleConfig()
        assert config.challenger_backend == "hist"
        assert config.to_dict()["challenger_backend"] == "hist"
        with pytest.raises(ValueError):
            LifecycleConfig(challenger_backend="bogus")
        with pytest.raises(ValueError):
            LifecycleConfig(challenger_bins=1)
