"""Unit tests for the customer-care simulation (repro.tickets)."""

import numpy as np
import pytest

from repro.tickets.customers import CustomerConfig, build_customers
from repro.tickets.dispatch import AtdsConfig, Dispatcher
from repro.tickets.outage import OutageConfig, OutageSchedule
from repro.tickets.ticketing import (
    DAY_OF_WEEK_WEIGHTS,
    TicketCategory,
    TicketLog,
    TicketSource,
    day_of_week,
)


class TestCustomers:
    def test_shapes(self):
        customers = build_customers(100, 10)
        assert customers.usage_intensity.shape == (100,)
        assert customers.away.shape == (100, 10)

    def test_values_in_unit_interval(self):
        customers = build_customers(500, 5)
        assert np.all((customers.usage_intensity >= 0) & (customers.usage_intensity <= 1))
        assert np.all((customers.report_propensity >= 0) & (customers.report_propensity <= 1))

    def test_vacations_are_contiguous_episodes(self):
        config = CustomerConfig(away_start_prob=0.5, away_min_weeks=2,
                                away_max_weeks=2, seed=2)
        customers = build_customers(50, 12, config)
        assert customers.away.any()

    def test_away_rate_tracks_config(self):
        config = CustomerConfig(away_start_prob=0.05, seed=4)
        customers = build_customers(4000, 20, config)
        rate = customers.away.mean()
        # ~5% weekly starts x ~2-week stays => roughly 10% away overall.
        assert 0.04 < rate < 0.2

    def test_present_inverts_away(self):
        customers = build_customers(20, 4)
        assert np.array_equal(customers.present(2), ~customers.away[:, 2])

    def test_week_bounds_checked(self):
        customers = build_customers(5, 3)
        with pytest.raises(IndexError):
            customers.present(3)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            build_customers(0, 5)
        with pytest.raises(ValueError):
            build_customers(5, 5, CustomerConfig(away_min_weeks=3, away_max_weeks=1))


class TestTicketLog:
    def test_day_of_week_monday_anchor(self):
        assert day_of_week(0) == 0  # Monday
        assert day_of_week(5) == 5  # Saturday (the test day)
        assert day_of_week(7) == 0

    def test_weights_sum_to_one_and_peak_monday(self):
        assert DAY_OF_WEEK_WEIGHTS.sum() == pytest.approx(1.0)
        assert np.argmax(DAY_OF_WEEK_WEIGHTS) == 0
        assert DAY_OF_WEEK_WEIGHTS[5] < DAY_OF_WEEK_WEIGHTS[0]

    def test_open_ticket_sequence(self):
        log = TicketLog()
        t1 = log.open_ticket(3, 10, TicketCategory.CUSTOMER_EDGE)
        t2 = log.open_ticket(4, 11, TicketCategory.BILLING)
        assert t1.ticket_id == 0 and t2.ticket_id == 1
        assert len(log) == 2
        assert t1.week == 1

    def test_edge_tickets_filter(self):
        log = TicketLog()
        log.open_ticket(1, 5, TicketCategory.CUSTOMER_EDGE)
        log.open_ticket(2, 5, TicketCategory.BILLING)
        log.open_ticket(3, 5, TicketCategory.OTHER)
        assert len(log.edge_tickets()) == 1

    def test_first_edge_ticket_after(self):
        log = TicketLog()
        log.open_ticket(0, 12, TicketCategory.CUSTOMER_EDGE)
        log.open_ticket(0, 20, TicketCategory.CUSTOMER_EDGE)
        log.open_ticket(1, 40, TicketCategory.CUSTOMER_EDGE)
        log.open_ticket(2, 15, TicketCategory.BILLING)  # not edge
        delays = log.first_edge_ticket_after(4, day=10, horizon_days=14)
        assert delays[0] == 2       # first of line 0's two tickets
        assert delays[1] == -1      # beyond horizon
        assert delays[2] == -1      # billing does not count
        assert delays[3] == -1

    def test_horizon_excludes_prediction_day(self):
        log = TicketLog()
        log.open_ticket(0, 10, TicketCategory.CUSTOMER_EDGE)
        delays = log.first_edge_ticket_after(1, day=10, horizon_days=7)
        assert delays[0] == -1  # tickets ON the prediction day don't count

    def test_nevermind_tickets_not_labels(self):
        log = TicketLog()
        log.open_ticket(0, 12, TicketCategory.CUSTOMER_EDGE,
                        source=TicketSource.NEVERMIND)
        delays = log.first_edge_ticket_after(1, day=10, horizon_days=14)
        assert delays[0] == -1

    def test_last_ticket_day_before(self):
        log = TicketLog()
        log.open_ticket(0, 5, TicketCategory.CUSTOMER_EDGE)
        log.open_ticket(0, 9, TicketCategory.BILLING)
        last = log.last_ticket_day_before(2, day=10)
        assert last[0] == 9  # any customer ticket counts for recency
        assert last[1] == -1

    def test_ivr_recording(self):
        log = TicketLog()
        log.record_ivr(7, 3, dslam_id=2, fault_disposition=5)
        assert len(log.ivr_calls) == 1
        assert len(log) == 0  # IVR calls never become tickets

    def test_weekday_histogram(self):
        log = TicketLog()
        log.open_ticket(0, 0, TicketCategory.CUSTOMER_EDGE)   # Monday
        log.open_ticket(1, 7, TicketCategory.CUSTOMER_EDGE)   # Monday
        log.open_ticket(2, 6, TicketCategory.CUSTOMER_EDGE)   # Sunday
        hist = log.weekday_histogram()
        assert hist[0] == 2 and hist[6] == 1


class TestOutages:
    def test_generation_rate(self):
        schedule = OutageSchedule.generate(
            500, 40, OutageConfig(weekly_rate=0.01, seed=1)
        )
        expected = 500 * 40 * 0.01
        assert len(schedule.events) == pytest.approx(expected, rel=0.3)

    def test_event_duration_range(self):
        config = OutageConfig(weekly_rate=0.05, min_days=2, max_days=4, seed=2)
        schedule = OutageSchedule.generate(100, 20, config)
        for event in schedule.events:
            assert 2 <= event.end_day - event.start_day + 1 <= 4

    def test_dslams_down_on(self):
        schedule = OutageSchedule.generate(50, 10, OutageConfig(weekly_rate=0.2, seed=3))
        event = schedule.events[0]
        down = schedule.dslams_down_on(event.start_day)
        assert down[event.dslam_id]
        after = schedule.dslams_down_on(event.end_day + 1)
        others = [e for e in schedule.events
                  if e.dslam_id == event.dslam_id and e.active_on(event.end_day + 1)]
        if not others:
            assert not after[event.dslam_id]

    def test_outage_indicator_window(self):
        schedule = OutageSchedule.generate(10, 10, OutageConfig(weekly_rate=0.0))
        from repro.tickets.outage import OutageEvent
        schedule.events.append(OutageEvent(dslam_id=3, start_day=20, end_day=21))
        assert schedule.outage_in_window(3, day=15, horizon_days=7)
        assert not schedule.outage_in_window(3, day=15, horizon_days=3)
        assert not schedule.outage_in_window(3, day=20, horizon_days=7)  # already started
        indicator = schedule.outage_indicator(15, 7)
        assert indicator[3] and indicator.sum() == 1

    def test_precursor_ramp(self):
        schedule = OutageSchedule.generate(
            10, 12, OutageConfig(weekly_rate=0.0, precursor_weeks=2)
        )
        from repro.tickets.outage import OutageEvent
        schedule.events.append(OutageEvent(dslam_id=5, start_day=70, end_day=71))  # week 10
        assert schedule.precursor_strength(10)[5] == 0.0  # the outage week itself
        s9 = schedule.precursor_strength(9)[5]
        s8 = schedule.precursor_strength(8)[5]
        s7 = schedule.precursor_strength(7)[5]
        assert s9 == 1.0 and s8 == 0.5 and s7 == 0.0

    def test_bad_config_rejected(self):
        with pytest.raises(ValueError):
            OutageSchedule.generate(0, 10)
        with pytest.raises(ValueError):
            OutageSchedule.generate(10, 10, OutageConfig(min_days=3, max_days=1))


class TestDispatcher:
    def test_resolution_delay_range(self, rng):
        dispatcher = Dispatcher(AtdsConfig(min_delay_days=1, max_delay_days=3))
        record = dispatcher.resolve(0, 5, report_day=10, true_disposition=4, rng=rng)
        assert 11 <= record.day <= 13

    def test_healthy_line_no_trouble_found(self, rng):
        dispatcher = Dispatcher()
        record = dispatcher.resolve(0, 5, 10, true_disposition=-1, rng=rng)
        assert record.recorded_disposition == -1
        assert record.fixed
        assert not record.truck_roll

    def test_disposition_noise_rate(self, rng):
        config = AtdsConfig(disposition_noise=0.2, failed_fix_rate=0.0)
        dispatcher = Dispatcher(config)
        wrong = 0
        n = 3000
        for _ in range(n):
            recorded = dispatcher.record_disposition(10, rng)
            wrong += recorded != 10
        assert wrong / n == pytest.approx(0.2, abs=0.03)

    def test_noise_mostly_same_location(self, rng):
        from repro.netsim.components import disposition_arrays
        locations = disposition_arrays().location
        config = AtdsConfig(disposition_noise=1.0, same_location_given_noise=0.8)
        dispatcher = Dispatcher(config)
        same = 0
        n = 2000
        for _ in range(n):
            recorded = dispatcher.record_disposition(10, rng)
            same += locations[recorded] == locations[10]
        assert same / n == pytest.approx(0.8, abs=0.05)

    def test_failed_fixes_leave_fault(self, rng):
        config = AtdsConfig(failed_fix_rate=1.0)
        dispatcher = Dispatcher(config)
        record = dispatcher.resolve(0, 5, 10, true_disposition=3, rng=rng)
        assert not record.fixed
        assert record.recorded_disposition == -1

    def test_counters(self, rng):
        dispatcher = Dispatcher(AtdsConfig(disposition_noise=0.0, failed_fix_rate=0.0))
        for i in range(20):
            dispatcher.resolve(i, i, 10, true_disposition=i % 52, rng=rng)
        counts = dispatcher.disposition_counts()
        assert counts.sum() == 20
        assert dispatcher.location_counts().sum() == 20
        summary = dispatcher.summary()
        assert summary["dispatches"] == 20

    def test_disposition_name(self):
        assert Dispatcher.disposition_name(-1) == "no trouble found"
        assert "modem" in Dispatcher.disposition_name(0).lower()
