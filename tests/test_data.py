"""Unit tests for dataset assembly (repro.data)."""

import numpy as np
import pytest

from repro.data.joins import (
    anonymize_ids,
    build_locator_dataset,
    build_ticket_dataset,
)
from repro.data.splits import TemporalSplit, paper_style_split


class TestSplits:
    def test_paper_style_layout(self):
        split = paper_style_split(20, history=8, train=4, selection=2, test=2)
        assert split.history_weeks == tuple(range(0, 8))
        assert split.train_weeks == tuple(range(8, 12))
        assert split.selection_weeks == tuple(range(12, 14))
        assert split.test_weeks == tuple(range(14, 16))
        assert split.horizon_days == 28

    def test_too_short_simulation_rejected(self):
        with pytest.raises(ValueError):
            paper_style_split(10, history=8, train=4, selection=2, test=2)

    def test_horizon_fits_for_last_test_week(self):
        split = paper_style_split(20)
        last = max(split.test_weeks)
        assert last * 7 + 5 + split.horizon_days <= 20 * 7 - 1

    def test_validate_rejects_overlap(self):
        split = TemporalSplit(
            history_weeks=(0, 1), train_weeks=(1, 2), selection_weeks=(3,),
            test_weeks=(4,), horizon_weeks=1,
        )
        with pytest.raises(ValueError):
            split.validate(10)

    def test_validate_rejects_truncated_horizon(self):
        split = TemporalSplit(
            history_weeks=(0,), train_weeks=(1,), selection_weeks=(2,),
            test_weeks=(9,), horizon_weeks=4,
        )
        with pytest.raises(ValueError):
            split.validate(10)

    def test_zero_test_weeks_allowed(self):
        split = paper_style_split(16, history=6, train=3, selection=3, test=0)
        assert split.test_weeks == ()


class TestAnonymize:
    def test_stable_and_distinct(self):
        ids = np.array([1, 2, 3, 1])
        hashed = anonymize_ids(ids)
        assert hashed[0] == hashed[3]
        assert len({hashed[0], hashed[1], hashed[2]}) == 3

    def test_salt_changes_tokens(self):
        ids = np.array([1])
        assert anonymize_ids(ids, salt="a")[0] != anonymize_ids(ids, salt="b")[0]

    def test_no_raw_id_leak(self):
        hashed = anonymize_ids(np.array([123456789]))
        assert "123456789" not in hashed[0]


class TestTicketDataset:
    def test_shapes_one_week(self, small_result, small_split):
        week = small_split.train_weeks[0]
        ds = build_ticket_dataset(small_result, [week], horizon_weeks=3)
        assert ds.n_examples == small_result.n_lines
        assert ds.features.matrix.shape[0] == ds.n_examples
        assert set(np.unique(ds.y)) <= {0.0, 1.0}

    def test_multiple_weeks_stack(self, small_result, small_split):
        ds = build_ticket_dataset(
            small_result, small_split.train_weeks, horizon_weeks=3
        )
        assert ds.n_examples == small_result.n_lines * len(small_split.train_weeks)
        assert len(set(ds.weeks)) == len(small_split.train_weeks)

    def test_labels_match_ticket_log(self, small_result, small_split):
        week = small_split.train_weeks[0]
        ds = build_ticket_dataset(small_result, [week], horizon_weeks=3)
        day = int(small_result.measurements.saturday_day[week])
        delays = small_result.ticket_log.first_edge_ticket_after(
            small_result.n_lines, day, 21
        )
        assert np.array_equal(ds.y, (delays >= 0).astype(float))
        assert np.array_equal(ds.delays, delays)

    def test_positive_rate_reasonable(self, small_result, small_split):
        ds = build_ticket_dataset(small_result, small_split.train_weeks,
                                  horizon_weeks=3)
        assert 0.005 < ds.positive_rate() < 0.5

    def test_empty_weeks_rejected(self, small_result):
        with pytest.raises(ValueError):
            build_ticket_dataset(small_result, [])


class TestLocatorDataset:
    def test_build(self, small_result):
        ds = build_locator_dataset(small_result, first_day=40, last_day=120)
        assert ds.n_examples > 50
        assert np.all((ds.disposition >= 0) & (ds.disposition < 52))
        assert np.all((ds.location >= 0) & (ds.location < 4))
        assert ds.features.matrix.shape[0] == ds.n_examples

    def test_location_consistent_with_catalog(self, small_result):
        from repro.netsim.components import disposition_arrays
        locations = disposition_arrays().location
        ds = build_locator_dataset(small_result, 40, 120)
        assert np.array_equal(ds.location, locations[ds.disposition])

    def test_day_range_respected(self, small_result):
        ds = build_locator_dataset(small_result, 40, 60)
        assert np.all((ds.ticket_days >= 40) & (ds.ticket_days <= 60))

    def test_prior_distribution(self, small_result):
        ds = build_locator_dataset(small_result, 40, 120)
        prior = ds.disposition_prior(52)
        assert prior.sum() == pytest.approx(1.0)
        assert prior.max() < 0.5  # no dominant disposition

    def test_empty_range_raises(self, small_result):
        with pytest.raises(ValueError):
            build_locator_dataset(small_result, 0, 1)
