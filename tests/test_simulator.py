"""Integration-level tests of the week-by-week simulator."""

import numpy as np
import pytest

from repro.measurement.records import feature_index
from repro.netsim.simulator import (
    SATURDAY_OFFSET,
    DslSimulator,
    PopulationConfig,
    SimulationConfig,
)
from repro.tickets.ticketing import TicketCategory, TicketSource


class TestRun:
    def test_measurements_every_week(self, small_result):
        weeks = small_result.measurements.filled_weeks
        assert list(weeks) == list(range(small_result.config.n_weeks))
        saturdays = small_result.measurements.saturday_day
        assert all(day % 7 == SATURDAY_OFFSET for day in saturdays)

    def test_ticket_stream_is_substantial(self, small_result):
        edge = small_result.ticket_log.edge_tickets()
        assert len(edge) > 200

    def test_weekly_seasonality_monday_peak(self, small_result):
        hist = small_result.ticket_log.weekday_histogram()
        assert hist[0] == hist.max()          # Monday peak
        assert hist[5] + hist[6] < hist[0] + hist[1]  # weekend trough

    def test_fault_events_have_valid_fields(self, small_result):
        for event in small_result.fault_events:
            assert 0 <= event.disposition < 52
            assert event.onset_day >= 0
            if event.cleared_day >= 0:
                assert event.cleared_day >= event.onset_day
                assert event.clear_cause in ("dispatch", "self", "proactive")

    def test_tickets_reference_real_faults(self, small_result):
        for ticket in small_result.ticket_log.edge_tickets():
            if ticket.source is TicketSource.CUSTOMER:
                assert ticket.fault_disposition >= 0
                assert ticket.fault_onset_day <= ticket.day

    def test_dispatch_clears_faults(self, small_result):
        """A fixed dispatch must close its line's fault event."""
        fixed_days = {}
        for record in small_result.dispatcher.records:
            if record.fixed and record.true_disposition >= 0:
                fixed_days.setdefault(record.line_id, []).append(record.day)
        closed = [e for e in small_result.fault_events
                  if e.clear_cause == "dispatch"]
        assert closed, "no dispatch-closed fault events at all"
        for event in closed[:50]:
            assert event.cleared_day in fixed_days.get(event.line_id, [])

    def test_billing_tickets_present_but_unlabeled(self, small_result):
        billing = [t for t in small_result.ticket_log.tickets
                   if t.category is TicketCategory.BILLING]
        assert billing
        assert all(t.fault_disposition == -1 for t in billing)

    def test_measured_features_track_faults(self, small_result):
        """Lines with an active noisy fault at test time show elevated CV."""
        week = 12
        matrix = small_result.measurements.week_matrix(week)
        day = int(small_result.measurements.saturday_day[week])
        active = small_result.fault_active_on(day)
        cv = matrix[:, feature_index("dncvcnt1")]
        on = matrix[:, feature_index("state")] == 1.0
        faulty_cv = np.nanmean(cv[on & active])
        healthy_cv = np.nanmean(cv[on & ~active])
        assert faulty_cv > healthy_cv * 1.5

    def test_horizon_exhaustion_raises(self):
        sim = DslSimulator(SimulationConfig(
            n_weeks=2, population=PopulationConfig(n_lines=200)))
        sim.run()
        with pytest.raises(RuntimeError):
            sim.step()

    def test_determinism(self):
        config = SimulationConfig(
            n_weeks=6, population=PopulationConfig(n_lines=500), seed=42
        )
        a = DslSimulator(config).run()
        b = DslSimulator(config).run()
        assert len(a.ticket_log) == len(b.ticket_log)
        assert np.allclose(
            a.measurements.week_matrix(3), b.measurements.week_matrix(3),
            equal_nan=True,
        )

    def test_partial_run_and_resume(self):
        config = SimulationConfig(
            n_weeks=6, population=PopulationConfig(n_lines=300))
        sim = DslSimulator(config)
        sim.run(n_weeks=3)
        assert sim.week == 3
        result = sim.run()
        assert list(result.measurements.filled_weeks) == list(range(6))


class TestProactiveFixes:
    def test_proactive_fix_clears_fault(self):
        config = SimulationConfig(
            n_weeks=8, population=PopulationConfig(n_lines=800),
            fault_rate_scale=8.0, seed=7,
        )
        sim = DslSimulator(config)
        for _ in range(4):
            sim.step()
        faulty = np.flatnonzero(sim.state.active)
        assert faulty.size > 0
        records = sim.apply_proactive_fixes(faulty[:5], day=sim.week * 7)
        assert len(records) == 5
        assert all(r.true_disposition >= 0 for r in records)
        for record in records:
            if record.fixed:
                assert sim.state.disposition[record.line_id] == -1

    def test_proactive_fix_on_healthy_line(self):
        config = SimulationConfig(
            n_weeks=4, population=PopulationConfig(n_lines=300))
        sim = DslSimulator(config)
        sim.step()
        healthy = np.flatnonzero(~sim.state.active)
        records = sim.apply_proactive_fixes(healthy[:3], day=7)
        assert all(r.true_disposition == -1 for r in records)

    def test_proactive_tickets_tagged_nevermind(self):
        config = SimulationConfig(
            n_weeks=4, population=PopulationConfig(n_lines=300))
        sim = DslSimulator(config)
        sim.step()
        sim.apply_proactive_fixes(np.array([0, 1]), day=7)
        sources = [t.source for t in sim.ticket_log.tickets if t.line_id in (0, 1)
                   and t.day == 7]
        assert TicketSource.NEVERMIND in sources


class TestOutageInteraction:
    @pytest.fixture(scope="class")
    def outage_result(self):
        from repro.tickets.outage import OutageConfig
        config = SimulationConfig(
            n_weeks=16,
            population=PopulationConfig(n_lines=2000, seed=2),
            outages=OutageConfig(weekly_rate=0.08, seed=5),
            fault_rate_scale=5.0,
            seed=31,
        )
        return DslSimulator(config).run()

    def test_outages_scheduled(self, outage_result):
        assert len(outage_result.outages.events) > 5

    def test_ivr_absorbs_calls_during_outages(self, outage_result):
        assert len(outage_result.ticket_log.ivr_calls) > 0
        for call in outage_result.ticket_log.ivr_calls:
            down = outage_result.outages.dslams_down_on(call.day)
            assert down[call.dslam_id]

    def test_precursor_degradation_visible(self, outage_result):
        """Lines on a pre-outage DSLAM measure worse the week before."""
        events = [e for e in outage_result.outages.events
                  if e.start_day // 7 >= 3]
        deltas = []
        for event in events:
            pre_week = event.start_day // 7 - 1
            matrix = outage_result.measurements.week_matrix(pre_week)
            lines = outage_result.population.topology.lines_of_dslam(event.dslam_id)
            cv = matrix[:, feature_index("dncvcnt1")]
            present = ~np.isnan(cv[lines])
            if not present.any():
                continue  # every modem on the DSLAM happened to be off
            dslam_cv = np.mean(cv[lines][present])
            all_cv = np.nanmean(cv)
            deltas.append(dslam_cv - all_cv)
        assert np.mean(deltas) > 1.0
