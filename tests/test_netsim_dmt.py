"""Unit tests for the DMT per-tone physics (repro.netsim.dmt)."""

import numpy as np
import pytest

from repro.netsim.dmt import DmtConfig, DmtLinePhysics, DmtModel


@pytest.fixture(scope="module")
def model():
    return DmtModel()


class TestToneGrid:
    def test_adsl2plus_tone_ranges(self, model):
        down = model.tones()
        up = model.tones(upstream=True)
        assert down[0] == 33 and down[-1] == 511
        assert up[0] == 7 and up[-1] == 31

    def test_frequencies_on_grid(self, model):
        freqs = model.tone_frequencies_hz()
        assert freqs[0] == pytest.approx(33 * 4312.5)
        assert np.all(np.diff(freqs) == pytest.approx(4312.5))

    def test_bad_tone_ranges_rejected(self):
        with pytest.raises(ValueError):
            DmtModel(DmtConfig(down_tone_lo=5, up_tone_hi=31))


class TestLoss:
    def test_loss_grows_with_frequency_and_length(self, model):
        freqs = model.tone_frequencies_hz()
        short = model.loop_loss_db(3.0, freqs)
        long = model.loop_loss_db(12.0, freqs)
        assert np.all(np.diff(short) > 0)
        assert np.all(long > short)

    def test_loss_linear_in_length(self, model):
        freqs = model.tone_frequencies_hz()[:10]
        assert np.allclose(model.loop_loss_db(10.0, freqs),
                           2 * model.loop_loss_db(5.0, freqs))

    def test_negative_length_rejected(self, model):
        with pytest.raises(ValueError):
            model.loop_loss_db(-1.0, np.array([1e5]))

    def test_bridge_tap_notch_shape(self, model):
        freqs = model.tone_frequencies_hz()
        notch = model.bridge_tap_loss_db(freqs)
        assert np.all(notch >= 0)
        assert notch.max() <= model.config.bridge_tap_depth_db + 1e-9
        assert notch.max() > 0.5 * model.config.bridge_tap_depth_db

    def test_no_tap_no_notch(self, model):
        freqs = model.tone_frequencies_hz()
        assert np.all(model.bridge_tap_loss_db(freqs, tap_kft=0.0) == 0)


class TestRates:
    def test_reach_rate_curve_realistic(self, model):
        """Anchor the curve to field ADSL2+ numbers: >20 Mbps on short
        loops, ~1-3 Mbps at 12-15 kft (the 15 kft basic-profile rule),
        sub-Mbps at 18 kft."""
        assert model.attainable_kbps(0.5) > 20_000
        assert 1_500 < model.attainable_kbps(12.0) < 4_000
        assert 700 < model.attainable_kbps(15.0) < 2_000
        assert model.attainable_kbps(18.0) < 1_000

    def test_rate_monotone_in_length(self, model):
        rates = [model.attainable_kbps(L) for L in np.linspace(0.5, 20, 15)]
        assert all(b <= a + 1e-9 for a, b in zip(rates, rates[1:]))

    def test_upstream_survives_long_loops(self, model):
        """Upstream lives in the low band and degrades much more slowly --
        the physical basis of the locator's directional signal."""
        dn_drop = model.attainable_kbps(3.0) / model.attainable_kbps(15.0)
        up_drop = model.attainable_kbps(3.0, upstream=True) / model.attainable_kbps(
            15.0, upstream=True
        )
        assert dn_drop > 5 * up_drop

    def test_impairments_reduce_rate(self, model):
        base = model.attainable_kbps(8.0)
        assert model.attainable_kbps(8.0, extra_noise_db=8.0) < base
        assert model.attainable_kbps(8.0, extra_atten_db=10.0) < base
        assert model.attainable_kbps(8.0, bridge_tap=True) < base
        assert model.attainable_kbps(8.0, crosstalk=True) < base

    def test_bit_cap_respected(self, model):
        bits = model.bits_per_tone(np.array([200.0]))
        assert bits[0] == model.config.max_bits_per_tone

    def test_zero_snr_zero_bits(self, model):
        assert model.bits_per_tone(np.array([-50.0]))[0] == 0

    def test_highest_carrier_decays(self, model):
        assert model.highest_carrier(1.0) == 511
        assert model.highest_carrier(18.0) < model.highest_carrier(9.0) < 511


class TestAdapter:
    @pytest.fixture(scope="class")
    def physics(self):
        return DmtLinePhysics()

    def test_matches_tone_model_on_grid(self, physics):
        direct = physics.dmt.attainable_kbps(9.0)
        adapted = physics.clean_attainable_kbps(np.array([9.0]))
        assert adapted[0] == pytest.approx(direct, rel=0.02)

    def test_vectorised_monotone(self, physics):
        loops = np.linspace(0.5, 20, 30)
        rates = physics.clean_attainable_kbps(loops)
        assert np.all(np.diff(rates) <= 1e-6)

    def test_interface_compatible_with_line_tester(self, physics):
        """The whole measurement stack runs unchanged on DMT physics."""
        from repro.measurement.linetest import LineTester
        from repro.netsim.faults import FaultModel, FaultState
        from repro.netsim.population import PopulationConfig, build_population

        population = build_population(PopulationConfig(n_lines=300, seed=9))
        effects = FaultModel().effects(FaultState.healthy(300))
        tester = LineTester(physics=physics)
        out = tester.run(
            population.conditions(), effects, np.full(300, 0.5),
            np.zeros(300, dtype=bool), np.random.default_rng(0),
        )
        assert out.shape == (300, 25)
        from repro.measurement.records import feature_index
        on = out[:, feature_index("state")] == 1.0
        assert np.corrcoef(
            population.loop_kft[on], out[on, feature_index("dnaten")]
        )[0, 1] > 0.9

    def test_highest_carrier_adapter(self, physics):
        hicar = physics.highest_carrier(np.array([2.0, 16.0]), np.zeros(2))
        assert hicar[0] > hicar[1]
        assert hicar[0] <= physics.max_carrier


class TestSimulatorIntegration:
    def test_simulator_runs_on_dmt_physics(self):
        from repro.netsim.simulator import (
            DslSimulator,
            PopulationConfig,
            SimulationConfig,
        )

        config = SimulationConfig(
            n_weeks=5,
            population=PopulationConfig(n_lines=400, seed=6),
            fault_rate_scale=5.0,
            physics_model="dmt",
            seed=8,
        )
        result = DslSimulator(config).run()
        assert len(result.measurements.filled_weeks) == 5

    def test_unknown_physics_model_rejected(self):
        from repro.netsim.simulator import (
            DslSimulator,
            PopulationConfig,
            SimulationConfig,
        )

        config = SimulationConfig(
            n_weeks=2, population=PopulationConfig(n_lines=50),
            physics_model="quantum",
        )
        with pytest.raises(ValueError):
            DslSimulator(config)
