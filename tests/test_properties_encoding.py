"""Property-based tests on the feature encoder and measurement store."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.features.encoding import EncoderConfig, LineFeatureEncoder
from repro.measurement.records import N_FEATURES, MeasurementStore, feature_index
from repro.netsim.population import PopulationConfig, build_population


@st.composite
def measurement_worlds(draw):
    """A tiny random population with a consistent measurement store."""
    n_lines = draw(st.integers(3, 12))
    n_weeks = draw(st.integers(2, 6))
    seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    store = MeasurementStore(n_lines=n_lines, n_weeks=n_weeks)
    for week in range(n_weeks):
        features = rng.normal(10.0, 3.0, size=(n_lines, N_FEATURES))
        state = rng.random(n_lines) < 0.85
        features[:, feature_index("state")] = state.astype(float)
        features[~state, 1:] = np.nan
        store.add_week(week, week * 7 + 5, features.astype(np.float32))
    population = build_population(PopulationConfig(n_lines=n_lines, seed=seed))
    return store, population


class TestEncoderProperties:
    @given(measurement_worlds())
    @settings(max_examples=25, deadline=None)
    def test_basic_block_equals_current_week(self, world):
        store, population = world
        week = store.n_weeks - 1
        fs = LineFeatureEncoder().encode(store, week, population)
        assert np.allclose(
            fs.matrix[:, :N_FEATURES],
            np.asarray(store.week_matrix(week), float),
            equal_nan=True,
            atol=1e-5,
        )

    @given(measurement_worlds())
    @settings(max_examples=25, deadline=None)
    def test_delta_block_is_exact_difference(self, world):
        store, population = world
        week = store.n_weeks - 1
        fs = LineFeatureEncoder().encode(store, week, population)
        current = np.asarray(store.week_matrix(week), float)
        previous = np.asarray(store.week_matrix(week - 1), float)
        delta = fs.matrix[:, N_FEATURES:2 * N_FEATURES]
        assert np.allclose(delta, current - previous, equal_nan=True, atol=1e-4)

    @given(measurement_worlds())
    @settings(max_examples=25, deadline=None)
    def test_column_count_is_invariant(self, world):
        store, population = world
        encoder = LineFeatureEncoder()
        fs = encoder.encode(store, store.n_weeks - 1, population)
        assert fs.n_features == encoder.base_feature_count()
        assert len(fs.names) == fs.n_features
        assert len(fs.groups) == fs.n_features
        assert fs.categorical.shape == (fs.n_features,)

    @given(measurement_worlds())
    @settings(max_examples=25, deadline=None)
    def test_quadratic_consistency(self, world):
        store, population = world
        encoder = LineFeatureEncoder(EncoderConfig(include_quadratic=True))
        fs = encoder.encode(store, store.n_weeks - 1, population)
        base_n = encoder.base_feature_count()
        assert np.allclose(
            fs.matrix[:, base_n:2 * base_n],
            fs.matrix[:, :base_n] ** 2,
            equal_nan=True,
        )

    @given(measurement_worlds(), st.integers(0, 100))
    @settings(max_examples=25, deadline=None)
    def test_subset_preserves_columns(self, world, pick_seed):
        store, population = world
        fs = LineFeatureEncoder().encode(store, store.n_weeks - 1, population)
        rng = np.random.default_rng(pick_seed)
        indices = rng.choice(fs.n_features, size=5, replace=False)
        sub = fs.subset(indices)
        for out_col, in_col in enumerate(indices):
            assert np.allclose(
                sub.matrix[:, out_col], fs.matrix[:, in_col], equal_nan=True
            )
            assert sub.names[out_col] == fs.names[in_col]


class TestStoreProperties:
    @given(st.integers(1, 20), st.integers(1, 10))
    def test_fresh_store_is_all_missing(self, n_lines, n_weeks):
        store = MeasurementStore(n_lines=n_lines, n_weeks=n_weeks)
        assert np.all(np.isnan(store.data))
        assert store.filled_weeks.size == 0

    @given(measurement_worlds())
    @settings(max_examples=25, deadline=None)
    def test_modem_off_fraction_bounds(self, world):
        store, _ = world
        off = store.modem_off_fraction()
        assert np.all((off >= 0.0) & (off <= 1.0))
