"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.ml.calibration import PlattCalibrator
from repro.ml.metrics import (
    auc,
    average_precision,
    precision_at,
    top_n_average_precision,
)
from repro.ml.stumps import fit_stump
from repro.netsim.physics import LinePhysics


finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


@st.composite
def labeled_scores(draw, min_size=2, max_size=200):
    n = draw(st.integers(min_size, max_size))
    labels = draw(
        hnp.arrays(np.int8, n, elements=st.integers(0, 1)).map(
            lambda a: a.astype(float)
        )
    )
    scores = draw(hnp.arrays(np.float64, n, elements=finite_floats))
    return labels, scores


class TestMetricProperties:
    @given(labeled_scores())
    def test_ap_n_bounded(self, data):
        labels, scores = data
        value = top_n_average_precision(labels, 10, scores)
        assert 0.0 <= value <= 1.0

    @given(labeled_scores())
    def test_precision_bounded(self, data):
        labels, scores = data
        assert 0.0 <= precision_at(labels, 5, scores) <= 1.0

    @given(labeled_scores())
    def test_auc_bounded(self, data):
        labels, scores = data
        assert 0.0 <= auc(labels, scores) <= 1.0

    @given(labeled_scores())
    def test_average_precision_bounded(self, data):
        labels, scores = data
        assert 0.0 <= average_precision(labels, scores) <= 1.0

    @given(labeled_scores())
    def test_perfect_ranking_maximises_ap_n(self, data):
        """Sorting true labels to the front can never score below any
        other ordering of the same labels."""
        labels, scores = data
        n = 10
        arbitrary = top_n_average_precision(labels, n, scores)
        ideal = top_n_average_precision(np.sort(labels)[::-1], n)
        assert ideal >= arbitrary - 1e-12

    @given(labeled_scores(min_size=4))
    def test_auc_antisymmetric(self, data):
        labels, scores = data
        if len(np.unique(labels)) < 2:
            return
        a = auc(labels, scores)
        b = auc(labels, -scores)
        assert a + b == pytest.approx(1.0, abs=1e-9)

    @given(labeled_scores())
    def test_ap_invariant_to_monotone_transform(self, data):
        # Scaling by a power of two is exact in floating point, so the
        # ranking (including tie structure) is provably unchanged.
        labels, scores = data
        a = top_n_average_precision(labels, 7, scores)
        b = top_n_average_precision(labels, 7, 4.0 * scores)
        assert a == pytest.approx(b)


class TestStumpProperties:
    @given(
        hnp.arrays(np.float64, st.integers(4, 120), elements=finite_floats),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=50, deadline=None)
    def test_z_bounded_and_prediction_finite(self, column, rnd):
        n = len(column)
        y = np.array([1.0 if rnd.random() < 0.5 else -1.0 for _ in range(n)])
        if len(np.unique(y)) < 2:
            return
        weights = np.full(n, 1.0 / n)
        stump = fit_stump(column, y, weights)
        # Z of a normalised distribution never exceeds 1 (+ tolerance).
        assert stump.z <= 1.0 + 1e-9
        out = stump.predict(column[:, None])
        assert np.all(np.isfinite(out))

    @given(hnp.arrays(np.float64, st.integers(4, 60), elements=finite_floats))
    @settings(max_examples=50, deadline=None)
    def test_perfectly_correlated_label_gives_small_z(self, column):
        values = np.unique(column)
        if len(values) < 2:
            return
        median = np.median(column)
        y = np.where(column > median, 1.0, -1.0)
        if len(np.unique(y)) < 2:
            return
        weights = np.full(len(column), 1.0 / len(column))
        stump = fit_stump(column, y, weights)
        assert stump.z < 0.7


class TestCalibrationProperties:
    @given(
        hnp.arrays(
            np.float64,
            st.integers(10, 300),
            elements=st.floats(-50, 50, allow_nan=False),
        ),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=30, deadline=None)
    def test_output_is_probability_and_monotone(self, margins, rnd):
        labels = np.array(
            [1.0 if rnd.random() < 0.5 else 0.0 for _ in margins]
        )
        if len(np.unique(labels)) < 2:
            return
        cal = PlattCalibrator().fit(margins, labels)
        grid = np.linspace(margins.min(), margins.max(), 20)
        probs = cal.transform(grid)
        assert np.all((probs >= 0.0) & (probs <= 1.0))
        diffs = np.diff(probs)
        # The fitted sigmoid is monotone (in one direction or the other).
        assert np.all(diffs >= -1e-12) or np.all(diffs <= 1e-12)


class TestPhysicsProperties:
    @given(
        st.lists(st.floats(0.0, 25.0, allow_nan=False), min_size=2, max_size=50)
    )
    def test_attainable_monotone_in_loop(self, loops):
        physics = LinePhysics()
        loops = np.sort(np.asarray(loops))
        rates = physics.clean_attainable_kbps(loops)
        assert np.all(np.diff(rates) <= 1e-9)

    @given(
        st.floats(0.1, 20.0, allow_nan=False),
        st.floats(0.0, 30.0, allow_nan=False),
    )
    def test_noise_never_raises_rate(self, loop, noise):
        physics = LinePhysics()
        cond_kwargs = dict(
            loop_kft=np.array([loop]),
            profile_down_kbps=np.array([768.0]),
            profile_up_kbps=np.array([384.0]),
            ambient_noise_db=np.zeros(1),
            static_bridge_tap=np.zeros(1, dtype=bool),
            static_crosstalk=np.zeros(1, dtype=bool),
        )
        from repro.netsim.physics import LoopConditions

        cond = LoopConditions(**cond_kwargs)
        clean = physics.attainable_kbps(
            cond, np.zeros(1), np.zeros(1), np.ones(1),
            np.zeros(1, dtype=bool), np.zeros(1, dtype=bool),
        )
        noisy = physics.attainable_kbps(
            cond, np.array([noise]), np.zeros(1), np.ones(1),
            np.zeros(1, dtype=bool), np.zeros(1, dtype=bool),
        )
        assert noisy[0] <= clean[0] + 1e-9

    @given(st.floats(32.0, 10000.0), st.floats(32.0, 10000.0))
    def test_relative_capacity_bounds(self, sync, attainable):
        physics = LinePhysics()
        rc = physics.relative_capacity(np.array([sync]), np.array([attainable]))
        assert 0.0 <= rc[0] <= 1.0
