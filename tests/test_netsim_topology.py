"""Unit tests for the topology object model (repro.netsim.topology)."""

import numpy as np
import pytest

from repro.netsim.topology import Binder, Bras, Dslam, Topology


def make_valid_topology():
    """2 BRAS x 2 DSLAMs x 3 lines each."""
    dslams = [
        Dslam(dslam_id=0, bras_id=0, geo=0, line_ids=np.array([0, 1, 2])),
        Dslam(dslam_id=1, bras_id=1, geo=1, line_ids=np.array([3, 4, 5])),
    ]
    brases = [
        Bras(bras_id=0, dslam_ids=np.array([0])),
        Bras(bras_id=1, dslam_ids=np.array([1])),
    ]
    line_dslam = np.array([0, 0, 0, 1, 1, 1])
    line_bras = np.array([0, 0, 0, 1, 1, 1])
    return Topology(brases=brases, dslams=dslams,
                    line_dslam=line_dslam, line_bras=line_bras)


class TestTopology:
    def test_valid_topology_passes(self):
        make_valid_topology().validate()

    def test_counts(self):
        topo = make_valid_topology()
        assert topo.n_lines == 6
        assert topo.n_dslams == 2
        assert topo.n_brases == 2

    def test_lines_of_dslam(self):
        topo = make_valid_topology()
        assert list(topo.lines_of_dslam(1)) == [3, 4, 5]

    def test_lines_of_bras(self):
        topo = make_valid_topology()
        assert list(topo.lines_of_bras(0)) == [0, 1, 2]

    def test_detects_orphan_line(self):
        topo = make_valid_topology()
        topo.dslams[1] = Dslam(dslam_id=1, bras_id=1, geo=1,
                               line_ids=np.array([3, 4]))  # line 5 orphaned
        with pytest.raises(ValueError):
            topo.validate()

    def test_detects_double_homed_line(self):
        topo = make_valid_topology()
        topo.dslams[1] = Dslam(dslam_id=1, bras_id=1, geo=1,
                               line_ids=np.array([2, 3, 4, 5]))  # line 2 twice
        with pytest.raises(ValueError):
            topo.validate()

    def test_detects_bad_bras_reference(self):
        topo = make_valid_topology()
        topo.dslams[0] = Dslam(dslam_id=0, bras_id=7, geo=0,
                               line_ids=np.array([0, 1, 2]))
        with pytest.raises(ValueError):
            topo.validate()

    def test_detects_line_map_mismatch(self):
        topo = make_valid_topology()
        topo.line_dslam = np.array([1, 0, 0, 1, 1, 1])  # line 0 misfiled
        with pytest.raises(ValueError):
            topo.validate()

    def test_detects_bras_membership_mismatch(self):
        topo = make_valid_topology()
        topo.brases[0] = Bras(bras_id=0, dslam_ids=np.array([0, 1]))
        with pytest.raises(ValueError):
            topo.validate()

    def test_detects_empty_dslam(self):
        topo = make_valid_topology()
        topo.dslams.append(
            Dslam(dslam_id=2, bras_id=1, geo=0, line_ids=np.empty(0, dtype=int))
        )
        with pytest.raises(ValueError, match="serves no lines"):
            topo.validate()

    def test_detects_out_of_range_bras_in_bras_list(self):
        topo = make_valid_topology()
        topo.brases[1] = Bras(bras_id=1, dslam_ids=np.array([1, 9]))
        with pytest.raises(ValueError, match="out-of-range DSLAM"):
            topo.validate()

    def test_detects_out_of_range_line_ids(self):
        topo = make_valid_topology()
        topo.dslams[1] = Dslam(dslam_id=1, bras_id=1, geo=1,
                               line_ids=np.array([3, 4, 99]))
        with pytest.raises(ValueError, match="out-of-range lines"):
            topo.validate()


def with_binders(topo):
    """Attach one binder per DSLAM covering all of its lines."""
    topo.binders = [
        Binder(binder_id=i, dslam_id=i, line_ids=d.line_ids.copy())
        for i, d in enumerate(topo.dslams)
    ]
    topo.line_binder = topo.line_dslam.copy()
    return topo


class TestBinders:
    def test_valid_binder_layer_passes(self):
        topo = with_binders(make_valid_topology())
        topo.validate()
        assert topo.has_binders
        assert topo.n_binders == 2
        assert topo.binder_of_line(4) == 1
        assert list(topo.lines_of_binder(0)) == [0, 1, 2]
        assert topo.dslam_of_binder(1) == 1

    def test_no_binders_is_still_valid(self):
        topo = make_valid_topology()
        topo.validate()
        assert not topo.has_binders
        assert topo.binder_of_line(0) == -1

    def test_line_binder_without_binders_rejected(self):
        topo = make_valid_topology()
        topo.line_binder = topo.line_dslam.copy()
        with pytest.raises(ValueError, match="no binders defined"):
            topo.validate()

    def test_detects_uncovered_line(self):
        topo = with_binders(make_valid_topology())
        topo.binders[1] = Binder(binder_id=1, dslam_id=1,
                                 line_ids=np.array([3, 4]))  # line 5 loose
        with pytest.raises(ValueError, match="no binder"):
            topo.validate()

    def test_detects_cross_dslam_binder(self):
        topo = with_binders(make_valid_topology())
        topo.binders[0] = Binder(binder_id=0, dslam_id=1,
                                 line_ids=np.array([0, 1, 2]))
        with pytest.raises(ValueError):
            topo.validate()

    def test_detects_line_binder_mismatch(self):
        topo = with_binders(make_valid_topology())
        topo.line_binder = np.array([0, 1, 0, 1, 1, 1])  # line 1 misfiled
        with pytest.raises(ValueError):
            topo.validate()

    def test_detects_misnumbered_binder(self):
        topo = with_binders(make_valid_topology())
        topo.binders[0] = Binder(binder_id=5, dslam_id=0,
                                 line_ids=np.array([0, 1, 2]))
        with pytest.raises(ValueError, match="list position"):
            topo.validate()
