"""A small parallel-map fabric for embarrassingly parallel training work.

The expensive loops in this reproduction -- the 52 one-vs-rest disposition
models plus 4 location models of the trouble locator, the per-fold
calibration refits, and the per-column parts of the feature-selection
sweep -- are all *independent* tasks over shared read-only numpy arrays.
This module gives them one deterministic primitive:

* :func:`parallel_map` -- ``map`` that preserves input order, running
  serially at ``workers=1`` (the default) and on a thread pool above it.

Threads, not processes: every task body is dominated by numpy kernels
(argsort, cumsum, gathers), which release the GIL, so threads deliver real
parallelism without pickling closures or duplicating the feature matrices
in child processes.  Because tasks are independent and results are
collected in submission order, the output is identical for every worker
count -- ``REPRO_WORKERS=8`` must (and does, see
``tests/test_parallel_fabric.py``) reproduce the serial result bit for
bit.

The worker count comes from the ``REPRO_WORKERS`` environment variable
(default 1) unless the caller passes one explicitly.

Observability: every task reports into the :mod:`repro.obs` registry --
``repro_parallel_queue_depth`` (gauge of submitted-but-unfinished
tasks), ``repro_parallel_task_seconds`` (histogram, labelled by the
caller's ``task_label``), and ``repro_parallel_worker_busy_seconds_total``
(per-worker counter; pool threads carry a stable ``repro-worker_N``
name, so utilization is busy-seconds per worker over wall time).  When
``REPRO_TRACE`` is on, the submitting thread's span context is captured
and every task runs under an adopted child span, so fan-out appears as
children of the submitting span even though workers have their own
stacks -- the context is a serializable
:class:`repro.obs.tracing.SpanContext`, so the same mechanism carries
spans across process boundaries (see
:func:`repro.obs.tracing.trace_in_subprocess`).
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from time import perf_counter
from typing import Callable, Iterable, Sequence, TypeVar

from repro.obs.metrics import get_registry
from repro.obs.profile import stage_profile
from repro.obs.tracing import get_tracer, tracing_enabled

__all__ = ["WORKERS_ENV_VAR", "worker_count", "parallel_map", "split_shards"]

WORKERS_ENV_VAR = "REPRO_WORKERS"

_T = TypeVar("_T")
_R = TypeVar("_R")

#: Task-duration buckets: selection chunks run sub-millisecond at test
#: scale, locator fits run seconds at benchmark scale.
_TASK_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0,
)


def worker_count(workers: int | str | None = None) -> int:
    """Resolve the effective worker count.

    Args:
        workers: explicit override; ``None`` reads ``REPRO_WORKERS`` from
            the environment, defaulting to 1 (serial) when unset or empty.
            The literal string ``"auto"`` (either as the argument or as
            the environment value) resolves to ``os.cpu_count()``, so a
            deployment can saturate whatever box it lands on without
            hard-coding a width.

    Returns:
        A positive integer worker count.

    Raises:
        ValueError: on a non-integer or non-positive setting, so that a
            typo in the environment fails loudly instead of silently
            running serial.
    """
    if workers is None:
        raw = os.environ.get(WORKERS_ENV_VAR, "").strip()
        if not raw:
            return 1
        workers = raw
    if isinstance(workers, str):
        raw = workers.strip()
        if raw.lower() == "auto":
            return os.cpu_count() or 1
        try:
            workers = int(raw)
        except ValueError:
            raise ValueError(
                f"{WORKERS_ENV_VAR} must be a positive integer or 'auto', "
                f"got {raw!r}"
            ) from None
    if workers < 1:
        raise ValueError(f"worker count must be >= 1, got {workers}")
    return workers


def parallel_map(
    fn: Callable[[_T], _R],
    items: Iterable[_T],
    workers: int | None = None,
    task_label: str = "parallel.task",
) -> list[_R]:
    """Apply ``fn`` to every item, preserving input order.

    Serial (a plain loop) when the resolved worker count is 1 or there is
    at most one item; otherwise a thread pool.  Exceptions from any task
    propagate to the caller either way.  Instrumentation (metrics, and
    spans when tracing is on) never changes results: tasks run the same
    bodies in the same submission order.

    Args:
        fn: task body; must not mutate shared state (tasks may run
            concurrently).
        items: the work list; consumed eagerly.
        workers: explicit worker count, else ``REPRO_WORKERS`` (default 1).
        task_label: the ``task`` label on fabric metrics and the span name
            of each task (e.g. ``"select.chunk"``, ``"serve.shard"``).

    Returns:
        ``[fn(item) for item in items]`` -- same values, same order,
        regardless of the worker count.
    """
    work: Sequence[_T] = list(items)
    if not work:
        return []
    n_workers = worker_count(workers)

    registry = get_registry()
    queue_depth = registry.gauge(
        "repro_parallel_queue_depth",
        "Tasks submitted to the parallel fabric but not yet finished",
    )
    tasks_total = registry.counter(
        "repro_parallel_tasks_total", "Tasks completed by the parallel fabric"
    )
    task_errors = registry.counter(
        "repro_parallel_task_errors_total", "Tasks that raised"
    )
    task_seconds = registry.histogram(
        "repro_parallel_task_seconds",
        "Wall time per fabric task",
        buckets=_TASK_BUCKETS,
    )
    worker_busy = registry.counter(
        "repro_parallel_worker_busy_seconds_total",
        "Busy wall time per fabric worker thread",
    )

    tracer = get_tracer() if tracing_enabled() else None
    context = tracer.current_context() if tracer is not None else None

    finished: list[None] = []  # list.append is atomic under the GIL

    def run(indexed: tuple[int, _T]) -> _R:
        index, item = indexed
        start = perf_counter()
        try:
            if tracer is not None:
                with tracer.adopt(context):
                    with tracer.span(task_label, index=index):
                        result = fn(item)
            else:
                result = fn(item)
        except BaseException:
            task_errors.inc(task=task_label)
            raise
        finally:
            queue_depth.dec()
            finished.append(None)
        elapsed = perf_counter() - start
        task_seconds.observe(elapsed, task=task_label)
        tasks_total.inc(task=task_label)
        worker_busy.inc(elapsed, worker=threading.current_thread().name)
        return result

    queue_depth.inc(len(work))
    try:
        # One profile block per *fan-out* (not per task): the resource
        # ledger answers "what did this whole sweep cost", task-level
        # wall time is already on repro_parallel_task_seconds.
        with stage_profile(f"fabric.{task_label}"):
            if n_workers == 1 or len(work) <= 1:
                return [run(indexed) for indexed in enumerate(work)]
            with ThreadPoolExecutor(
                max_workers=min(n_workers, len(work)),
                thread_name_prefix="repro-worker",
            ) as pool:
                return list(pool.map(run, enumerate(work)))
    except BaseException:
        # Tasks cancelled before starting never ran their dec; rebalance
        # so an aborted fan-out cannot leave queue depth pinned above
        # zero.  (The executor joins running tasks before propagating.)
        queue_depth.dec(len(work) - len(finished))
        raise


def split_shards(n_items: int, shard_size: int) -> list[slice]:
    """Contiguous slices covering ``range(n_items)`` in order.

    The scoring service fans these across :func:`parallel_map`; because
    the slices are contiguous, in order, and results are concatenated in
    submission order, sharded outputs are identical for every
    (shard_size, worker count) combination.

    Args:
        n_items: total number of items to cover (0 gives no shards).
        shard_size: maximum items per shard.

    Returns:
        Slices whose concatenated ranges are exactly ``0..n_items``.
    """
    if shard_size < 1:
        raise ValueError(f"shard_size must be >= 1, got {shard_size}")
    if n_items < 0:
        raise ValueError(f"n_items must be >= 0, got {n_items}")
    return [
        slice(start, min(start + shard_size, n_items))
        for start in range(0, n_items, shard_size)
    ]
