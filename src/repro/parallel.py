"""A small parallel-map fabric for embarrassingly parallel training work.

The expensive loops in this reproduction -- the 52 one-vs-rest disposition
models plus 4 location models of the trouble locator, the per-fold
calibration refits, and the per-column parts of the feature-selection
sweep -- are all *independent* tasks over shared read-only numpy arrays.
This module gives them one deterministic primitive:

* :func:`parallel_map` -- ``map`` that preserves input order, running
  serially at ``workers=1`` (the default) and on a thread pool above it.

Threads, not processes: every task body is dominated by numpy kernels
(argsort, cumsum, gathers), which release the GIL, so threads deliver real
parallelism without pickling closures or duplicating the feature matrices
in child processes.  Because tasks are independent and results are
collected in submission order, the output is identical for every worker
count -- ``REPRO_WORKERS=8`` must (and does, see
``tests/test_parallel_fabric.py``) reproduce the serial result bit for
bit.

The worker count comes from the ``REPRO_WORKERS`` environment variable
(default 1) unless the caller passes one explicitly.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

__all__ = ["WORKERS_ENV_VAR", "worker_count", "parallel_map", "split_shards"]

WORKERS_ENV_VAR = "REPRO_WORKERS"

_T = TypeVar("_T")
_R = TypeVar("_R")


def worker_count(workers: int | None = None) -> int:
    """Resolve the effective worker count.

    Args:
        workers: explicit override; ``None`` reads ``REPRO_WORKERS`` from
            the environment, defaulting to 1 (serial) when unset or empty.

    Returns:
        A positive integer worker count.

    Raises:
        ValueError: on a non-integer or non-positive setting, so that a
            typo in the environment fails loudly instead of silently
            running serial.
    """
    if workers is None:
        raw = os.environ.get(WORKERS_ENV_VAR, "").strip()
        if not raw:
            return 1
        try:
            workers = int(raw)
        except ValueError:
            raise ValueError(
                f"{WORKERS_ENV_VAR} must be a positive integer, got {raw!r}"
            ) from None
    if workers < 1:
        raise ValueError(f"worker count must be >= 1, got {workers}")
    return workers


def parallel_map(
    fn: Callable[[_T], _R],
    items: Iterable[_T],
    workers: int | None = None,
) -> list[_R]:
    """Apply ``fn`` to every item, preserving input order.

    Serial (a plain list comprehension) when the resolved worker count is
    1 or there is at most one item; otherwise a thread pool.  Exceptions
    from any task propagate to the caller either way.

    Args:
        fn: task body; must not mutate shared state (tasks may run
            concurrently).
        items: the work list; consumed eagerly.
        workers: explicit worker count, else ``REPRO_WORKERS`` (default 1).

    Returns:
        ``[fn(item) for item in items]`` -- same values, same order,
        regardless of the worker count.
    """
    work: Sequence[_T] = list(items)
    n_workers = worker_count(workers)
    if n_workers == 1 or len(work) <= 1:
        return [fn(item) for item in work]
    with ThreadPoolExecutor(max_workers=min(n_workers, len(work))) as pool:
        return list(pool.map(fn, work))


def split_shards(n_items: int, shard_size: int) -> list[slice]:
    """Contiguous slices covering ``range(n_items)`` in order.

    The scoring service fans these across :func:`parallel_map`; because
    the slices are contiguous, in order, and results are concatenated in
    submission order, sharded outputs are identical for every
    (shard_size, worker count) combination.

    Args:
        n_items: total number of items to cover (0 gives no shards).
        shard_size: maximum items per shard.

    Returns:
        Slices whose concatenated ranges are exactly ``0..n_items``.
    """
    if shard_size < 1:
        raise ValueError(f"shard_size must be >= 1, got {shard_size}")
    if n_items < 0:
        raise ValueError(f"n_items must be >= 0, got {n_items}")
    return [
        slice(start, min(start + shard_size, n_items))
        for start in range(0, n_items, shard_size)
    ]
