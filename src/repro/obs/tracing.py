"""Span tracing: hierarchical wall-time trees with near-zero idle cost.

The API is one context manager::

    from repro.obs import span

    with span("train.round", round=t):
        ...

Spans nest per thread, record wall time, tags, and error status, and
export as JSON trees or a flame-style text report.  Tracing is **off by
default**: the ``REPRO_TRACE`` environment variable (or
:func:`set_tracing`) turns it on, and when it is off :func:`span`
returns a shared no-op context manager -- no allocation, no lock, no
record -- so instrumented hot paths pay a single function call and a
dict build for the tags.

Cross-boundary propagation: a worker (thread or process) cannot see the
submitting thread's span stack, so the fabric captures a serializable
:class:`SpanContext` (just the parent span id) before fan-out and each
task adopts it (:meth:`Tracer.adopt`).  Within a process the child span
attaches to the still-open parent through the tracer's id index; across
processes the child's exported span trees carry the parent id and
:meth:`Tracer.merge_remote` grafts them back onto the parent tree (see
:func:`trace_in_subprocess` for the worker-side half).
"""

from __future__ import annotations

import functools
import itertools
import os
import threading
from contextlib import contextmanager
from time import perf_counter
from typing import Any, Callable, NamedTuple

__all__ = [
    "TRACE_ENV_VAR",
    "Span",
    "SpanContext",
    "Tracer",
    "tracing_enabled",
    "set_tracing",
    "get_tracer",
    "set_tracer",
    "span",
    "traced",
    "current_context",
    "trace_in_subprocess",
    "flame_report",
]

TRACE_ENV_VAR = "REPRO_TRACE"

_FALSY = {"", "0", "false", "no", "off"}

_override: bool | None = None


def tracing_enabled() -> bool:
    """Whether spans record (programmatic override, else ``REPRO_TRACE``)."""
    if _override is not None:
        return _override
    return os.environ.get(TRACE_ENV_VAR, "").strip().lower() not in _FALSY


def set_tracing(enabled: bool | None) -> None:
    """Force tracing on/off; ``None`` returns control to the environment."""
    global _override
    _override = enabled


class Span:
    """One timed operation: name, tags, children, error status."""

    __slots__ = (
        "span_id", "parent_id", "name", "tags",
        "start", "end", "status", "error", "children",
    )

    def __init__(self, span_id: str, name: str, tags: dict[str, Any]):
        self.span_id = span_id
        self.parent_id: str | None = None
        self.name = name
        self.tags = tags
        self.start = 0.0
        self.end: float | None = None
        self.status = "ok"
        self.error: str | None = None
        self.children: list[Span] = []

    @property
    def duration(self) -> float:
        return (self.end if self.end is not None else perf_counter()) - self.start

    def set_tag(self, key: str, value: Any) -> None:
        self.tags[key] = value

    def to_dict(self) -> dict[str, Any]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "tags": dict(self.tags),
            "duration_seconds": self.duration,
            "status": self.status,
            "error": self.error,
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "Span":
        s = cls(payload["span_id"], payload["name"], dict(payload.get("tags", {})))
        s.parent_id = payload.get("parent_id")
        s.start = 0.0
        s.end = float(payload.get("duration_seconds", 0.0))
        s.status = payload.get("status", "ok")
        s.error = payload.get("error")
        s.children = [cls.from_dict(c) for c in payload.get("children", [])]
        return s


class _NoopSpan:
    """The shared do-nothing span handed out while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set_tag(self, key: str, value: Any) -> None:
        pass


_NOOP_SPAN = _NoopSpan()


class SpanContext(NamedTuple):
    """A serializable reference to a span, safe to pickle across processes."""

    span_id: str | None

    def to_wire(self) -> dict[str, Any]:
        return {"span_id": self.span_id}

    @classmethod
    def from_wire(cls, payload: dict[str, Any] | None) -> "SpanContext":
        if payload is None:
            return cls(None)
        return cls(payload.get("span_id"))


class Tracer:
    """Per-process span recorder with per-thread nesting stacks."""

    def __init__(self):
        self._lock = threading.Lock()
        self._local = threading.local()
        self._ids = itertools.count(1)
        self._index: dict[str, Span] = {}
        self._roots: list[Span] = []

    # ----- internals ------------------------------------------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _new_id(self) -> str:
        return f"{os.getpid():x}-{next(self._ids):x}"

    # ----- recording ------------------------------------------------------

    @contextmanager
    def span(self, name: str, **tags):
        """Record one span; nests under the thread's innermost open span."""
        if not tracing_enabled():
            yield _NOOP_SPAN
            return
        stack = self._stack()
        parent: Span | str | None = (
            stack[-1] if stack else getattr(self._local, "remote_parent", None)
        )
        s = Span(self._new_id(), name, tags)
        if isinstance(parent, Span):
            s.parent_id = parent.span_id
        elif isinstance(parent, str):
            s.parent_id = parent
        with self._lock:
            self._index[s.span_id] = s
        stack.append(s)
        s.start = perf_counter()
        try:
            yield s
        except BaseException as exc:
            s.status = "error"
            s.error = f"{type(exc).__name__}: {exc}"
            raise
        finally:
            s.end = perf_counter()
            stack.pop()
            self._attach(s, parent)

    def _attach(self, s: Span, parent: "Span | str | None") -> None:
        if isinstance(parent, Span):
            with self._lock:
                parent.children.append(s)
            return
        with self._lock:
            if isinstance(parent, str):
                owner = self._index.get(parent)
                if owner is not None:
                    owner.children.append(s)
                    return
                s.tags.setdefault("remote_parent", parent)
            self._roots.append(s)

    # ----- propagation ----------------------------------------------------

    def current_context(self) -> SpanContext:
        """A serializable handle to the calling thread's innermost span."""
        stack = self._stack()
        if stack:
            return SpanContext(stack[-1].span_id)
        return SpanContext(getattr(self._local, "remote_parent", None))

    @contextmanager
    def adopt(self, context: SpanContext | None):
        """Parent this thread's new root spans under ``context``."""
        if context is None or context.span_id is None:
            yield
            return
        previous = getattr(self._local, "remote_parent", None)
        self._local.remote_parent = context.span_id
        try:
            yield
        finally:
            self._local.remote_parent = previous

    def merge_remote(self, spans: list[dict[str, Any]]) -> None:
        """Graft exported span trees (from another process) onto this one.

        Merging is idempotent per span id: a payload whose ``span_id``
        is already indexed is dropped, so a worker batch delivered twice
        (a retried pipe send, an at-least-once queue) does not duplicate
        subtrees in the exported trace.
        """
        for payload in spans:
            s = Span.from_dict(payload)
            with self._lock:
                if s.span_id in self._index:
                    continue
                owner = self._index.get(s.parent_id) if s.parent_id else None
                if owner is not None:
                    owner.children.append(s)
                else:
                    self._roots.append(s)
                self._index_tree(s)

    def _index_tree(self, s: Span) -> None:
        self._index[s.span_id] = s
        for child in s.children:
            self._index_tree(child)

    # ----- reading --------------------------------------------------------

    def export(self) -> list[dict[str, Any]]:
        """JSON-ready trees of every finished top-level span."""
        with self._lock:
            return [s.to_dict() for s in self._roots]

    def report(self) -> str:
        """A flame-style indented text rendering of the recorded trees."""
        return flame_report(self.export())

    def reset(self) -> None:
        """Drop all recorded spans AND per-thread nesting state.

        Clearing ``_local`` matters for forked workers: the child
        inherits the submitting thread's open-span stack, and a task
        span must not silently attach to the fork's dead copy of it.
        """
        with self._lock:
            self._roots.clear()
            self._index.clear()
            self._local = threading.local()


def flame_report(spans: list[dict[str, Any]], max_depth: int = 12) -> str:
    """Aggregate span trees by (depth, name) into an indented timing table.

    Sibling spans with the same name fold into one line with a call count
    and total/mean wall time; each line shows its share of the parent's
    total, flame-graph style.
    """
    lines: list[str] = []

    def walk(level: list[dict[str, Any]], depth: int, parent_total: float) -> None:
        if depth >= max_depth or not level:
            return
        groups: dict[str, list[dict[str, Any]]] = {}
        for s in level:
            groups.setdefault(s["name"], []).append(s)
        ordered = sorted(
            groups.items(),
            key=lambda kv: -sum(s["duration_seconds"] for s in kv[1]),
        )
        for name, group in ordered:
            total = sum(s["duration_seconds"] for s in group)
            count = len(group)
            errors = sum(1 for s in group if s["status"] != "ok")
            share = 100.0 * total / parent_total if parent_total > 0 else 100.0
            label = "  " * depth + name
            suffix = f"  [{errors} error(s)]" if errors else ""
            lines.append(
                f"{label:<44} x{count:<5} {total:>9.3f}s "
                f"{total / count:>9.4f}s/call {share:>5.1f}%{suffix}"
            )
            walk(
                [c for s in group for c in s["children"]],
                depth + 1,
                total,
            )

    grand_total = sum(s["duration_seconds"] for s in spans)
    walk(spans, 0, grand_total)
    if not lines:
        return "(no spans recorded -- set REPRO_TRACE=1 to enable tracing)"
    header = f"{'span':<44} {'count':<6} {'total':>9}  {'per call':>10} {'share':>6}"
    return "\n".join([header, "-" * len(header), *lines])


# ----- the process-global tracer -------------------------------------------

_TRACER = Tracer()


def get_tracer() -> Tracer:
    return _TRACER


def set_tracer(tracer: Tracer) -> Tracer:
    """Swap the global tracer (tests); returns the previous one."""
    global _TRACER
    previous = _TRACER
    _TRACER = tracer
    return previous


def span(name: str, **tags):
    """Record a span on the global tracer (no-op when tracing is off)."""
    if not tracing_enabled():
        return _NOOP_SPAN
    return _TRACER.span(name, **tags)


def traced(name: str | None = None, **tags) -> Callable:
    """Decorator form of :func:`span` (span name defaults to the function)."""

    def decorate(fn: Callable) -> Callable:
        label = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if not tracing_enabled():
                return fn(*args, **kwargs)
            with _TRACER.span(label, **tags):
                return fn(*args, **kwargs)

        return wrapper

    return decorate


def current_context() -> SpanContext:
    """Serializable context of the calling thread (for fan-out capture)."""
    return _TRACER.current_context()


def trace_in_subprocess(context_wire, fn, *args, **kwargs):
    """Worker-process entry point: adopt a wire context, run, export.

    Run this inside the child process (it resets the child's
    fork-inherited tracer so only the task's own spans export).  Returns
    ``(result, exported_spans)``; the parent feeds the spans to
    :meth:`Tracer.merge_remote` to graft them under the submitting span.
    """
    tracer = get_tracer()
    tracer.reset()
    context = SpanContext.from_wire(context_wire)
    with tracer.adopt(context):
        result = fn(*args, **kwargs)
    return result, tracer.export()
