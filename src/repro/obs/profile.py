"""Per-stage resource profiling: wall time, CPU time, RSS deltas.

``with stage_profile("pipeline.score"):`` records what a stage *cost*,
not just how long it took -- CPU seconds (``resource.getrusage``, so
thread-pool fan-out shows up as cpu > wall) and resident-set-size
before/after/peak (``/proc/self/status`` on Linux, ``ru_maxrss``
elsewhere).  Every pipeline stage, the parallel fabric's fan-outs, and
all four benchmark harnesses run under one, so ``BENCH_*.json`` carry
resource sections and the flight recorder (:mod:`repro.obs.history`)
gets ``wall_seconds.<stage>`` / ``peak_rss_kb`` series to trend.

Two sinks, both cheap:

* the metrics registry -- ``repro_stage_wall_seconds{stage=...}``
  (histogram), ``repro_stage_cpu_seconds_total{stage=...}`` (counter),
  ``repro_stage_rss_delta_kb`` / ``repro_stage_peak_rss_kb`` (gauges);
* a process-local accumulation table (:func:`profile_snapshot`) that
  the benchmarks fold into their JSON reports via
  :func:`resource_section`.

Memory attribution is opt-in: ``REPRO_PROFILE=mem`` turns on
``tracemalloc`` around each profiled stage, reads true current RSS from
``/proc/self/status``, and records the top-N allocation sites.  It is
*off* by default because those probes cost real time -- the <3%
instrumentation-overhead bench guard runs with the default level, where
a stage profile is one ``getrusage`` call on each side of the block
(RSS figures then track the high-water mark, which is what capacity
planning reads anyway) and registry metrics are flushed from the
accumulation table every ``_FLUSH_EVERY`` calls per stage: wall/CPU
sums stay exact, histogram counts are batch-sampled, gauges lag by at
most a few calls.
"""

from __future__ import annotations

import os
import resource
import sys
import threading
from dataclasses import dataclass, field
from time import perf_counter

from repro.obs.metrics import get_registry

__all__ = [
    "PROFILE_ENV_VAR",
    "StageProfile",
    "stage_profile",
    "profile_snapshot",
    "reset_profiles",
    "resource_section",
    "current_rss_kb",
    "peak_rss_kb",
    "cpu_seconds",
    "mem_profiling_enabled",
]

#: ``REPRO_PROFILE=mem`` turns on tracemalloc top-allocator capture.
PROFILE_ENV_VAR = "REPRO_PROFILE"

#: Stage wall times: sub-ms fabric fan-outs up to minutes-long trainings.
_STAGE_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0,
)

_TOP_ALLOCATORS = 5


def mem_profiling_enabled() -> bool:
    """True when ``REPRO_PROFILE=mem`` asks for allocation attribution."""
    return os.environ.get(PROFILE_ENV_VAR, "").strip().lower() == "mem"


# The profiling level is sampled once and cached: an environment read on
# every profiled block is measurable on the hot path.  Changing
# ``REPRO_PROFILE`` mid-process takes effect after
# :func:`reset_profiles` (which tests and benchmark sections call).
_MEM_MODE: bool | None = None


def _mem_mode() -> bool:
    global _MEM_MODE
    if _MEM_MODE is None:
        _MEM_MODE = mem_profiling_enabled()
    return _MEM_MODE


# ----- raw process readings -----------------------------------------------

def _maxrss_kb() -> float:
    """``ru_maxrss`` normalised to kB (Linux reports kB, macOS bytes)."""
    value = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return value / 1024.0
    return float(value)


# /proc/self/status is re-read with pread on one cached descriptor:
# pread does not move the offset, so concurrent profiled blocks share it
# safely, and the hot path pays one syscall instead of open/read/close.
_PROC_STATUS_FD: int | None = None
try:
    _PROC_STATUS_FD = os.open("/proc/self/status", os.O_RDONLY)
except OSError:
    _PROC_STATUS_FD = None


def _proc_status_kb(field_name: bytes) -> float | None:
    """A ``VmRSS``/``VmHWM`` line from /proc/self/status, in kB."""
    if _PROC_STATUS_FD is None:
        return None
    try:
        raw = os.pread(_PROC_STATUS_FD, 8192, 0)
    except OSError:
        return None
    start = raw.find(field_name)
    if start < 0:
        return None
    end = raw.find(b"\n", start)
    return float(raw[start:end].split()[1])


def current_rss_kb() -> float:
    """Resident set size right now, in kB (falls back to the peak when
    the platform cannot report a current value)."""
    rss = _proc_status_kb(b"VmRSS:")
    return rss if rss is not None else _maxrss_kb()


def peak_rss_kb() -> float:
    """Peak resident set size of this process so far, in kB.

    ``ru_maxrss`` *is* the high-water mark on Linux and macOS -- one
    cheap syscall, no /proc parsing on the hot path.
    """
    return _maxrss_kb()


def cpu_seconds() -> float:
    """User + system CPU seconds consumed by this process so far."""
    usage = resource.getrusage(resource.RUSAGE_SELF)
    return usage.ru_utime + usage.ru_stime


def _rusage_readings() -> tuple[float, float]:
    """(cpu seconds, peak RSS kB) from a single ``getrusage`` syscall."""
    usage = resource.getrusage(resource.RUSAGE_SELF)
    maxrss = usage.ru_maxrss
    if sys.platform == "darwin":
        maxrss /= 1024.0
    return usage.ru_utime + usage.ru_stime, float(maxrss)


# ----- the profile record --------------------------------------------------

@dataclass
class StageProfile:
    """What one profiled block cost."""

    stage: str
    wall_seconds: float = 0.0
    cpu_seconds: float = 0.0
    rss_before_kb: float = 0.0
    rss_after_kb: float = 0.0
    rss_delta_kb: float = 0.0
    peak_rss_kb: float = 0.0
    calls: int = 1
    allocators: list[dict] = field(default_factory=list)

    def to_dict(self) -> dict:
        out = {
            "stage": self.stage,
            "calls": self.calls,
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
            "rss_delta_kb": self.rss_delta_kb,
            "peak_rss_kb": self.peak_rss_kb,
        }
        if self.allocators:
            out["allocators"] = self.allocators
        return out


# Process-local accumulation, keyed by stage name.  Guarded by its own
# lock (not the metrics registry's): fabric workers profile concurrently.
_TABLE_LOCK = threading.Lock()
_TABLE: dict[str, StageProfile] = {}

#: Sampled-metric cadence: registry metrics are flushed on the first
#: call and every Nth thereafter, per stage.  Sums stay exact (each
#: flush covers everything since the last); the wall histogram sees
#: batched observations and gauges lag by at most N-1 calls, which
#: coarse trends tolerate -- exact per-call percentiles come from the
#: flight recorder's raw series, not this histogram.
_FLUSH_EVERY = 16

# Wall/CPU seconds already flushed to the registry, per stage.
_EMITTED_CPU: dict[str, float] = {}
_EMITTED_WALL: dict[str, float] = {}


def _accumulate(
    stage: str,
    wall: float,
    cpu: float,
    rss_before: float,
    rss_after: float,
    peak: float,
    allocators: list[dict] | None = None,
) -> tuple[float, float] | None:
    """Fold one block's raw readings into the table.

    Takes plain floats (not a :class:`StageProfile`) so the hot path
    never pays a dataclass construction for a block nobody inspects.
    Returns ``(wall, cpu)`` seconds to flush to the registry when this
    call falls on the sampling cadence, else ``None`` (emit nothing).
    """
    with _TABLE_LOCK:
        total = _TABLE.get(stage)
        if total is None:
            total = StageProfile(
                stage=stage,
                wall_seconds=wall,
                cpu_seconds=cpu,
                rss_before_kb=rss_before,
                rss_after_kb=rss_after,
                rss_delta_kb=rss_after - rss_before,
                peak_rss_kb=peak,
                allocators=list(allocators) if allocators else [],
            )
            _TABLE[stage] = total
        else:
            total.calls += 1
            total.wall_seconds += wall
            total.cpu_seconds += cpu
            total.rss_after_kb = rss_after
            total.rss_delta_kb += rss_after - rss_before
            total.peak_rss_kb = max(total.peak_rss_kb, peak)
            if allocators:
                total.allocators = allocators
        if total.calls == 1 or total.calls % _FLUSH_EVERY == 0:
            flush_wall = total.wall_seconds - _EMITTED_WALL.get(stage, 0.0)
            flush_cpu = total.cpu_seconds - _EMITTED_CPU.get(stage, 0.0)
            _EMITTED_WALL[stage] = total.wall_seconds
            _EMITTED_CPU[stage] = total.cpu_seconds
            return flush_wall, flush_cpu
        return None


def profile_snapshot() -> dict[str, dict]:
    """Accumulated per-stage totals since the last :func:`reset_profiles`."""
    with _TABLE_LOCK:
        return {name: p.to_dict() for name, p in sorted(_TABLE.items())}


def reset_profiles() -> None:
    """Clear the accumulation table (tests, benchmark section boundaries)."""
    global _MEM_MODE
    with _TABLE_LOCK:
        _TABLE.clear()
        _EMITTED_CPU.clear()
        _EMITTED_WALL.clear()
    _MEM_MODE = None  # re-read REPRO_PROFILE on the next profiled block


def resource_section() -> dict:
    """Process + per-stage resource summary for a ``BENCH_*.json`` report."""
    return {
        "peak_rss_kb": peak_rss_kb(),
        "current_rss_kb": current_rss_kb(),
        "cpu_seconds": cpu_seconds(),
        "mem_profiling": mem_profiling_enabled(),
        "stages": profile_snapshot(),
    }


# ----- the context manager -------------------------------------------------

# Metric handles are cached per registry object so a profiled block in a
# hot loop pays dict-lookup-and-compare once, not four get-or-creates.
# The benign race (two threads computing the same tuple) is harmless.
_METRIC_CACHE: tuple | None = None


def _stage_metrics(registry):
    global _METRIC_CACHE
    cached = _METRIC_CACHE
    if cached is not None and cached[0] is registry:
        return cached[1:]
    handles = (
        registry.histogram(
            "repro_stage_wall_seconds",
            "Wall time per profiled stage",
            buckets=_STAGE_BUCKETS,
        ),
        registry.counter(
            "repro_stage_cpu_seconds_total",
            "CPU (user+system) seconds per profiled stage",
        ),
        registry.gauge(
            "repro_stage_rss_delta_kb",
            "RSS change across the last run of each profiled stage",
        ),
        registry.gauge(
            "repro_stage_peak_rss_kb",
            "Process peak RSS at the end of each profiled stage",
        ),
    )
    _METRIC_CACHE = (registry, *handles)
    return handles

class stage_profile:
    """Profile one block: ``with stage_profile("score_week") as sp: ...``.

    On exit the measured :class:`StageProfile` is available as
    ``sp.profile``, folded into the process-local table, and emitted to
    the metrics registry.  CPU time is process-wide (getrusage), so
    concurrent profiled blocks each see the shared total -- fine for the
    pipeline's serialized stages and the fabric's one-fan-out-at-a-time
    usage, and documented rather than papered over.

    The exit path stores raw readings only; ``sp.profile`` materialises
    the :class:`StageProfile` on first access, so hot loops that never
    inspect it skip the construction entirely.
    """

    def __init__(self, stage: str, registry=None):
        self.stage = stage
        self._registry = registry
        self._profile: StageProfile | None = None
        self._done = False
        self._tracemalloc = None
        self._allocators: list[dict] = []

    @property
    def profile(self) -> StageProfile | None:
        """The measured block cost (None until the block exits)."""
        if not self._done:
            return None
        if self._profile is None:
            self._profile = StageProfile(
                stage=self.stage,
                wall_seconds=self._wall,
                cpu_seconds=self._cpu,
                rss_before_kb=self._rss_before,
                rss_after_kb=self._rss_after,
                rss_delta_kb=self._rss_after - self._rss_before,
                peak_rss_kb=self._peak,
                allocators=self._allocators,
            )
        return self._profile

    def __enter__(self) -> "stage_profile":
        self._mem = _mem_mode()
        if self._mem:
            import tracemalloc

            self._tracemalloc = tracemalloc
            if not tracemalloc.is_tracing():
                tracemalloc.start()
            else:
                self._tracemalloc = None  # someone else owns the tracer
        # Default level: one getrusage syscall -- RSS-before is the
        # high-water mark, so rss_delta measures peak *growth*.  Mem
        # mode pays the /proc read for a true current-RSS delta.
        self._cpu_before, maxrss = _rusage_readings()
        self._rss_before = current_rss_kb() if self._mem else maxrss
        self._wall_before = perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        wall = perf_counter() - self._wall_before
        cpu_after, peak = _rusage_readings()
        cpu = cpu_after - self._cpu_before
        rss_after = current_rss_kb() if self._mem else peak
        if self._tracemalloc is not None:
            snapshot = self._tracemalloc.take_snapshot()
            self._tracemalloc.stop()
            for stat in snapshot.statistics("lineno")[:_TOP_ALLOCATORS]:
                frame = stat.traceback[0]
                self._allocators.append({
                    "site": f"{frame.filename}:{frame.lineno}",
                    "size_kb": stat.size / 1024.0,
                    "count": stat.count,
                })
        self._wall = wall
        self._cpu = cpu
        self._rss_after = rss_after
        self._peak = peak
        self._done = True
        flushes = _accumulate(
            self.stage, wall, cpu, self._rss_before, rss_after, peak,
            self._allocators or None,
        )
        if flushes is not None:
            flush_wall, flush_cpu = flushes
            registry = (
                self._registry if self._registry is not None
                else get_registry()
            )
            wall_hist, cpu_total, rss_delta, rss_peak = _stage_metrics(registry)
            wall_hist.observe(flush_wall, stage=self.stage)
            cpu_total.inc(max(flush_cpu, 0.0), stage=self.stage)
            rss_delta.set(rss_after - self._rss_before, stage=self.stage)
            rss_peak.set(peak, stage=self.stage)
        return False
