"""Structured logging: stdlib ``logging`` with a key=value line format.

Subsystems log one event per line, machine-parseable and grep-friendly::

    ts=2026-08-05T10:12:03 level=info logger=repro.core.pipeline \
        event=pipeline.week week=17 submitted=40 precision=0.45

Use :func:`get_logger` for a namespaced logger and :func:`kv` to build
the ``event=... key=value`` message body; :func:`configure_logging`
installs the formatter once on the ``repro`` logger tree and resolves
the level from (in priority order) an explicit argument, a ``--verbose``
flag, the ``REPRO_LOG_LEVEL`` environment variable, and a WARNING
default -- so library use stays silent unless the operator asks.
"""

from __future__ import annotations

import logging
import os
import re
import threading
from typing import Any

__all__ = [
    "LOG_LEVEL_ENV_VAR",
    "RateLimitedLogger",
    "configure_logging",
    "get_logger",
    "kv",
]

LOG_LEVEL_ENV_VAR = "REPRO_LOG_LEVEL"

_ROOT = "repro"
_BARE_RE = re.compile(r"[A-Za-z0-9_.:+\-/%@]*\Z")


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        text = f"{value:.6g}"
    elif isinstance(value, bool):
        text = "true" if value else "false"
    else:
        text = str(value)
    if _BARE_RE.match(text):
        return text
    escaped = text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    return f'"{escaped}"'


def kv(event: str, **fields) -> str:
    """Build an ``event=... key=value`` message body (insertion order)."""
    parts = [f"event={_format_value(event)}"]
    parts.extend(f"{key}={_format_value(value)}" for key, value in fields.items())
    return " ".join(parts)


class RateLimitedLogger:
    """Sampled structured logging for per-item hot loops.

    Wraps a stdlib logger and emits every Nth occurrence of each event
    (the first always goes through, so a rare event is never silent).
    Emitted lines carry ``sampled_1_in=N skipped=K`` so a reader knows
    the line stands for K suppressed siblings.  Counters are per event
    name and thread-safe -- scoring shards log concurrently.

    Usage::

        SHARD_LOG = RateLimitedLogger(get_logger("serve.scoring"),
                                      sample_every=50)
        SHARD_LOG.debug("serve.shard", shard=i, rows=n)
    """

    def __init__(self, logger: logging.Logger, sample_every: int = 100):
        if sample_every < 1:
            raise ValueError(
                f"sample_every must be >= 1, got {sample_every}"
            )
        self.logger = logger
        self.sample_every = sample_every
        self._lock = threading.Lock()
        self._counts: dict[str, int] = {}
        self._skipped: dict[str, int] = {}

    def _admit(self, event: str) -> int | None:
        """The skipped-since-last-emit count, or None to suppress."""
        with self._lock:
            count = self._counts.get(event, 0)
            self._counts[event] = count + 1
            if count % self.sample_every == 0:
                skipped = self._skipped.get(event, 0)
                self._skipped[event] = 0
                return skipped
            self._skipped[event] = self._skipped.get(event, 0) + 1
            return None

    def log(self, level: int, event: str, **fields) -> None:
        if not self.logger.isEnabledFor(level):
            return  # free when the level is off: no lock, no counting
        skipped = self._admit(event)
        if skipped is None:
            return
        self.logger.log(level, kv(
            event, **fields,
            sampled_1_in=self.sample_every, skipped=skipped,
        ))

    def debug(self, event: str, **fields) -> None:
        self.log(logging.DEBUG, event, **fields)

    def info(self, event: str, **fields) -> None:
        self.log(logging.INFO, event, **fields)

    def warning(self, event: str, **fields) -> None:
        self.log(logging.WARNING, event, **fields)


class KeyValueFormatter(logging.Formatter):
    """Prefix every record with ts/level/logger key=value pairs."""

    def format(self, record: logging.LogRecord) -> str:
        ts = self.formatTime(record, "%Y-%m-%dT%H:%M:%S")
        prefix = (
            f"ts={ts} level={record.levelname.lower()} logger={record.name}"
        )
        message = record.getMessage()
        if record.exc_info and not message.endswith("\n"):
            message = f"{message} exc={_format_value(self.formatException(record.exc_info))}"
        return f"{prefix} {message}"


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` tree (``repro.`` prefixed if needed)."""
    if name != _ROOT and not name.startswith(_ROOT + "."):
        name = f"{_ROOT}.{name}"
    return logging.getLogger(name)


def _resolve_level(level: str | int | None, verbose: bool) -> int:
    if level is None and verbose:
        return logging.DEBUG
    if level is None:
        level = os.environ.get(LOG_LEVEL_ENV_VAR, "").strip() or "WARNING"
    if isinstance(level, str):
        try:
            return int(level)
        except ValueError:
            resolved = logging.getLevelName(level.upper())
            if not isinstance(resolved, int):
                raise ValueError(f"unknown log level {level!r}") from None
            return resolved
    return int(level)


def configure_logging(
    level: str | int | None = None, verbose: bool = False
) -> logging.Logger:
    """Install the key=value handler on the ``repro`` logger (idempotent).

    Args:
        level: explicit level name or number; ``None`` falls back to
            ``--verbose`` (DEBUG), then ``REPRO_LOG_LEVEL``, then WARNING.
        verbose: the CLI's ``--verbose`` flag.

    Returns:
        The configured root ``repro`` logger.
    """
    logger = logging.getLogger(_ROOT)
    logger.setLevel(_resolve_level(level, verbose))
    if not any(getattr(h, "_repro_obs", False) for h in logger.handlers):
        handler = logging.StreamHandler()
        handler.setFormatter(KeyValueFormatter())
        handler._repro_obs = True  # type: ignore[attr-defined]
        logger.addHandler(handler)
        logger.propagate = False
    return logger
