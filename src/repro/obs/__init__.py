"""Unified observability: metrics registry, span tracing, structured logs.

Three pillars, all stdlib-only:

* :mod:`repro.obs.metrics` -- a process-global, thread-safe registry of
  counters, gauges and fixed-bucket histograms, serializable as JSON and
  as Prometheus text exposition format;
* :mod:`repro.obs.tracing` -- ``with span("train.round", round=t):``
  hierarchical wall-time trees, toggled by ``REPRO_TRACE`` and free when
  disabled, with serializable contexts for cross-worker propagation;
* :mod:`repro.obs.log` -- stdlib logging with a key=value formatter,
  levelled by ``REPRO_LOG_LEVEL`` / ``--verbose``.

:mod:`repro.obs.report` renders a run's telemetry (``repro obs report``)
and :mod:`repro.obs.promcheck` validates exposition text in CI.

The *flight recorder* layer persists telemetry across runs:

* :mod:`repro.obs.history` -- append-only JSONL snapshot store with
  schema versioning, retention, and a ``query(name, window)`` API;
* :mod:`repro.obs.profile` -- ``with stage_profile("score_week"):``
  wall/CPU/RSS profiling, ``REPRO_PROFILE=mem`` for allocation sites;
* :mod:`repro.obs.slo` -- declared serve objectives with multi-window
  burn-rate alerting feeding the history store and ``GET /health``;
* :mod:`repro.obs.health` -- EWMA trending over history series, the
  ``repro obs dashboard`` sparkline view.
"""

from repro.obs.health import (
    DEFAULT_CHECKS,
    HealthCheck,
    HealthDetector,
    HealthFinding,
    render_dashboard,
    sparkline,
)
from repro.obs.history import HistoryRecord, HistoryStore
from repro.obs.log import (
    LOG_LEVEL_ENV_VAR,
    RateLimitedLogger,
    configure_logging,
    get_logger,
    kv,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from repro.obs.profile import (
    PROFILE_ENV_VAR,
    StageProfile,
    profile_snapshot,
    reset_profiles,
    resource_section,
    stage_profile,
)
from repro.obs.slo import DEFAULT_SLOS, SLO, SLOMonitor
from repro.obs.promcheck import check_prometheus_text, parse_samples
from repro.obs.report import collect_telemetry, render_report
from repro.obs.tracing import (
    TRACE_ENV_VAR,
    Span,
    SpanContext,
    Tracer,
    current_context,
    flame_report,
    get_tracer,
    set_tracer,
    set_tracing,
    span,
    trace_in_subprocess,
    traced,
    tracing_enabled,
)

__all__ = [
    "DEFAULT_CHECKS",
    "HealthCheck",
    "HealthDetector",
    "HealthFinding",
    "render_dashboard",
    "sparkline",
    "HistoryRecord",
    "HistoryStore",
    "LOG_LEVEL_ENV_VAR",
    "RateLimitedLogger",
    "configure_logging",
    "get_logger",
    "kv",
    "PROFILE_ENV_VAR",
    "StageProfile",
    "profile_snapshot",
    "reset_profiles",
    "resource_section",
    "stage_profile",
    "DEFAULT_SLOS",
    "SLO",
    "SLOMonitor",
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "check_prometheus_text",
    "parse_samples",
    "collect_telemetry",
    "render_report",
    "TRACE_ENV_VAR",
    "Span",
    "SpanContext",
    "Tracer",
    "current_context",
    "flame_report",
    "get_tracer",
    "set_tracer",
    "set_tracing",
    "span",
    "trace_in_subprocess",
    "traced",
    "tracing_enabled",
]
