"""The flight recorder: a persistent, append-only telemetry history.

PR 3's metrics/trace/log pillars evaporate at process exit; this module
keeps the time series that survive it.  A :class:`HistoryStore` is one
JSONL file of *snapshot records* -- one per pipeline week, per lifecycle
decision, per serve sampling tick -- that the dashboard and the
self-monitoring health detector (:mod:`repro.obs.health`) read back
across runs, so "is scoring slower than last month?" has an answer.

Design constraints, in the repo's order:

* **dependency-free** -- stdlib only;
* **append-only and crash-safe** -- every record is one ``os.write`` to
  an ``O_APPEND`` descriptor (atomic for these record sizes on every
  platform we run on), so two writers interleave whole lines rather than
  bytes; a torn final line from a killed process is truncated away on
  reopen (:meth:`HistoryStore._recover`), never propagated;
* **schema-versioned** -- every record carries ``"v"``; readers skip
  records from a *newer* schema instead of mis-parsing them, so a
  downgrade never corrupts a dashboard;
* **bounded** -- optional retention: :meth:`compact` rewrites the file
  atomically (tmp + ``os.replace``) keeping the newest ``max_records``
  and/or dropping records older than ``max_age_seconds``; with
  ``max_records`` set, appends auto-compact once the file holds twice
  that many records, so a long-lived serve process cannot grow the file
  without bound.

Record shape (one JSON object per line)::

    {"v": 1, "ts": 1722945600.0, "kind": "pipeline_week", "week": 17,
     "values": {"precision": 0.45, "wall_seconds.score": 0.012, ...},
     "meta": {...}}                     # meta is optional

``values`` is a flat name -> float mapping; :meth:`HistoryStore.query`
pulls one named series in append order, which is all the EWMA trending
in :mod:`repro.obs.health` needs.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Any, Iterator

__all__ = ["SCHEMA_VERSION", "DEFAULT_FILENAME", "HistoryRecord", "HistoryStore"]

#: Version stamped into every record; readers skip records newer than this.
SCHEMA_VERSION = 1

#: File name used when the store is given a directory instead of a file.
DEFAULT_FILENAME = "history.jsonl"


class HistoryRecord(dict):
    """One snapshot record -- a dict with attribute sugar for hot fields."""

    @property
    def kind(self) -> str:
        return self["kind"]

    @property
    def ts(self) -> float:
        return float(self["ts"])

    @property
    def week(self) -> int | None:
        return self.get("week")

    @property
    def values(self) -> dict[str, float]:
        return self.get("values", {})


def _is_valid_line(line: bytes) -> bool:
    """A line survives recovery iff it is complete, parseable JSON with
    a schema tag -- the write path always produces exactly that."""
    if not line.endswith(b"\n"):
        return False
    try:
        record = json.loads(line)
    except (ValueError, UnicodeDecodeError):
        return False
    return isinstance(record, dict) and "v" in record


class HistoryStore:
    """Append-only JSONL time series of telemetry snapshots.

    Args:
        path: the history file, or a directory (gets
            ``history.jsonl`` inside it).  Parents are created.
        max_records: optional retention bound; appends auto-compact to
            this many records once the file holds twice as many.
    """

    def __init__(self, path: str | Path, max_records: int | None = None):
        path = Path(path)
        if path.suffix != ".jsonl":
            path = path / DEFAULT_FILENAME
        path.parent.mkdir(parents=True, exist_ok=True)
        self.path = path
        if max_records is not None and max_records < 1:
            raise ValueError(f"max_records must be >= 1, got {max_records}")
        self.max_records = max_records
        self._lock = threading.Lock()
        self._count = self._recover()

    # ----- recovery -------------------------------------------------------

    def _recover(self) -> int:
        """Truncate a torn tail (a crash mid-append) and count records.

        Scans from the start; the first invalid line and everything after
        it are dropped by truncating the file to the last valid byte.
        Complete-but-unparseable *interior* lines cannot be produced by
        the write path, so stopping at the first bad line is safe -- and
        it is exactly what a kill -9 during ``os.write`` leaves behind.
        """
        if not self.path.exists():
            return 0
        raw = self.path.read_bytes()
        count = 0
        valid_end = 0
        for line in raw.splitlines(keepends=True):
            if not _is_valid_line(line):
                break
            valid_end += len(line)
            count += 1
        if valid_end != len(raw):
            with open(self.path, "r+b") as fh:
                fh.truncate(valid_end)
        return count

    # ----- writing --------------------------------------------------------

    def append(
        self,
        kind: str,
        values: dict[str, Any],
        week: int | None = None,
        meta: dict[str, Any] | None = None,
        ts: float | None = None,
    ) -> HistoryRecord:
        """Append one snapshot record; returns it.

        ``values`` are coerced to floats (the query/trending layers are
        numeric); non-coercible entries raise here, at the write site,
        rather than poisoning a reader later.
        """
        record: dict[str, Any] = {
            "v": SCHEMA_VERSION,
            "ts": time.time() if ts is None else float(ts),
            "kind": str(kind),
            "values": {str(k): float(v) for k, v in values.items()},
        }
        if week is not None:
            record["week"] = int(week)
        if meta:
            record["meta"] = meta
        line = (json.dumps(record, separators=(",", ":")) + "\n").encode()
        with self._lock:
            fd = os.open(
                self.path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644
            )
            try:
                os.write(fd, line)
            finally:
                os.close(fd)
            self._count += 1
            over = (
                self.max_records is not None
                and self._count > 2 * self.max_records
            )
        if over:
            self.compact(max_records=self.max_records)
        return HistoryRecord(record)

    # ----- reading --------------------------------------------------------

    def __len__(self) -> int:
        return self._count

    def records(
        self, kind: str | None = None, limit: int | None = None
    ) -> list[HistoryRecord]:
        """All records in append order, optionally filtered by kind.

        ``limit`` keeps the *newest* N after filtering.  Unparseable
        lines (another process died mid-write since we last recovered)
        and records from a newer schema version are skipped, not raised.
        """
        out = [r for r in self._iter_records() if kind is None or r.kind == kind]
        if limit is not None:
            out = out[-limit:]
        return out

    def _iter_records(self) -> Iterator[HistoryRecord]:
        if not self.path.exists():
            return
        with open(self.path, "rb") as fh:
            for line in fh:
                try:
                    record = json.loads(line)
                except (ValueError, UnicodeDecodeError):
                    continue
                if not isinstance(record, dict):
                    continue
                if record.get("v", 0) > SCHEMA_VERSION:
                    continue  # written by a newer repro; skip, don't guess
                yield HistoryRecord(record)

    def query(
        self,
        name: str,
        window: int | None = None,
        kind: str | None = None,
    ) -> list[float]:
        """One named value series in append order.

        Args:
            name: key into each record's ``values`` dict; records
                without it are skipped.
            window: keep only the newest N points.
            kind: restrict to one record kind (recommended -- value
                names are namespaced per kind by convention, but a
                filter makes the intent explicit).
        """
        series = [
            float(r.values[name])
            for r in self._iter_records()
            if (kind is None or r.kind == kind) and name in r.values
        ]
        if window is not None:
            series = series[-window:]
        return series

    def kinds(self) -> dict[str, int]:
        """Record counts by kind (dashboard summary line)."""
        counts: dict[str, int] = {}
        for record in self._iter_records():
            counts[record.kind] = counts.get(record.kind, 0) + 1
        return counts

    # ----- retention ------------------------------------------------------

    def compact(
        self,
        max_records: int | None = None,
        max_age_seconds: float | None = None,
    ) -> int:
        """Rewrite the file keeping only recent records; returns kept count.

        The rewrite is atomic (tmp file + ``os.replace``), so a reader
        opening the path mid-compaction sees either the old or the new
        file, never a partial one.  Compaction is an owner-side
        operation: another process holding an already-open descriptor
        keeps appending to the *old* inode until it reopens.
        """
        with self._lock:
            kept = list(self._iter_records())
            if max_age_seconds is not None:
                cutoff = time.time() - max_age_seconds
                kept = [r for r in kept if r.ts >= cutoff]
            if max_records is not None:
                kept = kept[-max_records:]
            tmp = self.path.with_suffix(".jsonl.tmp")
            with open(tmp, "wb") as fh:
                for record in kept:
                    fh.write(
                        (json.dumps(dict(record), separators=(",", ":")) + "\n")
                        .encode()
                    )
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.path)
            self._count = len(kept)
            return self._count
