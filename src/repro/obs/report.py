"""Render collected telemetry into a human-readable run report.

This backs the ``repro obs report`` CLI: it snapshots the global
registry and tracer into one plain-JSON *telemetry* document
(:func:`collect_telemetry`) and renders it as aligned text tables
(:func:`render_report`) -- span timing breakdown, histogram summaries
(count / mean / estimated p50 / p90 / p99), and counter/gauge values.

Quantiles are estimated from the histogram buckets by linear
interpolation inside the bucket containing the target rank -- the same
estimate a ``histogram_quantile`` query would give a scraper.
"""

from __future__ import annotations

import math
from typing import Any

from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.tracing import Tracer, flame_report, get_tracer, tracing_enabled

__all__ = ["collect_telemetry", "render_report", "estimate_quantile"]

TELEMETRY_VERSION = 1


def collect_telemetry(
    registry: MetricsRegistry | None = None,
    tracer: Tracer | None = None,
    meta: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """One JSON-ready document holding a run's metrics and span trees."""
    return {
        "version": TELEMETRY_VERSION,
        "tracing_enabled": tracing_enabled(),
        "meta": dict(meta or {}),
        "metrics": (registry or get_registry()).snapshot(),
        "trace": (tracer or get_tracer()).export(),
    }


def estimate_quantile(
    buckets: list[float], counts: list[int], count: int, q: float
) -> float:
    """Estimate quantile ``q`` from per-bucket (non-cumulative) counts.

    Interpolates linearly within the bucket containing the target rank;
    ranks landing in the +Inf overflow bucket return the last finite
    boundary (the histogram cannot resolve beyond it).
    """
    if count <= 0:
        return math.nan
    target = q * count
    cumulative = 0.0
    lower = 0.0
    for bound, bucket_count in zip(buckets, counts):
        previous = cumulative
        cumulative += bucket_count
        if cumulative >= target:
            if bucket_count == 0:
                return bound
            fraction = (target - previous) / bucket_count
            return lower + fraction * (bound - lower)
        lower = bound
    return buckets[-1] if buckets else math.nan


def _label_suffix(labels: dict[str, Any]) -> str:
    if not labels:
        return ""
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def _fmt_seconds(value: float) -> str:
    if math.isnan(value):
        return "-"
    if value >= 100:
        return f"{value:.0f}s"
    if value >= 1:
        return f"{value:.2f}s"
    return f"{value * 1e3:.2f}ms"


def _fmt_number(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.6g}"


def render_report(telemetry: dict[str, Any]) -> str:
    """The full text report: spans, histograms, counters and gauges."""
    sections: list[str] = []
    meta = telemetry.get("meta") or {}
    if meta:
        sections.append(
            "run: " + " ".join(f"{k}={v}" for k, v in sorted(meta.items()))
        )

    sections.append("== span timing (wall-time tree) ==")
    trace = telemetry.get("trace") or []
    if trace:
        sections.append(flame_report(trace))
    elif telemetry.get("tracing_enabled"):
        sections.append("(tracing enabled, but no spans were recorded)")
    else:
        sections.append("(tracing disabled -- rerun with REPRO_TRACE=1)")

    metrics = telemetry.get("metrics") or {}
    histograms = {
        name: entry for name, entry in metrics.items()
        if entry["kind"] == "histogram" and entry["samples"]
    }
    scalars = {
        name: entry for name, entry in metrics.items()
        if entry["kind"] in ("counter", "gauge") and entry["samples"]
    }

    if histograms:
        sections.append("")
        sections.append("== stage timings / distributions ==")
        header = (
            f"{'metric':<52} {'count':>8} {'mean':>10} "
            f"{'p50':>10} {'p90':>10} {'p99':>10}"
        )
        rows = [header, "-" * len(header)]
        for name, entry in sorted(histograms.items()):
            buckets = entry["buckets"]
            # Only render duration-style units for timing histograms;
            # other distributions (Z-losses, ...) are dimensionless.
            fmt = _fmt_seconds if name.endswith("_seconds") else (
                lambda v: "-" if math.isnan(v) else f"{v:.4g}"
            )
            for sample in entry["samples"]:
                count = sample["count"]
                mean = sample["sum"] / count if count else math.nan
                label = f"{name}{_label_suffix(sample['labels'])}"
                quantiles = [
                    estimate_quantile(buckets, sample["counts"], count, q)
                    for q in (0.5, 0.9, 0.99)
                ]
                rows.append(
                    f"{label:<52} {count:>8} {fmt(mean):>10} "
                    + " ".join(f"{fmt(v):>10}" for v in quantiles)
                )
        sections.append("\n".join(rows))

    if scalars:
        sections.append("")
        sections.append("== counters and gauges ==")
        header = f"{'metric':<60} {'kind':<8} {'value':>14}"
        rows = [header, "-" * len(header)]
        for name, entry in sorted(scalars.items()):
            for sample in entry["samples"]:
                label = f"{name}{_label_suffix(sample['labels'])}"
                rows.append(
                    f"{label:<60} {entry['kind']:<8} "
                    f"{_fmt_number(sample['value']):>14}"
                )
        sections.append("\n".join(rows))

    if not histograms and not scalars:
        sections.append("")
        sections.append("(no metrics recorded)")
    return "\n".join(sections)
