"""The self-monitoring health detector: NEVERMIND's idea turned inward.

The paper watches per-line time series and flags degradation before the
customer calls; this module watches the *pipeline's own* series from the
flight recorder (:mod:`repro.obs.history`) -- realized precision,
calibration drift, per-stage wall time, peak RSS, serve p99 latency --
and flags the run itself degrading before an operator has to diff
benchmark JSONs by hand.

The detector is deliberately the same shape as the repo's drift
machinery: an EWMA baseline over the older part of the window compared
against the mean of the most recent points, with a *triple* guard before
flagging -- the deviation must exceed an absolute floor, a relative
fraction of the baseline, *and* a multiple of the baseline noise
(standard deviation).  Any single guard alone pages on stationary noise;
all three together stay quiet on a clean run and still catch an injected
step (both behaviours are pinned by tests).

``repro obs dashboard`` renders each watched series as a sparkline with
its verdict; ``repro obs report`` appends the same summary.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

from repro.obs.history import HistoryStore

__all__ = [
    "HealthCheck",
    "HealthFinding",
    "HealthDetector",
    "DEFAULT_CHECKS",
    "ewma",
    "sparkline",
    "render_dashboard",
]

_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def sparkline(values: list[float], width: int = 24) -> str:
    """Render a series as a fixed-width unicode sparkline.

    Longer series are tail-sampled to ``width`` points (the recent end
    matters most); a constant series renders flat at mid-height.
    """
    if not values:
        return ""
    if len(values) > width:
        values = values[-width:]
    lo, hi = min(values), max(values)
    span = hi - lo
    if span <= 0 or not math.isfinite(span):
        return _SPARK_CHARS[3] * len(values)
    return "".join(
        _SPARK_CHARS[
            min(len(_SPARK_CHARS) - 1,
                int((v - lo) / span * len(_SPARK_CHARS)))
        ]
        for v in values
    )


def ewma(values: list[float], alpha: float = 0.3) -> float:
    """Exponentially weighted moving average (newest weighted highest)."""
    if not values:
        return 0.0
    acc = values[0]
    for v in values[1:]:
        acc = alpha * v + (1.0 - alpha) * acc
    return acc


@dataclass(frozen=True)
class HealthCheck:
    """One watched series and its alerting policy.

    Attributes:
        name: stable check identifier.
        series: value name inside history records.
        kind: record kind the series lives in.
        direction: ``"high_is_bad"`` (latency, RSS, drift magnitude) or
            ``"low_is_bad"`` (precision).
        window: how many history points to load.
        recent: how many newest points form the "now" estimate.
        min_points: below this many points the check reports ``no_data``.
        rel_threshold: flag only when the deviation exceeds this fraction
            of the baseline magnitude...
        abs_floor: ...and this absolute amount...
        noise_sigmas: ...and this many baseline standard deviations.
    """

    name: str
    series: str
    kind: str
    direction: str = "high_is_bad"
    window: int = 60
    recent: int = 3
    min_points: int = 8
    rel_threshold: float = 0.3
    abs_floor: float = 0.0
    noise_sigmas: float = 3.0

    def __post_init__(self):
        if self.direction not in ("high_is_bad", "low_is_bad"):
            raise ValueError(f"unknown direction {self.direction!r}")
        if self.recent < 1 or self.min_points <= self.recent:
            raise ValueError(
                "need min_points > recent >= 1 so the baseline segment "
                "is never empty"
            )


@dataclass(frozen=True)
class HealthFinding:
    """One check's verdict over the current history."""

    check: HealthCheck
    status: str  # "ok" | "alert" | "no_data"
    n_points: int = 0
    baseline: float = 0.0
    recent_mean: float = 0.0
    deviation: float = 0.0
    threshold: float = 0.0
    trend: str = ""

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.check.name,
            "series": self.check.series,
            "kind": self.check.kind,
            "direction": self.check.direction,
            "status": self.status,
            "n_points": self.n_points,
            "baseline": self.baseline,
            "recent_mean": self.recent_mean,
            "deviation": self.deviation,
            "threshold": self.threshold,
            "trend": self.trend,
        }


#: What the detector watches out of the box.  Pipeline-side series come
#: from the weekly ``pipeline_week`` records, serve-side from the SLO
#: monitor's ``serve_tick`` records.
DEFAULT_CHECKS = (
    HealthCheck(
        name="precision", series="precision", kind="pipeline_week",
        direction="low_is_bad", rel_threshold=0.3, abs_floor=0.08,
    ),
    HealthCheck(
        name="calibration_drift", series="calibration_drift",
        kind="pipeline_week", direction="high_is_bad",
        rel_threshold=0.5, abs_floor=0.10,
    ),
    HealthCheck(
        name="score_stage_wall", series="wall_seconds.score",
        kind="pipeline_week", direction="high_is_bad",
        rel_threshold=0.5, abs_floor=0.005,
    ),
    HealthCheck(
        name="peak_rss", series="peak_rss_kb", kind="pipeline_week",
        direction="high_is_bad", rel_threshold=0.2, abs_floor=8192.0,
    ),
    HealthCheck(
        name="score_p99_latency", series="latency_p99./score",
        kind="serve_tick", direction="high_is_bad",
        rel_threshold=0.5, abs_floor=0.001,
    ),
)


def _mean(values: list[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def _std(values: list[float]) -> float:
    if len(values) < 2:
        return 0.0
    mu = _mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / (len(values) - 1))


def evaluate_check(check: HealthCheck, series: list[float]) -> HealthFinding:
    """Run one check over its raw series (pure -- pinned by unit tests)."""
    n = len(series)
    trend = sparkline(series)
    if n < check.min_points:
        return HealthFinding(check=check, status="no_data", n_points=n,
                             trend=trend)
    baseline_segment = series[:-check.recent]
    recent_segment = series[-check.recent:]
    baseline = ewma(baseline_segment)
    recent_mean = _mean(recent_segment)
    noise = _std(baseline_segment)
    if check.direction == "high_is_bad":
        deviation = recent_mean - baseline
    else:
        deviation = baseline - recent_mean
    threshold = max(
        check.abs_floor,
        check.rel_threshold * abs(baseline),
        check.noise_sigmas * noise,
    )
    status = "alert" if deviation > threshold else "ok"
    return HealthFinding(
        check=check,
        status=status,
        n_points=n,
        baseline=baseline,
        recent_mean=recent_mean,
        deviation=deviation,
        threshold=threshold,
        trend=trend,
    )


class HealthDetector:
    """Runs the checks against a flight recorder's history."""

    def __init__(
        self,
        history: HistoryStore,
        checks: tuple[HealthCheck, ...] = DEFAULT_CHECKS,
    ):
        self.history = history
        self.checks = tuple(checks)

    def evaluate(self) -> list[HealthFinding]:
        return [
            evaluate_check(
                check,
                self.history.query(
                    check.series, window=check.window, kind=check.kind
                ),
            )
            for check in self.checks
        ]

    def summary(self) -> dict[str, Any]:
        findings = self.evaluate()
        alerting = [f for f in findings if f.status == "alert"]
        evaluated = [f for f in findings if f.status != "no_data"]
        if alerting:
            status = "alert"
        elif evaluated:
            status = "ok"
        else:
            status = "no_data"
        return {
            "status": status,
            "alerts": [f.check.name for f in alerting],
            "checks": [f.to_dict() for f in findings],
            "history_records": len(self.history),
        }


def render_dashboard(
    history: HistoryStore,
    checks: tuple[HealthCheck, ...] = DEFAULT_CHECKS,
    width: int = 24,
) -> str:
    """The ``repro obs dashboard`` text view: trends + verdicts."""
    detector = HealthDetector(history, checks)
    findings = detector.evaluate()
    kinds = history.kinds()
    lines = [
        "flight recorder dashboard",
        f"  history: {history.path} "
        f"({sum(kinds.values())} records: "
        + (", ".join(f"{k}={v}" for k, v in sorted(kinds.items())) or "empty")
        + ")",
        "",
        f"  {'check':<22} {'trend':<{width}}  "
        f"{'baseline':>10} {'recent':>10}  status",
    ]
    for f in findings:
        trend = f.trend[-width:] if f.trend else ""
        if f.status == "no_data":
            verdict = f"no_data ({f.n_points}/{f.check.min_points} points)"
            stats = f"{'-':>10} {'-':>10}"
        else:
            arrow = "!" if f.status == "alert" else " "
            verdict = f"{f.status}{arrow}"
            stats = f"{f.baseline:>10.4g} {f.recent_mean:>10.4g}"
        lines.append(
            f"  {f.check.name:<22} {trend:<{width}}  {stats}  {verdict}"
        )
    alerting = [f.check.name for f in findings if f.status == "alert"]
    lines.append("")
    if alerting:
        lines.append("  DEGRADATION: " + ", ".join(alerting))
    else:
        lines.append("  no degradation detected")
    return "\n".join(lines)
