"""Serve SLOs: declared objectives + multi-window burn-rate alerting.

An :class:`SLO` declares what "good" means for a route -- a latency
objective (``p99 /score < 50ms`` is expressed as "99% of requests finish
under 50ms") or plain availability (non-5xx).  The
:class:`SLOMonitor` sits inside the scoring service's dispatch path,
counts good/total per objective, and evaluates **burn rate** the way
SRE practice does: with an error budget of ``1 - target``, the burn rate
is ``error_rate / budget`` -- burn 1.0 spends the budget exactly on
schedule, burn 2.0 spends it twice as fast.  Alerting requires *both* a
fast window (default 5 ticks, catches a cliff) and a slow window
(default 60 ticks, rejects a blip) to burn above threshold -- the
standard multi-window construction that keeps pages rare and real.

Observations accumulate into *ticks* (one tick per ``tick_every``
requests, or on an explicit :meth:`SLOMonitor.tick`).  Each tick writes
one ``serve_tick`` record to the flight recorder with exact per-route
latency percentiles (p50/p95/p99 over the tick's raw samples -- the
tick is a bounded window, so no histogram estimation error) plus per-SLO
attainment and burn rates; threshold crossings additionally write
``slo_alert`` records.  ``GET /health`` renders :meth:`SLOMonitor.status`.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Any

from repro.obs.history import HistoryStore
from repro.obs.log import get_logger, kv
from repro.obs.metrics import get_registry

__all__ = ["SLO", "SLOMonitor", "DEFAULT_SLOS"]

LOG = get_logger("obs.slo")


@dataclass(frozen=True)
class SLO:
    """One declared objective.

    Attributes:
        name: stable identifier (metric label, history series name).
        route: the route it covers, or ``"*"`` for every route.
        kind: ``"latency"`` (good = fast enough and not a server error)
            or ``"availability"`` (good = not a server error).
        threshold_seconds: the latency bound (latency kind only).
        target: fraction of requests that must be good (e.g. 0.99);
            the error budget is ``1 - target``.
    """

    name: str
    route: str
    kind: str = "latency"
    threshold_seconds: float | None = None
    target: float = 0.99

    def __post_init__(self):
        if self.kind not in ("latency", "availability"):
            raise ValueError(f"unknown SLO kind {self.kind!r}")
        if self.kind == "latency" and self.threshold_seconds is None:
            raise ValueError(f"latency SLO {self.name!r} needs a threshold")
        if not 0.0 < self.target < 1.0:
            raise ValueError(f"SLO target must be in (0, 1), got {self.target}")

    def covers(self, route: str) -> bool:
        return self.route == "*" or self.route == route

    def is_good(self, seconds: float, status: int) -> bool:
        if status >= 500:
            return False
        if self.kind == "latency":
            return seconds <= self.threshold_seconds
        return True

    @property
    def budget(self) -> float:
        return 1.0 - self.target

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "route": self.route,
            "kind": self.kind,
            "threshold_seconds": self.threshold_seconds,
            "target": self.target,
        }


#: The serving layer's declared objectives.  Cached reads answer in tens
#: of microseconds, so 50ms@99% for /score leaves two orders of
#: magnitude of headroom before a page -- a *page-worthy* bound, not a
#: wish; /dispatch cuts a full top-N list, so it gets 250ms@95%.
DEFAULT_SLOS = (
    SLO(name="score_latency", route="/score", kind="latency",
        threshold_seconds=0.050, target=0.99),
    SLO(name="dispatch_latency", route="/dispatch", kind="latency",
        threshold_seconds=0.250, target=0.95),
    SLO(name="availability", route="*", kind="availability", target=0.999),
)

_PERCENTILES = (50.0, 95.0, 99.0)


def _percentile(sorted_values: list[float], q: float) -> float:
    """Linear-interpolated percentile of an already-sorted list."""
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return sorted_values[0]
    pos = (q / 100.0) * (len(sorted_values) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = pos - lo
    return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac


class _WindowCounts:
    """Per-SLO (good, total) pairs over the last ``maxlen`` ticks."""

    def __init__(self, maxlen: int):
        self.ticks: deque[tuple[int, int]] = deque(maxlen=maxlen)

    def push(self, good: int, total: int) -> None:
        self.ticks.append((good, total))

    def error_rate(self, window: int) -> float | None:
        recent = list(self.ticks)[-window:]
        total = sum(t for _, t in recent)
        if total == 0:
            return None
        good = sum(g for g, _ in recent)
        return 1.0 - good / total


class SLOMonitor:
    """Accumulates request outcomes, ticks windows, emits alerts.

    Args:
        slos: the declared objectives (default :data:`DEFAULT_SLOS`).
        history: optional flight recorder; each tick appends a
            ``serve_tick`` record, each threshold crossing an
            ``slo_alert`` record.
        fast_window / slow_window: burn-rate windows in *ticks*.
        burn_threshold: both windows must burn at or above this to alert.
        tick_every: auto-tick after this many observations (an explicit
            :meth:`tick` call also works, e.g. from a timer).
    """

    def __init__(
        self,
        slos: tuple[SLO, ...] = DEFAULT_SLOS,
        history: HistoryStore | None = None,
        fast_window: int = 5,
        slow_window: int = 60,
        burn_threshold: float = 2.0,
        tick_every: int = 64,
    ):
        if fast_window < 1 or slow_window < fast_window:
            raise ValueError(
                "windows must satisfy 1 <= fast_window <= slow_window"
            )
        names = [s.name for s in slos]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate SLO names in {names}")
        self.slos = tuple(slos)
        self.history = history
        self.fast_window = fast_window
        self.slow_window = slow_window
        self.burn_threshold = burn_threshold
        self.tick_every = tick_every

        self._lock = threading.Lock()
        self._windows = {s.name: _WindowCounts(slow_window) for s in self.slos}
        self._pending_good = {s.name: 0 for s in self.slos}
        self._pending_total = {s.name: 0 for s in self.slos}
        self._pending_latency: dict[str, list[float]] = {}
        self._pending_observations = 0
        self._ticks = 0
        self._alerting: dict[str, bool] = {s.name: False for s in self.slos}
        self._last_burns: dict[str, dict[str, float | None]] = {}

        metrics = get_registry()
        self._ticks_total = metrics.counter(
            "repro_slo_ticks_total", "SLO evaluation windows closed"
        )
        self._alerts_total = metrics.counter(
            "repro_slo_alerts_total", "Burn-rate alerts raised, by SLO"
        )
        self._burn_gauge = metrics.gauge(
            "repro_slo_burn_rate",
            "Fast-window burn rate per SLO (budget multiples)",
        )
        self._attainment_gauge = metrics.gauge(
            "repro_slo_attainment",
            "Slow-window good-request fraction per SLO",
        )

    # ----- ingest ---------------------------------------------------------

    def observe(self, route: str, seconds: float, status: int) -> None:
        """Record one request outcome; auto-ticks every ``tick_every``."""
        with self._lock:
            for slo in self.slos:
                if not slo.covers(route):
                    continue
                self._pending_total[slo.name] += 1
                if slo.is_good(seconds, status):
                    self._pending_good[slo.name] += 1
            self._pending_latency.setdefault(route, []).append(seconds)
            self._pending_observations += 1
            due = self._pending_observations >= self.tick_every
        if due:
            self.tick()

    # ----- evaluation -----------------------------------------------------

    def tick(self) -> dict[str, Any] | None:
        """Close the current window: evaluate burn rates, record, alert.

        Returns the ``serve_tick`` values written to the history store,
        or None when no observations arrived since the last tick.
        """
        with self._lock:
            if self._pending_observations == 0:
                return None
            pending_good = dict(self._pending_good)
            pending_total = dict(self._pending_total)
            latencies = self._pending_latency
            n_observations = self._pending_observations
            self._pending_good = {s.name: 0 for s in self.slos}
            self._pending_total = {s.name: 0 for s in self.slos}
            self._pending_latency = {}
            self._pending_observations = 0
            self._ticks += 1
            tick_index = self._ticks

            values: dict[str, float] = {"requests.total": float(n_observations)}
            for route, samples in sorted(latencies.items()):
                samples.sort()
                values[f"requests.{route}"] = float(len(samples))
                for q in _PERCENTILES:
                    values[f"latency_p{q:g}.{route}"] = _percentile(samples, q)

            alerts: list[dict[str, Any]] = []
            for slo in self.slos:
                window = self._windows[slo.name]
                window.push(pending_good[slo.name], pending_total[slo.name])
                fast = window.error_rate(self.fast_window)
                slow = window.error_rate(self.slow_window)
                burn_fast = None if fast is None else fast / slo.budget
                burn_slow = None if slow is None else slow / slo.budget
                self._last_burns[slo.name] = {
                    "fast": burn_fast, "slow": burn_slow,
                }
                alerting = (
                    burn_fast is not None
                    and burn_slow is not None
                    and burn_fast >= self.burn_threshold
                    and burn_slow >= self.burn_threshold
                )
                newly = alerting and not self._alerting[slo.name]
                self._alerting[slo.name] = alerting
                if burn_fast is not None:
                    values[f"burn_fast.{slo.name}"] = burn_fast
                    self._burn_gauge.set(burn_fast, slo=slo.name)
                if slow is not None:
                    values[f"attainment.{slo.name}"] = 1.0 - slow
                    self._attainment_gauge.set(1.0 - slow, slo=slo.name)
                values[f"alerting.{slo.name}"] = float(alerting)
                if newly:
                    alerts.append({
                        "slo": slo.name,
                        "burn_fast": burn_fast,
                        "burn_slow": burn_slow,
                        "threshold": self.burn_threshold,
                        "objective": slo.to_dict(),
                    })

        self._ticks_total.inc()
        if self.history is not None:
            self.history.append(
                "serve_tick", values, meta={"tick": tick_index}
            )
            for alert in alerts:
                self._alerts_total.inc(slo=alert["slo"])
                self.history.append(
                    "slo_alert",
                    {
                        "burn_fast": alert["burn_fast"],
                        "burn_slow": alert["burn_slow"],
                        "threshold": alert["threshold"],
                    },
                    meta={"slo": alert["slo"],
                          "objective": alert["objective"]},
                )
        else:
            for alert in alerts:
                self._alerts_total.inc(slo=alert["slo"])
        for alert in alerts:
            LOG.warning(kv(
                "slo.alert",
                slo=alert["slo"],
                burn_fast=round(alert["burn_fast"], 2),
                burn_slow=round(alert["burn_slow"], 2),
                threshold=alert["threshold"],
            ))
        return values

    # ----- status ---------------------------------------------------------

    def status(self) -> dict[str, Any]:
        """SLO summary for ``GET /health``: per-objective and overall."""
        with self._lock:
            objectives = []
            any_alerting = False
            any_data = False
            for slo in self.slos:
                burns = self._last_burns.get(slo.name, {})
                slow = self._windows[slo.name].error_rate(self.slow_window)
                alerting = self._alerting[slo.name]
                any_alerting = any_alerting or alerting
                any_data = any_data or slow is not None
                objectives.append({
                    **slo.to_dict(),
                    "attainment": None if slow is None else 1.0 - slow,
                    "burn_fast": burns.get("fast"),
                    "burn_slow": burns.get("slow"),
                    "alerting": alerting,
                })
            return {
                # A fresh service with no traffic yet is healthy, not
                # unknown: "no_data" only ever qualifies per-objective.
                "status": "alerting" if any_alerting else "ok",
                "ticks": self._ticks,
                "windows": {
                    "fast_ticks": self.fast_window,
                    "slow_ticks": self.slow_window,
                    "burn_threshold": self.burn_threshold,
                    "tick_every": self.tick_every,
                },
                "has_data": any_data,
                "objectives": objectives,
            }
