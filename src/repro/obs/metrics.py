"""The metrics registry: counters, gauges, and fixed-bucket histograms.

One process-global :class:`MetricsRegistry` (see :func:`get_registry`)
holds every metric the subsystems emit -- training round timings, the
pipeline's weekly quality gauges, the serving layer's request counters.
Design constraints, in order:

* **dependency-free** -- stdlib only, per the repo's no-new-deps rule;
* **thread-safe** -- the serving layer observes from handler threads and
  the parallel fabric from pool workers; one registry lock guards every
  mutation (observations are a dict lookup plus a float add, so the
  critical section is nanoseconds and never formats anything);
* **cheap when idle** -- a metric that is never observed costs one dict
  entry; reading (:meth:`MetricsRegistry.snapshot`) copies plain data
  under the lock so formatting happens outside it;
* **two serializations** -- :meth:`MetricsRegistry.to_json` for the
  report tooling and :meth:`MetricsRegistry.to_prometheus` emitting the
  text exposition format (``# HELP``/``# TYPE`` + escaped label pairs +
  cumulative ``le`` buckets) that a scraper ingests directly.

Metrics are get-or-create: ``registry.counter("x")`` returns the same
object every call and raises if ``x`` is already registered as another
kind.  Labels are passed per observation (``c.inc(1, route="/score")``)
and become one sample per distinct label set, Prometheus-style.
"""

from __future__ import annotations

import json
import math
import re
import threading
from bisect import bisect_left
from time import perf_counter
from typing import Any, Iterator

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
]


def _validate_buckets(buckets) -> tuple[float, ...]:
    bounds = tuple(float(b) for b in buckets)
    if not bounds:
        raise ValueError("histogram needs at least one bucket boundary")
    if any(not math.isfinite(b) for b in bounds):
        raise ValueError("bucket boundaries must be finite (+Inf is implicit)")
    if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
        raise ValueError("bucket boundaries must be strictly increasing")
    return bounds

#: Default latency buckets in seconds: sub-millisecond shard scores up to
#: multi-second training runs, with an implicit +Inf overflow bucket.
DEFAULT_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
_LABEL_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*\Z")

_LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, Any]) -> _LabelKey:
    for name in labels:
        if not _LABEL_RE.match(name):
            raise ValueError(f"invalid label name {name!r}")
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class _Metric:
    """Shared shape of every metric: name, help text, the registry lock."""

    kind = "untyped"

    def __init__(self, name: str, help: str, lock: threading.Lock):
        self.name = name
        self.help = help
        self._lock = lock

    def _clear(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError


class Counter(_Metric):
    """A monotonically increasing sum, one series per label set."""

    kind = "counter"

    def __init__(self, name: str, help: str, lock: threading.Lock):
        super().__init__(name, help, lock)
        self._values: dict[_LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease ({amount})")
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    def _samples(self) -> list[dict[str, Any]]:
        return [
            {"labels": dict(key), "value": value}
            for key, value in sorted(self._values.items())
        ]

    def _clear(self) -> None:
        self._values.clear()


class Gauge(Counter):
    """A value that can go up and down (e.g. queue depth, last precision)."""

    kind = "gauge"

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels) -> None:
        self.inc(-amount, **labels)

    def set(self, value: float, **labels) -> None:
        with self._lock:
            self._values[_label_key(labels)] = float(value)


class _HistogramSeries:
    __slots__ = ("counts", "sum", "count")

    def __init__(self, n_buckets: int):
        self.counts = [0] * (n_buckets + 1)  # last slot = +Inf overflow
        self.sum = 0.0
        self.count = 0


class Histogram(_Metric):
    """Fixed-boundary histogram with an overflow (+Inf) bucket.

    Bucket semantics follow Prometheus: a boundary is an *inclusive*
    upper bound, so a value equal to a boundary lands in that boundary's
    bucket; anything above the last boundary lands in +Inf.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        lock: threading.Lock,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ):
        super().__init__(name, help, lock)
        self.buckets = _validate_buckets(buckets)
        self._series: dict[_LabelKey, _HistogramSeries] = {}

    def observe(self, value: float, **labels) -> None:
        value = float(value)
        idx = bisect_left(self.buckets, value)  # inclusive upper bounds
        key = _label_key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _HistogramSeries(len(self.buckets))
            series.counts[idx] += 1
            series.sum += value
            series.count += 1

    def time(self, **labels):
        """Context manager observing the block's wall time in seconds."""
        return _HistogramTimer(self, labels)

    def series(self, **labels) -> tuple[list[int], float, int]:
        """(per-bucket counts incl. overflow, sum, count) for one label set."""
        with self._lock:
            s = self._series.get(_label_key(labels))
            if s is None:
                return [0] * (len(self.buckets) + 1), 0.0, 0
            return list(s.counts), s.sum, s.count

    def _samples(self) -> list[dict[str, Any]]:
        return [
            {
                "labels": dict(key),
                "counts": list(s.counts),
                "sum": s.sum,
                "count": s.count,
            }
            for key, s in sorted(self._series.items())
        ]

    def _clear(self) -> None:
        self._series.clear()


class _HistogramTimer:
    __slots__ = ("_histogram", "_labels", "_start")

    def __init__(self, histogram: Histogram, labels: dict[str, Any]):
        self._histogram = histogram
        self._labels = labels

    def __enter__(self) -> "_HistogramTimer":
        self._start = perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        self._histogram.observe(perf_counter() - self._start, **self._labels)
        return False


class MetricsRegistry:
    """A named collection of metrics with JSON and Prometheus output."""

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}
        self._bucket_overrides: dict[str, tuple[float, ...]] = {}

    # ----- registration ---------------------------------------------------

    def _get_or_create(self, cls, name: str, help: str, **kwargs):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not type(existing) is cls:
                    raise ValueError(
                        f"metric {name!r} is already registered as a "
                        f"{existing.kind}, not a {cls.kind}"
                    )
                return existing
            metric = cls(name, help, self._lock, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def configure_buckets(
        self, name: str, buckets: tuple[float, ...]
    ) -> None:
        """Override the bucket boundaries a named histogram will get.

        Operators retune a metric's resolution (e.g. sub-millisecond
        serve latencies) without touching call sites: the override wins
        over both the instrumenting code's explicit ``buckets=`` and the
        default.  Must run before the metric's first registration --
        recorded observations cannot be rebinned.
        """
        bounds = _validate_buckets(buckets)
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if (
                    isinstance(existing, Histogram)
                    and existing.buckets == bounds
                ):
                    self._bucket_overrides[name] = bounds
                    return  # a no-op re-configuration is fine
                raise ValueError(
                    f"histogram {name!r} is already registered; configure "
                    "buckets before the metric's first use"
                )
            self._bucket_overrides[name] = bounds

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] | None = None,
    ) -> Histogram:
        """Get or create a histogram.

        Bucket resolution order: a :meth:`configure_buckets` override,
        then the caller's explicit ``buckets=``, then
        :data:`DEFAULT_BUCKETS`.  A get with boundaries different from
        the registered ones raises -- two call sites silently observing
        into differently-binned series is the bug this guards against.
        """
        with self._lock:
            override = self._bucket_overrides.get(name)
        if override is not None:
            resolved = override
        elif buckets is not None:
            resolved = _validate_buckets(buckets)
        else:
            resolved = DEFAULT_BUCKETS
        metric = self._get_or_create(Histogram, name, help, buckets=resolved)
        if metric.buckets != resolved:
            raise ValueError(
                f"histogram {name!r} is already registered with different "
                "bucket boundaries"
            )
        return metric

    # ----- reading --------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """A plain-data copy of every metric, taken under the lock.

        Callers format/serialize the snapshot *outside* the lock, so a
        slow scrape never blocks observation paths.
        """
        with self._lock:
            out: dict[str, Any] = {}
            for name in sorted(self._metrics):
                metric = self._metrics[name]
                entry: dict[str, Any] = {
                    "kind": metric.kind,
                    "help": metric.help,
                    "samples": metric._samples(),
                }
                if isinstance(metric, Histogram):
                    entry["buckets"] = list(metric.buckets)
                out[name] = entry
            return out

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.snapshot(), indent=indent)

    def to_prometheus(self) -> str:
        """The text exposition format (version 0.0.4) of all metrics."""
        return exposition(self.snapshot())

    def reset(self) -> None:
        """Clear every metric's samples (definitions stay registered)."""
        with self._lock:
            for metric in self._metrics.values():
                metric._clear()


# ----- Prometheus text exposition ----------------------------------------


def _escape_help(text: str) -> str:
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _escape_label_value(text: str) -> str:
    return (
        text.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
    )


def _fmt_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    return repr(float(value)) if value != int(value) else str(int(value))


def _fmt_labels(labels: dict[str, str], extra: dict[str, str] | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(
        f'{k}="{_escape_label_value(str(v))}"' for k, v in sorted(merged.items())
    )
    return "{" + inner + "}"


def exposition(snapshot: dict[str, Any]) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` as exposition text."""
    lines: list[str] = []
    for name, entry in snapshot.items():
        lines.append(f"# HELP {name} {_escape_help(entry.get('help') or name)}")
        lines.append(f"# TYPE {name} {entry['kind']}")
        if entry["kind"] == "histogram":
            bounds = entry["buckets"]
            for sample in entry["samples"]:
                labels = sample["labels"]
                cumulative = 0
                for bound, count in zip(bounds, sample["counts"]):
                    cumulative += count
                    lines.append(
                        f"{name}_bucket"
                        f"{_fmt_labels(labels, {'le': _fmt_value(bound)})} "
                        f"{cumulative}"
                    )
                lines.append(
                    f"{name}_bucket{_fmt_labels(labels, {'le': '+Inf'})} "
                    f"{sample['count']}"
                )
                lines.append(
                    f"{name}_sum{_fmt_labels(labels)} "
                    f"{_fmt_value(sample['sum'])}"
                )
                lines.append(f"{name}_count{_fmt_labels(labels)} {sample['count']}")
        else:
            for sample in entry["samples"]:
                lines.append(
                    f"{name}{_fmt_labels(sample['labels'])} "
                    f"{_fmt_value(sample['value'])}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


# ----- the process-global registry ----------------------------------------

_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global registry every subsystem emits into."""
    return _REGISTRY


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the global registry (tests); returns the previous one."""
    global _REGISTRY
    previous = _REGISTRY
    _REGISTRY = registry
    return previous


def iter_samples(snapshot: dict[str, Any]) -> Iterator[tuple[str, dict, dict]]:
    """Yield (metric name, entry, sample) triples of a snapshot."""
    for name, entry in snapshot.items():
        for sample in entry["samples"]:
            yield name, entry, sample
