"""A dependency-free checker for the Prometheus text exposition format.

The CI ``obs-smoke`` job scrapes ``/metrics?format=prometheus`` and must
validate the output without installing a Prometheus client.  This module
implements the line-format rules the exposition format (version 0.0.4)
actually guarantees:

* every line is blank, a well-formed ``# HELP``/``# TYPE`` comment, or a
  sample ``name{labels} value [timestamp]``;
* metric and label names match the Prometheus identifier grammar; label
  values are double-quoted with only ``\\``, ``\"`` and ``\n`` escapes;
* sample values parse as floats (``+Inf``/``-Inf``/``NaN`` allowed);
* a sample's base name (``_bucket``/``_sum``/``_count`` stripped for
  histograms) has a preceding ``# TYPE``;
* histogram bucket counts are cumulative, non-decreasing, and the
  ``+Inf`` bucket equals ``_count``.

:func:`check_prometheus_text` returns a list of problem strings (empty
means the text parses); :func:`parse_samples` returns the samples for
assertions in tests.
"""

from __future__ import annotations

import math
import re

__all__ = ["check_prometheus_text", "parse_samples"]

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
_LABEL_NAME_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*\Z")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+(?P<timestamp>-?\d+))?\s*$"
)


def _parse_labels(raw: str) -> dict[str, str]:
    """Parse ``a="x",b="y"`` honoring the three legal escapes."""
    labels: dict[str, str] = {}
    i, n = 0, len(raw)
    while i < n:
        eq = raw.index("=", i)
        name = raw[i:eq].strip()
        if not _LABEL_NAME_RE.match(name):
            raise ValueError(f"invalid label name {name!r}")
        if eq + 1 >= n or raw[eq + 1] != '"':
            raise ValueError(f"label {name!r} value is not quoted")
        i = eq + 2
        out: list[str] = []
        while True:
            if i >= n:
                raise ValueError(f"unterminated label value for {name!r}")
            ch = raw[i]
            if ch == "\\":
                if i + 1 >= n or raw[i + 1] not in ('\\', '"', 'n'):
                    raise ValueError(f"bad escape in label {name!r}")
                out.append("\n" if raw[i + 1] == "n" else raw[i + 1])
                i += 2
            elif ch == '"':
                i += 1
                break
            else:
                out.append(ch)
                i += 1
        labels[name] = "".join(out)
        if i < n:
            if raw[i] != ",":
                raise ValueError(f"expected ',' after label {name!r}")
            i += 1
    return labels


def _parse_value(text: str) -> float:
    if text in ("+Inf", "Inf"):
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    return float(text)


def parse_samples(text: str) -> list[tuple[str, dict[str, str], float]]:
    """All (name, labels, value) samples; raises ValueError on bad lines."""
    errors = check_prometheus_text(text)
    if errors:
        raise ValueError("; ".join(errors))
    samples = []
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        assert match is not None  # check_prometheus_text accepted it
        labels = _parse_labels(match["labels"]) if match["labels"] else {}
        samples.append((match["name"], labels, _parse_value(match["value"])))
    return samples


def check_prometheus_text(text: str) -> list[str]:
    """Validate exposition text; returns a list of problems (empty = ok)."""
    problems: list[str] = []
    typed: dict[str, str] = {}
    helped: set[str] = set()
    histogram_series: dict[tuple[str, tuple], dict[str, float]] = {}
    bucket_last: dict[tuple[str, tuple], float] = {}

    for lineno, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.rstrip("\n")
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                # Other comments are legal; only HELP/TYPE have structure.
                if len(parts) >= 2 and parts[1] in ("HELP", "TYPE"):
                    problems.append(f"line {lineno}: malformed {parts[1]} comment")
                continue
            kind, name = parts[1], parts[2]
            if not _NAME_RE.match(name):
                problems.append(f"line {lineno}: invalid metric name {name!r}")
                continue
            if kind == "TYPE":
                if len(parts) < 4 or parts[3] not in (
                    "counter", "gauge", "histogram", "summary", "untyped"
                ):
                    problems.append(f"line {lineno}: bad TYPE for {name}")
                else:
                    if name in typed:
                        problems.append(f"line {lineno}: duplicate TYPE for {name}")
                    typed[name] = parts[3]
            else:
                if name in helped:
                    problems.append(f"line {lineno}: duplicate HELP for {name}")
                helped.add(name)
            continue

        match = _SAMPLE_RE.match(line)
        if match is None:
            problems.append(f"line {lineno}: unparseable sample {line!r}")
            continue
        name = match["name"]
        try:
            labels = _parse_labels(match["labels"]) if match["labels"] else {}
        except ValueError as exc:
            problems.append(f"line {lineno}: {exc}")
            continue
        try:
            value = _parse_value(match["value"])
        except ValueError:
            problems.append(f"line {lineno}: bad value {match['value']!r}")
            continue

        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            trimmed = name[: -len(suffix)] if name.endswith(suffix) else None
            if trimmed and typed.get(trimmed) in ("histogram", "summary"):
                base = trimmed
                break
        if base not in typed:
            problems.append(f"line {lineno}: sample {name} has no TYPE")
            continue

        if typed.get(base) == "histogram":
            key_labels = tuple(sorted(
                (k, v) for k, v in labels.items() if k != "le"
            ))
            series = histogram_series.setdefault((base, key_labels), {})
            if name.endswith("_bucket"):
                if "le" not in labels:
                    problems.append(f"line {lineno}: bucket without le label")
                    continue
                last = bucket_last.get((base, key_labels), -math.inf)
                if value < last:
                    problems.append(
                        f"line {lineno}: bucket counts of {base} decrease"
                    )
                bucket_last[(base, key_labels)] = value
                if labels["le"] == "+Inf":
                    series["inf"] = value
            elif name.endswith("_count"):
                series["count"] = value

    for (base, key_labels), series in histogram_series.items():
        if "inf" in series and "count" in series and series["inf"] != series["count"]:
            problems.append(
                f"histogram {base}{dict(key_labels)}: +Inf bucket "
                f"({series['inf']}) != _count ({series['count']})"
            )
    return problems
