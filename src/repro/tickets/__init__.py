"""Customer-care simulation: tickets, outages, IVR and dispatches.

This package models the reactive side of Fig. 3 (top box):

* :mod:`repro.tickets.customers` -- who the subscribers are: usage
  intensity, tolerance, vacation (not-on-site) episodes, and the weekly
  reporting seasonality (tickets peak on Monday, Section 3.3);
* :mod:`repro.tickets.ticketing` -- trouble tickets and the ticket log;
* :mod:`repro.tickets.outage` -- DSLAM outage events with degradation
  precursors, and the IVR system that absorbs calls during outages
  (Section 5.2's first incorrect-prediction scenario);
* :mod:`repro.tickets.dispatch` -- ATDS and the field technicians: remote
  resolutions, truck rolls, noisy disposition notes, occasional failed
  fixes that cause repeat tickets.
"""

from repro.tickets.customers import CustomerBehavior, CustomerConfig, build_customers
from repro.tickets.dispatch import AtdsConfig, DispatchRecord, Dispatcher
from repro.tickets.outage import OutageConfig, OutageEvent, OutageSchedule
from repro.tickets.ticketing import (
    DAY_OF_WEEK_WEIGHTS,
    IvrCall,
    Ticket,
    TicketCategory,
    TicketLog,
    TicketSource,
)

__all__ = [
    "CustomerBehavior",
    "CustomerConfig",
    "build_customers",
    "AtdsConfig",
    "DispatchRecord",
    "Dispatcher",
    "OutageConfig",
    "OutageEvent",
    "OutageSchedule",
    "DAY_OF_WEEK_WEIGHTS",
    "IvrCall",
    "Ticket",
    "TicketCategory",
    "TicketLog",
    "TicketSource",
]
