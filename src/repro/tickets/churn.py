"""Customer churn model (the paper's motivating business metric).

The paper's introduction and conclusion motivate NEVERMIND with churn:
*"a lengthy resolution can lead to customer dissatisfaction and ultimately
lead to churn, i.e., customers terminating their contracts"*, and
unnecessary repeat tickets are *"a noticeable contributor to the increase
in churn"*.  The evaluation never quantifies churn (the trial had not run
long enough), so this module is an extension: a simple dissatisfaction
hazard that turns the simulator's ground truth into the business outcome
the paper argues about.

Model: each customer accumulates dissatisfaction from (a) days living with
an unresolved perceivable problem and (b) each repeat ticket for the same
fault; dissatisfaction maps to a weekly churn hazard through a logistic
link.  Comparing a reactive run against a proactive (pipeline) run of the
same seed estimates the churn avoided by fixing problems early.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.netsim.components import disposition_arrays
from repro.netsim.simulator import SimulationResult
from repro.tickets.ticketing import TicketSource

__all__ = ["ChurnConfig", "ChurnReport", "estimate_churn"]


@dataclass(frozen=True)
class ChurnConfig:
    """Dissatisfaction-to-churn parameters.

    Attributes:
        base_weekly_hazard: churn probability per customer-week with zero
            dissatisfaction (plan changes, moves, ...).
        problem_day_weight: dissatisfaction per day spent with an active,
            perceivable problem.
        repeat_ticket_weight: dissatisfaction per ticket beyond the first
            for the same fault episode.
        hazard_scale: converts dissatisfaction into added log-odds of
            churning in a given week.
    """

    base_weekly_hazard: float = 0.0008
    problem_day_weight: float = 0.02
    repeat_ticket_weight: float = 0.5
    hazard_scale: float = 0.35


@dataclass(frozen=True)
class ChurnReport:
    """Churn estimate for one simulation run.

    Attributes:
        expected_churners: expected number of customers lost over the run.
        churn_rate: expected_churners / population.
        dissatisfaction: per-line accumulated dissatisfaction score.
        problem_days: per-line days spent with an active perceivable fault.
        repeat_tickets: per-line count of repeat customer tickets.
    """

    expected_churners: float
    churn_rate: float
    dissatisfaction: np.ndarray
    problem_days: np.ndarray
    repeat_tickets: np.ndarray


def estimate_churn(
    result: SimulationResult, config: ChurnConfig | None = None
) -> ChurnReport:
    """Estimate expected churn from a finished simulation.

    Deterministic given the simulation output: returns the *expected*
    churner count under the hazard model rather than sampling, so
    reactive-vs-proactive comparisons are noise-free.
    """
    config = config or ChurnConfig()
    n = result.n_lines
    n_weeks = result.config.n_weeks
    end_day = n_weeks * 7
    perceive = disposition_arrays().perceivability

    problem_days = np.zeros(n)
    for event in result.fault_events:
        cleared = event.cleared_day if event.cleared_day >= 0 else end_day
        duration = max(0, cleared - event.onset_day)
        # Weight problem-days by how noticeable the fault class is: a dead
        # line hurts every day, slow browsing hurts less.
        problem_days[event.line_id] += duration * perceive[event.disposition]

    repeat_tickets = np.zeros(n)
    seen: dict[tuple[int, int], int] = {}
    for ticket in result.ticket_log.tickets:
        if ticket.source is not TicketSource.CUSTOMER:
            continue
        if ticket.fault_disposition < 0:
            continue
        key = (ticket.line_id, ticket.fault_onset_day)
        seen[key] = seen.get(key, 0) + 1
    for (line_id, _), count in seen.items():
        if count > 1:
            repeat_tickets[line_id] += count - 1

    dissatisfaction = (
        config.problem_day_weight * problem_days
        + config.repeat_ticket_weight * repeat_tickets
    )

    base_logit = np.log(
        config.base_weekly_hazard / (1.0 - config.base_weekly_hazard)
    )
    weekly_hazard = 1.0 / (
        1.0 + np.exp(-(base_logit + config.hazard_scale * dissatisfaction))
    )
    survive = (1.0 - weekly_hazard) ** n_weeks
    churn_prob = 1.0 - survive
    expected = float(np.sum(churn_prob))
    return ChurnReport(
        expected_churners=expected,
        churn_rate=expected / n,
        dissatisfaction=dissatisfaction,
        problem_days=problem_days,
        repeat_tickets=repeat_tickets,
    )
