"""ATDS and the field-technician workforce.

Section 3.1: tickets the agents cannot close are escalated to ATDS
(Automatic Testing and Dispatching System), which either resolves them
remotely (configuration changes, modem reorders) or schedules a truck
roll.  The field technician's disposition note is the paper's ground
truth for the trouble locator -- and the paper warns it "can be very
noisy", which we model explicitly:

* a fraction of notes carry the wrong disposition, usually another
  disposition at the same major location (mistaking one corroded wire for
  another), occasionally a different location entirely;
* a fraction of dispatches fail to actually fix the fault, producing the
  repeat tickets the Table-3 "Ticket" feature exists to capture;
* dispatches for lines that turn out healthy (self-cleared faults, false
  predictions) close as "no trouble found" and record no disposition.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

import numpy as np

from repro.netsim.components import DISPOSITIONS, disposition_arrays

__all__ = [
    "AtdsConfig",
    "DispatchRecord",
    "GroupDispatchRecord",
    "Dispatcher",
    "DispatchList",
    "build_dispatch_list",
]


@dataclass(frozen=True)
class AtdsConfig:
    """ATDS behaviour parameters.

    Attributes:
        remote_fix_rate: fraction of edge tickets resolved without a truck
            roll (software help, profile change, modem reorder).
        min_delay_days, max_delay_days: report-to-resolution delay range.
        disposition_noise: probability the recorded disposition is wrong.
        same_location_given_noise: given a wrong code, probability it at
            least names the correct major location.
        failed_fix_rate: probability the dispatch does not actually clear
            the fault (leads to repeat tickets).
        weekly_capacity: proactive (NEVERMIND) dispatches ATDS can absorb
            per week *after* serving customer tickets; customer tickets
            always have priority (Section 3.2).
    """

    remote_fix_rate: float = 0.22
    min_delay_days: int = 1
    max_delay_days: int = 3
    disposition_noise: float = 0.12
    same_location_given_noise: float = 0.8
    failed_fix_rate: float = 0.08
    weekly_capacity: int = 400


@dataclass(frozen=True)
class DispatchRecord:
    """Outcome of one ATDS action (remote fix or truck roll).

    Attributes:
        ticket_id: the ticket this dispatch served.
        line_id: the subscriber line.
        day: resolution day (absolute).
        truck_roll: whether a field technician was dispatched.
        true_disposition: catalog index of the actual fault, -1 if the
            line was healthy at dispatch time.
        recorded_disposition: technician's disposition note (catalog
            index), -1 for "no trouble found" or remote closures without
            a code.
        fixed: whether the fault was actually cleared.
    """

    ticket_id: int
    line_id: int
    day: int
    truck_roll: bool
    true_disposition: int
    recorded_disposition: int
    fixed: bool


@dataclass(frozen=True)
class GroupDispatchRecord:
    """Outcome of one consolidated plant dispatch (fleet triage).

    Instead of rolling a truck per predicted line, the triage layer sends
    *one* crew to the shared plant element -- the DSLAM's central office
    or the binder's splice case -- covering every line behind it.

    Attributes:
        group_kind: ``"dslam"`` or ``"binder"``.
        group_id: index of the plant element, per ``group_kind``.
        n_lines: lines served by the element (the dispatches this one
            truck roll replaces).
        day: resolution day (absolute).
        truck_roll: always True -- shared plant cannot be fixed remotely.
        found_fault: whether the crew found a real shared-plant problem.
        fixed: whether the shared fault was actually cleared.
    """

    group_kind: str
    group_id: int
    n_lines: int
    day: int
    truck_roll: bool
    found_fault: bool
    fixed: bool


@dataclass
class Dispatcher:
    """Resolves tickets into dispatch records with noisy dispositions."""

    config: AtdsConfig = field(default_factory=AtdsConfig)
    records: list[DispatchRecord] = field(default_factory=list)
    group_records: list[GroupDispatchRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        arrays = disposition_arrays()
        self._locations = arrays.location
        self._by_location: dict[int, np.ndarray] = {
            loc: np.flatnonzero(arrays.location == loc)
            for loc in np.unique(arrays.location)
        }
        self._n_dispositions = arrays.n

    def record_disposition(self, true_disposition: int, rng: np.random.Generator) -> int:
        """Sample the technician's (possibly wrong) disposition note."""
        if true_disposition < 0:
            return -1
        if rng.random() >= self.config.disposition_noise:
            return int(true_disposition)
        location = int(self._locations[true_disposition])
        if rng.random() < self.config.same_location_given_noise:
            candidates = self._by_location[location]
        else:
            candidates = np.flatnonzero(self._locations != location)
        candidates = candidates[candidates != true_disposition]
        if candidates.size == 0:
            return int(true_disposition)
        return int(rng.choice(candidates))

    def resolve(
        self,
        ticket_id: int,
        line_id: int,
        report_day: int,
        true_disposition: int,
        rng: np.random.Generator,
    ) -> DispatchRecord:
        """Resolve one ticket and append the dispatch record.

        Returns the record; callers clear the plant fault when
        ``record.fixed`` is True (on ``record.day``).
        """
        delay = int(
            rng.integers(self.config.min_delay_days, self.config.max_delay_days + 1)
        )
        day = report_day + delay
        if true_disposition < 0:
            record = DispatchRecord(
                ticket_id=ticket_id,
                line_id=line_id,
                day=day,
                truck_roll=False,
                true_disposition=-1,
                recorded_disposition=-1,
                fixed=True,
            )
            self.records.append(record)
            return record

        remote = rng.random() < self.config.remote_fix_rate
        fixed = rng.random() >= self.config.failed_fix_rate
        recorded = (
            self.record_disposition(true_disposition, rng) if fixed else -1
        )
        record = DispatchRecord(
            ticket_id=ticket_id,
            line_id=line_id,
            day=day,
            truck_roll=not remote,
            true_disposition=int(true_disposition),
            recorded_disposition=recorded,
            fixed=fixed,
        )
        self.records.append(record)
        return record

    def resolve_group(
        self,
        group_kind: str,
        group_id: int,
        n_lines: int,
        report_day: int,
        found_fault: bool,
        rng: np.random.Generator,
    ) -> GroupDispatchRecord:
        """Send one crew to a shared plant element; append the record.

        Shared plant always needs a field visit (no remote fixes), with
        the same resolution delay and failed-fix risk as per-line truck
        rolls.  Callers clear the group fault when ``record.fixed``.
        """
        delay = int(
            rng.integers(self.config.min_delay_days, self.config.max_delay_days + 1)
        )
        fixed = found_fault and rng.random() >= self.config.failed_fix_rate
        record = GroupDispatchRecord(
            group_kind=group_kind,
            group_id=int(group_id),
            n_lines=int(n_lines),
            day=report_day + delay,
            truck_roll=True,
            found_fault=found_fault,
            fixed=fixed,
        )
        self.group_records.append(record)
        return record

    # ----- analysis views -------------------------------------------------

    def disposition_counts(self) -> np.ndarray:
        """Recorded-disposition histogram over the catalog."""
        counts = np.zeros(self._n_dispositions, dtype=int)
        for record in self.records:
            if record.recorded_disposition >= 0:
                counts[record.recorded_disposition] += 1
        return counts

    def location_counts(self) -> np.ndarray:
        """Recorded dispatches per major location (HN, F2, F1, DS)."""
        counts = np.zeros(4, dtype=int)
        for record in self.records:
            if record.recorded_disposition >= 0:
                counts[self._locations[record.recorded_disposition]] += 1
        return counts

    def summary(self) -> dict[str, float]:
        """Aggregate dispatch statistics."""
        n = len(self.records)
        if n == 0:
            summary = {"dispatches": 0, "truck_rolls": 0,
                       "no_trouble_found": 0, "failed_fixes": 0}
        else:
            summary = {
                "dispatches": n,
                "truck_rolls": sum(r.truck_roll for r in self.records),
                "no_trouble_found": sum(
                    r.true_disposition < 0 for r in self.records
                ),
                "failed_fixes": sum(not r.fixed for r in self.records),
            }
        if self.group_records:
            summary["group_dispatches"] = len(self.group_records)
            summary["group_lines_covered"] = sum(
                r.n_lines for r in self.group_records
            )
        return summary

    @staticmethod
    def disposition_name(index: int) -> str:
        """Human-readable name of a catalog disposition index."""
        if index < 0:
            return "no trouble found"
        return DISPOSITIONS[index].name


# ----- proactive dispatch lists (the NEVERMIND -> ATDS hand-off) ----------


@dataclass(frozen=True)
class DispatchList:
    """A capacity-bounded, ranked list of lines submitted to ATDS.

    This is the artefact the Saturday scoring run hands to the dispatch
    system (Section 3.2): the top-``capacity`` lines by ticket
    probability, best first.

    Attributes:
        week: prediction week the scores belong to (-1 if unknown).
        day: absolute day of the line test behind the scores (-1 if
            unknown).
        capacity: the requested ATDS capacity N.
        line_ids: ranked line ids, highest score first (length <= N).
        scores: the ranked lines' calibrated ticket probabilities.
        model_version: registry version of the scoring model, if served.
        attributions: optional per-line explanation payloads aligned with
            ``line_ids`` (exact top-K feature votes per dispatched line,
            as built by ``ScoringEngine.attribution_payloads``).
    """

    week: int
    day: int
    capacity: int
    line_ids: np.ndarray
    scores: np.ndarray
    model_version: str | None = None
    attributions: tuple[dict, ...] | None = None

    def __len__(self) -> int:
        return len(self.line_ids)

    def with_attributions(self, payloads) -> "DispatchList":
        """A copy of this list carrying per-line attribution payloads.

        ``payloads`` must align one-to-one with ``line_ids`` -- the
        explanation travels with the ranked entry it explains.
        """
        payloads = tuple(payloads)
        if len(payloads) != len(self.line_ids):
            raise ValueError(
                f"got {len(payloads)} attribution payloads for "
                f"{len(self.line_ids)} dispatched lines"
            )
        return dataclasses.replace(self, attributions=payloads)

    def to_dict(self) -> dict:
        """A JSON-ready representation (ids and scores as plain lists)."""
        payload = {
            "week": int(self.week),
            "day": int(self.day),
            "capacity": int(self.capacity),
            "model_version": self.model_version,
            "line_ids": [int(i) for i in self.line_ids],
            "scores": [float(s) for s in self.scores],
        }
        if self.attributions is not None:
            payload["attributions"] = [dict(a) for a in self.attributions]
        return payload


def build_dispatch_list(
    scores: np.ndarray,
    capacity: int,
    week: int = -1,
    day: int = -1,
    model_version: str | None = None,
) -> DispatchList:
    """Rank all lines by score and keep the top ``capacity``.

    Uses the same stable ordering as
    :meth:`~repro.core.predictor.TicketPredictor.predict_top`
    (``np.argsort(-scores, kind="stable")``), so a dispatch list built
    from identical scores names identical lines in identical order.
    """
    if capacity < 0:
        raise ValueError(f"capacity must be >= 0, got {capacity}")
    scores = np.asarray(scores, dtype=float)
    if scores.ndim != 1:
        raise ValueError("scores must be a 1-D per-line vector")
    order = np.argsort(-scores, kind="stable")[:capacity]
    return DispatchList(
        week=week,
        day=day,
        capacity=capacity,
        line_ids=order,
        scores=scores[order],
        model_version=model_version,
    )
