"""Trouble tickets and the ticket log.

Section 3.3: customer trouble tickets carry the reported problem, a coarse
category label assigned by the agent (customer-edge vs billing vs other),
and -- once a dispatch happens -- a disposition note from the field
technician.

The ticket *arrival-time* structure matters to the paper: tickets show a
clear weekly trend, peaking on Monday and bottoming out over the weekend,
which is why the Saturday line tests leave a quiet window for proactive
resolution (Section 3.3 and Fig. 8's urgency analysis).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "TicketCategory",
    "TicketSource",
    "Ticket",
    "IvrCall",
    "TicketLog",
    "DAY_OF_WEEK_WEIGHTS",
    "day_of_week",
]

#: Report-day distribution, Monday-indexed (0 = Monday ... 6 = Sunday).
#: Peaks Monday, troughs over the weekend, per Section 3.3.
DAY_OF_WEEK_WEIGHTS: np.ndarray = np.array(
    [0.24, 0.18, 0.16, 0.14, 0.13, 0.08, 0.07]
)


def day_of_week(day: int) -> int:
    """Monday-indexed weekday of an absolute simulation day.

    Day 0 of the simulation is a Monday; the weekly line test therefore
    lands on day index 5 (Saturday) of each week.
    """
    return int(day) % 7


class TicketCategory(enum.Enum):
    """Coarse agent-assigned category label."""

    CUSTOMER_EDGE = "customer_edge"
    BILLING = "billing"
    OTHER = "other"


class TicketSource(enum.Enum):
    """Whether a ticket arrived reactively or from the ticket predictor."""

    CUSTOMER = "customer"
    NEVERMIND = "nevermind"


@dataclass
class Ticket:
    """One trouble ticket.

    Attributes:
        ticket_id: sequential identifier.
        line_id: affected subscriber line.
        day: absolute day the ticket was opened.
        category: coarse label from the agent interview.
        source: reactive (customer) or proactive (NEVERMIND).
        fault_disposition: catalog index of the true underlying fault,
            -1 when there is none (billing tickets, false predictions).
        fault_onset_day: day the underlying fault appeared, -1 if none.
        resolved_day: day the dispatch closed the ticket, -1 while open.
        recorded_disposition: technician's (noisy) disposition code,
            -1 before resolution or when no trouble was found.
    """

    ticket_id: int
    line_id: int
    day: int
    category: TicketCategory
    source: TicketSource = TicketSource.CUSTOMER
    fault_disposition: int = -1
    fault_onset_day: int = -1
    resolved_day: int = -1
    recorded_disposition: int = -1

    @property
    def week(self) -> int:
        return self.day // 7


@dataclass(frozen=True)
class IvrCall:
    """A customer call absorbed by the interactive voice response system.

    During a known outage, callers from the affected area hear an
    automated announcement and no ticket is issued (Section 5.2) -- the
    paper's first source of unmatchable correct predictions.
    """

    line_id: int
    day: int
    dslam_id: int
    fault_disposition: int


@dataclass
class TicketLog:
    """Append-only log of tickets and IVR-absorbed calls."""

    tickets: list[Ticket] = field(default_factory=list)
    ivr_calls: list[IvrCall] = field(default_factory=list)
    _next_id: int = 0

    def open_ticket(
        self,
        line_id: int,
        day: int,
        category: TicketCategory,
        source: TicketSource = TicketSource.CUSTOMER,
        fault_disposition: int = -1,
        fault_onset_day: int = -1,
    ) -> Ticket:
        """Create, record and return a new ticket."""
        ticket = Ticket(
            ticket_id=self._next_id,
            line_id=int(line_id),
            day=int(day),
            category=category,
            source=source,
            fault_disposition=int(fault_disposition),
            fault_onset_day=int(fault_onset_day),
        )
        self._next_id += 1
        self.tickets.append(ticket)
        return ticket

    def record_ivr(self, line_id: int, day: int, dslam_id: int,
                   fault_disposition: int) -> None:
        """Record a call deflected by the IVR (no ticket issued)."""
        self.ivr_calls.append(
            IvrCall(int(line_id), int(day), int(dslam_id), int(fault_disposition))
        )

    def __len__(self) -> int:
        return len(self.tickets)

    # ----- analysis views -------------------------------------------------

    def edge_tickets(self) -> list[Ticket]:
        """Customer-edge tickets only (the paper's study population)."""
        return [t for t in self.tickets if t.category is TicketCategory.CUSTOMER_EDGE]

    def customer_edge_days(self) -> np.ndarray:
        """Sorted array of (line_id, day) for customer-reported edge tickets."""
        rows = [
            (t.line_id, t.day)
            for t in self.tickets
            if t.category is TicketCategory.CUSTOMER_EDGE
            and t.source is TicketSource.CUSTOMER
        ]
        if not rows:
            return np.empty((0, 2), dtype=int)
        out = np.array(rows, dtype=int)
        return out[np.lexsort((out[:, 1], out[:, 0]))]

    def first_edge_ticket_after(
        self, n_lines: int, day: int, horizon_days: int
    ) -> np.ndarray:
        """Days until each line's first edge ticket in (day, day+horizon].

        Returns an int array of length ``n_lines`` with the delay in days,
        or -1 when no ticket arrives within the horizon.  This implements
        ``NT(u, t)`` truncated at the horizon (Section 4.1).
        """
        delays = np.full(n_lines, -1, dtype=int)
        for t in self.tickets:
            if t.category is not TicketCategory.CUSTOMER_EDGE:
                continue
            if t.source is not TicketSource.CUSTOMER:
                continue
            if day < t.day <= day + horizon_days:
                delta = t.day - day
                if delays[t.line_id] < 0 or delta < delays[t.line_id]:
                    delays[t.line_id] = delta
        return delays

    def weekday_histogram(self) -> np.ndarray:
        """Ticket counts by Monday-indexed weekday (the Section-3.3 trend)."""
        counts = np.zeros(7, dtype=int)
        for t in self.tickets:
            if t.source is TicketSource.CUSTOMER:
                counts[day_of_week(t.day)] += 1
        return counts

    def last_ticket_day_before(self, n_lines: int, day: int) -> np.ndarray:
        """Most recent customer ticket day strictly before ``day`` per line.

        -1 where the line has no prior ticket.  Feeds the Table-3 "Ticket"
        customer feature (time since the most recent trouble ticket).
        """
        last = np.full(n_lines, -1, dtype=int)
        for t in self.tickets:
            if t.source is not TicketSource.CUSTOMER:
                continue
            if t.day < day and t.day > last[t.line_id]:
                last[t.line_id] = t.day
        return last
