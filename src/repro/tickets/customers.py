"""Customer behaviour: usage, tolerance and presence.

Three behavioural channels matter to the paper's analyses:

* **usage intensity** drives how quickly a customer notices a problem and
  how much traffic their line carries (the ``dncells``/``upcells``
  features and the BRAS byte counts);
* **report propensity** separates customers who call at the first glitch
  from those who tolerate intermittent problems for weeks (stretching the
  Fig.-8 prediction-to-ticket delay distribution);
* **presence** -- customers on vacation neither notice problems nor
  generate traffic, producing the paper's second incorrect-prediction
  scenario (Section 5.2, "customers not on site", 16.7 % of the sampled
  misses).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CustomerConfig", "CustomerBehavior", "build_customers"]


@dataclass(frozen=True)
class CustomerConfig:
    """Knobs of the customer-behaviour generator.

    Attributes:
        usage_alpha, usage_beta: Beta parameters of usage intensity.
        propensity_alpha, propensity_beta: Beta parameters of the
            report propensity.
        away_start_prob: weekly probability a customer starts a vacation.
        away_min_weeks, away_max_weeks: ordinary vacation length range
            (inclusive).
        long_away_prob: probability a vacation is instead a long absence
            (seasonal homes, work postings) of
            ``long_away_min_weeks..long_away_max_weeks`` -- the population
            behind the paper's Section-5.2 not-on-site analysis, where
            predicted problems never turn into tickets because the
            customer is away past the whole label horizon.
        long_away_min_weeks, long_away_max_weeks: long-absence range.
        seed: generator seed.
    """

    usage_alpha: float = 2.0
    usage_beta: float = 2.0
    propensity_alpha: float = 3.0
    propensity_beta: float = 1.6
    away_start_prob: float = 0.012
    away_min_weeks: int = 1
    away_max_weeks: int = 3
    long_away_prob: float = 0.18
    long_away_min_weeks: int = 5
    long_away_max_weeks: int = 10
    seed: int = 11


@dataclass
class CustomerBehavior:
    """Generated behaviour arrays, indexed by line id.

    Attributes:
        usage_intensity: in [0, 1]; scales traffic and noticing speed.
        report_propensity: in [0, 1]; probability multiplier on reporting
            a noticed problem.
        away: (n_lines, n_weeks) boolean; True when the customer is not on
            site that week.
    """

    usage_intensity: np.ndarray
    report_propensity: np.ndarray
    away: np.ndarray

    @property
    def n_lines(self) -> int:
        return len(self.usage_intensity)

    @property
    def n_weeks(self) -> int:
        return self.away.shape[1]

    def present(self, week: int) -> np.ndarray:
        """Boolean mask of customers on site during ``week``."""
        if not 0 <= week < self.n_weeks:
            raise IndexError(f"week {week} out of range [0, {self.n_weeks})")
        return ~self.away[:, week]


def build_customers(
    n_lines: int,
    n_weeks: int,
    config: CustomerConfig | None = None,
    rng: np.random.Generator | None = None,
) -> CustomerBehavior:
    """Generate a :class:`CustomerBehavior` for the population.

    Vacation episodes are sampled as a per-week start hazard followed by a
    uniform stay of ``away_min_weeks..away_max_weeks``.

    ``rng`` overrides the ``config.seed`` generator; the streaming netsim
    engine passes a per-block substream here so every line block draws
    independent behaviour instead of replaying one global stream.
    """
    config = config or CustomerConfig()
    if n_lines <= 0 or n_weeks <= 0:
        raise ValueError("n_lines and n_weeks must be positive")
    if config.away_min_weeks < 1 or config.away_max_weeks < config.away_min_weeks:
        raise ValueError("invalid vacation length range")
    if rng is None:
        rng = np.random.default_rng(config.seed)

    usage = rng.beta(config.usage_alpha, config.usage_beta, size=n_lines)
    propensity = rng.beta(
        config.propensity_alpha, config.propensity_beta, size=n_lines
    )

    away = np.zeros((n_lines, n_weeks), dtype=bool)
    starts = rng.random((n_lines, n_weeks)) < config.away_start_prob
    lengths = rng.integers(
        config.away_min_weeks, config.away_max_weeks + 1, size=(n_lines, n_weeks)
    )
    long_stay = rng.random((n_lines, n_weeks)) < config.long_away_prob
    long_lengths = rng.integers(
        config.long_away_min_weeks, config.long_away_max_weeks + 1,
        size=(n_lines, n_weeks),
    )
    lengths = np.where(long_stay, long_lengths, lengths)
    line_idx, week_idx = np.nonzero(starts)
    for line, week in zip(line_idx, week_idx):
        away[line, week: week + lengths[line, week]] = True

    return CustomerBehavior(
        usage_intensity=usage, report_propensity=propensity, away=away
    )
