"""DSLAM outages, their precursors, and IVR call deflection.

Outage problems (Section 2.2) hit the shared path between a BRAS and a
DSLAM and cut off many customers at once.  Two of their properties matter
for reproducing Table 5:

* **precursors** -- failing shared equipment degrades the lines it serves
  for a while before it dies, so the ticket predictor's top-N becomes
  geographically clustered at soon-to-fail DSLAMs.  This is the mechanism
  behind the paper's observed positive correlation between per-DSLAM
  prediction counts and future outage events.
* **IVR deflection** -- once an outage is known, callers from the affected
  area are answered by the interactive voice response system and *no
  ticket is issued*, turning genuinely-correct predictions into apparent
  false positives (row 1 of Table 5: 12.7 % -> 31.5 % of "incorrect"
  predictions explained as T grows from 1 to 4 weeks).

Outage events are pre-scheduled at simulation start so that the precursor
window can precede the event deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

__all__ = ["OutageConfig", "OutageEvent", "OutageSchedule"]


@dataclass(frozen=True)
class OutageConfig:
    """Outage process parameters.

    Attributes:
        weekly_rate: mean probability per DSLAM per week of an outage.
        propensity_shape: shape of the per-DSLAM gamma propensity
            multiplier (mean 1).  Small shapes make outages *recur* at a
            few lemon DSLAMs -- failing shared equipment keeps failing
            until it is replaced -- which is what lets per-DSLAM
            prediction counts predict outages at every Table-5 horizon.
            Large shapes approach a homogeneous Poisson process.
        min_days, max_days: outage duration range (inclusive).
        precursor_weeks: how many weeks before the outage the DSLAM's
            lines start degrading.
        precursor_noise_db: added per-line noise at full precursor
            strength (ramped linearly toward the outage).
        precursor_cv_rate: added code-violation rate at full strength.
        seed: generator seed.
    """

    weekly_rate: float = 0.004
    propensity_shape: float = 0.35
    min_days: int = 1
    max_days: int = 3
    precursor_weeks: int = 2
    precursor_noise_db: float = 5.0
    precursor_cv_rate: float = 10.0
    seed: int = 23


@dataclass(frozen=True)
class OutageEvent:
    """One DSLAM outage.

    Attributes:
        dslam_id: affected DSLAM.
        start_day: first day of the outage (absolute).
        end_day: last day of the outage (inclusive).
    """

    dslam_id: int
    start_day: int
    end_day: int

    def active_on(self, day: int) -> bool:
        return self.start_day <= day <= self.end_day


@dataclass
class OutageSchedule:
    """All outage events of a simulation run, with fast per-week lookups."""

    config: OutageConfig
    n_dslams: int
    n_weeks: int
    events: list[OutageEvent] = field(default_factory=list)

    @classmethod
    def generate(
        cls, n_dslams: int, n_weeks: int, config: OutageConfig | None = None
    ) -> "OutageSchedule":
        """Pre-schedule outages for the whole run."""
        config = config or OutageConfig()
        if n_dslams <= 0 or n_weeks <= 0:
            raise ValueError("n_dslams and n_weeks must be positive")
        if config.min_days < 1 or config.max_days < config.min_days:
            raise ValueError("invalid outage duration range")
        rng = np.random.default_rng(config.seed)
        events: list[OutageEvent] = []
        if config.propensity_shape <= 0:
            raise ValueError("propensity_shape must be positive")
        propensity = rng.gamma(
            config.propensity_shape, 1.0 / config.propensity_shape,
            size=n_dslams,
        )
        rates = np.clip(config.weekly_rate * propensity, 0.0, 0.5)
        hits = rng.random((n_dslams, n_weeks)) < rates[:, None]
        dslam_idx, week_idx = np.nonzero(hits)
        for dslam, week in zip(dslam_idx, week_idx):
            start = int(week) * 7 + int(rng.integers(0, 7))
            length = int(rng.integers(config.min_days, config.max_days + 1))
            events.append(
                OutageEvent(int(dslam), start, start + length - 1)
            )
        return cls(config=config, n_dslams=n_dslams, n_weeks=n_weeks, events=events)

    @classmethod
    def from_group_faults(
        cls,
        group_events: list,
        n_dslams: int,
        n_weeks: int,
        config: OutageConfig | None = None,
        outage_days: int = 2,
    ) -> "OutageSchedule":
        """Derive the tickets-side schedule from netsim group-fault events.

        Each DSLAM-level correlated degradation escalates into a real
        outage right after its window: the failing card finally dies and
        is replaced, taking the DSLAM down for ``outage_days``.  Using
        the *same* events on both sides keeps the netsim and tickets
        views of a correlated scenario one consistent sample instead of
        two independent draws (binder-level events stay below the DSLAM,
        so they never cut the shared path and derive no outage).

        The derived config zeroes ``precursor_weeks``: the group-fault
        degradation *is* the precursor, so the schedule's own ramp would
        double-count it.
        """
        config = config or OutageConfig()
        if n_dslams <= 0 or n_weeks <= 0:
            raise ValueError("n_dslams and n_weeks must be positive")
        if outage_days < 1:
            raise ValueError("outage_days must be positive")
        derived = replace(config, precursor_weeks=0)
        horizon = n_weeks * 7
        events: list[OutageEvent] = []
        for source in group_events:
            if getattr(source, "level", None) != "dslam":
                continue
            start = int(source.end_day) + 1
            if start >= horizon:
                continue
            events.append(
                OutageEvent(int(source.group_id), start, start + outage_days - 1)
            )
        return cls(config=derived, n_dslams=n_dslams, n_weeks=n_weeks,
                   events=events)

    def dslams_down_on(self, day: int) -> np.ndarray:
        """Boolean mask over DSLAMs that are in outage on ``day``."""
        down = np.zeros(self.n_dslams, dtype=bool)
        for event in self.events:
            if event.active_on(day):
                down[event.dslam_id] = True
        return down

    def outage_in_window(self, dslam_id: int, day: int, horizon_days: int) -> bool:
        """True when the DSLAM has an outage starting in (day, day+horizon].

        This is the paper's ``outage(d, t, T)`` indicator from the Table-5
        logistic regression.
        """
        for event in self.events:
            if event.dslam_id == dslam_id and day < event.start_day <= day + horizon_days:
                return True
        return False

    def outage_indicator(self, day: int, horizon_days: int) -> np.ndarray:
        """Vector of ``outage(d, day, horizon)`` over all DSLAMs."""
        indicator = np.zeros(self.n_dslams, dtype=bool)
        for event in self.events:
            if day < event.start_day <= day + horizon_days:
                indicator[event.dslam_id] = True
        return indicator

    def precursor_strength(self, week: int) -> np.ndarray:
        """Per-DSLAM degradation strength in [0, 1] during ``week``.

        Ramps linearly from 0 to 1 across the ``precursor_weeks`` window
        leading up to each outage; 0 elsewhere.
        """
        strength = np.zeros(self.n_dslams)
        window = self.config.precursor_weeks
        if window <= 0:
            return strength
        for event in self.events:
            outage_week = event.start_day // 7
            lead = outage_week - week
            if 0 < lead <= window:
                value = (window - lead + 1) / window
                strength[event.dslam_id] = max(strength[event.dslam_id], value)
        return strength
