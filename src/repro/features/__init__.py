"""Feature encoding and selection for the ticket predictor (Section 4).

* :mod:`repro.features.encoding` -- turns the sparse weekly measurement
  time-series plus customer context into the Table-3 feature families:
  basic, delta, time-series, profile, ticket, modem, and the derived
  quadratic and product features.
* :mod:`repro.features.selection` -- the paper's top-N average-precision
  greedy feature selection and the four Table-4 baselines (AUC, average
  precision, PCA, gain ratio).
"""

from repro.features.encoding import (
    EncoderConfig,
    FeatureSet,
    LineFeatureEncoder,
    product_feature,
)
from repro.features.selection import (
    SelectionResult,
    select_features_auc,
    select_features_average_precision,
    select_features_gain_ratio,
    select_features_pca,
    select_features_top_n_ap,
    single_feature_ap,
)

__all__ = [
    "EncoderConfig",
    "FeatureSet",
    "LineFeatureEncoder",
    "product_feature",
    "SelectionResult",
    "select_features_auc",
    "select_features_average_precision",
    "select_features_gain_ratio",
    "select_features_pca",
    "select_features_top_n_ap",
    "single_feature_ap",
]
