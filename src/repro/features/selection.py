"""Feature selection: the paper's top-N AP method and Table-4 baselines.

Section 4.3: with only ~20K of weekly ATDS capacity, what matters is not a
feature's *global* discriminative power but how much it helps the *top of
the ranking*.  The proposed method scores each candidate feature by
training a single-feature ticket predictor on a training window, ranking a
held-out window, and computing the top-N average precision AP(N).
Features are kept when their AP(N) clears a per-family threshold chosen
from the strongly bimodal score histograms (0.2 for history/customer and
quadratic features, 0.3 for products -- Fig. 4).

The comparison baselines (Table 4) rank features by:

* maximum AUC of the raw feature value;
* classic average precision of the raw feature value;
* PCA loading mass on the leading principal components;
* gain ratio (normalised information gain).

Performance: the selection sweep trains one tiny boosted model per
candidate column, which the paper runs over hundreds of candidates.
Rather than building a fresh :class:`~repro.ml.stumps.StumpSearch`
(argsort included) per candidate, the default path hands whole column
chunks to :mod:`repro.features.sweep`, which runs the boosting recurrence
for every column at once in the value-sorted domain (sort once per class,
prefix-sum round statistics, slice-wise weight updates).  Column chunks
are independent, so the sweep also fans out over
:func:`repro.parallel.parallel_map` (``REPRO_WORKERS``).  The final
tie-break + AP(N) scoring stage is likewise evaluated for all candidate
columns in one vectorised pass.  Pass ``batched=False`` for the original
per-column ``BStump().fit`` loop, kept as the exact reference: its
margins agree with the sweep to floating-point round-off and both paths
select identical feature sets (see ``tests/test_selection_batched.py``).
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass

import numpy as np

from repro.features.encoding import FeatureSet
from repro.features.sweep import hist_sweep_chunk_margins, sweep_chunk_margins
from repro.ml.binning import BinnedDataset
from repro.ml.boostexter import BStump, BStumpConfig, TRAIN_BACKENDS
from repro.ml.metrics import auc, average_precision, entropy, top_n_average_precision
from repro.ml.pca import PCA
from repro.obs.metrics import get_registry
from repro.obs.tracing import span
from repro.parallel import parallel_map

__all__ = [
    "SelectionResult",
    "single_feature_ap",
    "select_features_top_n_ap",
    "select_features_auc",
    "select_features_average_precision",
    "select_features_pca",
    "select_features_gain_ratio",
]

#: Continuous candidate columns are batched through the vectorised
#: single-feature booster in chunks of this many columns.  The chunk is
#: the parallel work unit and bounds the per-task scratch memory (the
#: sweep's sorted value and weight buffers are O(rows x chunk)).
_BATCH_CHUNK_COLUMNS = 32


@dataclass(frozen=True)
class SelectionResult:
    """Outcome of one feature-selection method.

    Attributes:
        method: selector name ("top_n_ap", "auc", "average_precision",
            "pca", "gain_ratio").
        scores: per-candidate score, aligned with the input feature set.
        selected: indices of the chosen features, best first.
    """

    method: str
    scores: np.ndarray
    selected: np.ndarray


def _impute_median(column: np.ndarray) -> np.ndarray:
    present = ~np.isnan(column)
    if not np.any(present):
        return np.zeros_like(column)
    filled = column.copy()
    filled[~present] = np.median(column[present])
    return filled


def _impute_median_columns(matrix: np.ndarray) -> np.ndarray:
    """Median-impute every column in one pass (fully-NaN columns -> 0).

    The batched form of :func:`_impute_median`: one ``nanmedian`` call
    computes all column medians, and a single ``where`` fills the gaps.
    """
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", category=RuntimeWarning)
        medians = np.nanmedian(matrix, axis=0)
    medians = np.where(np.isnan(medians), 0.0, medians)
    return np.where(np.isnan(matrix), medians[None, :], matrix)


def _eligible_columns(matrix: np.ndarray) -> np.ndarray:
    """Columns a single-feature stump can be grown on.

    A column is ineligible when it has no present value or when all its
    present values are equal (no split exists) -- such candidates score 0,
    mirroring the per-column guards of the original selection loop.
    """
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", category=RuntimeWarning)
        lo = np.nanmin(matrix, axis=0)
        hi = np.nanmax(matrix, axis=0)
    with np.errstate(invalid="ignore"):
        return hi > lo  # False for constant and for all-NaN (NaN compares False)


def _boost_columns_chunk(
    X_train_t: np.ndarray,
    y_signed: np.ndarray,
    X_test_t: np.ndarray,
    config: BStumpConfig,
) -> np.ndarray:
    """Boost every column of a chunk as an independent single-feature model.

    Delegates to :func:`repro.features.sweep.sweep_chunk_margins`, which
    runs the AdaBoost recurrence of :meth:`BStump.fit` for all columns at
    once in the value-sorted domain, and returns the (chunk, n_test)
    margin matrix of the resulting single-feature ensembles.  Early
    stopping (``early_stop_z``) and the degenerate-weight guard apply per
    column, exactly as the per-column ``BStump`` loop would.
    """
    return sweep_chunk_margins(
        X_train_t,
        y_signed,
        X_test_t,
        config.n_rounds,
        config.early_stop_z,
        config.missing_policy,
        config.max_split_points,
    )


def _fit_single_column_margin(
    train: FeatureSet,
    y_train: np.ndarray,
    test: FeatureSet,
    j: int,
    config: BStumpConfig,
) -> np.ndarray:
    """Margin of a per-column BStump on the test window (loop path)."""
    model = BStump(config).fit(
        train.matrix[:, [j]], y_train, categorical=train.categorical[[j]]
    )
    return model.decision_function(test.matrix[:, [j]])


def single_feature_ap(
    train: FeatureSet,
    y_train: np.ndarray,
    test: FeatureSet,
    y_test: np.ndarray,
    n: int,
    n_rounds: int = 4,
    batched: bool = True,
    workers: int | None = None,
    backend: str = "exact",
    binned: BinnedDataset | None = None,
) -> np.ndarray:
    """AP(N) of a single-feature BStump predictor, per candidate feature.

    This is the scoring core of the paper's selection method: *"we first
    construct a ticket predictor given each individual feature on a
    training dataset, and test the predictor on a separate test set.  We
    then compute AP(N) for each individual feature."*

    A one-feature stump ensemble is piecewise constant, so thousands of
    lines tie at the top margin and AP(N) would be decided by row order.
    Ties are therefore broken by the raw feature value, oriented to agree
    with the model (the within-tie ordering the stump family itself would
    choose with more thresholds).

    Args:
        train, y_train: selection training window.
        test, y_test: held-out window the AP(N) is computed on.
        n: the capacity N of AP(N).
        n_rounds: boosting rounds of each single-feature predictor.
        batched: vectorise the boosting rounds across continuous columns
            (default); ``False`` runs the original one-``BStump``-per-column
            loop, kept as the reference implementation.
        workers: parallel fan-out of the sweep; ``None`` reads
            ``REPRO_WORKERS`` (default serial).
        backend: "exact" runs the sorted-domain sweep, "hist" the
            histogram-binned one (see
            :class:`~repro.features.sweep.HistColumnSweep`), which scans
            the shared binning's edges instead of re-sorting every chunk.
            Batched continuous columns only; the categorical and loop
            paths are exact either way.
        binned: pre-binned ``train`` matrix for the hist backend.  Pass
            the binning the final training fit will reuse so a full
            select-then-train run quantises the matrix exactly once;
            ``None`` bins here on demand.
    """
    if train.n_features != test.n_features:
        raise ValueError("train and test feature sets must align")
    if backend not in TRAIN_BACKENDS:
        raise ValueError(
            f"backend must be one of {TRAIN_BACKENDS}, got {backend!r}"
        )
    y_train = np.asarray(y_train)
    y_test = np.asarray(y_test)
    n_features = train.n_features
    scores = np.zeros(n_features)
    if n_features == 0 or len(np.unique(y_train)) < 2:
        return scores
    eligible = _eligible_columns(train.matrix)
    config = BStumpConfig(n_rounds=n_rounds, calibrate=False)

    registry = get_registry()
    registry.counter(
        "repro_selection_candidates_total",
        "Candidate columns scored by the AP(N) selection sweep",
    ).inc(int(np.count_nonzero(eligible)))
    sweep_seconds = registry.histogram(
        "repro_selection_sweep_seconds",
        "Wall time of one full AP(N) selection sweep",
    )

    margins: dict[int, np.ndarray] = {}
    with span(
        "select.single_feature_ap",
        candidates=int(np.count_nonzero(eligible)),
        batched=batched,
    ), sweep_seconds.time(batched=str(batched).lower()):
        if batched:
            y_signed = BStump._canonical_labels(y_train)
            cont_cols = np.flatnonzero(eligible & ~train.categorical)
            chunks = [
                cont_cols[i : i + _BATCH_CHUNK_COLUMNS]
                for i in range(0, cont_cols.size, _BATCH_CHUNK_COLUMNS)
            ]
            if backend == "hist":
                if binned is None:
                    binned = BinnedDataset.from_matrix(
                        train.matrix, train.categorical
                    )
                chunk_fn = lambda cols: hist_sweep_chunk_margins(  # noqa: E731
                    binned.select(cols),
                    y_signed,
                    test.matrix.T[cols],
                    config.n_rounds,
                    config.early_stop_z,
                    config.missing_policy,
                )
            else:
                chunk_fn = lambda cols: _boost_columns_chunk(  # noqa: E731
                    train.matrix.T[cols], y_signed, test.matrix.T[cols], config
                )
            chunk_margins = parallel_map(
                chunk_fn,
                chunks,
                workers=workers,
                task_label="select.chunk",
            )
            for cols, chunk in zip(chunks, chunk_margins):
                for slot, j in enumerate(cols):
                    margins[int(j)] = chunk[slot]
            # Categorical candidates are few (binary basics); the per-column
            # loop is exact and cheap, fanned out over the fabric.
            cat_cols = [
                int(j) for j in np.flatnonzero(eligible & train.categorical)
            ]
            cat_margins = parallel_map(
                lambda j: _fit_single_column_margin(train, y_train, test, j, config),
                cat_cols,
                workers=workers,
                task_label="select.column",
            )
            margins.update(zip(cat_cols, cat_margins))
        else:
            loop_cols = [int(j) for j in np.flatnonzero(eligible)]
            loop_margins = parallel_map(
                lambda j: _fit_single_column_margin(train, y_train, test, j, config),
                loop_cols,
                workers=workers,
                task_label="select.column",
            )
            margins.update(zip(loop_cols, loop_margins))

        with span("select.ap_scoring"):
            return _scores_from_margins(
                margins, train, test, y_test, n, n_features
            )


def _scores_from_margins(
    margins: dict[int, np.ndarray],
    train: FeatureSet,
    test: FeatureSet,
    y_test: np.ndarray,
    n: int,
    n_features: int,
) -> np.ndarray:
    """Tie-break and AP(N)-score all candidate margins in one pass.

    Row-vectorised equivalent of calling :func:`_break_ties_by_value` and
    :func:`~repro.ml.metrics.top_n_average_precision` per column: each
    row's stable sort, cumulative sum and reduction visit the same values
    in the same order as the one-column calls, so scores match the scalar
    reference bit for bit.  (The tie-break orientation is computed with a
    different summation order than ``np.corrcoef``, but only its *sign*
    is used, which agrees except exactly at zero correlation.)
    """
    scores = np.zeros(n_features)
    if not margins:
        return scores
    cols = sorted(margins)
    stacked = np.stack([margins[j] for j in cols])  # (n_cands, n_test)
    cont_rows = np.flatnonzero([not train.categorical[j] for j in cols])
    if cont_rows.size:
        values = test.matrix.T[[cols[i] for i in cont_rows]]
        stacked[cont_rows] = _break_ties_by_value_rows(stacked[cont_rows], values)
    scores[cols] = _top_n_ap_rows(y_test, n, stacked)
    return scores


def _break_ties_by_value_rows(margins: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Row-vectorised :func:`_break_ties_by_value`.

    Args:
        margins: (n_cands, n_test) piecewise-constant margins.
        values: (n_cands, n_test) raw feature values, NaN for missing.
    """
    present = ~np.isnan(values)
    counts = present.sum(axis=1)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", category=RuntimeWarning)
        vmin = np.nanmin(values, axis=1)
        vmax = np.nanmax(values, axis=1)
    spread = vmax - vmin
    with np.errstate(invalid="ignore"):
        apply = (counts > 0) & (spread > 0)
    if not np.any(apply):
        return margins
    safe_spread = np.where(apply, spread, 1.0)
    z = values - vmin[:, None]
    z /= safe_spread[:, None]
    z[~present] = 0.0

    # Smallest gap between distinct margin levels: the positive diffs of
    # a sorted row are exactly the diffs of its unique values.
    diffs = np.diff(np.sort(margins, axis=1), axis=1)
    diffs[diffs <= 0] = np.inf
    finite_min = diffs.min(axis=1)
    gap = np.where(np.isfinite(finite_min), finite_min, 1.0)

    # Orientation: the sign of the margin/value correlation over present
    # rows (Pearson r as in the scalar reference; scaling cannot change
    # the sign).  Degenerate correlations fall back to +1.
    mask = present.astype(np.float64)
    filled = np.where(present, values, 0.0)
    safe_counts = np.maximum(counts, 1)
    m_mean = np.einsum("ij,ij->i", margins, mask) / safe_counts
    v_mean = filled.sum(axis=1) / safe_counts
    dm = margins - m_mean[:, None]
    dm *= mask
    dv = filled - v_mean[:, None]
    dv *= mask
    cov = np.einsum("ij,ij->i", dm, dv)
    var_m = np.einsum("ij,ij->i", dm, dm)
    var_v = np.einsum("ij,ij->i", dv, dv)
    with np.errstate(divide="ignore", invalid="ignore"):
        direction = cov / np.sqrt(var_m * var_v)
    direction = np.where(
        np.isfinite(direction) & (direction != 0), direction, 1.0
    )

    # Perturb in place: z becomes sign * z * (0.49 * gap).  The sign is
    # exactly +/-1, so folding it into the row scalar first flips bits
    # identically to the scalar reference's sign * z * (0.49 * gap).
    z *= (np.sign(direction) * (0.49 * gap))[:, None]
    z += margins
    return np.where(apply[:, None], z, margins)


def _top_n_ap_rows(y_test: np.ndarray, n: int, margins: np.ndarray) -> np.ndarray:
    """Row-vectorised :func:`~repro.ml.metrics.top_n_average_precision`.

    Only the top ``n`` of each ranking matter, so instead of a full
    stable argsort per row, a partition finds each row's rank-``n``
    boundary score and only the (boundary-tie-inclusive) candidate set is
    stably sorted.  Candidate indices are enumerated in ascending order,
    so the stable sub-sort breaks score ties by original index exactly
    like the full stable argsort would.
    """
    y_test = np.asarray(y_test)
    n_rows, width = margins.shape
    neg = -margins
    if n >= width:
        order = np.argsort(neg, axis=1, kind="stable")
        top = y_test[order]
    else:
        boundary = np.partition(neg, n - 1, axis=1)[:, n - 1]
        top = np.empty((n_rows, n), dtype=y_test.dtype)
        for k in range(n_rows):
            cand = np.flatnonzero(neg[k] <= boundary[k])
            sub = cand[np.argsort(neg[k, cand], kind="stable")][:n]
            top[k] = y_test[sub]
    hits = np.cumsum(top, axis=1)
    precisions = hits / np.arange(1, top.shape[1] + 1)
    return np.sum(precisions * top, axis=1) / n


def _break_ties_by_value(margin: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Perturb a piecewise-constant margin by an orientation-aware epsilon.

    The perturbation is small enough never to reorder distinct margin
    levels; within a level, rows are ordered by the feature value in the
    direction positively correlated with the margin.
    """
    present = ~np.isnan(values)
    if not np.any(present):
        return margin
    spread = float(np.ptp(values[present]))
    if spread <= 0:
        return margin
    z = np.zeros_like(values)
    z[present] = (values[present] - np.min(values[present])) / spread  # [0, 1]
    distinct = np.unique(margin)
    gap = np.min(np.diff(distinct)) if distinct.size > 1 else 1.0
    with np.errstate(invalid="ignore"):
        direction = np.corrcoef(margin[present], values[present])[0, 1]
    if not np.isfinite(direction) or direction == 0:
        direction = 1.0
    return margin + np.sign(direction) * z * (0.49 * gap)


def select_features_top_n_ap(
    train: FeatureSet,
    y_train: np.ndarray,
    test: FeatureSet,
    y_test: np.ndarray,
    n: int,
    thresholds: dict[str, float] | None = None,
    top_k: int | None = None,
    n_rounds: int = 12,
    batched: bool = True,
    workers: int | None = None,
    backend: str = "exact",
    binned: BinnedDataset | None = None,
) -> SelectionResult:
    """The paper's top-N average-precision feature selection.

    Args:
        train, y_train: selection training window.
        test, y_test: held-out window the AP(N) is computed on.
        n: the capacity N (20K in the paper, scaled to the population).
        thresholds: per-family AP threshold; defaults to the paper's
            {history/customer family: 0.2, quadratic: 0.2, product: 0.3}.
        top_k: alternatively keep the best k features regardless of
            family thresholds (used for the Fig-6 comparison at 50).
        n_rounds: boosting rounds of the single-feature predictors.
        batched, workers, backend, binned: see :func:`single_feature_ap`.
    """
    scores = single_feature_ap(
        train, y_train, test, y_test, n, n_rounds, batched=batched,
        workers=workers, backend=backend, binned=binned,
    )
    order = np.argsort(-scores, kind="stable")
    if top_k is not None:
        selected = order[:top_k]
    else:
        if thresholds is None:
            thresholds = {"quadratic": 0.2, "product": 0.3}
        default = thresholds.get("default", 0.2)
        keep = np.array(
            [
                scores[j] > thresholds.get(train.groups[j], default)
                for j in range(train.n_features)
            ]
        )
        selected = order[keep[order]]
    return SelectionResult(method="top_n_ap", scores=scores, selected=selected)


def _rank_by(method: str, scores: np.ndarray, top_k: int) -> SelectionResult:
    order = np.argsort(-scores, kind="stable")
    return SelectionResult(method=method, scores=scores, selected=order[:top_k])


def select_features_auc(
    features: FeatureSet, y: np.ndarray, top_k: int = 50,
    workers: int | None = None,
) -> SelectionResult:
    """Table-4 baseline: rank features by max AUC of the raw value."""
    y = np.asarray(y)
    filled = _impute_median_columns(features.matrix)

    def score(j: int) -> float:
        a = auc(y, filled[:, j])
        return max(a, 1.0 - a)

    scores = np.array(parallel_map(score, range(features.n_features), workers))
    return _rank_by("auc", scores, top_k)


def select_features_average_precision(
    features: FeatureSet, y: np.ndarray, top_k: int = 50,
    workers: int | None = None,
) -> SelectionResult:
    """Table-4 baseline: rank by average precision over all samples."""
    y = np.asarray(y)
    filled = _impute_median_columns(features.matrix)

    def score(j: int) -> float:
        col = filled[:, j]
        return max(average_precision(y, col), average_precision(y, -col))

    scores = np.array(parallel_map(score, range(features.n_features), workers))
    return _rank_by("average_precision", scores, top_k)


def select_features_pca(
    features: FeatureSet, y: np.ndarray, top_k: int = 50, n_components: int = 10
) -> SelectionResult:
    """Table-4 baseline: rank by loading mass on top principal components.

    ``y`` is accepted for interface symmetry but unused -- PCA selection is
    unsupervised, which is precisely why it underperforms in Fig. 6.
    """
    del y
    pca = PCA(n_components=n_components).fit(features.matrix)
    return _rank_by("pca", pca.feature_scores(), top_k)


def _gain_ratio_from_bins(
    bins: np.ndarray, label_idx: np.ndarray, n_labels: int, base_entropy: float
) -> float:
    """Gain ratio given precomputed per-row bin assignments.

    Reproduces :func:`repro.ml.metrics.gain_ratio` arithmetic from a
    bin/label contingency table instead of per-bin boolean masks: bins are
    visited in ascending order and the per-bin label distributions come
    from one joint ``bincount``.
    """
    n = bins.size
    shifted = bins + 1  # missing bin -1 -> row 0
    table = np.bincount(
        shifted * n_labels + label_idx,
        minlength=(int(shifted.max()) + 1) * n_labels,
    ).reshape(-1, n_labels)
    totals = table.sum(axis=1)
    conditional = 0.0
    split_entropy = 0.0
    for row in np.flatnonzero(totals):
        weight = totals[row] / n
        probs = table[row][table[row] > 0] / totals[row]
        conditional += weight * float(-np.sum(probs * np.log2(probs)))
        split_entropy -= weight * math.log2(weight)
    gain = base_entropy - conditional
    if split_entropy <= 0:
        return 0.0
    return float(gain / split_entropy)


def select_features_gain_ratio(
    features: FeatureSet, y: np.ndarray, top_k: int = 50, n_bins: int = 10,
    workers: int | None = None,
) -> SelectionResult:
    """Table-4 baseline: rank by gain ratio against the ticket label.

    Vectorised: the equal-frequency bin edges of *all* columns come from
    one batched ``nanquantile`` call and each column's conditional entropy
    from one contingency ``bincount``, instead of per-column quantile and
    per-bin mask passes.
    """
    y = np.asarray(y)
    matrix = features.matrix
    n, n_features = matrix.shape
    if n == 0 or n_features == 0:
        return _rank_by("gain_ratio", np.zeros(n_features), top_k)

    missing = np.isnan(matrix)
    quantile_points = np.linspace(0, 1, n_bins + 1)[1:-1]
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", category=RuntimeWarning)
        edges = np.nanquantile(matrix, quantile_points, axis=0)  # (n_bins-1, F)
    base = entropy(y)
    labels_unique, label_idx = np.unique(y, return_inverse=True)

    def score(j: int) -> float:
        present = ~missing[:, j]
        bins = np.full(n, -1, dtype=int)
        if np.any(present):
            bins[present] = np.searchsorted(
                edges[:, j], matrix[present, j], side="right"
            )
        return _gain_ratio_from_bins(bins, label_idx, labels_unique.size, base)

    scores = np.array(parallel_map(score, range(n_features), workers))
    return _rank_by("gain_ratio", scores, top_k)
