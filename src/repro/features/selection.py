"""Feature selection: the paper's top-N AP method and Table-4 baselines.

Section 4.3: with only ~20K of weekly ATDS capacity, what matters is not a
feature's *global* discriminative power but how much it helps the *top of
the ranking*.  The proposed method scores each candidate feature by
training a single-feature ticket predictor on a training window, ranking a
held-out window, and computing the top-N average precision AP(N).
Features are kept when their AP(N) clears a per-family threshold chosen
from the strongly bimodal score histograms (0.2 for history/customer and
quadratic features, 0.3 for products -- Fig. 4).

The comparison baselines (Table 4) rank features by:

* maximum AUC of the raw feature value;
* classic average precision of the raw feature value;
* PCA loading mass on the leading principal components;
* gain ratio (normalised information gain).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.features.encoding import FeatureSet
from repro.ml.boostexter import BStump, BStumpConfig
from repro.ml.metrics import auc, average_precision, gain_ratio, top_n_average_precision
from repro.ml.pca import PCA

__all__ = [
    "SelectionResult",
    "single_feature_ap",
    "select_features_top_n_ap",
    "select_features_auc",
    "select_features_average_precision",
    "select_features_pca",
    "select_features_gain_ratio",
]


@dataclass(frozen=True)
class SelectionResult:
    """Outcome of one feature-selection method.

    Attributes:
        method: selector name ("top_n_ap", "auc", "average_precision",
            "pca", "gain_ratio").
        scores: per-candidate score, aligned with the input feature set.
        selected: indices of the chosen features, best first.
    """

    method: str
    scores: np.ndarray
    selected: np.ndarray


def _impute_median(column: np.ndarray) -> np.ndarray:
    present = ~np.isnan(column)
    if not np.any(present):
        return np.zeros_like(column)
    filled = column.copy()
    filled[~present] = np.median(column[present])
    return filled


def single_feature_ap(
    train: FeatureSet,
    y_train: np.ndarray,
    test: FeatureSet,
    y_test: np.ndarray,
    n: int,
    n_rounds: int = 4,
) -> np.ndarray:
    """AP(N) of a single-feature BStump predictor, per candidate feature.

    This is the scoring core of the paper's selection method: *"we first
    construct a ticket predictor given each individual feature on a
    training dataset, and test the predictor on a separate test set.  We
    then compute AP(N) for each individual feature."*

    A one-feature stump ensemble is piecewise constant, so thousands of
    lines tie at the top margin and AP(N) would be decided by row order.
    Ties are therefore broken by the raw feature value, oriented to agree
    with the model (the within-tie ordering the stump family itself would
    choose with more thresholds).
    """
    if train.n_features != test.n_features:
        raise ValueError("train and test feature sets must align")
    y_train = np.asarray(y_train)
    y_test = np.asarray(y_test)
    scores = np.zeros(train.n_features)
    config = BStumpConfig(n_rounds=n_rounds, calibrate=False)
    for j in range(train.n_features):
        col_train = train.matrix[:, [j]]
        col_test = test.matrix[:, [j]]
        if np.all(np.isnan(col_train)) or len(np.unique(y_train)) < 2:
            scores[j] = 0.0
            continue
        # A constant (or fully missing) column cannot grow a stump.
        present = col_train[~np.isnan(col_train)]
        if present.size == 0 or np.all(present == present[0]):
            scores[j] = 0.0
            continue
        model = BStump(config).fit(
            col_train, y_train, categorical=train.categorical[[j]]
        )
        margin = model.decision_function(col_test)
        if not train.categorical[j]:
            margin = _break_ties_by_value(margin, col_test[:, 0])
        scores[j] = top_n_average_precision(y_test, n, margin)
    return scores


def _break_ties_by_value(margin: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Perturb a piecewise-constant margin by an orientation-aware epsilon.

    The perturbation is small enough never to reorder distinct margin
    levels; within a level, rows are ordered by the feature value in the
    direction positively correlated with the margin.
    """
    present = ~np.isnan(values)
    if not np.any(present):
        return margin
    spread = float(np.ptp(values[present]))
    if spread <= 0:
        return margin
    z = np.zeros_like(values)
    z[present] = (values[present] - np.min(values[present])) / spread  # [0, 1]
    distinct = np.unique(margin)
    gap = np.min(np.diff(distinct)) if distinct.size > 1 else 1.0
    with np.errstate(invalid="ignore"):
        direction = np.corrcoef(margin[present], values[present])[0, 1]
    if not np.isfinite(direction) or direction == 0:
        direction = 1.0
    return margin + np.sign(direction) * z * (0.49 * gap)


def select_features_top_n_ap(
    train: FeatureSet,
    y_train: np.ndarray,
    test: FeatureSet,
    y_test: np.ndarray,
    n: int,
    thresholds: dict[str, float] | None = None,
    top_k: int | None = None,
    n_rounds: int = 12,
) -> SelectionResult:
    """The paper's top-N average-precision feature selection.

    Args:
        train, y_train: selection training window.
        test, y_test: held-out window the AP(N) is computed on.
        n: the capacity N (20K in the paper, scaled to the population).
        thresholds: per-family AP threshold; defaults to the paper's
            {history/customer family: 0.2, quadratic: 0.2, product: 0.3}.
        top_k: alternatively keep the best k features regardless of
            family thresholds (used for the Fig-6 comparison at 50).
        n_rounds: boosting rounds of the single-feature predictors.
    """
    scores = single_feature_ap(train, y_train, test, y_test, n, n_rounds)
    order = np.argsort(-scores, kind="stable")
    if top_k is not None:
        selected = order[:top_k]
    else:
        if thresholds is None:
            thresholds = {"quadratic": 0.2, "product": 0.3}
        default = thresholds.get("default", 0.2)
        keep = np.array(
            [
                scores[j] > thresholds.get(train.groups[j], default)
                for j in range(train.n_features)
            ]
        )
        selected = order[keep[order]]
    return SelectionResult(method="top_n_ap", scores=scores, selected=selected)


def _rank_by(method: str, scores: np.ndarray, top_k: int) -> SelectionResult:
    order = np.argsort(-scores, kind="stable")
    return SelectionResult(method=method, scores=scores, selected=order[:top_k])


def select_features_auc(
    features: FeatureSet, y: np.ndarray, top_k: int = 50
) -> SelectionResult:
    """Table-4 baseline: rank features by max AUC of the raw value."""
    y = np.asarray(y)
    scores = np.zeros(features.n_features)
    for j in range(features.n_features):
        col = _impute_median(features.matrix[:, j])
        a = auc(y, col)
        scores[j] = max(a, 1.0 - a)
    return _rank_by("auc", scores, top_k)


def select_features_average_precision(
    features: FeatureSet, y: np.ndarray, top_k: int = 50
) -> SelectionResult:
    """Table-4 baseline: rank by average precision over all samples."""
    y = np.asarray(y)
    scores = np.zeros(features.n_features)
    for j in range(features.n_features):
        col = _impute_median(features.matrix[:, j])
        scores[j] = max(average_precision(y, col), average_precision(y, -col))
    return _rank_by("average_precision", scores, top_k)


def select_features_pca(
    features: FeatureSet, y: np.ndarray, top_k: int = 50, n_components: int = 10
) -> SelectionResult:
    """Table-4 baseline: rank by loading mass on top principal components.

    ``y`` is accepted for interface symmetry but unused -- PCA selection is
    unsupervised, which is precisely why it underperforms in Fig. 6.
    """
    del y
    pca = PCA(n_components=n_components).fit(features.matrix)
    return _rank_by("pca", pca.feature_scores(), top_k)


def select_features_gain_ratio(
    features: FeatureSet, y: np.ndarray, top_k: int = 50
) -> SelectionResult:
    """Table-4 baseline: rank by gain ratio against the ticket label."""
    y = np.asarray(y)
    scores = np.array(
        [gain_ratio(features.matrix[:, j], y) for j in range(features.n_features)]
    )
    return _rank_by("gain_ratio", scores, top_k)
