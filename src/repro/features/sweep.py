"""Vectorised single-feature boosting sweep for feature selection.

:func:`repro.features.selection.single_feature_ap` trains one tiny BStump
per candidate column.  Run naively that is hundreds of independent
AdaBoost fits, each paying a fresh argsort, per-round cumulative sums, an
``exp`` over the example weights, and per-round scoring passes.  This
module fits a whole *chunk* of columns at once, and it exploits a
property unique to the single-feature setting: once the rows of each
class are sorted by feature value, the original row order never matters
again.  The initial AdaBoost weights are uniform, every stump maps a
*contiguous* run of the sorted order to the same score, and the final
model is just its stump parameters -- so the whole boosting recurrence
can run in the sorted domain:

* **Sort once, per class.**  Each column's positive-class and
  negative-class values are sorted with :func:`np.sort` (SIMD-vectorised,
  roughly an order of magnitude faster than ``argsort``; NaNs sort last).
  Candidate thresholds are the same order statistics over the full column
  that :class:`~repro.ml.stumps.StumpSearch` uses (an even grid over the
  sorted order), and each candidate split's position inside either class
  block is precomputed with one tiny ``searchsorted`` per column.
* **Round statistics from two cumulative sums.**  With weights stored in
  sorted order, the below-split weight mass per class is a prefix sum
  read at the precomputed boundary positions: two ``cumsum`` passes and a
  small gather replace the per-column masking, multiplying and summing of
  the loop path.  At every *valid* split the value-boundary mass matches
  the rank-based mass exactly, because a valid split strictly separates
  the neighbouring order statistics.
* **Scalar normalisation.**  AdaBoost's per-round weight normalisation is
  tracked as one scalar per column and folded into the (tiny) boundary
  statistics instead of dividing the full weight matrix every round.
* **Slice-wise weight updates.**  A stump multiplies the weights of a
  contiguous sorted run by a single constant (``exp(-y * h)`` takes one
  value per class per stump region), so the update is three contiguous
  slice multiplies per class block -- no ``exp`` over the matrix, no
  comparison pass, no scatter.

The sweep reproduces the per-column loop's model *selection behaviour* --
same candidate splits, same Z-criterion, same early stopping, and test
margins through an exact vectorised replica of the compiled-ensemble
scorer's bucket-table fold -- but its weight statistics are accumulated
in a different order, so margins agree with the loop path to
floating-point round-off rather than bit for bit.  ``tests/test_selection_batched.py`` asserts the property that
matters downstream: both paths select identical feature sets.  The sweep
itself is deterministic and bit-reproducible across chunk widths and
worker counts, because every column's arithmetic is independent.
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np

from repro.ml.binning import BinnedDataset
from repro.ml.stumps import _EPS_SCALE

__all__ = [
    "ColumnSweep",
    "SweepRound",
    "sweep_chunk_margins",
    "HistColumnSweep",
    "hist_sweep_chunk_margins",
]


class SweepRound(NamedTuple):
    """One boosting round's result, one entry per chunk column."""

    threshold: np.ndarray
    s_lo: np.ndarray
    s_hi: np.ndarray
    s_miss: np.ndarray
    z: np.ndarray
    raw_total: np.ndarray
    #: number of class values strictly below the chosen split
    below_pos: np.ndarray
    below_neg: np.ndarray
    #: True where below_pos/below_neg provably match ``x >= threshold``
    boundary_exact: np.ndarray


def _split_grid(n: int, max_split_points: int) -> np.ndarray:
    """Candidate split positions 0..n (same grid as StumpSearch)."""
    if n + 1 > max_split_points:
        return np.unique(np.round(np.linspace(0, n, max_split_points)).astype(int))
    return np.arange(n + 1)


def _class_block(X_t: np.ndarray, mask: np.ndarray):
    """Sorted per-column values of one class, with present counts."""
    block = X_t[:, mask]  # fancy indexing copies; safe to sort in place
    block.sort(axis=1)    # NaNs sort last per column
    counts = block.shape[1] - np.isnan(block).sum(axis=1)
    return block, counts


class ColumnSweep:
    """Per-column boosted-stump sweep over a chunk of continuous columns.

    Owns the per-class sorted weight matrices; callers drive it with
    alternating :meth:`round` / :meth:`update` calls.

    Args:
        X_t: (n_cols, n_rows) training chunk, one row per candidate
            column (transposed for contiguous per-column access).
        y_signed: labels in {-1, +1}.
        missing_policy: "score" or "abstain", as in StumpSearch.
        max_split_points: candidate-threshold cap per column per round.
    """

    def __init__(
        self,
        X_t: np.ndarray,
        y_signed: np.ndarray,
        missing_policy: str = "score",
        max_split_points: int = 256,
    ):
        C, n = X_t.shape
        self.n = n
        self.n_cols = C
        self.eps = _EPS_SCALE / n
        self.missing_policy = missing_policy

        grid = _split_grid(n, max_split_points)
        M = grid.size
        self.grid = grid
        inner = grid[1:-1]  # interior split positions, length M - 2

        # Per-class sorted value blocks.  Original row order is never
        # needed: initial weights are uniform, stumps act on contiguous
        # sorted runs, and the fitted model is only its parameters.
        pos = y_signed > 0
        self._x_pos, self._pc_pos = _class_block(X_t, pos)
        self._x_neg, self._pc_neg = _class_block(X_t, ~pos)
        present_counts = self._pc_pos + self._pc_neg
        self.present_counts = present_counts

        # Order statistics around each interior split, from one SIMD sort
        # of the full column (NaNs last, ties in value order -- identical
        # to the values an argsort-based search would see).
        v_sorted = np.sort(X_t, axis=1)
        if inner.size:
            self._v_lo = v_sorted[:, inner - 1]  # value just below the split
            self._v_hi = v_sorted[:, inner]      # value at the split position
        else:
            self._v_lo = np.empty((C, 0))
            self._v_hi = np.empty((C, 0))

        # A split is valid when it lies within the present values and the
        # neighbouring order statistics differ (ties cannot be split).
        # The boundary split at the present count is valid with an
        # infinite threshold, exactly as in the rank-based search.
        pc = present_counts[:, None]
        with np.errstate(invalid="ignore"):
            separated = self._v_lo < self._v_hi
        valid = np.ones((C, M), dtype=bool)
        valid[:, 1:-1] = (inner[None, :] <= pc) & (
            separated | (inner[None, :] == pc)
        )
        valid[:, -1] = grid[-1] <= present_counts
        self._valid = valid

        # Boundary tables: for every candidate split, how many values of
        # each class lie strictly below it.  At a valid interior split
        # the below-split rows are exactly those with value < the order
        # statistic at the split (strict separation), so a 'left'
        # searchsorted against the positive block gives the exact
        # rank-based count -- and because a valid split at position
        # ``grid[j]`` has exactly ``grid[j]`` values below it in total,
        # the negative-class count is the complement.  Entries at invalid
        # splits are arbitrary (only clipped in-bounds) and masked.
        self._below_pos = self._boundary_table(self._x_pos, self._pc_pos)
        below_neg = np.clip(
            grid[None, :] - self._below_pos, 0, self._x_neg.shape[1]
        )
        below_neg[:, 0] = 0
        below_neg[:, -1] = self._pc_neg
        self._below_neg = below_neg

        # Weights live in the per-class sorted domain, kept raw
        # (unnormalised); normalisation is a per-column scalar.  The
        # prefix-sum buffers are reused across rounds.
        self._w_pos = np.full(self._x_pos.shape, 1.0 / n)
        self._w_neg = np.full(self._x_neg.shape, 1.0 / n)
        self._cum_pos = np.zeros((C, self._x_pos.shape[1] + 1))
        self._cum_neg = np.zeros((C, self._x_neg.shape[1] + 1))

    def _boundary_table(self, block: np.ndarray, block_pc: np.ndarray) -> np.ndarray:
        C, M = self.n_cols, self.grid.size
        table = np.zeros((C, M), dtype=np.intp)
        if self._v_hi.shape[1]:
            for k in range(C):
                table[k, 1:-1] = np.searchsorted(
                    block[k], self._v_hi[k], side="left"
                )
        table[:, -1] = block_pc
        return table

    def _missing_terms(self, wp_miss, wn_miss):
        if self.missing_policy == "score":
            z_miss = 2.0 * np.sqrt(np.clip(wp_miss * wn_miss, 0.0, None))
            s_miss = 0.5 * np.log((wp_miss + self.eps) / (wn_miss + self.eps))
            s_miss = np.where(wp_miss + wn_miss > 0, s_miss, 0.0)
        else:
            z_miss = wp_miss + wn_miss
            s_miss = np.zeros_like(wp_miss)
        return z_miss, s_miss

    def round(self, normalize: bool):
        """Best stump per column under the current weights.

        Args:
            normalize: fold each column's raw weight total into the
                statistics (True from round 1 on, mirroring the loop's
                per-round weight normalisation; round 0 uses the raw
                uniform weights).

        Returns:
            A :class:`SweepRound` with per-column stump parameters, the
            best Z, the raw weight mass (used for the degenerate-weight
            guard and the scalar normalisation) and the chosen split's
            per-class slice boundaries for :meth:`update`.
        """
        C = self.n_cols
        cum_pos = self._cum_pos
        cum_neg = self._cum_neg
        np.cumsum(self._w_pos, axis=1, out=cum_pos[:, 1:])
        np.cumsum(self._w_neg, axis=1, out=cum_neg[:, 1:])
        tot_pos = cum_pos[:, -1]
        tot_neg = cum_neg[:, -1]
        raw_total = tot_pos + tot_neg

        if normalize:
            with np.errstate(divide="ignore", invalid="ignore"):
                inv = np.where(raw_total > 0, 1.0 / raw_total, 1.0)
        else:
            inv = np.ones(C)

        rows = np.arange(C)
        present_pos = cum_pos[rows, self._pc_pos]
        present_neg = cum_neg[rows, self._pc_neg]
        wp_miss = np.clip((tot_pos - present_pos) * inv, 0.0, None)
        wn_miss = np.clip((tot_neg - present_neg) * inv, 0.0, None)
        z_miss, s_miss = self._missing_terms(wp_miss, wn_miss)

        wp_lo = np.take_along_axis(cum_pos, self._below_pos, axis=1) * inv[:, None]
        wn_lo = np.take_along_axis(cum_neg, self._below_neg, axis=1) * inv[:, None]
        wp_hi = (present_pos * inv)[:, None] - wp_lo
        wn_hi = (present_neg * inv)[:, None] - wn_lo
        np.clip(wp_lo, 0.0, None, out=wp_lo)
        np.clip(wn_lo, 0.0, None, out=wn_lo)
        np.clip(wp_hi, 0.0, None, out=wp_hi)
        np.clip(wn_hi, 0.0, None, out=wn_hi)

        z = 2.0 * (np.sqrt(wp_lo * wn_lo) + np.sqrt(wp_hi * wn_hi)) + z_miss[:, None]
        z[~self._valid] = np.inf

        best = np.argmin(z, axis=1)
        split = self.grid[best]
        eps = self.eps
        s_lo = 0.5 * np.log(
            (wp_lo[rows, best] + eps) / (wn_lo[rows, best] + eps)
        )
        s_hi = 0.5 * np.log(
            (wp_hi[rows, best] + eps) / (wn_hi[rows, best] + eps)
        )
        if self._v_hi.shape[1]:
            inner_idx = np.clip(best - 1, 0, self._v_hi.shape[1] - 1)
            v_lo_best = self._v_lo[rows, inner_idx]
            v_hi_best = self._v_hi[rows, inner_idx]
            midpoint = 0.5 * (v_lo_best + v_hi_best)
        else:
            v_lo_best = np.zeros(C)
            v_hi_best = np.zeros(C)
            midpoint = np.zeros(C)
        interior = (best > 0) & (split < self.present_counts)
        threshold = np.where(
            best == 0,
            -np.inf,
            np.where(interior, midpoint, np.inf),
        )
        # The update's slice boundary is the number of class values below
        # the *actual* threshold (Stump.predict tests ``x >= threshold``).
        # When the midpoint lies strictly between the split's order
        # statistics -- the overwhelmingly common case -- that count is
        # exactly the precomputed rank-based boundary; otherwise (midpoint
        # rounding onto a data value, or an infinite threshold over
        # infinite data) update() re-locates it by value.
        with np.errstate(invalid="ignore"):
            boundary_exact = (best == 0) | (
                interior & (midpoint > v_lo_best) & (midpoint <= v_hi_best)
            )
        return SweepRound(
            threshold=threshold,
            s_lo=s_lo,
            s_hi=s_hi,
            s_miss=s_miss,
            z=z[rows, best],
            raw_total=raw_total,
            below_pos=self._below_pos[rows, best],
            below_neg=self._below_neg[rows, best],
            boundary_exact=boundary_exact,
        )

    def update(self, rr: "SweepRound", active: np.ndarray) -> None:
        """Apply ``w *= exp(-y * h)`` for each active column's stump.

        The stump's prediction is constant on three contiguous runs of
        each sorted class block (below threshold, at-or-above threshold,
        missing), so the update is six slice multiplies per column.  The
        run boundary comes from the round's precomputed rank counts when
        they provably match ``Stump.predict``'s ``x >= threshold`` test,
        and is re-located by value otherwise.
        """
        for k in np.flatnonzero(active):
            thr = rr.threshold[k]
            f_lo, f_hi, f_miss = np.exp(
                [-rr.s_lo[k], -rr.s_hi[k], -rr.s_miss[k]]
            )
            g_lo, g_hi, g_miss = np.exp([rr.s_lo[k], rr.s_hi[k], rr.s_miss[k]])
            exact = bool(rr.boundary_exact[k])
            b = (
                int(rr.below_pos[k])
                if exact
                else int(np.searchsorted(self._x_pos[k], thr, side="left"))
            )
            pc = int(self._pc_pos[k])
            w = self._w_pos[k]
            w[:b] *= f_lo
            w[b:pc] *= f_hi
            w[pc:] *= f_miss
            b = (
                int(rr.below_neg[k])
                if exact
                else int(np.searchsorted(self._x_neg[k], thr, side="left"))
            )
            pc = int(self._pc_neg[k])
            w = self._w_neg[k]
            w[:b] *= g_lo
            w[b:pc] *= g_hi
            w[pc:] *= g_miss


def sweep_chunk_margins(
    X_train_t: np.ndarray,
    y_signed: np.ndarray,
    X_test_t: np.ndarray,
    n_rounds: int,
    early_stop_z: float,
    missing_policy: str = "score",
    max_split_points: int = 256,
) -> np.ndarray:
    """Margins of per-column boosted single-feature models on the test rows.

    Runs the AdaBoost recurrence of ``BStump.fit`` for every column of the
    chunk at once and evaluates each column's ensemble on ``X_test_t``
    with :func:`_fold_test_margins`, an exact cross-column replica of the
    compiled-ensemble scorer's arithmetic -- identical stump choices yield
    identical margins.  Early stopping and the degenerate-weight guard
    apply per column.

    Args:
        X_train_t: (n_cols, n_train) training chunk, transposed.
        y_signed: training labels in {-1, +1}.
        X_test_t: (n_cols, n_test) test chunk, transposed.
        n_rounds: boosting rounds per column.
        early_stop_z: stop a column once its best Z reaches this value
            (after the first round).
        missing_policy, max_split_points: stump-search settings.

    Returns:
        (n_cols, n_test) margin matrix, one row per column.
    """
    C = X_train_t.shape[0]
    sweep = ColumnSweep(X_train_t, y_signed, missing_policy, max_split_points)

    active = np.ones(C, dtype=bool)
    rounds: list[SweepRound] = []
    n_stumps = np.zeros(C, dtype=np.intp)
    for t in range(n_rounds):
        rr = sweep.round(normalize=t > 0)
        # The loop path checks the weight total after each update and
        # stops before the next stump; the raw total of this round's
        # statistics is that same quantity, one round later.
        if t > 0:
            with np.errstate(invalid="ignore"):
                active &= np.isfinite(rr.raw_total) & (rr.raw_total > 0)
            active &= rr.z < early_stop_z
        if not np.any(active):
            break
        rounds.append(rr)
        n_stumps[active] += 1
        if t == n_rounds - 1:
            break
        sweep.update(rr, active)

    return _fold_test_margins(rounds, n_stumps, X_test_t)


class HistColumnSweep:
    """Histogram-domain sweep over a chunk of pre-binned columns.

    The single-feature boosting recurrence collapses even further on a
    binned column than on a sorted one: with uniform initial weights, a
    row's weight depends only on its (bin, class) trajectory -- every row
    of the same class in the same bin always receives the same stump
    output -- so the whole AdaBoost state is one weight scalar per
    (column, bin, class).  Rounds then cost O(bins) per column with *no*
    per-row work at all: the per-class bin weights start as
    ``count / n``, candidate statistics are prefix sums over at most
    ``max_bins`` bins, and the weight update is an elementwise multiply
    of the (columns, bins) weight tables.

    Candidate thresholds are the shared :class:`BinnedDataset`'s bin
    edges, so a select-then-train run scans the same split set during
    selection as the hist training backend does afterwards -- and bins the
    feature matrix exactly once for both.
    """

    def __init__(
        self,
        binned: BinnedDataset,
        y_signed: np.ndarray,
        missing_policy: str = "score",
    ):
        """Args:
            binned: pre-binned chunk; every column must be continuous.
            y_signed: labels in {-1, +1}.
            missing_policy: "score" or "abstain", as in StumpSearch.
        """
        if bool(np.any(binned.categorical)):
            raise ValueError("HistColumnSweep handles continuous columns only")
        C = binned.n_features
        n = binned.n_rows
        self.n = n
        self.n_cols = C
        self.eps = _EPS_SCALE / n
        self.missing_policy = missing_policy
        self.binned = binned

        nvb = binned.n_value_bins.astype(np.int64)
        W = int(nvb.max()) + 1  # value bins + missing bin
        self._nvb = nvb
        self._W = W
        self._rows = np.arange(C)
        # Candidate boundary k (split below bin k) is valid for 0..nvb[c].
        self._invalid = np.arange(W)[None, :] > nvb[:, None]

        pos = y_signed > 0
        counts_pos = np.zeros((C, W))
        counts_neg = np.zeros((C, W))
        for c in range(C):
            counts_pos[c] = np.bincount(binned.codes[c][pos], minlength=W)
            counts_neg[c] = np.bincount(binned.codes[c][~pos], minlength=W)
        # Raw (unnormalised) per-bin class weights; normalisation is a
        # per-column scalar, as in ColumnSweep.
        self._w_pos = counts_pos / n
        self._w_neg = counts_neg / n

    def round(self, normalize: bool) -> SweepRound:
        """Best stump per column under the current per-bin weights.

        Mirrors :meth:`ColumnSweep.round` semantics (same normalisation
        folding, same missing-block terms, same first-lowest-boundary
        tie-break) with boundary statistics read off per-bin prefix sums.
        """
        C, W = self.n_cols, self._W
        rows = self._rows
        nvb = self._nvb
        wp = self._w_pos
        wn = self._w_neg

        wp_miss_raw = wp[rows, nvb]
        wn_miss_raw = wn[rows, nvb]
        # Prefix mass strictly below each candidate boundary, value bins
        # only (the missing bin sits at nvb[c] and is masked per column).
        value_mask = ~self._invalid.copy()
        value_mask[rows, nvb] = False
        wp_lo = np.zeros((C, W))
        wn_lo = np.zeros((C, W))
        np.cumsum(np.where(value_mask, wp, 0.0)[:, :-1], axis=1, out=wp_lo[:, 1:])
        np.cumsum(np.where(value_mask, wn, 0.0)[:, :-1], axis=1, out=wn_lo[:, 1:])
        present_pos = wp_lo[rows, nvb]
        present_neg = wn_lo[rows, nvb]
        raw_total = present_pos + present_neg + wp_miss_raw + wn_miss_raw

        if normalize:
            with np.errstate(divide="ignore", invalid="ignore"):
                inv = np.where(raw_total > 0, 1.0 / raw_total, 1.0)
        else:
            inv = np.ones(C)

        wp_miss = np.clip(wp_miss_raw * inv, 0.0, None)
        wn_miss = np.clip(wn_miss_raw * inv, 0.0, None)
        z_miss, s_miss = self._missing_terms(wp_miss, wn_miss)

        wp_lo *= inv[:, None]
        wn_lo *= inv[:, None]
        wp_hi = np.clip((present_pos * inv)[:, None] - wp_lo, 0.0, None)
        wn_hi = np.clip((present_neg * inv)[:, None] - wn_lo, 0.0, None)

        z = 2.0 * (np.sqrt(wp_lo * wn_lo) + np.sqrt(wp_hi * wn_hi)) + z_miss[:, None]
        z[self._invalid] = np.inf

        best = np.argmin(z, axis=1)
        eps = self.eps
        s_lo = 0.5 * np.log((wp_lo[rows, best] + eps) / (wn_lo[rows, best] + eps))
        s_hi = 0.5 * np.log((wp_hi[rows, best] + eps) / (wn_hi[rows, best] + eps))
        threshold = np.empty(C)
        for c in range(C):
            k = int(best[c])
            if k == 0:
                threshold[c] = -np.inf
            elif k >= int(nvb[c]):
                threshold[c] = np.inf
            else:
                threshold[c] = float(self.binned.edges[c][k - 1])
        # Bin membership and the stump test are the same ``x >= edge``
        # comparison, so the per-bin boundary always matches the
        # threshold; below_pos/below_neg are unused by the hist update.
        return SweepRound(
            threshold=threshold,
            s_lo=s_lo,
            s_hi=s_hi,
            s_miss=s_miss,
            z=z[rows, best],
            raw_total=raw_total,
            below_pos=best,
            below_neg=best,
            boundary_exact=np.ones(C, dtype=bool),
        )

    def _missing_terms(self, wp_miss, wn_miss):
        if self.missing_policy == "score":
            z_miss = 2.0 * np.sqrt(np.clip(wp_miss * wn_miss, 0.0, None))
            s_miss = 0.5 * np.log((wp_miss + self.eps) / (wn_miss + self.eps))
            s_miss = np.where(wp_miss + wn_miss > 0, s_miss, 0.0)
        else:
            z_miss = wp_miss + wn_miss
            s_miss = np.zeros_like(wp_miss)
        return z_miss, s_miss

    def update(self, rr: SweepRound, active: np.ndarray) -> None:
        """Apply ``w *= exp(-y * h)`` on the per-bin weight tables.

        The stump output is constant per bin, so the update is one
        ``exp`` over the (columns, bins) score table and two elementwise
        multiplies -- no row-domain work.
        """
        C, W = self.n_cols, self._W
        rows = self._rows
        below = np.arange(W)[None, :] < rr.below_pos[:, None]
        scores = np.where(below, rr.s_lo[:, None], rr.s_hi[:, None])
        scores[rows, self._nvb] = rr.s_miss
        scores[~active] = 0.0
        factor = np.exp(-scores)
        self._w_pos *= factor
        self._w_neg /= factor


def hist_sweep_chunk_margins(
    binned: BinnedDataset,
    y_signed: np.ndarray,
    X_test_t: np.ndarray,
    n_rounds: int,
    early_stop_z: float,
    missing_policy: str = "score",
) -> np.ndarray:
    """Hist-backend margins of per-column single-feature models.

    The binned counterpart of :func:`sweep_chunk_margins`: same boosting
    recurrence, early stopping and degenerate-weight guard, with round
    statistics taken from per-bin weights instead of sorted prefix sums,
    and test margins through the same :func:`_fold_test_margins` replica
    of the compiled scorer.

    Args:
        binned: pre-binned training chunk (continuous columns only),
            column-aligned with ``X_test_t``.
        y_signed: training labels in {-1, +1}.
        X_test_t: (n_cols, n_test) raw test chunk, transposed.
        n_rounds: boosting rounds per column.
        early_stop_z: stop a column once its best Z reaches this value
            (after the first round).
        missing_policy: stump-search missing policy.

    Returns:
        (n_cols, n_test) margin matrix, one row per column.
    """
    C = binned.n_features
    sweep = HistColumnSweep(binned, y_signed, missing_policy)

    active = np.ones(C, dtype=bool)
    rounds: list[SweepRound] = []
    n_stumps = np.zeros(C, dtype=np.intp)
    for t in range(n_rounds):
        rr = sweep.round(normalize=t > 0)
        if t > 0:
            with np.errstate(invalid="ignore"):
                active &= np.isfinite(rr.raw_total) & (rr.raw_total > 0)
            active &= rr.z < early_stop_z
        if not np.any(active):
            break
        rounds.append(rr)
        n_stumps[active] += 1
        if t == n_rounds - 1:
            break
        sweep.update(rr, active)

    return _fold_test_margins(rounds, n_stumps, X_test_t)


def _fold_test_margins(
    rounds: list[SweepRound],
    n_stumps: np.ndarray,
    X_test_t: np.ndarray,
) -> np.ndarray:
    """Per-column ensemble margins, bit-identical to the compiled scorer.

    Replays :func:`repro.ml.ensemble_scoring.compile_stumps` /
    ``decision_function`` across all chunk columns at once: stable-sort
    each column's thresholds, accumulate the (n_stumps + 1)-bucket score
    table stump by stump in round order (the same left-fold the compiled
    path uses, so the floating-point sums match bit for bit), then bucket
    every test value by counting thresholds at or below it -- exactly
    ``searchsorted(keys, col, side="right")`` -- and gather.  Missing
    values take the round-order sum of the miss scores.

    The active-column mask in :func:`sweep_chunk_margins` only ever
    shrinks, so a column with ``n_stumps[k] == T`` holds the first ``T``
    rounds; columns are grouped by stump count and folded group-wise.
    """
    C, n_test = X_test_t.shape
    margins = np.zeros((C, n_test))
    if not rounds:
        return margins
    thr_all = np.stack([rr.threshold for rr in rounds], axis=1)
    lo_all = np.stack([rr.s_lo for rr in rounds], axis=1)
    hi_all = np.stack([rr.s_hi for rr in rounds], axis=1)
    miss_all = np.stack([rr.s_miss for rr in rounds], axis=1)
    for T in np.unique(n_stumps):
        T = int(T)
        if T == 0:
            continue
        cols = np.flatnonzero(n_stumps == T)
        thr = thr_all[cols, :T]
        s_lo = lo_all[cols, :T]
        s_hi = hi_all[cols, :T]
        order = np.argsort(thr, axis=1, kind="stable")
        rank = np.empty_like(order)
        np.put_along_axis(rank, order, np.arange(T)[None, :], axis=1)
        buckets = np.arange(T + 1)
        table = np.zeros((cols.size, T + 1))
        miss = np.zeros(cols.size)
        for t in range(T):
            table += np.where(
                buckets[None, :] > rank[:, t, None],
                s_hi[:, t, None],
                s_lo[:, t, None],
            )
            miss += miss_all[cols, t]
        keys = np.take_along_axis(thr, order, axis=1)
        values = X_test_t[cols]
        idx = np.zeros(values.shape, dtype=np.intp)
        with np.errstate(invalid="ignore"):
            for t in range(T):
                idx += values >= keys[:, t, None]
        contrib = np.take_along_axis(table, idx, axis=1)
        margins[cols] = np.where(np.isnan(values), miss[:, None], contrib)
    return margins
