"""The operators' manual escalation rules (Section 3.3).

Before NEVERMIND, customer agents and technicians used hand-written rules
over the same line features:

* *"an agent will escalate the customer ticket to ATDS if either the
  current bit rate is lower than the minimum bit rate indicated by the
  profile, or the relative capacity is greater than 92 %"*;
* *"an estimated loop length greater than 15,000 ft often indicates that
  the current customer profile is not supported by the DSL line"*.

This module encodes those rules as a scoring baseline.  The paper's whole
argument is that such rules are hard to scale ("due to the high
dimensionality of the feature space and unknown/latent relationships ...
manually deriving accurate inference rules is very difficult"), so the
learned predictor should beat this score at ranking future tickets --
which the test suite verifies.
"""

from __future__ import annotations

import numpy as np

from repro.measurement.records import feature_index
from repro.netsim.population import Population
from repro.netsim.profiles import PROFILES

__all__ = [
    "RELATIVE_CAPACITY_ESCALATION",
    "LOOP_LENGTH_DOWNGRADE_FT",
    "manual_rule_flags",
    "manual_rule_score",
]

#: The 92 % relative-capacity escalation threshold (Section 3.3).
RELATIVE_CAPACITY_ESCALATION = 0.92

#: The 15,000 ft loop-length rule of thumb (Section 3.3).
LOOP_LENGTH_DOWNGRADE_FT = 15_000.0


def manual_rule_flags(
    week_matrix: np.ndarray, population: Population
) -> dict[str, np.ndarray]:
    """Evaluate each manual rule on one week's measurements.

    Args:
        week_matrix: (n_lines, 25) Table-2 feature matrix.
        population: subscriber base (for per-line profile minima).

    Returns:
        Dict of named boolean arrays; missing records evaluate False
        (agents cannot apply a rule to a line they cannot see).
    """
    week_matrix = np.asarray(week_matrix, dtype=float)
    n = week_matrix.shape[0]
    if n != population.n_lines:
        raise ValueError("measurement matrix and population size differ")

    min_down = np.array([p.min_down_kbps for p in PROFILES])[population.profile_idx]
    min_up = np.array([p.min_up_kbps for p in PROFILES])[population.profile_idx]

    dnbr = week_matrix[:, feature_index("dnbr")]
    upbr = week_matrix[:, feature_index("upbr")]
    relcap = week_matrix[:, feature_index("dnrelcap")]
    loop_ft = week_matrix[:, feature_index("looplength")]
    state = week_matrix[:, feature_index("state")]

    with np.errstate(invalid="ignore"):
        return {
            "below_min_rate": np.nan_to_num(
                (dnbr < min_down) | (upbr < min_up), nan=False
            ).astype(bool),
            "high_relative_capacity": np.nan_to_num(
                relcap > RELATIVE_CAPACITY_ESCALATION, nan=False
            ).astype(bool),
            "long_loop": np.nan_to_num(
                loop_ft > LOOP_LENGTH_DOWNGRADE_FT, nan=False
            ).astype(bool),
            "modem_unreachable": state == 0.0,
        }


def manual_rule_score(
    week_matrix: np.ndarray, population: Population
) -> np.ndarray:
    """A coarse manual-rule ranking score: how many rules fire per line.

    An expert triage desk effectively ranks by rule-hit count (a line
    violating both the rate and capacity rules looks worse than one
    violating either).  Ties are broad -- that is precisely the
    expressiveness ceiling the paper's learned model breaks through.
    """
    flags = manual_rule_flags(week_matrix, population)
    return np.sum(np.stack(list(flags.values())), axis=0).astype(float)
