"""Table-3 feature encoding.

The weekly line tests give at most 52 records per line per year -- far too
coarse for classic time-series pattern mining.  Section 4.2's answer is to
*encode* each line's measurement history at prediction time ``t`` into a
fixed vector of feature families:

==============  ==========================================================
family          definition (Table 3)
==============  ==========================================================
basic           the current week's 25 line features, ``l_iK``
delta           change vs the previous week, ``l_iK - l_i(K-1)``
timeseries      standardised deviation from the long-term history,
                ``(l_iK - mean(l_i)) / std(l_i)``
profile         basic features divided by the expectation from the
                subscriber's service profile
ticket          days since the customer's most recent trouble ticket
modem           fraction of history weeks the modem was off during the test
quadratic       squares of every history/customer feature
product         pairwise products of history/customer features
==============  ==========================================================

Missing records (modem off) propagate as NaN so that the stump learner's
abstention semantics apply; categorical basics (state / bt / crosstalk)
are already binary so the paper's m-way expansion is the identity here.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

import numpy as np

from repro.measurement.records import (
    CATEGORICAL_FEATURES,
    FEATURE_NAMES,
    MeasurementStore,
    feature_index,
)
from repro.netsim.population import Population
from repro.netsim.profiles import PROFILES
from repro.tickets.ticketing import TicketLog

__all__ = ["EncoderConfig", "FeatureSet", "LineFeatureEncoder", "product_feature"]

#: Basic features with a profile-defined expectation (Table-3 "Profile").
_PROFILE_FEATURES: tuple[str, ...] = (
    "dnbr", "upbr", "dnnmr", "upnmr", "dnrelcap", "uprelcap"
)

#: Cap (days) on the "time since last ticket" feature for ticket-free lines.
_NO_TICKET_CAP_DAYS = 365.0


@dataclass(frozen=True)
class EncoderConfig:
    """Feature-encoding knobs.

    Attributes:
        history_weeks: how far back the time-series statistics look.
        min_history_records: minimum present records needed before the
            time-series deviation is defined (else NaN).
        include_quadratic: emit squared derived features.
        include_products: emit pairwise-product derived features for the
            given base-feature index pairs (see
            :meth:`LineFeatureEncoder.encode`).
    """

    history_weeks: int = 26
    min_history_records: int = 3
    include_quadratic: bool = False
    include_products: bool = False


@dataclass
class FeatureSet:
    """An encoded feature matrix with aligned metadata.

    Attributes:
        matrix: (n_lines, n_features) float array, NaN = missing.
        names: feature names, e.g. ``"delta:dnbr"`` or
            ``"prod:dnnmr*looplength"``.
        groups: Table-3 family of each column (``basic``, ``delta``,
            ``timeseries``, ``profile``, ``ticket``, ``modem``,
            ``quadratic``, ``product``).
        categorical: stump-learner categorical mask per column.
    """

    matrix: np.ndarray
    names: list[str]
    groups: list[str]
    categorical: np.ndarray

    @property
    def n_features(self) -> int:
        return self.matrix.shape[1]

    def column(self, name: str) -> np.ndarray:
        """A single feature column by name."""
        try:
            idx = self.names.index(name)
        except ValueError:
            raise KeyError(f"unknown feature {name!r}") from None
        return self.matrix[:, idx]

    def subset(self, indices: np.ndarray | list[int]) -> "FeatureSet":
        """A new FeatureSet holding only the given columns."""
        indices = np.asarray(indices, dtype=int)
        return FeatureSet(
            matrix=self.matrix[:, indices],
            names=[self.names[i] for i in indices],
            groups=[self.groups[i] for i in indices],
            categorical=self.categorical[indices],
        )

    def hstack(self, other: "FeatureSet") -> "FeatureSet":
        """Column-wise concatenation of two feature sets."""
        if other.matrix.shape[0] != self.matrix.shape[0]:
            raise ValueError("feature sets cover different populations")
        return FeatureSet(
            matrix=np.hstack([self.matrix, other.matrix]),
            names=self.names + other.names,
            groups=self.groups + other.groups,
            categorical=np.concatenate([self.categorical, other.categorical]),
        )


def product_feature(matrix: np.ndarray, i: int, j: int) -> np.ndarray:
    """The product column ``matrix[:, i] * matrix[:, j]`` (NaN propagates)."""
    return matrix[:, i] * matrix[:, j]


@dataclass
class LineFeatureEncoder:
    """Encodes measurement history into Table-3 features at a given week."""

    config: EncoderConfig = field(default_factory=EncoderConfig)

    def encode(
        self,
        measurements: MeasurementStore,
        week: int,
        population: Population,
        ticket_log: TicketLog | None = None,
        product_pairs: list[tuple[int, int]] | None = None,
    ) -> FeatureSet:
        """Encode all lines at prediction week ``week``.

        Args:
            measurements: the weekly measurement store.
            week: index of the most recent campaign, ``t_K`` in the paper;
                must already be recorded.
            population: static subscriber data (profiles).
            ticket_log: ticket history for the "ticket" feature; omit to
                encode a 0-history cold start.
            product_pairs: index pairs (into the *history+customer* part
                of the output, i.e. everything before the derived block)
                whose products to emit when
                ``config.include_products`` is True; None means all pairs.

        Returns:
            A :class:`FeatureSet` over all lines.
        """
        cfg = self.config
        if week not in measurements.filled_weeks:
            raise ValueError(f"week {week} has no recorded campaign")
        n = measurements.n_lines
        current = np.asarray(measurements.week_matrix(week), dtype=float)

        names: list[str] = []
        groups: list[str] = []
        categorical: list[bool] = []
        blocks: list[np.ndarray] = []

        # --- basic -------------------------------------------------------
        blocks.append(current)
        for fname in FEATURE_NAMES:
            names.append(f"basic:{fname}")
            groups.append("basic")
            categorical.append(fname in CATEGORICAL_FEATURES)

        # --- delta -------------------------------------------------------
        if week >= 1 and (week - 1) in measurements.filled_weeks:
            previous = np.asarray(measurements.week_matrix(week - 1), dtype=float)
            delta = current - previous
        else:
            delta = np.full_like(current, np.nan)
        blocks.append(delta)
        for fname in FEATURE_NAMES:
            names.append(f"delta:{fname}")
            groups.append("delta")
            categorical.append(False)

        # --- time-series ---------------------------------------------------
        blocks.append(self._timeseries_block(measurements, week, current))
        for fname in FEATURE_NAMES:
            names.append(f"ts:{fname}")
            groups.append("timeseries")
            categorical.append(False)

        # --- profile -------------------------------------------------------
        profile_block = self._profile_block(current, population)
        blocks.append(profile_block)
        for fname in _PROFILE_FEATURES:
            names.append(f"profile:{fname}")
            groups.append("profile")
            categorical.append(False)

        # --- ticket --------------------------------------------------------
        pred_day = int(measurements.saturday_day[week])
        if ticket_log is not None:
            last_day = ticket_log.last_ticket_day_before(n, pred_day)
            since = np.where(
                last_day >= 0, pred_day - last_day, _NO_TICKET_CAP_DAYS
            ).astype(float)
        else:
            since = np.full(n, _NO_TICKET_CAP_DAYS)
        blocks.append(since[:, None])
        names.append("ticket:days_since_last")
        groups.append("ticket")
        categorical.append(False)

        # --- modem ---------------------------------------------------------
        off_frac = measurements.modem_off_fraction(upto_week=week + 1)
        blocks.append(off_frac[:, None])
        names.append("modem:off_fraction")
        groups.append("modem")
        categorical.append(False)

        matrix = np.hstack(blocks)
        base_count = matrix.shape[1]

        # --- derived: quadratic ---------------------------------------------
        if cfg.include_quadratic:
            quad = matrix**2
            matrix = np.hstack([matrix, quad])
            for k in range(base_count):
                names.append(f"quad:{names[k]}")
                groups.append("quadratic")
                categorical.append(False)

        # --- derived: product -----------------------------------------------
        if cfg.include_products:
            if product_pairs is None:
                product_pairs = [
                    (i, j) for i in range(base_count) for j in range(i + 1, base_count)
                ]
            cols = np.empty((n, len(product_pairs)))
            for slot, (i, j) in enumerate(product_pairs):
                if not (0 <= i < base_count and 0 <= j < base_count):
                    raise IndexError(f"product pair ({i}, {j}) out of base range")
                cols[:, slot] = matrix[:, i] * matrix[:, j]
                names.append(f"prod:{names[i]}*{names[j]}")
                groups.append("product")
                categorical.append(False)
            matrix = np.hstack([matrix, cols])

        return FeatureSet(
            matrix=matrix,
            names=names,
            groups=groups,
            categorical=np.asarray(categorical, dtype=bool),
        )

    def base_feature_count(self) -> int:
        """Number of history+customer columns before any derived block."""
        return 3 * len(FEATURE_NAMES) + len(_PROFILE_FEATURES) + 2

    def _timeseries_block(
        self, measurements: MeasurementStore, week: int, current: np.ndarray
    ) -> np.ndarray:
        cfg = self.config
        history = measurements.filled_weeks
        history = history[(history < week) & (history >= week - cfg.history_weeks)]
        if history.size == 0:
            return np.full_like(current, np.nan)
        series = np.asarray(measurements.data[:, history, :], dtype=float)
        counts = np.sum(~np.isnan(series), axis=1)
        with np.errstate(invalid="ignore"), warnings.catch_warnings():
            warnings.simplefilter("ignore", category=RuntimeWarning)
            mean = np.nanmean(series, axis=1)
            std = np.nanstd(series, axis=1)
        enough = counts >= cfg.min_history_records
        std = np.where(std > 1e-9, std, np.nan)
        deviation = (current - mean) / std
        deviation[~enough] = np.nan
        return deviation

    def _profile_block(self, current: np.ndarray, population: Population) -> np.ndarray:
        expectations = self._profile_expectations(population)
        cols = np.empty((current.shape[0], len(_PROFILE_FEATURES)))
        for slot, fname in enumerate(_PROFILE_FEATURES):
            expected = expectations[:, slot]
            with np.errstate(divide="ignore", invalid="ignore"):
                cols[:, slot] = current[:, feature_index(fname)] / expected
        return cols

    @staticmethod
    def _profile_expectations(population: Population) -> np.ndarray:
        """(n_lines, len(_PROFILE_FEATURES)) expected values per line."""
        per_profile = np.array(
            [
                [
                    p.down_kbps,
                    p.up_kbps,
                    p.target_noise_margin_db,
                    p.target_noise_margin_db,
                    p.expected_relative_capacity,
                    p.expected_relative_capacity,
                ]
                for p in PROFILES
            ]
        )
        return per_profile[population.profile_idx]
