"""Command-line interface: ``python -m repro <command>``.

Three subcommands mirror how an operator would poke at the system:

* ``simulate`` -- run the plant simulator and print a world summary
  (tickets, outages, dispatch mix, weekly seasonality);
* ``predict`` -- train the ticket predictor on a simulated world and
  report accuracy at the ATDS capacity plus the urgency CDF;
* ``locate`` -- train the three trouble-locator models and report the
  Section-6.3 rank metrics;
* ``export`` -- write the simulated data sources as CSV extracts
  (measurements, tickets, dispatches, subscribers).

All commands are seeded, run at laptop scale by default, and accept
``--scenario`` to pick a plant preset (suburban/urban/rural/storm_season/
outage_prone); flags scale them up.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The ``repro`` argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="NEVERMIND (CoNEXT 2010) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--lines", type=int, default=5000,
                        help="number of simulated DSL lines")
    common.add_argument("--weeks", type=int, default=22,
                        help="simulated horizon in weeks")
    common.add_argument("--seed", type=int, default=101, help="master seed")
    common.add_argument("--fault-scale", type=float, default=3.0,
                        help="multiplier on catalog fault onset rates "
                             "(ignored with --scenario)")
    common.add_argument("--scenario", default=None,
                        help="plant preset (see repro.netsim.scenarios)")

    sub.add_parser("simulate", parents=[common],
                   help="run the plant and print a world summary")

    predict = sub.add_parser("predict", parents=[common],
                             help="train and evaluate the ticket predictor")
    predict.add_argument("--capacity", type=int, default=None,
                         help="ATDS capacity N (default: 2%% of lines)")
    predict.add_argument("--rounds", type=int, default=200,
                         help="boosting rounds of the final model")

    locate = sub.add_parser("locate", parents=[common],
                            help="train and evaluate the trouble locator")
    locate.add_argument("--rounds", type=int, default=80,
                        help="boosting rounds per one-vs-rest model")

    export = sub.add_parser("export", parents=[common],
                            help="simulate and write CSV extracts")
    export.add_argument("--out", default="extracts",
                        help="output directory for the CSV files")
    return parser


def _simulate(args: argparse.Namespace):
    from repro import DslSimulator, PopulationConfig, SimulationConfig

    if args.scenario:
        from repro.netsim.scenarios import scenario

        config = scenario(args.scenario, n_lines=args.lines,
                          n_weeks=args.weeks, seed=args.seed)
    else:
        config = SimulationConfig(
            n_weeks=args.weeks,
            population=PopulationConfig(n_lines=args.lines, seed=args.seed),
            fault_rate_scale=args.fault_scale,
            seed=args.seed,
        )
    return DslSimulator(config).run()


def _cmd_simulate(args: argparse.Namespace) -> int:
    result = _simulate(args)
    edge = result.ticket_log.edge_tickets()
    hist = result.ticket_log.weekday_histogram()
    days = ("Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun")
    print(f"simulated {args.lines} lines x {args.weeks} weeks "
          f"({result.population.topology.n_dslams} DSLAMs, "
          f"{result.population.topology.n_brases} BRAS)")
    print(f"  plant faults        : {len(result.fault_events)}")
    print(f"  customer-edge tickets: {len(edge)}")
    print(f"  IVR-absorbed calls  : {len(result.ticket_log.ivr_calls)}")
    print(f"  DSLAM outages       : {len(result.outages.events)}")
    print(f"  dispatch summary    : {result.dispatcher.summary()}")
    print("  tickets by weekday  : "
          + ", ".join(f"{d}={c}" for d, c in zip(days, hist)))
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    from repro import (
        PredictorConfig,
        TicketPredictor,
        evaluate_predictions,
        paper_style_split,
        urgency_cdf,
    )

    result = _simulate(args)
    capacity = args.capacity or max(20, args.lines // 50)
    history = max(2, args.weeks - 11)
    split = paper_style_split(args.weeks, history=history, train=3,
                              selection=2, test=2)
    predictor = TicketPredictor(
        PredictorConfig(capacity=capacity, train_rounds=args.rounds)
    ).fit(result, split)
    outcomes = [
        evaluate_predictions(result, predictor.rank_week(result, week), week)
        for week in split.test_weeks
    ]
    base_rate = float(np.mean([o.hits.mean() for o in outcomes]))
    accuracy = float(np.mean([o.accuracy_at(capacity) for o in outcomes]))
    cdf = urgency_cdf(outcomes, capacity, max_days=28)
    print(f"capacity N={capacity}: accuracy {accuracy:.3f} "
          f"(base rate {base_rate:.4f}, lift {accuracy / max(base_rate, 1e-9):.1f}x)")
    print(f"predicted tickets arriving within 14 days: {cdf[14]:.0%}")
    print(f"selected features: {len(predictor.feature_names)}")
    return 0


def _cmd_locate(args: argparse.Namespace) -> int:
    from repro import (
        CombinedLocator,
        ExperienceModel,
        FlatLocator,
        LocatorConfig,
        build_locator_dataset,
        ranks_of_truth,
        tests_to_locate,
    )

    result = _simulate(args)
    horizon = args.weeks * 7
    cut = int(horizon * 0.6)
    train = build_locator_dataset(result, 30, cut)
    test = build_locator_dataset(result, cut + 1, horizon)
    config = LocatorConfig(n_rounds=args.rounds)
    X = test.features.matrix
    print(f"{train.n_examples} training dispatches, {test.n_examples} test")
    for name, model in (
        ("basic", ExperienceModel(config)),
        ("flat", FlatLocator(config)),
        ("combined", CombinedLocator(config)),
    ):
        ranks = ranks_of_truth(model.fit(train).predict_proba(X),
                               test.disposition)
        print(f"  {name:>9}: median tests {tests_to_locate(ranks):>2}, "
              f"mean rank {ranks.mean():.1f}")
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.data.export import export_all

    result = _simulate(args)
    counts = export_all(result, args.out)
    print(f"wrote CSV extracts to {args.out}/:")
    for name, rows in counts.items():
        print(f"  {name}.csv: {rows} rows")
    return 0


_COMMANDS = {
    "simulate": _cmd_simulate,
    "predict": _cmd_predict,
    "locate": _cmd_locate,
    "export": _cmd_export,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
