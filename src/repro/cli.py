"""Command-line interface: ``python -m repro <command>``.

Three subcommands mirror how an operator would poke at the system:

* ``simulate`` -- run the plant simulator and print a world summary
  (tickets, outages, dispatch mix, weekly seasonality);
* ``predict`` -- train the ticket predictor on a simulated world and
  report accuracy at the ATDS capacity plus the urgency CDF;
* ``locate`` -- train the three trouble-locator models and report the
  Section-6.3 rank metrics;
* ``export`` -- write the simulated data sources as CSV extracts
  (measurements, tickets, dispatches, subscribers);
* ``snapshot`` -- simulate and persist the weekly campaigns into a
  line-week store (optionally training + publishing a model bundle);
* ``serve`` -- run the scoring service over a store and registry, or
  ``--smoke`` for an end-to-end in-process self-test;
* ``obs`` -- observability tooling: ``obs report`` runs an instrumented
  proactive loop (or reads a saved telemetry JSON) and renders the
  per-stage timing and quality breakdown;
* ``lifecycle`` -- continuous training: ``lifecycle run`` drives the
  proactive loop under the lifecycle controller (scheduled retrains,
  shadow champion--challenger gating, auto-rollback) and ``lifecycle
  status`` renders the signed decision log of a previous run;
  ``--smoke`` runs the CI loop with one forced promotion and one forced
  rollback;
* ``triage`` -- plant-level triage: cluster one week's anomalous lines
  by shared DSLAM/binder, classify upstream vs in-home, and compare
  precision-at-capacity with and without dispatch suppression;
  ``--smoke`` asserts the acceptance bar on a small correlated plant;
* ``explain`` -- serve one line-week's two-stage diagnosis report:
  exact per-feature attribution of the served margin, plant context,
  and the templated technician next steps; ``--smoke`` asserts report
  well-formedness, bit-identical attribution parity, full disposition-
  template coverage, and score-cache behaviour across a reload;
* ``scale`` -- the paper-scale streaming weekly cycle: chunked netsim
  generation appended incrementally into an out-of-core line-week
  store, then a streaming Table-3 encode -- peak memory stays bounded
  by the chunk size, never the full measurement cube; ``--smoke``
  asserts the streaming invariants (chunked == monolithic generation,
  chunk appends byte-identical to whole-week appends, out-of-core
  encode equal to dense, multi-worker scores equal to single-worker).

All commands are seeded, run at laptop scale by default, and accept
``--scenario`` to pick a plant preset (suburban/urban/rural/storm_season/
outage_prone); flags scale them up.  ``--verbose`` (or
``REPRO_LOG_LEVEL``) turns on the key=value structured logs and
``REPRO_TRACE=1`` enables span tracing everywhere.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The ``repro`` argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="NEVERMIND (CoNEXT 2010) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--lines", type=int, default=5000,
                        help="number of simulated DSL lines")
    common.add_argument("--weeks", type=int, default=22,
                        help="simulated horizon in weeks")
    common.add_argument("--seed", type=int, default=101, help="master seed")
    common.add_argument("--fault-scale", type=float, default=3.0,
                        help="multiplier on catalog fault onset rates "
                             "(ignored with --scenario)")
    common.add_argument("--scenario", default=None,
                        help="plant preset (see repro.netsim.scenarios)")
    common.add_argument("--verbose", action="store_true",
                        help="structured key=value logs at DEBUG level "
                             "(default level comes from REPRO_LOG_LEVEL)")

    sub.add_parser("simulate", parents=[common],
                   help="run the plant and print a world summary")

    predict = sub.add_parser("predict", parents=[common],
                             help="train and evaluate the ticket predictor")
    predict.add_argument("--capacity", type=int, default=None,
                         help="ATDS capacity N (default: 2%% of lines)")
    predict.add_argument("--rounds", type=int, default=200,
                         help="boosting rounds of the final model")

    locate = sub.add_parser("locate", parents=[common],
                            help="train and evaluate the trouble locator")
    locate.add_argument("--rounds", type=int, default=80,
                        help="boosting rounds per one-vs-rest model")

    export = sub.add_parser("export", parents=[common],
                            help="simulate and write CSV extracts")
    export.add_argument("--out", default="extracts",
                        help="output directory for the CSV files")

    snapshot = sub.add_parser(
        "snapshot", parents=[common],
        help="simulate and persist weekly campaigns into a line-week store")
    snapshot.add_argument("--store", default="store",
                          help="line-week store directory")
    snapshot.add_argument("--registry", default=None,
                          help="also train a model and publish it to this "
                               "registry directory")
    snapshot.add_argument("--capacity", type=int, default=None,
                          help="ATDS capacity N (default: 2%% of lines)")
    snapshot.add_argument("--rounds", type=int, default=200,
                          help="boosting rounds of the published predictor")
    snapshot.add_argument("--with-locator", action="store_true",
                          help="also train and bundle the combined trouble "
                               "locator")
    snapshot.add_argument("--locator-rounds", type=int, default=40,
                          help="boosting rounds per locator sub-model")

    serve = sub.add_parser(
        "serve", parents=[common],
        help="serve scores over HTTP from a store and a registry")
    serve.add_argument("--store", default="store",
                       help="line-week store directory")
    serve.add_argument("--registry", default="registry",
                       help="model registry directory")
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument("--port", type=int, default=8080,
                       help="bind port (0 = ephemeral)")
    serve.add_argument("--shard-size", type=int, default=None,
                       help="lines per scoring shard")
    serve.add_argument("--smoke", action="store_true",
                       help="in-process end-to-end self-test: simulate, "
                            "snapshot, publish, serve on an ephemeral port, "
                            "and check the HTTP dispatch list against the "
                            "batch predictor")

    obs = sub.add_parser(
        "obs", parents=[common],
        help="observability tooling over the metrics registry and tracer")
    obs.add_argument("action", choices=["report", "dashboard"],
                     help="report: run an instrumented proactive loop "
                          "(or render --input) as a telemetry summary; "
                          "dashboard: render sparkline trends and the "
                          "health verdict from a flight-recorder history")
    obs.add_argument("--input", default=None,
                     help="render a previously saved telemetry JSON "
                          "instead of running the demo loop")
    obs.add_argument("--out", default=None,
                     help="also write the collected telemetry as JSON here")
    obs.add_argument("--rounds", type=int, default=60,
                     help="boosting rounds of the demo loop's predictor")
    obs.add_argument("--no-trace", action="store_true",
                     help="leave span tracing off for the demo loop "
                          "(metrics only)")
    obs.add_argument("--history", default=None,
                     help="flight-recorder JSONL path: report appends the "
                          "demo loop's weekly snapshots there, dashboard "
                          "reads trends from it")

    lifecycle = sub.add_parser(
        "lifecycle", parents=[common],
        help="continuous training: scheduled retrains, shadow gating, "
             "promotion and rollback")
    lifecycle.add_argument("action", choices=["run", "status"],
                           help="run: drive the loop under the lifecycle "
                                "controller; status: render a run's "
                                "decision log and registry state")
    lifecycle.add_argument("--root", default="lifecycle",
                           help="working directory (gets store/ and "
                                "registry/ subdirectories on run; status "
                                "reads the same layout)")
    lifecycle.add_argument("--capacity", type=int, default=None,
                           help="ATDS capacity N (default: 2%% of lines)")
    lifecycle.add_argument("--rounds", type=int, default=80,
                           help="boosting rounds per (re)trained model")
    lifecycle.add_argument("--warmup", type=int, default=13,
                           help="reactive warm-up weeks before the first "
                                "champion trains")
    lifecycle.add_argument("--horizon", type=int, default=3,
                           help="label horizon T in weeks")
    lifecycle.add_argument("--cadence", type=int, default=4,
                           help="scheduled retrain cadence in weeks "
                                "(drift triggers can fire sooner)")
    lifecycle.add_argument("--smoke", action="store_true",
                           help="in-process end-to-end self-test in a temp "
                                "dir: run the loop with one forced "
                                "promotion and one sabotaged challenger, "
                                "and check that the watchdog rolls it back "
                                "with an intact decision chain")

    triage = sub.add_parser(
        "triage", parents=[common],
        help="plant-level triage: cluster anomalies by shared plant and "
             "plan suppressed + backfilled dispatches")
    triage.add_argument("--capacity", type=int, default=None,
                        help="ATDS capacity N (default: 2%% of lines)")
    triage.add_argument("--rounds", type=int, default=60,
                        help="boosting rounds of the scoring predictor")
    triage.add_argument("--week", type=int, default=None,
                        help="evaluation week (default: the late week with "
                             "the most shared-fault-affected lines)")
    triage.add_argument("--smoke", action="store_true",
                        help="small fixed-scale self-test on the "
                             "correlated_faults scenario: asserts >=90%% "
                             "upstream recall, one group dispatch per "
                             "cluster, and a strict precision-at-capacity "
                             "improvement")

    explain = sub.add_parser(
        "explain", parents=[common],
        help="serve one line-week's diagnosis: exact feature attribution, "
             "plant context, and technician next steps")
    explain.add_argument("--capacity", type=int, default=None,
                         help="ATDS capacity N (default: 2%% of lines)")
    explain.add_argument("--rounds", type=int, default=60,
                         help="boosting rounds of the scoring predictor")
    explain.add_argument("--locator-rounds", type=int, default=12,
                         help="boosting rounds per locator sub-model")
    explain.add_argument("--line", type=int, default=None,
                         help="line to explain (default: the week's top "
                              "dispatched line)")
    explain.add_argument("--week", type=int, default=None,
                         help="evaluation week (default: the latest stored "
                              "week)")
    explain.add_argument("--top", type=int, default=5,
                         help="feature attributions shown in the summary")
    explain.add_argument("--smoke", action="store_true",
                         help="small fixed-scale self-test: asserts the "
                              "report is well-formed, every disposition "
                              "template renders, attributions reproduce "
                              "the served score bit-identically, and "
                              "repeat reads hit the score cache")

    scale = sub.add_parser(
        "scale", parents=[common],
        help="run the streaming weekly cycle: chunked generation into an "
             "out-of-core line-week store, chunked encode, sharded scoring")
    scale.add_argument("--chunk-lines", type=int, default=None,
                       help="streaming chunk size in lines (rounds up to "
                            "whole RNG blocks; default: one block)")
    scale.add_argument("--store", default=None,
                       help="persist the store here (default: temp dir)")
    scale.add_argument("--smoke", action="store_true",
                       help="fixed-scale self-test of the streaming "
                            "invariants: chunked generation bit-identical "
                            "to monolithic, chunk appends byte-identical "
                            "to whole-week appends, out-of-core encode "
                            "equal to dense, and multi-worker scores "
                            "equal to single-worker")
    return parser


def _sim_config(args: argparse.Namespace):
    from repro import PopulationConfig, SimulationConfig

    if args.scenario:
        from repro.netsim.scenarios import scenario

        return scenario(args.scenario, n_lines=args.lines,
                        n_weeks=args.weeks, seed=args.seed)
    return SimulationConfig(
        n_weeks=args.weeks,
        population=PopulationConfig(n_lines=args.lines, seed=args.seed),
        fault_rate_scale=args.fault_scale,
        seed=args.seed,
    )


def _simulate(args: argparse.Namespace):
    from repro import DslSimulator

    return DslSimulator(_sim_config(args)).run()


def _cmd_simulate(args: argparse.Namespace) -> int:
    result = _simulate(args)
    edge = result.ticket_log.edge_tickets()
    hist = result.ticket_log.weekday_histogram()
    days = ("Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun")
    print(f"simulated {args.lines} lines x {args.weeks} weeks "
          f"({result.population.topology.n_dslams} DSLAMs, "
          f"{result.population.topology.n_brases} BRAS)")
    print(f"  plant faults        : {len(result.fault_events)}")
    print(f"  customer-edge tickets: {len(edge)}")
    print(f"  IVR-absorbed calls  : {len(result.ticket_log.ivr_calls)}")
    print(f"  DSLAM outages       : {len(result.outages.events)}")
    print(f"  dispatch summary    : {result.dispatcher.summary()}")
    print("  tickets by weekday  : "
          + ", ".join(f"{d}={c}" for d, c in zip(days, hist)))
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    from repro import (
        PredictorConfig,
        TicketPredictor,
        evaluate_predictions,
        paper_style_split,
        urgency_cdf,
    )

    result = _simulate(args)
    capacity = args.capacity or max(20, args.lines // 50)
    history = max(2, args.weeks - 11)
    split = paper_style_split(args.weeks, history=history, train=3,
                              selection=2, test=2)
    predictor = TicketPredictor(
        PredictorConfig(capacity=capacity, train_rounds=args.rounds)
    ).fit(result, split)
    outcomes = [
        evaluate_predictions(result, predictor.rank_week(result, week), week)
        for week in split.test_weeks
    ]
    base_rate = float(np.mean([o.hits.mean() for o in outcomes]))
    accuracy = float(np.mean([o.accuracy_at(capacity) for o in outcomes]))
    cdf = urgency_cdf(outcomes, capacity, max_days=28)
    print(f"capacity N={capacity}: accuracy {accuracy:.3f} "
          f"(base rate {base_rate:.4f}, lift {accuracy / max(base_rate, 1e-9):.1f}x)")
    print(f"predicted tickets arriving within 14 days: {cdf[14]:.0%}")
    print(f"selected features: {len(predictor.feature_names)}")
    return 0


def _cmd_locate(args: argparse.Namespace) -> int:
    from repro import (
        CombinedLocator,
        ExperienceModel,
        FlatLocator,
        LocatorConfig,
        build_locator_dataset,
        ranks_of_truth,
        tests_to_locate,
    )

    result = _simulate(args)
    horizon = args.weeks * 7
    cut = int(horizon * 0.6)
    train = build_locator_dataset(result, 30, cut)
    test = build_locator_dataset(result, cut + 1, horizon)
    config = LocatorConfig(n_rounds=args.rounds)
    X = test.features.matrix
    print(f"{train.n_examples} training dispatches, {test.n_examples} test")
    for name, model in (
        ("basic", ExperienceModel(config)),
        ("flat", FlatLocator(config)),
        ("combined", CombinedLocator(config)),
    ):
        ranks = ranks_of_truth(model.fit(train).predict_proba(X),
                               test.disposition)
        print(f"  {name:>9}: median tests {tests_to_locate(ranks):>2}, "
              f"mean rank {ranks.mean():.1f}")
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.data.export import export_all

    result = _simulate(args)
    counts = export_all(result, args.out)
    print(f"wrote CSV extracts to {args.out}/:")
    for name, rows in counts.items():
        print(f"  {name}.csv: {rows} rows")
    return 0


def _trained_predictor(args: argparse.Namespace, result, rounds: int):
    from repro import PredictorConfig, TicketPredictor, paper_style_split

    capacity = getattr(args, "capacity", None) or max(20, args.lines // 50)
    history = max(2, args.weeks - 11)
    split = paper_style_split(args.weeks, history=history, train=3,
                              selection=2, test=0)
    return TicketPredictor(
        PredictorConfig(capacity=capacity, train_rounds=rounds)
    ).fit(result, split)


def _cmd_snapshot(args: argparse.Namespace) -> int:
    from repro.serve import ModelBundle, ModelRegistry, snapshot_result

    result = _simulate(args)
    store = snapshot_result(result, args.store)
    print(f"stored {len(store.weeks)} weeks x {store.n_lines} lines "
          f"in {args.store}/")
    if args.registry is None:
        return 0

    predictor = _trained_predictor(args, result, args.rounds)
    locator = None
    if args.with_locator:
        from repro import CombinedLocator, LocatorConfig, build_locator_dataset

        train = build_locator_dataset(result, 30, args.weeks * 7)
        locator = CombinedLocator(
            LocatorConfig(n_rounds=args.locator_rounds)
        ).fit(train)
    registry = ModelRegistry(args.registry)
    version = registry.publish(
        ModelBundle(
            predictor=predictor,
            locator=locator,
            meta={"lines": args.lines, "weeks": args.weeks, "seed": args.seed},
        ),
        activate=True,
    )
    extra = ", with locator" if locator is not None else ""
    print(f"published {version} (capacity N={predictor.config.capacity}"
          f"{extra}) to {args.registry}/")
    return 0


def _serve_smoke(args: argparse.Namespace) -> int:
    """End-to-end self-test: simulate -> snapshot -> publish -> serve -> check.

    Verifies over real HTTP that the served top-N dispatch list names
    exactly the lines the batch predictor would submit -- the serving
    subsystem's parity invariant.  Used by the CI smoke job.
    """
    import json
    import tempfile
    import threading
    import urllib.request
    from pathlib import Path

    from repro.serve import (
        ModelBundle,
        ModelRegistry,
        ScoringService,
        make_server,
        snapshot_result,
    )

    result = _simulate(args)
    predictor = _trained_predictor(args, result, rounds=60)

    with tempfile.TemporaryDirectory() as tmp:
        store_root = Path(tmp) / "store"
        registry_root = Path(tmp) / "registry"
        snapshot_result(result, store_root)
        ModelRegistry(registry_root).publish(
            ModelBundle(predictor=predictor), activate=True
        )
        service = ScoringService(store_root, registry_root)
        server = make_server(service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{server.server_address[1]}"

        def get(path: str) -> dict:
            with urllib.request.urlopen(base + path, timeout=30) as response:
                return json.load(response)

        def get_text(path: str) -> str:
            with urllib.request.urlopen(base + path, timeout=30) as response:
                return response.read().decode()

        def get_with_headers(path: str) -> tuple[bytes, dict]:
            with urllib.request.urlopen(base + path, timeout=30) as response:
                headers = {k.lower(): v for k, v in response.headers.items()}
                return response.read(), headers

        try:
            health = get("/healthz")
            week = health["latest_week"]
            served = get(f"/dispatch?week={week}")
            metrics = get("/metrics")
            body, slo_headers = get_with_headers("/health")
            slo_health = json.loads(body)
            prom_bytes, prom_headers = get_with_headers(
                "/metrics?format=prometheus"
            )
            prometheus = prom_bytes.decode("utf-8")
            trace = get("/trace")
        finally:
            server.shutdown()
            server.server_close()

    if health.get("status") != "ok":
        print(f"smoke FAILED: /healthz returned {health}")
        return 1
    if slo_health.get("status") != "ok":
        print(f"smoke FAILED: /health returned {slo_health}")
        return 1
    for name, headers in (("/health", slo_headers),
                          ("/metrics?format=prometheus", prom_headers)):
        if headers.get("cache-control") != "no-store":
            print(f"smoke FAILED: {name} response is missing "
                  "Cache-Control: no-store")
            return 1
        if "charset=utf-8" not in headers.get("content-type", ""):
            print(f"smoke FAILED: {name} content type "
                  f"{headers.get('content-type')!r} declares no charset")
            return 1
    if not slo_headers.get("content-type", "").startswith("application/json"):
        print(f"smoke FAILED: /health content type is "
              f"{slo_headers.get('content-type')!r}, expected JSON")
        return 1
    expected = [int(i) for i in predictor.predict_top(result, week)]
    if served["line_ids"] != expected:
        print("smoke FAILED: served dispatch list differs from the batch "
              "predictor's predict_top")
        return 1

    from repro.obs import check_prometheus_text, tracing_enabled

    problems = check_prometheus_text(prometheus)
    if problems:
        print("smoke FAILED: /metrics?format=prometheus is not valid "
              "exposition text:")
        for problem in problems[:10]:
            print(f"  {problem}")
        return 1
    if "repro_http_requests_total" not in prometheus:
        print("smoke FAILED: exposition text is missing the request counter")
        return 1
    if tracing_enabled() and not trace.get("spans"):
        print("smoke FAILED: REPRO_TRACE is on but /trace exported no spans")
        return 1
    span_note = (
        f", {len(trace['spans'])} span tree(s)" if trace.get("spans") else ""
    )
    print(f"smoke ok: model {health['model_version']}, week {week}, "
          f"top-{len(served['line_ids'])} dispatch list matches the batch "
          f"predictor ({metrics['mean_lines_per_sec']:.0f} lines/sec, "
          f"prometheus text valid, /health {slo_health['status']}"
          f"{span_note})")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.smoke:
        return _serve_smoke(args)

    from repro.serve import DEFAULT_SHARD_SIZE, ScoringService, make_server

    service = ScoringService(
        args.store,
        args.registry,
        shard_size=args.shard_size or DEFAULT_SHARD_SIZE,
    )
    server = make_server(service, args.host, args.port)
    host, port = server.server_address[:2]
    print(f"serving model {service.model_version} "
          f"on http://{host}:{port} (Ctrl-C to stop)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    """``repro obs report|dashboard``: telemetry summary / trend view."""
    import json
    from pathlib import Path

    from repro.obs import (
        HealthDetector,
        HistoryStore,
        collect_telemetry,
        render_dashboard,
        render_report,
        set_tracing,
    )

    if args.action == "dashboard":
        path = args.history or "history.jsonl"
        history = HistoryStore(path)
        if len(history) == 0:
            print(f"no flight-recorder records at {history.path} -- run "
                  "`repro obs report --history <path>` (or a pipeline with "
                  "a history store attached) first")
            return 1
        print(render_dashboard(history))
        summary = HealthDetector(history).summary()
        return 1 if summary["status"] == "alert" else 0

    if args.input is not None:
        telemetry = json.loads(Path(args.input).read_text())
        print(render_report(telemetry))
        return 0

    # Demo loop: run the proactive pipeline with tracing on, so the
    # report shows the full per-stage breakdown out of the box.
    from repro import PipelineConfig, PredictorConfig
    from repro.core.pipeline import NevermindPipeline
    from repro.netsim.population import PopulationConfig
    from repro.netsim.simulator import SimulationConfig

    if not args.no_trace:
        set_tracing(True)
    try:
        capacity = max(20, args.lines // 50)
        pipeline = NevermindPipeline(
            SimulationConfig(
                n_weeks=args.weeks,
                population=PopulationConfig(n_lines=args.lines, seed=args.seed),
                fault_rate_scale=args.fault_scale,
                seed=args.seed,
            ),
            PipelineConfig(
                predictor=PredictorConfig(
                    capacity=capacity, train_rounds=args.rounds
                )
            ),
            history=(
                HistoryStore(args.history) if args.history is not None
                else None
            ),
        )
        pipeline.run()
        telemetry = collect_telemetry(meta={
            "command": "obs report",
            "lines": args.lines,
            "weeks": args.weeks,
            "seed": args.seed,
            "live_weeks": len(pipeline.reports),
            "summary": pipeline.summary(),
        })
    finally:
        if not args.no_trace:
            set_tracing(None)

    if args.out is not None:
        Path(args.out).write_text(json.dumps(telemetry, indent=1))
        print(f"wrote telemetry to {args.out}")
    print(render_report(telemetry))
    return 0


def _lifecycle_controller(args: argparse.Namespace, root, config=None):
    """Build a pipeline + lifecycle controller rooted at ``root``.

    Creates ``root/store`` and ``root/registry``; the decision log lands
    next to the registry manifest so ``lifecycle status`` and the
    service's ``/lifecycle`` route can read the whole story from disk.
    """
    from repro import PipelineConfig, PredictorConfig
    from repro.core.pipeline import NevermindPipeline
    from repro.lifecycle import LifecycleConfig, LifecycleController
    from repro.serve import ModelRegistry
    from repro.serve.store import LineWeekStore

    sim = _sim_config(args)
    store_root = root / "store"
    if (store_root / "manifest.json").exists():
        raise SystemExit(
            f"{store_root} already holds a line-week store; a lifecycle "
            "run simulates fresh weeks, so pick a new --root"
        )
    store = LineWeekStore.create(
        store_root, sim.population.n_lines, sim.population
    )
    capacity = args.capacity or max(20, args.lines // 50)
    pipeline = NevermindPipeline(
        sim,
        PipelineConfig(
            warmup_weeks=args.warmup,
            retrain_every=0,  # the lifecycle controller owns every retrain
            predictor=PredictorConfig(
                capacity=capacity,
                horizon_weeks=args.horizon,
                train_rounds=args.rounds,
            ),
        ),
        store=store,
        registry=ModelRegistry(root / "registry"),
    )
    return LifecycleController(
        pipeline, config or LifecycleConfig(cadence_weeks=args.cadence)
    )


def _inverted_challenger(pipeline, week: int):
    """Train a real challenger, then negate every stump score.

    The result ranks lines exactly backwards -- the worst live regression
    the smoke can hand the watchdog -- while remaining a perfectly
    ordinary, serialisable, fitted predictor to the registry and the
    shadow scorer.
    """
    from dataclasses import replace

    challenger = pipeline.train_challenger(week)
    model = challenger.model
    model.learners = [
        replace(learner, stump=replace(
            learner.stump,
            s_lo=-learner.stump.s_lo,
            s_hi=-learner.stump.s_hi,
            s_miss=-learner.stump.s_miss,
        ))
        for learner in model.learners
    ]
    model._compiled = None
    return challenger


def _lifecycle_smoke(args: argparse.Namespace) -> int:
    """End-to-end self-test of the continuous-training loop.

    Runs the full controller in a temp dir and forces both interesting
    paths: the first challenger is pushed through the gate (forced
    promotion), the second is an inverted saboteur that the gate is also
    forced to accept -- so the *watchdog* must catch it live and roll the
    registry back.  Exit 0 only if both legs happened and the decision
    chain verifies.  Used by the CI lifecycle-smoke job.
    """
    import tempfile
    from pathlib import Path

    from repro.lifecycle import LifecycleConfig, lifecycle_status

    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        controller = _lifecycle_controller(args, root, config=LifecycleConfig(
            cadence_weeks=2,
            shadow_weeks=2,
            bootstrap_samples=100,
            watchdog_drop=0.6,
            watchdog_patience=2,
            seed=args.seed,
        ))
        pipeline = controller.pipeline
        controller.force_next_decision = "promote"
        sabotaged = False
        total = pipeline.simulator.config.n_weeks
        while pipeline.simulator.week < total:
            controller.step()
            counts = controller.status()["decision_counts"]
            if counts.get("promote", 0) >= 1 and not sabotaged:
                # Leg 2: the next challenger is deliberately inverted and
                # the gate is forced open, so only the watchdog stands
                # between it and the customers.
                controller.challenger_factory = (
                    lambda week: _inverted_challenger(pipeline, week)
                )
                controller.force_next_decision = "promote"
                sabotaged = True
            if counts.get("rollback", 0) >= 1:
                break
        status = controller.status()
        disk = lifecycle_status(root / "registry")

    counts = status["decision_counts"]
    if counts.get("promote", 0) < 2 or counts.get("rollback", 0) < 1:
        print(f"lifecycle smoke FAILED: expected >=2 promotions and >=1 "
              f"rollback, got decisions {counts} (is --weeks long enough "
              f"past --warmup?)")
        return 1
    if not disk["chain_valid"]:
        print("lifecycle smoke FAILED: decision chain did not verify:")
        for problem in disk["chain_problems"][:10]:
            print(f"  {problem}")
        return 1
    if disk["active_version"] != status["champion_version"]:
        print(f"lifecycle smoke FAILED: registry active "
              f"{disk['active_version']} != controller champion "
              f"{status['champion_version']}")
        return 1
    promotes = [r for r in disk["decisions"] if r["action"] == "promote"]
    rollbacks = [r for r in disk["decisions"] if r["action"] == "rollback"]
    restored = rollbacks[-1]["details"]["restored"]
    if restored != promotes[0]["details"]["version"]:
        print(f"lifecycle smoke FAILED: rollback restored {restored}, "
              f"expected the first promoted champion "
              f"{promotes[0]['details']['version']}")
        return 1
    registry_rollbacks = [
        e for e in disk["registry_events"] if e["action"] == "rollback"
    ]
    if not registry_rollbacks:
        print("lifecycle smoke FAILED: registry manifest records no "
              "rollback event")
        return 1
    print(f"lifecycle smoke ok: {counts.get('retrain', 0)} retrains, "
          f"{counts['promote']} promotions (1 forced good, 1 forced "
          f"saboteur), watchdog rolled back to {restored} at week "
          f"{rollbacks[-1]['week']}, decision chain of "
          f"{len(disk['decisions'])} records verified")
    return 0


def _lifecycle_print_status(root) -> int:
    from repro.lifecycle import lifecycle_status

    registry_root = root / "registry" if (root / "registry").is_dir() else root
    status = lifecycle_status(registry_root)
    versions = ", ".join(status["versions"]) or "none"
    print(f"registry {registry_root}: active {status['active_version']}, "
          f"versions {versions}")
    counts = status["decision_counts"]
    rendered = ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
    print(f"decisions: {rendered or 'none'}")
    print(f"decision chain intact: {status['chain_valid']}")
    for problem in status["chain_problems"]:
        print(f"  problem: {problem}")
    for record in status["decisions"][-8:]:
        details = record["details"]
        extra = (details.get("reason") or details.get("version")
                 or details.get("restored") or "")
        print(f"  week {record['week']:>3}  {record['action']:<9} {extra}")
    return 0


def _cmd_lifecycle(args: argparse.Namespace) -> int:
    from pathlib import Path

    if args.smoke:
        return _lifecycle_smoke(args)
    if args.action == "status":
        return _lifecycle_print_status(Path(args.root))

    controller = _lifecycle_controller(args, Path(args.root))
    controller.run()
    summary = controller.pipeline.summary()
    status = controller.status()
    counts = status["decision_counts"]
    print(f"lifecycle run: {int(summary['weeks'])} live weeks, "
          f"overall precision {summary['precision']:.3f}")
    print(f"  champion {status['active_version']} "
          f"(since week {status['champion_since_week']})")
    print("  decisions: "
          + (", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
             or "none"))
    print(f"  decision chain intact: {status['chain_valid']}")
    print(f"  decision log: {controller.log.path}")
    return 0


def _triage_eval_week(args: argparse.Namespace, result) -> int:
    """The evaluation week: --week, or the late week with the most
    shared-fault-affected lines (latest week when there are none)."""
    from repro.netsim.simulator import SATURDAY_OFFSET

    last = args.weeks - 1
    if args.week is not None:
        if not 0 <= args.week <= last:
            raise SystemExit(f"--week must be in [0, {last}]")
        return args.week
    if result.group_faults is None:
        return last
    candidates = range(max(0, args.weeks - 6), args.weeks)
    counts = {
        week: int(
            result.group_faults.affected_lines(week * 7 + SATURDAY_OFFSET).sum()
        )
        for week in candidates
    }
    return max(counts, key=lambda week: (counts[week], week))


def _cmd_triage(args: argparse.Namespace) -> int:
    """``repro triage``: cluster, classify, suppress, compare precision."""
    from repro.fleet import evaluate_plan, find_clusters, plan_dispatches
    from repro.netsim.simulator import SATURDAY_OFFSET

    if args.smoke:
        # Fixed small scale so CI asserts against one known plant.
        args.lines, args.weeks, args.rounds = 2500, 20, 40
        args.scenario = args.scenario or "correlated_faults"
        args.capacity = None
    if not args.scenario:
        args.scenario = "correlated_faults"

    result = _simulate(args)
    predictor = _trained_predictor(args, result, rounds=args.rounds)
    capacity = predictor.config.capacity
    topology = result.population.topology
    week = _triage_eval_week(args, result)
    day = week * 7 + SATURDAY_OFFSET

    scores = predictor.score_week(result, week)
    triage = find_clusters(scores, topology, capacity)
    plan = plan_dispatches(scores, capacity, triage, week=week)

    fault = result.fault_active_on(day)
    active_groups = set()
    if result.group_faults is not None:
        active_groups = {
            (e.level, e.group_id)
            for e in result.group_faults.schedule.active_on(day)
        }
    scored = evaluate_plan(plan, fault, active_groups)

    upstream = triage.upstream_clusters
    print(f"plant triage on {args.scenario!r} "
          f"({args.lines} lines x {args.weeks} weeks, week {week})")
    print(f"  anomaly pool: top {triage.pool_line_ids.size} of "
          f"{triage.n_lines} lines (base rate {triage.base_rate:.1%})")
    for cluster in triage.clusters:
        parent = (f" (dslam {topology.dslam_of_binder(cluster.group_id)})"
                  if cluster.level == "binder" else "")
        print(f"  {cluster.level} {cluster.group_id}{parent}: "
              f"{cluster.n_anomalous}/{cluster.n_lines} anomalous, "
              f"p={cluster.p_value:.2e} -> {cluster.classification}")
    print(f"  group dispatches: {len(upstream)} (one per upstream cluster), "
          f"suppressed {scored['suppressed']} per-line dispatches, "
          f"refilled {scored['backfilled']} slots")

    recall = None
    if result.group_faults is not None:
        affected = result.group_faults.affected_lines(day)
        pool = np.zeros(triage.n_lines, dtype=bool)
        pool[triage.pool_line_ids] = True
        truly = affected & pool
        clustered = triage.upstream_line_mask() & truly
        if truly.any():
            recall = clustered.sum() / truly.sum()
            print(f"  upstream recall: {recall:.0%} "
                  f"({int(clustered.sum())}/{int(truly.sum())} "
                  f"truly-upstream anomalous lines clustered)")
    print(f"  precision@N={capacity}: "
          f"baseline {scored['baseline_precision']:.3f} -> "
          f"triage {scored['triage_precision']:.3f}")

    if args.smoke:
        problems = []
        if len(upstream) < 1:
            problems.append("no upstream clusters found")
        if recall is None or recall < 0.9:
            rendered = "n/a" if recall is None else f"{recall:.0%}"
            problems.append(f"upstream recall {rendered} below 90%")
        if scored["triage_precision"] <= scored["baseline_precision"]:
            problems.append(
                "suppression did not improve precision-at-capacity"
            )
        if problems:
            for problem in problems:
                print(f"triage smoke FAILED: {problem}")
            return 1
        print(f"triage smoke ok: {len(upstream)} upstream cluster(s), "
              f"recall {recall:.0%}, precision "
              f"{scored['baseline_precision']:.3f} -> "
              f"{scored['triage_precision']:.3f} at N={capacity}")
    return 0


def _explain_smoke_checks(service, week: int, report: dict, line_ids) -> int:
    """Assertions behind ``repro explain --smoke`` (used by the CI job)."""
    from repro.explain import (
        assemble_model_row,
        attribute_ensemble,
        technician_steps,
    )
    from repro.netsim.components import DISPOSITIONS

    problems: list[str] = []

    rendered = report["rendered"]
    for header in ("=== diagnostic summary ===",
                   "=== technician next steps ==="):
        if header not in rendered:
            problems.append(f"rendered report is missing {header!r}")
    if not report["attributions"]:
        problems.append("report carries no feature attributions")
    if not report["next_steps"]:
        problems.append("report carries no technician steps")
    if not report["attribution_exact"]:
        problems.append("attribution fold does not reproduce the margin")
    if report["disposition"] is None:
        problems.append("no disposition despite a bundled locator")
    if not 0.0 <= report["p_ticket"] <= 1.0:
        problems.append(f"p_ticket {report['p_ticket']} outside [0, 1]")

    # Every catalog disposition (plus "no trouble found") must render.
    try:
        for code in [-1, *range(len(DISPOSITIONS))]:
            if not technician_steps(code):
                problems.append(f"disposition {code} rendered no steps")
                break
    except Exception as exc:  # a KeyError here means a broken template
        problems.append(f"disposition templates failed to render: {exc}")

    # Bit-identical parity on a sample of dispatched lines: the scalar
    # attribution fold must reproduce the served margin exactly, and its
    # calibrated value the served score.
    engine = service.engine
    predictor = engine.bundle.predictor
    compiled = predictor.model.compiled()
    scored = engine.score_week(week)
    base = engine.base_features(week)
    for line_id in line_ids:
        line_id = int(line_id)
        row = assemble_model_row(base.matrix[line_id], predictor.recipes)
        attribution = attribute_ensemble(compiled, row)
        if attribution.reconstructed() != attribution.margin:
            problems.append(
                f"line {line_id}: attribution fold diverges from its margin")
            break
        calibrated = float(predictor.model.calibrator.transform(
            np.array([attribution.margin]))[0])
        if calibrated != float(scored.scores[line_id]):
            problems.append(
                f"line {line_id}: calibrated attribution margin "
                f"{calibrated} != served score {float(scored.scores[line_id])}"
            )
            break

    # The shared score cache must survive an engine reload and serve the
    # repeat read without another shard scan.
    service.reload()
    if not service.engine.is_cached(week):
        problems.append("score cache did not survive the reload")
    before = service.cache.stats()["hits"]
    status, _ = service.dispatch_request(
        "GET", f"/score?week={week}&line={int(line_ids[0])}")
    if status != 200:
        problems.append(f"post-reload /score returned {status}")
    elif service.cache.stats()["hits"] <= before:
        problems.append("post-reload /score read was not a cache hit")

    if problems:
        for problem in problems:
            print(f"explain smoke FAILED: {problem}")
        return 1
    stats = service.cache.stats()
    print(f"explain smoke ok: line {report['line']} week {week} "
          f"({report['n_contributors']} contributors, "
          f"disposition {report['disposition']['code']}, "
          f"cache hit rate {stats['hit_rate']:.0%})")
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    """``repro explain``: serve one line-week's two-stage diagnosis."""
    import tempfile
    from pathlib import Path

    from repro import CombinedLocator, LocatorConfig, build_locator_dataset
    from repro.serve import (
        ModelBundle,
        ModelRegistry,
        ScoringService,
        snapshot_result,
    )

    if args.smoke:
        # Fixed small scale so CI checks one known plant.
        args.lines, args.weeks, args.rounds = 2500, 20, 40
        args.locator_rounds = min(args.locator_rounds, 8)
        args.capacity = None

    result = _simulate(args)
    predictor = _trained_predictor(args, result, rounds=args.rounds)
    train = build_locator_dataset(result, 30, args.weeks * 7)
    locator = CombinedLocator(
        LocatorConfig(n_rounds=args.locator_rounds, cv_folds=2)
    ).fit(train)

    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        snapshot_result(result, root / "store")
        ModelRegistry(root / "registry").publish(
            ModelBundle(
                predictor=predictor,
                locator=locator,
                meta={"lines": args.lines, "weeks": args.weeks,
                      "seed": args.seed},
            ),
            activate=True,
        )
        service = ScoringService(root / "store", root / "registry",
                                 shard_size=512)
        _, health = service.dispatch_request("GET", "/healthz")
        week = args.week if args.week is not None else health["latest_week"]
        status, dispatch = service.dispatch_request(
            "GET", f"/dispatch?week={week}")
        if status != 200:
            print(f"explain FAILED: /dispatch returned {status}: {dispatch}")
            return 1
        line = args.line if args.line is not None else dispatch["line_ids"][0]
        status, report = service.dispatch_request(
            "GET", f"/explain?line={line}&week={week}&top={args.top}")
        if status != 200:
            print(f"explain FAILED: /explain returned {status}: {report}")
            return 1
        print(report["rendered"])
        if args.smoke:
            return _explain_smoke_checks(
                service, week, report, dispatch["line_ids"][:10])
    return 0


def _scale_toy_bundle(encoder):
    """A tiny deterministic stump ensemble over the encoded columns.

    The scale smoke's scoring-parity check needs *a* model, not a good
    one; hand-building 16 stumps keeps the smoke seconds-long where a
    real fit would dominate it.
    """
    from repro.core.predictor import (
        PredictorConfig,
        TicketPredictor,
        _DerivedRecipes,
    )
    from repro.ml.boostexter import BStump, BStumpConfig, WeakLearner
    from repro.ml.calibration import PlattCalibrator
    from repro.ml.stumps import Stump
    from repro.serve import ModelBundle

    rng = np.random.default_rng(7)
    base = sorted(
        int(i)
        for i in rng.choice(encoder.base_feature_count(), size=8,
                            replace=False)
    )
    recipes = _DerivedRecipes(
        base_indices=base, quad_indices=base[:2],
        product_pairs=[(base[0], base[1])],
    )
    model = BStump(BStumpConfig(n_rounds=16))
    model.n_features_ = recipes.n_columns
    model.learners = [
        WeakLearner(
            stump=Stump(
                feature=int(rng.integers(recipes.n_columns)),
                threshold=float(rng.normal(loc=10.0, scale=4.0)),
                s_lo=float(rng.normal(scale=0.1)),
                s_hi=float(rng.normal(scale=0.1)),
                s_miss=float(rng.normal(scale=0.05)),
                categorical=False,
                z=1.0,
            ),
            round_index=r,
            z=1.0,
        )
        for r in range(16)
    ]
    model.train_z_ = [1.0] * 16
    calibrator = PlattCalibrator()
    calibrator.a = -1.0
    calibrator.b = 0.0
    calibrator.fitted_ = True
    model.calibrator = calibrator
    predictor = TicketPredictor(PredictorConfig(capacity=500),
                                encoder=encoder)
    predictor.model = model
    predictor.recipes = recipes
    return ModelBundle(predictor=predictor, meta={"smoke": True})


def _scale_smoke(args: argparse.Namespace) -> int:
    """Self-test of the streaming invariants at a fixed three-block scale.

    Everything the paper-scale cycle relies on, asserted end to end:
    chunked generation is bit-identical to the monolithic run, chunk
    appends produce byte-identical shards to whole-week appends, the
    out-of-core encode equals the dense one, and sharded multi-worker
    scoring equals single-worker.  Used by the CI scale-smoke job.
    """
    import tempfile
    from pathlib import Path

    from repro import PopulationConfig, SimulationConfig
    from repro.features.encoding import EncoderConfig, LineFeatureEncoder
    from repro.netsim import STREAM_BLOCK_LINES, stream_weeks
    from repro.netsim.groupfaults import GroupFaultConfig
    from repro.serve import LineWeekStore, ScoringEngine, StoredWorld

    n_lines = 2 * STREAM_BLOCK_LINES + 700  # straddles two block edges
    n_weeks = 3
    config = SimulationConfig(
        n_weeks=n_weeks,
        population=PopulationConfig(n_lines=n_lines, seed=11),
        fault_rate_scale=2.0,
        group_faults=GroupFaultConfig(
            n_dslam_events=2, n_binder_events=4, event_window=(0.0, 0.7),
            seed=23,
        ),
        seed=args.seed,
    )
    failures: list[str] = []

    def collect(chunk):
        feats = [[] for _ in range(n_weeks)]
        lasts = [[] for _ in range(n_weeks)]
        for blk in stream_weeks(config, chunk_lines=chunk):
            feats[blk.week].append(blk.features)
            lasts[blk.week].append(blk.last_ticket_day)
        return ([np.concatenate(f) for f in feats],
                [np.concatenate(t) for t in lasts])

    mono_f, mono_t = collect(None)
    chunk_f, chunk_t = collect(STREAM_BLOCK_LINES)
    if not all(
        np.array_equal(chunk_f[w], mono_f[w], equal_nan=True)
        and np.array_equal(chunk_t[w], mono_t[w])
        for w in range(n_weeks)
    ):
        failures.append("chunked generation diverged from the monolithic run")

    with tempfile.TemporaryDirectory() as tmp:
        whole = LineWeekStore.create(
            Path(tmp) / "whole", n_lines, config.population)
        for w in range(n_weeks):
            whole.append_week(w, w * 7 + 5, mono_f[w], mono_t[w])
        chunked = LineWeekStore.create(
            Path(tmp) / "chunked", n_lines, config.population)
        chunked.append_week_chunks(
            stream_weeks(config, chunk_lines=STREAM_BLOCK_LINES))
        chunked.verify()
        for w in range(n_weeks):
            for prefix in ("week", "tickets"):
                name = f"{prefix}_{w:05d}.npy"
                if (whole.root / name).read_bytes() != (
                        chunked.root / name).read_bytes():
                    failures.append(
                        f"chunk-appended {name} differs from the "
                        f"whole-week append")

        encoder = LineFeatureEncoder(EncoderConfig())
        dense = StoredWorld(chunked, out_of_core=False)
        ooc = StoredWorld(chunked, out_of_core=True)
        target = chunked.latest_week
        reference = dense.encode_week(target, encoder)
        streamed = ooc.encode_week(target, encoder, chunk_lines=5_000)
        if not np.array_equal(streamed.matrix, reference.matrix,
                              equal_nan=True):
            failures.append("out-of-core chunked encode diverged from dense")

        bundle = _scale_toy_bundle(encoder)
        bundle.predictor.model.compiled()
        multi = ScoringEngine(
            bundle, ooc, shard_size=4_096, workers=4).score_week(target)
        single = ScoringEngine(
            bundle, StoredWorld(chunked, out_of_core=True),
            shard_size=4_096, workers=1).score_week(target)
        if not np.array_equal(multi.scores, single.scores):
            failures.append("multi-worker scores diverged from single-worker")

    if failures:
        for failure in failures:
            print(f"scale smoke FAILED: {failure}")
        return 1
    print(f"smoke ok: {n_lines} lines x {n_weeks} weeks streamed in blocks "
          f"of {STREAM_BLOCK_LINES}; chunk appends byte-identical, "
          f"out-of-core encode equal to dense, {multi.n_shards}-shard "
          f"4-worker scoring bit-identical to single-worker")
    return 0


def _cmd_scale(args: argparse.Namespace) -> int:
    if args.smoke:
        return _scale_smoke(args)
    import contextlib
    import tempfile
    import time
    from pathlib import Path

    from repro.features.encoding import EncoderConfig, LineFeatureEncoder
    from repro.netsim import STREAM_BLOCK_LINES, stream_weeks
    from repro.obs.profile import peak_rss_kb
    from repro.serve import LineWeekStore, StoredWorld

    config = _sim_config(args)
    chunk = args.chunk_lines or STREAM_BLOCK_LINES
    with contextlib.ExitStack() as stack:
        if args.store:
            root = Path(args.store)
        else:
            root = Path(stack.enter_context(
                tempfile.TemporaryDirectory())) / "store"
        store = LineWeekStore.create(root, args.lines, config.population)
        gen_start = time.perf_counter()
        weeks = store.append_week_chunks(
            stream_weeks(config, chunk_lines=chunk))
        gen_seconds = time.perf_counter() - gen_start
        store.verify()

        world = StoredWorld(LineWeekStore.open(root), out_of_core=True)
        encoder = LineFeatureEncoder(EncoderConfig())
        encode_start = time.perf_counter()
        encoded = sum(
            piece.matrix.shape[0]
            for _, piece in world.iter_encode_week(
                store.latest_week, encoder, chunk_lines=chunk)
        )
        encode_seconds = time.perf_counter() - encode_start

    print(f"streamed {args.lines} lines x {len(weeks)} weeks "
          f"(chunk {chunk} lines)")
    print(f"  generate+append : {gen_seconds:.1f}s "
          f"({args.lines * len(weeks) / gen_seconds:.0f} line-weeks/s)")
    print(f"  encode (latest) : {encode_seconds:.1f}s "
          f"({encoded / encode_seconds:.0f} lines/s, streamed)")
    print(f"  peak RSS        : {peak_rss_kb() / 1024:.0f} MB")
    if args.store:
        print(f"  store           : {root}")
    return 0


_COMMANDS = {
    "simulate": _cmd_simulate,
    "predict": _cmd_predict,
    "locate": _cmd_locate,
    "export": _cmd_export,
    "snapshot": _cmd_snapshot,
    "serve": _cmd_serve,
    "obs": _cmd_obs,
    "lifecycle": _cmd_lifecycle,
    "triage": _cmd_triage,
    "explain": _cmd_explain,
    "scale": _cmd_scale,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    from repro.obs import configure_logging

    configure_logging(verbose=getattr(args, "verbose", False))
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
