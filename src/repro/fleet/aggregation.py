"""Cross-line grouping and the network-vs-premise concentration test.

One week's ranked scores say which lines *look* troubled; they do not say
why.  A line can be troubled because its own loop or home network failed
(the paper's per-line dispatch is the right fix) or because shared plant
upstream of it failed (a per-line truck roll finds nothing wrong at the
premise).  The two causes separate statistically: per-line faults land
anomalous lines uniformly across the plant, while a shared fault packs
them into one DSLAM or binder.

The test: take the top ``anomaly_pool x capacity`` ranked lines as the
anomaly pool, so the population base rate of "anomalous" is
``pool / n_lines``.  For a plant group with ``n`` lines of which ``k``
are anomalous, the binomial tail ``P(X >= k | n, base_rate)`` is the
probability of seeing such concentration by chance; a tiny tail plus a
material anomalous fraction classifies the cluster **upstream**, anything
else stays **in-home**.

Level disambiguation: a binder fault also concentrates its parent DSLAM
(the binder's lines are a subset), so significance alone cannot pick the
level.  A DSLAM-level cluster is emitted only when the concentration is
*spread* across the DSLAM's binders -- at least ``dslam_spread`` of them
individually significant -- otherwise the individual binder clusters are
kept and the DSLAM cluster is dropped as their shadow.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import stats

from repro.netsim.groupfaults import LEVEL_BINDER, LEVEL_DSLAM
from repro.netsim.topology import Topology

__all__ = [
    "CLASS_UPSTREAM",
    "CLASS_IN_HOME",
    "TriageConfig",
    "FaultCluster",
    "TriageResult",
    "find_clusters",
]

CLASS_UPSTREAM = "upstream"
CLASS_IN_HOME = "in-home"


@dataclass(frozen=True)
class TriageConfig:
    """Knobs of the concentration test.

    Attributes:
        anomaly_pool: the anomaly pool is the top ``anomaly_pool x
            capacity`` ranked lines; the wider pool (vs just top-N) keeps
            the base rate estimable and catches cluster members ranked
            just below the dispatch cut.
        alpha: binomial-tail significance threshold for "more anomalous
            members than chance allows".
        min_anomalous: a group needs at least this many anomalous members
            to be considered at all (tiny groups cannot be significant in
            a meaningful way).
        min_fraction: minimum anomalous fraction of the group -- an
            effect-size floor so huge DSLAMs cannot reach significance on
            a sliver of their lines.
        dslam_spread: fraction of a DSLAM's binders that must be
            individually significant before the cluster is promoted from
            binder level to DSLAM level.
    """

    anomaly_pool: float = 3.0
    alpha: float = 1e-3
    min_anomalous: int = 3
    min_fraction: float = 0.3
    dslam_spread: float = 0.5


@dataclass(frozen=True)
class FaultCluster:
    """A plant group whose anomalous-line concentration was tested.

    Attributes:
        level: ``"dslam"`` or ``"binder"``.
        group_id: plant-element index, per ``level``.
        line_ids: every line behind the element.
        anomalous_line_ids: the members inside the anomaly pool.
        p_value: binomial tail of the observed concentration.
        classification: ``"upstream"`` or ``"in-home"``.
    """

    level: str
    group_id: int
    line_ids: np.ndarray
    anomalous_line_ids: np.ndarray
    p_value: float
    classification: str

    @property
    def n_lines(self) -> int:
        return int(self.line_ids.size)

    @property
    def n_anomalous(self) -> int:
        return int(self.anomalous_line_ids.size)

    @property
    def anomalous_fraction(self) -> float:
        return self.n_anomalous / max(1, self.n_lines)

    def to_dict(self) -> dict:
        """A JSON-ready representation."""
        return {
            "level": self.level,
            "group_id": int(self.group_id),
            "n_lines": self.n_lines,
            "n_anomalous": self.n_anomalous,
            "anomalous_fraction": round(self.anomalous_fraction, 4),
            "p_value": float(self.p_value),
            "classification": self.classification,
            "anomalous_line_ids": [int(i) for i in self.anomalous_line_ids],
        }


@dataclass
class TriageResult:
    """Everything one week's triage pass produced."""

    config: TriageConfig
    n_lines: int
    capacity: int
    pool_line_ids: np.ndarray
    base_rate: float
    clusters: list[FaultCluster] = field(default_factory=list)

    @property
    def upstream_clusters(self) -> list[FaultCluster]:
        """The clusters classified as shared-plant problems."""
        return [c for c in self.clusters
                if c.classification == CLASS_UPSTREAM]

    def upstream_line_mask(self) -> np.ndarray:
        """Boolean mask of lines behind any upstream cluster."""
        mask = np.zeros(self.n_lines, dtype=bool)
        for cluster in self.upstream_clusters:
            mask[cluster.line_ids] = True
        return mask

    def cluster_of_line(self, line_id: int) -> FaultCluster | None:
        """The best cluster a line sits in, or None.

        ``clusters`` is kept upstream-first by p-value, so the first
        match is the strongest claim about the line's plant -- the one
        an explanation report should cite.
        """
        line_id = int(line_id)
        for cluster in self.clusters:
            if np.any(cluster.line_ids == line_id):
                return cluster
        return None

    def to_dict(self) -> dict:
        """A JSON-ready summary (clusters inline, pool as count only)."""
        upstream = self.upstream_clusters
        return {
            "n_lines": int(self.n_lines),
            "capacity": int(self.capacity),
            "pool_size": int(self.pool_line_ids.size),
            "base_rate": round(float(self.base_rate), 6),
            "n_clusters": len(self.clusters),
            "n_upstream": len(upstream),
            "clusters": [c.to_dict() for c in self.clusters],
        }


def _tail_p(k: np.ndarray, n: np.ndarray, base_rate: float) -> np.ndarray:
    """Vectorised ``P(X >= k | n, base_rate)`` binomial tails."""
    return stats.binom.sf(k - 1, n, base_rate)


def find_clusters(
    scores: np.ndarray,
    topology: Topology,
    capacity: int,
    config: TriageConfig | None = None,
) -> TriageResult:
    """Group one week's anomalous lines by shared plant and classify.

    Args:
        scores: per-line ticket scores (higher = more troubled), as
            produced by the predictor for one week.
        topology: the plant hierarchy the lines live in.
        capacity: the top-N dispatch capacity the pool scales from.
        config: test parameters (defaults when None).

    Returns:
        A :class:`TriageResult` whose clusters carry every considered
        group (both classifications), ordered upstream-first by p-value.
    """
    config = config or TriageConfig()
    scores = np.asarray(scores, dtype=float)
    n = scores.size
    if n != topology.n_lines:
        raise ValueError("scores length disagrees with topology lines")
    if capacity <= 0:
        raise ValueError("capacity must be positive")
    pool_size = int(min(n, max(capacity, round(config.anomaly_pool * capacity))))
    # Same stable ordering as the dispatch list, so triage and dispatch
    # agree on who is anomalous.
    ranked = np.argsort(-scores, kind="stable")
    pool = ranked[:pool_size]
    base_rate = pool_size / n
    anomalous = np.zeros(n, dtype=bool)
    anomalous[pool] = True

    clusters: list[FaultCluster] = []
    binder_significant = np.zeros(topology.n_binders, dtype=bool)

    def consider(level: str, group_id: int, line_ids: np.ndarray) -> bool:
        """Test one group; append its cluster; return significance."""
        members_anom = line_ids[anomalous[line_ids]]
        k = members_anom.size
        if k < config.min_anomalous:
            return False
        p_value = float(_tail_p(np.array([k]), np.array([line_ids.size]),
                                base_rate)[0])
        significant = (
            p_value < config.alpha
            and k / line_ids.size >= config.min_fraction
        )
        clusters.append(
            FaultCluster(
                level=level,
                group_id=int(group_id),
                line_ids=line_ids,
                anomalous_line_ids=members_anom,
                p_value=p_value,
                classification=CLASS_UPSTREAM if significant else CLASS_IN_HOME,
            )
        )
        return significant

    # Binder level first: per-binder anomalous counts via one bincount.
    if topology.has_binders:
        binder_anom = np.bincount(
            topology.line_binder[pool], minlength=topology.n_binders
        )
        for binder_id in np.flatnonzero(binder_anom >= config.min_anomalous):
            binder_significant[binder_id] = consider(
                LEVEL_BINDER, int(binder_id),
                topology.lines_of_binder(int(binder_id)),
            )

    # DSLAM level, with the spread rule deciding which level survives.
    dslam_anom = np.bincount(
        topology.line_dslam[pool], minlength=topology.n_dslams
    )
    drop: set[tuple[str, int]] = set()
    for dslam_id in np.flatnonzero(dslam_anom >= config.min_anomalous):
        dslam_id = int(dslam_id)
        line_ids = topology.lines_of_dslam(dslam_id)
        significant = consider(LEVEL_DSLAM, dslam_id, line_ids)
        if not significant or not topology.has_binders:
            continue
        binder_ids = np.unique(topology.line_binder[line_ids])
        spread = float(np.mean(binder_significant[binder_ids]))
        if spread >= config.dslam_spread:
            # The whole DSLAM is lit up: one DSLAM cluster subsumes its
            # binder clusters.
            for binder_id in binder_ids:
                if binder_significant[binder_id]:
                    drop.add((LEVEL_BINDER, int(binder_id)))
        elif np.any(binder_significant[binder_ids]):
            # Concentration lives in specific binders; the DSLAM cluster
            # is their shadow.  (Diffuse concentration with no binder
            # explanation stays a DSLAM cluster.)
            drop.add((LEVEL_DSLAM, dslam_id))

    kept = [c for c in clusters if (c.level, c.group_id) not in drop]
    kept.sort(key=lambda c: (c.classification != CLASS_UPSTREAM, c.p_value))
    return TriageResult(
        config=config,
        n_lines=n,
        capacity=capacity,
        pool_line_ids=pool,
        base_rate=base_rate,
        clusters=kept,
    )
