"""Plant-level triage: cross-line grouping and dispatch suppression.

The paper's pipeline scores and dispatches each line independently, so a
single failing DSLAM card or water-logged binder burns hundreds of top-N
slots on one upstream cause.  This package adds the cross-line layer:

* :mod:`repro.fleet.aggregation` groups a week's anomalous lines by the
  plant elements they share (DSLAM, binder) and runs a concentration test
  -- observed anomalous fraction in the group vs the population base
  rate, binomial tail -- to classify each cluster as **upstream-plant**
  (fix the shared element) vs **in-home** (keep per-line dispatch);
* :mod:`repro.fleet.suppression` collapses an upstream cluster's per-line
  dispatches into one group dispatch and backfills the freed top-N
  capacity from the ranked list, reporting precision-at-capacity with and
  without the policy.
"""

from repro.fleet.aggregation import (
    FaultCluster,
    TriageConfig,
    TriageResult,
    find_clusters,
)
from repro.fleet.suppression import TriagePlan, evaluate_plan, plan_dispatches

__all__ = [
    "TriageConfig",
    "FaultCluster",
    "TriageResult",
    "find_clusters",
    "TriagePlan",
    "plan_dispatches",
    "evaluate_plan",
]
