"""Hotspot dispatch suppression and top-N capacity backfill.

Once triage names the upstream clusters, sending a technician to every
member line is waste twice over: each visit finds nothing wrong at the
premise, and each burns a top-N slot another genuinely-faulty line could
have used.  The policy here:

* **suppress** -- every top-N line behind an upstream cluster loses its
  per-line dispatch;
* **consolidate** -- each upstream cluster gets exactly one group
  dispatch (one crew to the DSLAM or the splice case), costing one top-N
  slot;
* **backfill** -- the remaining slots are refilled from the ranked list,
  skipping all upstream-cluster members, so capacity stays fully used on
  lines whose problems really are their own.

:func:`evaluate_plan` scores both policies at the same N.  A per-line
slot counts as a hit only when the line has its *own* active fault (a
visit to an upstream-degraded premise closes "no trouble found"); a
group slot counts when the shared element really has an active group
fault.  This is the precision-at-capacity comparison BENCH_triage
reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.fleet.aggregation import FaultCluster, TriageResult

__all__ = ["TriagePlan", "plan_dispatches", "evaluate_plan"]


@dataclass
class TriagePlan:
    """One week's dispatch plan under the suppression policy.

    Attributes:
        week: prediction week (-1 if unknown).
        capacity: the ATDS top-N capacity shared by both policies.
        baseline_line_ids: the plain top-N per-line plan (ranked order).
        line_ids: per-line dispatches after suppression + backfill.
        group_dispatches: the upstream clusters, one group dispatch each.
        suppressed_line_ids: baseline lines dropped as cluster members.
        backfilled_line_ids: lines promoted into the freed slots.
    """

    week: int
    capacity: int
    baseline_line_ids: np.ndarray
    line_ids: np.ndarray
    group_dispatches: list[FaultCluster] = field(default_factory=list)
    suppressed_line_ids: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=int)
    )
    backfilled_line_ids: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=int)
    )

    @property
    def n_slots_used(self) -> int:
        """Top-N slots consumed (per-line + one per group dispatch)."""
        return int(self.line_ids.size) + len(self.group_dispatches)

    def group_targets(self) -> list[tuple[str, int]]:
        """The ``(level, group_id)`` pairs to hand to the simulator."""
        return [(c.level, c.group_id) for c in self.group_dispatches]

    def to_dict(self) -> dict:
        """A JSON-ready summary."""
        return {
            "week": int(self.week),
            "capacity": int(self.capacity),
            "n_group_dispatches": len(self.group_dispatches),
            "n_suppressed": int(self.suppressed_line_ids.size),
            "n_backfilled": int(self.backfilled_line_ids.size),
            "n_per_line": int(self.line_ids.size),
            "group_targets": [
                {"level": lvl, "group_id": int(gid)}
                for lvl, gid in self.group_targets()
            ],
        }


def plan_dispatches(
    scores: np.ndarray,
    capacity: int,
    triage: TriageResult,
    week: int = -1,
) -> TriagePlan:
    """Build the suppressed + backfilled plan from one week's triage.

    Uses the dispatch list's stable ranking throughout, so with zero
    upstream clusters the plan is exactly the baseline top-N.
    """
    scores = np.asarray(scores, dtype=float)
    if capacity <= 0:
        raise ValueError("capacity must be positive")
    ranked = np.argsort(-scores, kind="stable")
    baseline = ranked[:capacity]

    upstream = triage.upstream_clusters
    if not upstream:
        return TriagePlan(
            week=week, capacity=capacity,
            baseline_line_ids=baseline, line_ids=baseline,
        )

    cluster_member = triage.upstream_line_mask()
    suppressed = baseline[cluster_member[baseline]]
    per_line_slots = max(0, capacity - len(upstream))
    eligible = ranked[~cluster_member[ranked]]
    line_ids = eligible[:per_line_slots]
    in_baseline = np.isin(line_ids, baseline)
    return TriagePlan(
        week=week,
        capacity=capacity,
        baseline_line_ids=baseline,
        line_ids=line_ids,
        group_dispatches=list(upstream),
        suppressed_line_ids=suppressed,
        backfilled_line_ids=line_ids[~in_baseline],
    )


def evaluate_plan(
    plan: TriagePlan,
    line_has_fault: np.ndarray,
    active_groups: set[tuple[str, int]] | None = None,
) -> dict:
    """Precision-at-capacity for the baseline vs the triage plan.

    Args:
        plan: the week's plan.
        line_has_fault: boolean ground truth -- the line has its own
            active per-line fault (upstream degradation does NOT count:
            a premise visit there finds nothing to fix).
        active_groups: ground-truth ``(level, group_id)`` pairs with an
            active shared fault; a group dispatch is a hit iff its
            target is in this set.

    Returns:
        A dict with baseline and triage hit counts and precisions at the
        same ``plan.capacity`` denominator.
    """
    line_has_fault = np.asarray(line_has_fault, dtype=bool)
    active_groups = active_groups or set()
    capacity = max(1, plan.capacity)

    baseline_hits = int(line_has_fault[plan.baseline_line_ids].sum())
    per_line_hits = int(line_has_fault[plan.line_ids].sum())
    group_hits = sum(
        1 for target in plan.group_targets() if target in active_groups
    )
    triage_hits = per_line_hits + group_hits
    return {
        "capacity": int(plan.capacity),
        "baseline_hits": baseline_hits,
        "baseline_precision": baseline_hits / capacity,
        "per_line_hits": per_line_hits,
        "group_hits": group_hits,
        "group_dispatches": len(plan.group_dispatches),
        "triage_hits": triage_hits,
        "triage_precision": triage_hits / capacity,
        "suppressed": int(plan.suppressed_line_ids.size),
        "backfilled": int(plan.backfilled_line_ids.size),
    }
