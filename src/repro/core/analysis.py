"""Section-5 analyses of the ticket predictor's output.

Implements every evaluation in the paper's Section 5:

* :func:`evaluate_predictions` / :func:`accuracy_curve` -- the
  accuracy-at-top-x curves of Figs. 6 and 7 ("the proportion of
  subscribers associated with the top N predictions who have issued
  tickets within 4 weeks");
* :func:`urgency_cdf` / :func:`missed_ticket_fraction` -- Fig. 8: how much
  time the operator has between a prediction and the customer's call;
* :func:`explain_incorrect_by_outage` -- Table 5: the share of "incorrect"
  predictions sitting on DSLAMs with an outage within T weeks, plus the
  logistic regression of outage events on per-DSLAM prediction counts;
* :func:`explain_incorrect_by_absence` -- Section 5.2's traffic analysis:
  among incorrect predictions with byte counts, how many customers were
  simply not on site;
* :func:`ground_truth_problem_fraction` -- a simulator-only luxury the
  paper could not have: the share of "incorrect" predictions that really
  did have an active plant fault.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.logistic import fit_logistic_regression
from repro.ml.metrics import precision_at
from repro.netsim.simulator import SimulationResult
from repro.traffic.usage import TrafficLog

__all__ = [
    "PredictionOutcome",
    "evaluate_predictions",
    "accuracy_curve",
    "urgency_cdf",
    "missed_ticket_fraction",
    "OutageExplanation",
    "explain_incorrect_by_outage",
    "explain_incorrect_by_absence",
    "ground_truth_problem_fraction",
]


@dataclass
class PredictionOutcome:
    """Outcome of one week's ranked predictions against reality.

    Attributes:
        week: prediction week.
        day: prediction day (the Saturday).
        ranked_lines: all line ids, best first.
        hits: per-rank boolean -- did an edge ticket arrive within T?
        delays: per-rank days to the first such ticket (-1 when none).
    """

    week: int
    day: int
    ranked_lines: np.ndarray
    hits: np.ndarray
    delays: np.ndarray

    def accuracy_at(self, n: int) -> float:
        """Paper "accuracy": precision over the top n predictions."""
        return precision_at(self.hits.astype(float), n)

    def incorrect_top(self, n: int) -> np.ndarray:
        """Line ids of the top-n predictions with no ticket in the horizon."""
        top = self.ranked_lines[:n]
        return top[~self.hits[:n]]

    def correct_top(self, n: int) -> np.ndarray:
        """Line ids of the top-n predictions that led to a ticket."""
        top = self.ranked_lines[:n]
        return top[self.hits[:n]]


def evaluate_predictions(
    result: SimulationResult,
    ranked_lines: np.ndarray,
    week: int,
    horizon_weeks: int = 4,
) -> PredictionOutcome:
    """Score a ranking of all lines made at ``week`` against the ticket log."""
    ranked_lines = np.asarray(ranked_lines, dtype=int)
    day = int(result.measurements.saturday_day[week])
    delays_all = result.ticket_log.first_edge_ticket_after(
        result.n_lines, day, horizon_weeks * 7
    )
    delays = delays_all[ranked_lines]
    return PredictionOutcome(
        week=week,
        day=day,
        ranked_lines=ranked_lines,
        hits=delays >= 0,
        delays=delays,
    )


def accuracy_curve(
    outcomes: list[PredictionOutcome], grid: np.ndarray
) -> np.ndarray:
    """Mean accuracy-at-top-x over several weeks, for each x in ``grid``.

    This is the y-axis of Figs. 6 and 7.
    """
    if not outcomes:
        raise ValueError("no outcomes supplied")
    grid = np.asarray(grid, dtype=int)
    values = np.zeros((len(outcomes), len(grid)))
    for row, outcome in enumerate(outcomes):
        for col, n in enumerate(grid):
            values[row, col] = outcome.accuracy_at(int(n))
    return values.mean(axis=0)


def urgency_cdf(
    outcomes: list[PredictionOutcome], n: int, max_days: int = 30
) -> np.ndarray:
    """Fig. 8: CDF of days from prediction to ticket for top-n predictions.

    Entry d of the returned array is the fraction of eventually-ticketed
    top-n predictions whose ticket arrived within d days (d = 0..max_days).
    """
    delays: list[np.ndarray] = []
    for outcome in outcomes:
        top_delays = outcome.delays[:n]
        delays.append(top_delays[top_delays >= 0])
    flat = np.concatenate(delays) if delays else np.empty(0)
    cdf = np.zeros(max_days + 1)
    if flat.size == 0:
        return cdf
    for d in range(max_days + 1):
        cdf[d] = np.mean(flat <= d)
    return cdf


def missed_ticket_fraction(
    outcomes: list[PredictionOutcome], n: int, fix_days: int
) -> float:
    """Fraction of predicted tickets missed with a ``fix_days`` repair SLA.

    Section 5.2: fixing everything by Monday (2 days) misses at most 15 %
    of tickets; a 3-day turnaround misses at most 20 %.
    """
    total = 0
    missed = 0
    for outcome in outcomes:
        top_delays = outcome.delays[:n]
        ticketed = top_delays[top_delays >= 0]
        total += ticketed.size
        missed += int(np.sum(ticketed < fix_days))
    return missed / total if total else 0.0


@dataclass(frozen=True)
class OutageExplanation:
    """One Table-5 column (a choice of T).

    Attributes:
        horizon_weeks: T.
        incorrect_fraction: share of incorrect predictions whose DSLAM has
            an outage within T weeks of the prediction (row 1).
        coefficient: logistic-regression coefficient of the per-DSLAM
            prediction count predicting the outage event (row 2).
        p_value: Wald P-value of that coefficient (row 3).
    """

    horizon_weeks: int
    incorrect_fraction: float
    coefficient: float
    p_value: float


def explain_incorrect_by_outage(
    result: SimulationResult,
    outcome: PredictionOutcome,
    n: int,
    horizons_weeks: tuple[int, ...] = (1, 2, 3, 4),
) -> list[OutageExplanation]:
    """Table 5: outage/IVR explanation of incorrect predictions.

    For each horizon T: (a) the fraction of the top-n *incorrect*
    predictions located on a DSLAM with at least one outage within T weeks
    of the prediction time; (b) the logistic regression
    ``outage(d, t, T) ~ #predictions(d)`` over DSLAMs, reported as
    coefficient and P-value -- the paper finds consistently positive,
    significant coefficients.
    """
    dslam_of = result.population.dslam_idx
    n_dslams = result.population.topology.n_dslams
    top = outcome.ranked_lines[:n]
    incorrect = outcome.incorrect_top(n)
    prediction_counts = np.bincount(dslam_of[top], minlength=n_dslams).astype(float)

    explanations: list[OutageExplanation] = []
    for horizon in horizons_weeks:
        indicator = result.outages.outage_indicator(outcome.day, horizon * 7)
        if incorrect.size:
            frac = float(np.mean(indicator[dslam_of[incorrect]]))
        else:
            frac = 0.0
        if 0 < indicator.sum() < n_dslams:
            fit = fit_logistic_regression(
                prediction_counts[:, None], indicator.astype(float)
            )
            coefficient = float(fit.coefficients[0])
            p_value = float(fit.p_values[0])
        else:
            coefficient = 0.0
            p_value = 1.0
        explanations.append(
            OutageExplanation(
                horizon_weeks=int(horizon),
                incorrect_fraction=frac,
                coefficient=coefficient,
                p_value=p_value,
            )
        )
    return explanations


def explain_incorrect_by_absence(
    traffic: TrafficLog,
    incorrect_lines: np.ndarray,
    day: int,
    window_days: int = 7,
) -> tuple[int, int]:
    """Section 5.2's not-on-site analysis.

    Returns ``(with_traffic_data, not_on_site)``: of the incorrect
    predictions under an instrumented BRAS, how many customers showed no
    traffic from ``window_days`` before the prediction to ``window_days``
    after.  The paper finds 18 of 108 (16.7 %).
    """
    observed = 0
    absent = 0
    for line in np.asarray(incorrect_lines, dtype=int):
        if not traffic.is_sampled(int(line)):
            continue
        observed += 1
        if traffic.not_on_site(int(line), day, window_days):
            absent += 1
    return observed, absent


def ground_truth_problem_fraction(
    result: SimulationResult, lines: np.ndarray, day: int
) -> float:
    """Share of the given lines with a genuinely active fault on ``day``.

    Only possible on the simulator (the paper had no such oracle); used to
    show that "incorrect" predictions are largely real problems nobody
    reported.
    """
    lines = np.asarray(lines, dtype=int)
    if lines.size == 0:
        return 0.0
    active = result.fault_active_on(day)
    return float(np.mean(active[lines]))
