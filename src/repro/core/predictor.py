"""The ticket predictor (Section 4).

Pipeline, mirroring the paper end to end:

1. encode every line's measurement history into the Table-3 base features
   (basic / delta / time-series / profile / ticket / modem);
2. score every candidate with a single-feature BStump and the top-N
   average precision on a held-out selection window, keeping the
   candidates above the per-family thresholds (Section 4.3);
3. grow derived candidates -- quadratics of every base feature and
   products over a pool of the strongest base features -- and score/select
   them the same way (the paper's Fig-4 histograms with thresholds 0.2 and
   0.3);
4. train the final BStump on the selected columns (800 rounds in the
   paper, configurable here) and Platt-calibrate the margin into
   ``P(Tkt(u) | x)`` (Section 4.4);
5. at run time, rank all lines by that posterior and hand the top
   ``capacity`` to ATDS.

The derived-feature *recipes* (which base column to square, which pairs to
multiply) are stored so that prediction weeks are encoded base-only and
derived columns are reconstructed cheaply.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.joins import LabeledDataset, build_ticket_dataset
from repro.data.splits import TemporalSplit
from repro.features.encoding import EncoderConfig, FeatureSet, LineFeatureEncoder
from repro.features.selection import single_feature_ap
from repro.ml.binning import BinnedDataset
from repro.ml.boostexter import BStump, BStumpConfig, TRAIN_BACKENDS
from repro.netsim.simulator import SimulationResult
from repro.obs.tracing import span

__all__ = ["PredictorConfig", "TicketPredictor"]


@dataclass(frozen=True)
class PredictorConfig:
    """Ticket-predictor knobs.

    Attributes:
        capacity: the N of top-N -- how many predictions ATDS can absorb
            weekly (20K in the paper; scale to the simulated population).
        horizon_weeks: label horizon T (4 weeks in the paper).
        selection_rounds: boosting rounds of the single-feature selectors.
        train_rounds: boosting rounds of the final model (paper: 800).
        base_threshold: AP(N) threshold for history/customer features.
            None (default) adapts to the observed score distribution --
            the paper's absolute 0.2/0.3 cuts come from eyeballing the
            bimodal Fig-4 histograms at AT&T scale, which does not
            transfer across population sizes; the adaptive rule keeps
            features whose AP clears ``adaptive_fraction`` of the best
            observed AP, which lands in the same histogram gap.
        quadratic_threshold: AP(N) threshold for squared features
            (None = adaptive).
        product_threshold: AP(N) threshold for product features (higher,
            per Section 4.3: a product should beat both factors;
            None = adaptive with a stricter fraction).
        adaptive_fraction: fraction of the best base AP used by the
            adaptive thresholds.
        product_pool: how many of the strongest base features feed the
            product-candidate pairs.
        include_derived: disable to reproduce the Fig-7 dotted curve
            (history + customer features only).
        min_selected: floor on the number of base features kept, in case a
            threshold filters everything on small simulations.
        backend: training backend for the selection sweep and the final
            model -- "exact" (sorted-domain search) or "hist"
            (histogram-binned; see :mod:`repro.ml.binning`).  Under
            "hist" each candidate matrix is binned exactly once and the
            binning is shared between its selection sweep and the final
            model fit.
        n_bins: per-feature bin budget of the hist backend.
    """

    capacity: int = 400
    horizon_weeks: int = 4
    selection_rounds: int = 4
    train_rounds: int = 250
    base_threshold: float | None = None
    quadratic_threshold: float | None = None
    product_threshold: float | None = None
    adaptive_fraction: float = 0.35
    product_pool: int = 16
    include_derived: bool = True
    min_selected: int = 10
    backend: str = "exact"
    n_bins: int = 256

    def __post_init__(self) -> None:
        if self.backend not in TRAIN_BACKENDS:
            raise ValueError(
                f"backend must be one of {TRAIN_BACKENDS}, got {self.backend!r}"
            )


@dataclass
class _DerivedRecipes:
    """Column recipes mapping base features to the final model input."""

    base_indices: list[int] = field(default_factory=list)
    quad_indices: list[int] = field(default_factory=list)
    product_pairs: list[tuple[int, int]] = field(default_factory=list)

    @property
    def n_columns(self) -> int:
        return len(self.base_indices) + len(self.quad_indices) + len(self.product_pairs)


class TicketPredictor:
    """Learns to rank DSL lines by P(edge ticket within T weeks)."""

    def __init__(self, config: PredictorConfig | None = None,
                 encoder: LineFeatureEncoder | None = None):
        self.config = config or PredictorConfig()
        self.encoder = encoder or LineFeatureEncoder(EncoderConfig())
        self.model: BStump | None = None
        self.recipes = _DerivedRecipes()
        self.feature_names: list[str] = []
        self.selection_scores_: dict[str, np.ndarray] = {}
        self._base_categorical: np.ndarray | None = None
        self._thresholds: dict[str, float] = {}

    # ----- training -----------------------------------------------------

    def fit(self, result: SimulationResult, split: TemporalSplit) -> "TicketPredictor":
        """Train on a simulation result using the given temporal split."""
        cfg = self.config
        train = build_ticket_dataset(
            result, split.train_weeks, self.encoder, cfg.horizon_weeks
        )
        selection = build_ticket_dataset(
            result, split.selection_weeks, self.encoder, cfg.horizon_weeks
        )
        return self.fit_datasets(train, selection)

    def fit_datasets(
        self, train: LabeledDataset, selection: LabeledDataset
    ) -> "TicketPredictor":
        """Train from pre-built base-feature datasets (advanced interface)."""
        cfg = self.config
        if train.features.n_features != selection.features.n_features:
            raise ValueError("train/selection feature sets must align")
        if len(np.unique(train.y)) < 2:
            raise ValueError("training window contains a single class")
        self._base_categorical = train.features.categorical.copy()

        with span(
            "predict.fit",
            rows=train.features.matrix.shape[0],
            base_features=train.features.n_features,
        ):
            return self._fit_datasets_inner(train, selection)

    def _fit_datasets_inner(
        self, train: LabeledDataset, selection: LabeledDataset
    ) -> "TicketPredictor":
        cfg = self.config
        hist = cfg.backend == "hist"
        # Under the hist backend every candidate matrix is quantised once
        # and the binning is shared: the selection sweep scans its edges,
        # and the final fit reuses the selected columns' codes -- a full
        # select-then-train run bins each matrix exactly once.
        base_binned = (
            BinnedDataset.from_matrix(
                train.features.matrix,
                train.features.categorical,
                max_bins=cfg.n_bins,
            )
            if hist
            else None
        )
        with span("predict.select_base", backend=cfg.backend):
            base_scores = single_feature_ap(
                train.features, train.y, selection.features, selection.y,
                cfg.capacity, n_rounds=cfg.selection_rounds,
                backend=cfg.backend, binned=base_binned,
            )
        self.selection_scores_["base"] = base_scores
        best = float(np.max(base_scores)) if base_scores.size else 0.0
        base_threshold = (
            cfg.base_threshold
            if cfg.base_threshold is not None
            else cfg.adaptive_fraction * best
        )
        self._thresholds = {
            "base": base_threshold,
            "quadratic": (
                cfg.quadratic_threshold
                if cfg.quadratic_threshold is not None
                else cfg.adaptive_fraction * best
            ),
            "product": (
                cfg.product_threshold
                if cfg.product_threshold is not None
                else 1.5 * cfg.adaptive_fraction * best
            ),
        }
        order = np.argsort(-base_scores, kind="stable")
        keep = order[base_scores[order] > base_threshold]
        if keep.size < cfg.min_selected:
            keep = order[:cfg.min_selected]
        self.recipes = _DerivedRecipes(base_indices=[int(i) for i in keep])

        quad_binned = prod_binned = None
        prod_rows: np.ndarray | None = None
        if cfg.include_derived:
            with span("predict.select_derived"):
                quad_binned, prod_binned, prod_rows = self._select_derived(
                    train, selection, base_scores, base_binned
                )

        with span("predict.final_train", rounds=cfg.train_rounds,
                  backend=cfg.backend):
            X_train = self._assemble(train.features)
            names = self._column_names(train.features)
            self.feature_names = names
            categorical = self._column_categorical(train.features)
            binned_final = None
            if hist:
                # Reassemble the final training columns from the
                # selection-time binnings instead of re-binning: the
                # assembled matrix's columns are (by construction) the
                # same value columns the candidate binnings quantised.
                parts = [base_binned.select(self.recipes.base_indices)]
                if self.recipes.quad_indices and quad_binned is not None:
                    parts.append(quad_binned.select(self.recipes.quad_indices))
                if self.recipes.product_pairs and prod_binned is not None:
                    parts.append(prod_binned.select(prod_rows))
                binned_final = BinnedDataset.hstack(parts)
            self.model = BStump(
                BStumpConfig(
                    n_rounds=cfg.train_rounds,
                    backend=cfg.backend,
                    n_bins=cfg.n_bins,
                )
            ).fit(X_train, train.y, categorical=categorical, binned=binned_final)
        return self

    def _select_derived(
        self,
        train: LabeledDataset,
        selection: LabeledDataset,
        base_scores: np.ndarray,
        base_binned: BinnedDataset | None = None,
    ) -> tuple[BinnedDataset | None, BinnedDataset | None, np.ndarray | None]:
        """Score and select quadratic and product candidates (Fig 4 b/c).

        Returns the candidate binnings (hist backend only, else None) so
        the final fit can reuse them: the quadratic candidates' binning,
        the product candidates' binning, and the selected product rows
        within it.
        """
        cfg = self.config
        hist = base_binned is not None
        base_train = train.features
        base_sel = selection.features
        n_base = base_train.n_features

        # Quadratics of every base feature.
        quad_train = FeatureSet(
            matrix=base_train.matrix**2,
            names=[f"quad:{n}" for n in base_train.names],
            groups=["quadratic"] * n_base,
            categorical=np.zeros(n_base, dtype=bool),
        )
        quad_sel = FeatureSet(
            matrix=base_sel.matrix**2,
            names=quad_train.names,
            groups=quad_train.groups,
            categorical=quad_train.categorical,
        )
        quad_binned = (
            BinnedDataset.from_matrix(
                quad_train.matrix, quad_train.categorical, max_bins=cfg.n_bins
            )
            if hist
            else None
        )
        quad_scores = single_feature_ap(
            quad_train, train.y, quad_sel, selection.y,
            cfg.capacity, n_rounds=cfg.selection_rounds,
            backend=cfg.backend, binned=quad_binned,
        )
        self.selection_scores_["quadratic"] = quad_scores
        self.recipes.quad_indices = [
            int(i)
            for i in np.flatnonzero(quad_scores > self._thresholds["quadratic"])
        ]

        # Products over the pool of strongest base features.
        pool = np.argsort(-base_scores, kind="stable")[:cfg.product_pool]
        pairs = [
            (int(pool[a]), int(pool[b]))
            for a in range(len(pool))
            for b in range(a + 1, len(pool))
        ]
        if not pairs:
            self.selection_scores_["product"] = np.empty(0)
            return quad_binned, None, None
        prod_train_matrix = np.column_stack(
            [base_train.matrix[:, i] * base_train.matrix[:, j] for i, j in pairs]
        )
        prod_sel_matrix = np.column_stack(
            [base_sel.matrix[:, i] * base_sel.matrix[:, j] for i, j in pairs]
        )
        prod_names = [
            f"prod:{base_train.names[i]}*{base_train.names[j]}" for i, j in pairs
        ]
        prod_train = FeatureSet(
            matrix=prod_train_matrix, names=prod_names,
            groups=["product"] * len(pairs),
            categorical=np.zeros(len(pairs), dtype=bool),
        )
        prod_sel = FeatureSet(
            matrix=prod_sel_matrix, names=prod_names,
            groups=prod_train.groups, categorical=prod_train.categorical,
        )
        prod_binned = (
            BinnedDataset.from_matrix(
                prod_train.matrix, prod_train.categorical, max_bins=cfg.n_bins
            )
            if hist
            else None
        )
        prod_scores = single_feature_ap(
            prod_train, train.y, prod_sel, selection.y,
            cfg.capacity, n_rounds=cfg.selection_rounds,
            backend=cfg.backend, binned=prod_binned,
        )
        self.selection_scores_["product"] = prod_scores
        prod_rows = np.flatnonzero(prod_scores > self._thresholds["product"])
        self.recipes.product_pairs = [pairs[i] for i in prod_rows]
        return quad_binned, prod_binned, prod_rows

    # ----- column assembly ------------------------------------------------

    def _assemble(self, base: FeatureSet) -> np.ndarray:
        r = self.recipes
        blocks = [base.matrix[:, r.base_indices]]
        if r.quad_indices:
            blocks.append(base.matrix[:, r.quad_indices] ** 2)
        if r.product_pairs:
            blocks.append(
                np.column_stack(
                    [base.matrix[:, i] * base.matrix[:, j] for i, j in r.product_pairs]
                )
            )
        return np.hstack(blocks)

    def _column_names(self, base: FeatureSet) -> list[str]:
        r = self.recipes
        names = [base.names[i] for i in r.base_indices]
        names += [f"quad:{base.names[i]}" for i in r.quad_indices]
        names += [
            f"prod:{base.names[i]}*{base.names[j]}" for i, j in r.product_pairs
        ]
        return names

    def _column_categorical(self, base: FeatureSet) -> np.ndarray:
        r = self.recipes
        parts = [base.categorical[r.base_indices]]
        parts.append(np.zeros(len(r.quad_indices), dtype=bool))
        parts.append(np.zeros(len(r.product_pairs), dtype=bool))
        return np.concatenate(parts)

    # ----- inference -------------------------------------------------------

    def score_features(self, base: FeatureSet) -> np.ndarray:
        """Calibrated P(ticket within T) from a base feature set."""
        if self.model is None:
            raise RuntimeError("predictor is not fitted")
        return self.model.predict_proba(self._assemble(base))

    def score_week(self, result: SimulationResult, week: int) -> np.ndarray:
        """Calibrated scores for every line at prediction week ``week``."""
        with span("predict.encode", week=week):
            base = self.encoder.encode(
                result.measurements, week, result.population, result.ticket_log
            )
        with span("predict.score", week=week):
            return self.score_features(base)

    def rank_week(self, result: SimulationResult, week: int) -> np.ndarray:
        """All line ids ranked by decreasing ticket probability."""
        scores = self.score_week(result, week)
        return np.argsort(-scores, kind="stable")

    def predict_top(self, result: SimulationResult, week: int) -> np.ndarray:
        """The top-``capacity`` line ids submitted to ATDS (Section 3.2)."""
        return self.rank_week(result, week)[: self.config.capacity]

    # ----- persistence -------------------------------------------------------

    def to_dict(self) -> dict:
        """Serialise the fitted predictor (recipes + model) to plain data.

        The encoder configuration is included so a deployment host encodes
        prediction weeks identically to the training host.
        """
        from dataclasses import asdict

        from repro.ml.serialize import bstump_to_dict

        if self.model is None:
            raise RuntimeError("predictor is not fitted")
        return {
            "format_version": 1,
            "config": asdict(self.config),
            "encoder": asdict(self.encoder.config),
            "recipes": {
                "base_indices": list(self.recipes.base_indices),
                "quad_indices": list(self.recipes.quad_indices),
                "product_pairs": [list(p) for p in self.recipes.product_pairs],
            },
            "feature_names": list(self.feature_names),
            "model": bstump_to_dict(self.model),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TicketPredictor":
        """Rebuild a fitted predictor from :meth:`to_dict` output."""
        from repro.ml.serialize import bstump_from_dict

        if payload.get("format_version") != 1:
            raise ValueError("unsupported predictor format version")
        predictor = cls(
            PredictorConfig(**payload["config"]),
            LineFeatureEncoder(EncoderConfig(**payload["encoder"])),
        )
        predictor.recipes = _DerivedRecipes(
            base_indices=[int(i) for i in payload["recipes"]["base_indices"]],
            quad_indices=[int(i) for i in payload["recipes"]["quad_indices"]],
            product_pairs=[
                (int(i), int(j)) for i, j in payload["recipes"]["product_pairs"]
            ],
        )
        predictor.feature_names = list(payload["feature_names"])
        predictor.model = bstump_from_dict(payload["model"])
        return predictor
