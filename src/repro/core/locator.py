"""The trouble locator (Section 6).

Given a dispatch, rank all 52 candidate dispositions so the technician
tests likely locations first.  Three models:

* :class:`ExperienceModel` -- Section 6.1's baseline: rank dispositions by
  their historical frequency, ignoring the line's measurements ("the best
  ranked list is based on the prior probability that problems occur at a
  given location in the past").
* :class:`FlatLocator` -- Section 6.2's flat model: one-vs-other BStump per
  disposition, logistic-calibrated into ``P_ij(C_ij | x)``.
* :class:`CombinedLocator` -- the combined model of Eq. 2: for each
  disposition, a logistic regression blends the disposition classifier's
  score with the score of its parent *major location* classifier,

  .. math::

      P^{adj}_{ij}(C_{ij}|x) = \\frac{1}{1 + \\exp(-\\gamma^1_{ij}
      f_{C_{ij}}(x) - \\gamma^2_{ij} f_{C_{i\\cdot}}(x) - \\gamma^0_{ij})}

  which lets rare dispositions borrow strength from their location's
  (much better-trained) classifier.

Evaluation helpers implement the paper's rank metrics: the rank of the
true disposition in each model's list, the tests-to-locate quantile
(Section 6.3's "maximum of 9 tests basic vs 4 with the models"), and the
binned average rank improvement of Fig. 10.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.joins import LocatorDataset
from repro.ml.binning import BinnedDataset
from repro.ml.boostexter import TRAIN_BACKENDS, BStump, BStumpConfig
from repro.ml.calibration import PlattCalibrator
from repro.ml.ensemble_scoring import MultiHeadEnsemble, compile_multihead
from repro.ml.logistic import fit_logistic_regression
from repro.netsim.components import DISPOSITIONS, disposition_arrays
from repro.parallel import parallel_map

__all__ = [
    "LocatorConfig",
    "ExperienceModel",
    "FlatLocator",
    "CombinedLocator",
    "ranks_of_truth",
    "tests_to_locate",
    "rank_improvement_by_bin",
]

N_DISPOSITIONS = len(DISPOSITIONS)
N_LOCATIONS = 4


@dataclass(frozen=True)
class LocatorConfig:
    """Locator training knobs.

    Attributes:
        n_rounds: BStump rounds per one-vs-rest model (paper: 200).
        min_positive: dispositions with fewer positives in training fall
            back to prior-only scores (the paper avoids this by keeping
            only dispositions with > 20 occurrences; tiny simulations may
            still starve a class).
        prior_smoothing: additive smoothing of the experience prior.
        cv_folds: cross-validation folds used to produce unbiased margins
            for both the flat model's Platt calibration and the Eq.-2
            logistic blend.  Training margins are overconfident (the
            one-vs-rest models have memorised their training rows); ranking
            52 classes against each other requires honest confidences.
        cv_seed: fold-assignment seed.
        backend: stump-search backend for every one-vs-rest head.
            "hist" (default) quantises the training matrix into one
            shared :class:`~repro.ml.binning.BinnedDataset` that all 52
            disposition heads, all 4 location heads, and every CV-fold
            refit reuse; "exact" runs the per-head sorted-domain search
            (the historical path, and what pre-existing payloads load
            as).
        n_bins: per-feature bin budget for the shared binning (hist
            backend only).
        max_split_points: per-feature candidate-threshold cap per round
            for the exact backend, forwarded to each head.
    """

    n_rounds: int = 150
    min_positive: int = 4
    prior_smoothing: float = 1.0
    cv_folds: int = 3
    cv_seed: int = 17
    backend: str = "hist"
    n_bins: int = 256
    max_split_points: int = 256

    def __post_init__(self) -> None:
        if self.backend not in TRAIN_BACKENDS:
            raise ValueError(
                f"backend must be one of {TRAIN_BACKENDS}, got {self.backend!r}"
            )
        if self.n_bins < 2:
            raise ValueError("n_bins must be at least 2")


class ExperienceModel:
    """Rank dispositions by historical frequency only."""

    def __init__(self, config: LocatorConfig | None = None):
        self.config = config or LocatorConfig()
        self.prior_: np.ndarray | None = None

    def fit(self, train: LocatorDataset) -> "ExperienceModel":
        counts = np.bincount(train.disposition, minlength=N_DISPOSITIONS).astype(float)
        counts += self.config.prior_smoothing
        self.prior_ = counts / counts.sum()
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """(n, 52) matrix of identical per-row priors."""
        if self.prior_ is None:
            raise RuntimeError("experience model is not fitted")
        X = np.atleast_2d(X)
        return np.tile(self.prior_, (X.shape[0], 1))


def _fold_assignment(n: int, folds: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.permutation(n) % folds


def _fit_one_vs_rest(
    X: np.ndarray,
    positives: np.ndarray,
    categorical: np.ndarray,
    cfg: LocatorConfig,
    binned: BinnedDataset | None = None,
) -> BStump | None:
    """A single uncalibrated one-vs-rest model, or None if class-starved.

    ``binned`` is the shared pre-quantised form of ``X`` (hist backend);
    passing it lets all heads trained on the same rows skip re-binning.
    """
    n_pos = float(positives.sum())
    if n_pos < cfg.min_positive or n_pos > len(positives) - cfg.min_positive:
        return None
    head_cfg = BStumpConfig(
        n_rounds=cfg.n_rounds,
        calibrate=False,
        max_split_points=cfg.max_split_points,
        backend=cfg.backend,
        n_bins=cfg.n_bins,
    )
    return BStump(head_cfg).fit(
        X, positives.astype(float), categorical=categorical, binned=binned
    )


class FlatLocator:
    """One-vs-rest BStump per disposition with Platt calibration.

    The per-class models are trained on all data; their Platt calibrators
    are fitted on *out-of-fold* margins so that cross-class comparisons
    (which is what a ranked disposition list is) reflect honest test-time
    confidence rather than memorised training margins.
    """

    def __init__(self, config: LocatorConfig | None = None):
        self.config = config or LocatorConfig()
        self.models_: dict[int, BStump] = {}
        self.calibrators_: dict[int, PlattCalibrator] = {}
        self.prior_: np.ndarray | None = None
        self.oof_decision_: np.ndarray | None = None
        self.fold_assignment_: np.ndarray | None = None
        self.binned_: BinnedDataset | None = None
        self._categorical: np.ndarray | None = None
        self._multihead: MultiHeadEnsemble | None = None

    def fit(self, train: LocatorDataset) -> "FlatLocator":
        cfg = self.config
        X = train.features.matrix
        n = train.n_examples
        self._categorical = train.features.categorical
        counts = np.bincount(train.disposition, minlength=N_DISPOSITIONS).astype(float)
        self.prior_ = (counts + cfg.prior_smoothing) / (
            counts.sum() + cfg.prior_smoothing * N_DISPOSITIONS
        )

        # The shared binning fabric: quantise the training matrix once;
        # every head (and, via ``binned_``, the combined model's location
        # heads) searches the same pre-binned codes.
        binned = None
        if cfg.backend == "hist":
            binned = BinnedDataset.from_matrix(
                np.asarray(X, dtype=float),
                self._categorical,
                max_bins=cfg.n_bins,
            )
        self.binned_ = binned

        # The 52 one-vs-rest fits are independent over shared read-only
        # arrays -- the natural unit for the parallel fabric.
        fitted = parallel_map(
            lambda code: _fit_one_vs_rest(
                X, train.disposition == code, self._categorical, cfg,
                binned=binned,
            ),
            range(N_DISPOSITIONS),
        )
        self.models_ = {
            code: model for code, model in enumerate(fitted) if model is not None
        }
        self._multihead = None

        # Out-of-fold margins for calibration (and for the combined model).
        folds = max(2, cfg.cv_folds)
        prior_logit = np.log(self.prior_ / (1.0 - self.prior_))
        oof = np.tile(prior_logit, (n, 1))
        self.fold_assignment_ = None
        if n >= folds * 4:
            assignment = _fold_assignment(n, folds, cfg.cv_seed)
            self.fold_assignment_ = assignment
            rests = [assignment != fold for fold in range(folds)]
            # Per-fold row gathers hoisted out of the per-head tasks: a
            # fold's training rows, held-out rows, and row subset of the
            # shared binning are shared by its 52 refits.
            fold_rows = [
                (
                    X[rest],
                    X[~rest],
                    binned.rows(rest) if binned is not None else None,
                )
                for rest in rests
            ]
            tasks = [
                (fold, code) for fold in range(folds) for code in self.models_
            ]

            def oof_margins(task: tuple[int, int]) -> np.ndarray | None:
                fold, code = task
                X_rest, X_hold, binned_rest = fold_rows[fold]
                model = _fit_one_vs_rest(
                    X_rest, train.disposition[rests[fold]] == code,
                    self._categorical, cfg, binned=binned_rest,
                )
                if model is None:
                    return None
                return model.decision_function(X_hold)

            for (fold, code), margins in zip(
                tasks, parallel_map(oof_margins, tasks)
            ):
                if margins is not None:
                    oof[~rests[fold], code] = margins
        else:
            oof = self.decision_matrix(X)
        self.oof_decision_ = oof

        self.calibrators_ = {}
        for code in self.models_:
            y = (train.disposition == code).astype(float)
            self.calibrators_[code] = PlattCalibrator().fit(oof[:, code], y)
        return self

    def _stacked(self) -> MultiHeadEnsemble | None:
        """The 52-way compiled scorer, built lazily and cached."""
        if self._multihead is None and self.models_:
            heads = {code: model.compiled() for code, model in self.models_.items()}
            n_features = next(iter(heads.values())).n_features
            self._multihead = compile_multihead(
                heads, n_heads=N_DISPOSITIONS, n_features=n_features
            )
        return self._multihead

    def decision_matrix(self, X: np.ndarray) -> np.ndarray:
        """(n, 52) raw margins; prior log-odds for untrained classes.

        One stacked multi-head pass over the feature columns
        (:class:`~repro.ml.ensemble_scoring.MultiHeadEnsemble`), each
        margin column bit-identical to that head's own
        ``decision_function``.
        """
        if self.prior_ is None:
            raise RuntimeError("locator is not fitted")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        out = np.tile(np.log(self.prior_ / (1.0 - self.prior_)), (X.shape[0], 1))
        stacked = self._stacked()
        if stacked is not None:
            stacked.decision_matrix(X, out=out)
        return out

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """(n, 52) calibrated one-vs-rest probabilities ``P_ij(C_ij|x)``."""
        if self.prior_ is None:
            raise RuntimeError("locator is not fitted")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        out = np.tile(self.prior_, (X.shape[0], 1))
        stacked = self._stacked()
        if stacked is None:
            return out
        margins = stacked.decision_matrix(X)
        codes = stacked.head_columns
        # Vectorised Platt transform: the same clip/exp elementwise ops
        # as PlattCalibrator.transform, applied to all columns at once.
        a = np.array([self.calibrators_[int(c)].a for c in codes])
        b = np.array([self.calibrators_[int(c)].b for c in codes])
        z = np.clip(a * margins[:, codes] + b, -500, 500)
        out[:, codes] = 1.0 / (1.0 + np.exp(z))
        return out


class CombinedLocator:
    """The Eq.-2 combined model: disposition + parent-location blending."""

    def __init__(self, config: LocatorConfig | None = None):
        self.config = config or LocatorConfig()
        self.flat = FlatLocator(self.config)
        self.location_models_: dict[int, BStump] = {}
        self.blend_: dict[int, tuple[float, float, float]] = {}
        self._location_of = disposition_arrays().location
        self._loc_multihead: MultiHeadEnsemble | None = None

    def fit(self, train: LocatorDataset) -> "CombinedLocator":
        cfg = self.config
        X = train.features.matrix
        self.flat.fit(train)

        # Major-location one-vs-rest models (4 of them, far better fed),
        # trained over the flat model's shared binning.
        fitted = parallel_map(
            lambda loc: _fit_one_vs_rest(
                X, train.location == loc, train.features.categorical, cfg,
                binned=self.flat.binned_,
            ),
            range(N_LOCATIONS),
        )
        self.location_models_ = {
            loc: model for loc, model in enumerate(fitted) if model is not None
        }
        self._loc_multihead = None

        # Per-disposition logistic blend of the two margins (Eq. 2),
        # fitted on out-of-fold margins so the blend sees honestly
        # calibrated disposition scores.  The disposition margins are
        # reused from the flat model's calibration pass.
        f_disp = self.flat.oof_decision_
        f_loc = self._oof_location_margins(train)
        self.blend_ = {}
        for code in range(N_DISPOSITIONS):
            if code not in self.flat.models_:
                continue
            y = (train.disposition == code).astype(float)
            design = np.column_stack(
                [f_disp[:, code], f_loc[:, self._location_of[code]]]
            )
            fit = fit_logistic_regression(design, y, ridge=1e-3)
            self.blend_[code] = (
                float(fit.coefficients[0]),
                float(fit.coefficients[1]),
                float(fit.intercept),
            )
        return self

    def _oof_location_margins(self, train: LocatorDataset) -> np.ndarray:
        """Cross-validated major-location margins over the training rows.

        Reuses the flat model's stored fold assignment
        (``flat.fold_assignment_``) so disposition and location margins
        are fold-consistent per row, and reuses row subsets of the flat
        model's shared binning for the fold refits.
        """
        cfg = self.config
        n = train.n_examples
        folds = max(2, cfg.cv_folds)
        X = train.features.matrix
        if n < folds * 4:
            return self._location_margins(X)
        assignment = self.flat.fold_assignment_
        if assignment is None or assignment.shape != (n,):
            assignment = _fold_assignment(n, folds, cfg.cv_seed)
        binned = self.flat.binned_
        if binned is not None and binned.n_rows != n:
            binned = None
        f_loc = np.zeros((n, N_LOCATIONS))
        rests = [assignment != fold for fold in range(folds)]
        fold_rows = [
            (
                X[rest],
                X[~rest],
                binned.rows(rest) if binned is not None else None,
            )
            for rest in rests
        ]
        tasks = [
            (fold, loc) for fold in range(folds) for loc in range(N_LOCATIONS)
        ]

        def oof_margins(task: tuple[int, int]) -> np.ndarray | None:
            fold, loc = task
            X_rest, X_hold, binned_rest = fold_rows[fold]
            model = _fit_one_vs_rest(
                X_rest, train.location[rests[fold]] == loc,
                train.features.categorical, cfg, binned=binned_rest,
            )
            if model is None:
                return None
            return model.decision_function(X_hold)

        for (fold, loc), margins in zip(tasks, parallel_map(oof_margins, tasks)):
            if margins is not None:
                f_loc[~rests[fold], loc] = margins
        return f_loc

    def _stacked_locations(self) -> MultiHeadEnsemble | None:
        """The 4-way compiled location scorer, built lazily and cached."""
        if self._loc_multihead is None and self.location_models_:
            heads = {
                loc: model.compiled()
                for loc, model in self.location_models_.items()
            }
            n_features = next(iter(heads.values())).n_features
            self._loc_multihead = compile_multihead(
                heads, n_heads=N_LOCATIONS, n_features=n_features
            )
        return self._loc_multihead

    def _location_margins(self, X: np.ndarray) -> np.ndarray:
        X = np.atleast_2d(np.asarray(X, dtype=float))
        out = np.zeros((X.shape[0], N_LOCATIONS))
        stacked = self._stacked_locations()
        if stacked is not None:
            stacked.decision_matrix(X, out=out)
        return out

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """(n, 52) adjusted posteriors ``P_adj(C_ij | x)`` per Eq. 2.

        Both margin matrices come from stacked multi-head passes, and
        the Eq.-2 blend is applied to all trained columns at once; the
        elementwise operations match the historical per-code loop, so
        posteriors are bit-identical to it.
        """
        if self.flat.prior_ is None:
            raise RuntimeError("locator is not fitted")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        f_disp = self.flat.decision_matrix(X)
        f_loc = self._location_margins(X)
        out = np.tile(self.flat.prior_, (X.shape[0], 1))
        if self.blend_:
            codes = np.array(sorted(self.blend_), dtype=np.intp)
            gammas = np.array([self.blend_[int(c)] for c in codes])
            locs = self._location_of[codes]
            z = (
                gammas[:, 0] * f_disp[:, codes]
                + gammas[:, 1] * f_loc[:, locs]
                + gammas[:, 2]
            )
            out[:, codes] = 1.0 / (1.0 + np.exp(-np.clip(z, -500, 500)))
        return out

    def explain(self, x: np.ndarray, code: int, top_k: int = 6) -> dict:
        """A Fig-9-style breakdown of one combined inference.

        Fig. 9 of the paper draws the combined model for "inside wiring at
        HN" as a three-layer graph: line-feature ranges at the bottom feed
        signed stump scores into the disposition classifier ``f_IW`` and
        the location classifier ``f_HN``, whose outputs blend into
        ``P(IW_adj | x)``.  This returns the same decomposition as data:
        the top feature contributions to each intermediate score, the two
        margins, the blend coefficients (gammas), and the final posterior.

        Args:
            x: one feature row.
            code: disposition index to explain.
            top_k: how many bottom-layer contributions to list per
                intermediate classifier.
        """
        if code not in self.blend_:
            raise KeyError(f"disposition {code} has no trained combined model")
        x = np.asarray(x, dtype=float)
        location = int(self._location_of[code])
        disp_model = self.flat.models_[code]
        loc_model = self.location_models_.get(location)
        f_disp = float(disp_model.decision_function(x[None, :])[0])
        f_loc = (
            float(loc_model.decision_function(x[None, :])[0])
            if loc_model is not None
            else 0.0
        )
        g1, g2, g0 = self.blend_[code]
        z = g1 * f_disp + g2 * f_loc + g0
        posterior = 1.0 / (1.0 + np.exp(-np.clip(z, -500, 500)))
        return {
            "code": code,
            "location": location,
            "disposition_margin": f_disp,
            "location_margin": f_loc,
            "gammas": (g1, g2, g0),
            "posterior": float(posterior),
            "disposition_contributions": disp_model.explain(x, top_k),
            "location_contributions": (
                loc_model.explain(x, top_k) if loc_model is not None else []
            ),
        }


# ----- evaluation ---------------------------------------------------------


def ranks_of_truth(prob_matrix: np.ndarray, truth: np.ndarray) -> np.ndarray:
    """1-based rank of the true disposition in each row's ordering.

    A rank of r means the technician following the list tests r candidate
    dispositions before finding the real problem.
    """
    prob_matrix = np.atleast_2d(np.asarray(prob_matrix, dtype=float))
    truth = np.asarray(truth, dtype=int)
    if truth.shape != (prob_matrix.shape[0],):
        raise ValueError("one truth label per row is required")
    n, n_codes = prob_matrix.shape
    if n == 0:
        return np.empty(0, dtype=int)
    if truth.min() < 0 or truth.max() >= n_codes:
        raise IndexError("truth label out of range")
    # Rank under a stable descending sort = 1 + (entries strictly larger)
    # + (tied entries at a lower column index) -- the exact position
    # ``np.argsort(-row, kind="stable")`` would assign, without the
    # per-row Python loop.
    truth_p = prob_matrix[np.arange(n), truth][:, None]
    beaten = np.count_nonzero(prob_matrix > truth_p, axis=1)
    tied_before = np.count_nonzero(
        (prob_matrix == truth_p)
        & (np.arange(n_codes)[None, :] < truth[:, None]),
        axis=1,
    )
    return (beaten + tied_before + 1).astype(int)


def tests_to_locate(ranks: np.ndarray, quantile: float = 0.5) -> int:
    """Tests needed to locate the given fraction of problems.

    Section 6.3: basic ranks need a maximum of 9 tests to cover 50 % of
    problems; the learned models need 4.
    """
    ranks = np.asarray(ranks)
    if ranks.size == 0:
        raise ValueError("no ranks supplied")
    if not 0 < quantile <= 1:
        raise ValueError("quantile must be in (0, 1]")
    return int(np.quantile(ranks, quantile, method="inverted_cdf"))


def rank_improvement_by_bin(
    basic_ranks: np.ndarray,
    model_ranks: np.ndarray,
    bin_width: int = 5,
    max_rank: int = N_DISPOSITIONS,
) -> list[dict[str, float]]:
    """Fig. 10: average rank change binned by the basic rank.

    Positive change means the model ranked the true disposition closer to
    the top than the experience baseline did.
    """
    basic_ranks = np.asarray(basic_ranks)
    model_ranks = np.asarray(model_ranks)
    if basic_ranks.shape != model_ranks.shape:
        raise ValueError("rank arrays must align")
    rows: list[dict[str, float]] = []
    for low in range(1, max_rank + 1, bin_width):
        high = min(low + bin_width - 1, max_rank)
        mask = (basic_ranks >= low) & (basic_ranks <= high)
        if not np.any(mask):
            continue
        change = basic_ranks[mask] - model_ranks[mask]
        rows.append(
            {
                "bin_low": float(low),
                "bin_high": float(high),
                "count": float(np.sum(mask)),
                "mean_rank_change": float(np.mean(change)),
            }
        )
    return rows
