"""Cohort analysis of predictor performance.

Aggregate accuracy hides *who* the predictor serves.  An operator rolling
NEVERMIND out wants the Section-5 numbers sliced by the dimensions they
manage: loop-length bands (short urban copper vs long rural runs), service
tiers, and fault locations.  This module cuts an evaluated
:class:`~repro.core.analysis.PredictionOutcome` along those axes:

* :func:`cohort_by_loop_length` -- does the model only work on marginal
  long loops, or does it catch short-loop HN failures too?
* :func:`cohort_by_profile` -- are premium tiers (whose customers churn
  hardest) covered?
* :func:`hit_location_mix` -- which major locations do the proactively
  caught problems live at, versus the overall dispatch mix?
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.analysis import PredictionOutcome
from repro.netsim.components import disposition_arrays, Location
from repro.netsim.profiles import PROFILES
from repro.netsim.simulator import SimulationResult

__all__ = [
    "Cohort",
    "cohort_by_loop_length",
    "cohort_by_profile",
    "hit_location_mix",
]

_DEFAULT_LOOP_EDGES_KFT = (0.0, 4.0, 8.0, 12.0, 16.0, 30.0)


@dataclass(frozen=True)
class Cohort:
    """One slice of the ranked predictions.

    Attributes:
        name: human-readable slice label.
        submitted: how many of the top-N fall into this cohort.
        hits: how many of those led to a ticket within the horizon.
        population: cohort size in the whole plant.
    """

    name: str
    submitted: int
    hits: int
    population: int

    @property
    def precision(self) -> float:
        return self.hits / self.submitted if self.submitted else 0.0

    @property
    def coverage(self) -> float:
        """Share of the cohort's lines receiving a proactive dispatch."""
        return self.submitted / self.population if self.population else 0.0


def _cohorts_from_assignment(
    outcome: PredictionOutcome,
    n: int,
    assignment: np.ndarray,
    names: list[str],
) -> list[Cohort]:
    top = outcome.ranked_lines[:n]
    top_hits = outcome.hits[:n]
    cohorts = []
    for idx, name in enumerate(names):
        in_cohort = assignment[top] == idx
        cohorts.append(
            Cohort(
                name=name,
                submitted=int(np.sum(in_cohort)),
                hits=int(np.sum(top_hits & in_cohort)),
                population=int(np.sum(assignment == idx)),
            )
        )
    return cohorts


def cohort_by_loop_length(
    result: SimulationResult,
    outcome: PredictionOutcome,
    n: int,
    edges_kft: tuple[float, ...] = _DEFAULT_LOOP_EDGES_KFT,
) -> list[Cohort]:
    """Slice the top-n predictions by loop-length band."""
    if len(edges_kft) < 2 or any(
        b <= a for a, b in zip(edges_kft, edges_kft[1:])
    ):
        raise ValueError("edges_kft must be strictly increasing with >= 2 edges")
    assignment = np.digitize(result.population.loop_kft, edges_kft[1:-1])
    names = [
        f"{lo:g}-{hi:g} kft" for lo, hi in zip(edges_kft, edges_kft[1:])
    ]
    return _cohorts_from_assignment(outcome, n, assignment, names)


def cohort_by_profile(
    result: SimulationResult, outcome: PredictionOutcome, n: int
) -> list[Cohort]:
    """Slice the top-n predictions by subscriber service tier."""
    assignment = result.population.profile_idx
    names = [p.name for p in PROFILES]
    return _cohorts_from_assignment(outcome, n, assignment, names)


def hit_location_mix(
    result: SimulationResult, outcome: PredictionOutcome, n: int
) -> dict[str, float]:
    """Major-location mix of the *true* problems caught in the top n.

    Uses the simulator's fault oracle: for each hit line, the active
    fault's catalog location at prediction time.  Lines whose fault
    cleared before prediction (late-reported tickets) are skipped.
    """
    location_of = disposition_arrays().location
    counts = np.zeros(4, dtype=int)
    hit_lines = outcome.correct_top(n)
    hit_set = set(int(line) for line in hit_lines)
    for event in result.fault_events:
        if event.line_id in hit_set and event.active_on(outcome.day):
            counts[location_of[event.disposition]] += 1
    total = counts.sum()
    if total == 0:
        return {location.name: 0.0 for location in Location}
    return {
        location.name: float(counts[int(location)] / total)
        for location in Location
    }
