"""One-shot evaluation reports: every Section-5/6 analysis in one call.

:func:`full_evaluation_report` takes a finished simulation and runs the
paper's whole evaluation program against it -- ticket-predictor accuracy
(Fig 6/7 style), the urgency CDF (Fig 8), the outage and not-on-site
explanations of incorrect predictions (Table 5 / Section 5.2), the
disposition mix (Table 1), weekly seasonality (Section 3.3), and the
three-locator comparison (Section 6.3 / Fig 10) -- returning both the raw
metrics and a rendered text report.

This powers ``examples/full_evaluation.py`` and gives downstream users a
single entry point for "how well does NEVERMIND do on my plant?".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.analysis import (
    evaluate_predictions,
    explain_incorrect_by_absence,
    explain_incorrect_by_outage,
    ground_truth_problem_fraction,
    missed_ticket_fraction,
    urgency_cdf,
)
from repro.core.locator import (
    CombinedLocator,
    ExperienceModel,
    FlatLocator,
    LocatorConfig,
    rank_improvement_by_bin,
    ranks_of_truth,
    tests_to_locate,
)
from repro.core.predictor import PredictorConfig, TicketPredictor
from repro.data.joins import build_locator_dataset
from repro.data.splits import TemporalSplit
from repro.netsim.components import DISPOSITIONS, Location
from repro.netsim.simulator import SimulationResult

__all__ = ["EvaluationReport", "full_evaluation_report"]

_DAYS = ("Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun")


@dataclass
class EvaluationReport:
    """Structured output of a full evaluation run.

    Attributes:
        metrics: flat name -> value map of every headline number.
        sections: section name -> rendered text block.
    """

    metrics: dict[str, float] = field(default_factory=dict)
    sections: dict[str, str] = field(default_factory=dict)

    def render(self) -> str:
        """The whole report as one printable document."""
        parts = []
        for name, text in self.sections.items():
            parts.append(f"=== {name} ===")
            parts.append(text)
            parts.append("")
        return "\n".join(parts)


def _world_section(result: SimulationResult, report: EvaluationReport) -> None:
    edge = result.ticket_log.edge_tickets()
    hist = result.ticket_log.weekday_histogram()
    report.metrics["edge_tickets"] = float(len(edge))
    report.metrics["ivr_calls"] = float(len(result.ticket_log.ivr_calls))
    report.metrics["outages"] = float(len(result.outages.events))
    report.metrics["fault_events"] = float(len(result.fault_events))
    lines = [
        f"lines: {result.n_lines}, weeks: {result.config.n_weeks}",
        f"plant faults: {len(result.fault_events)}, "
        f"customer-edge tickets: {len(edge)}, "
        f"IVR-absorbed calls: {len(result.ticket_log.ivr_calls)}, "
        f"outages: {len(result.outages.events)}",
        "tickets by weekday: "
        + ", ".join(f"{d}={c}" for d, c in zip(_DAYS, hist)),
    ]
    report.sections["world (Section 3.3)"] = "\n".join(lines)


def _disposition_section(result: SimulationResult, report: EvaluationReport) -> None:
    counts = result.dispatcher.disposition_counts()
    total = max(1, counts.sum())
    rows = []
    for location in Location:
        codes = [i for i, d in enumerate(DISPOSITIONS) if d.location == location]
        share = counts[codes].sum() / total
        report.metrics[f"dispatch_share_{location.name}"] = float(share)
        rows.append(f"{location.name}: {share:.1%} of recorded dispositions")
    report.sections["disposition mix (Table 1 / Fig 2)"] = "\n".join(rows)


def _predictor_section(
    result: SimulationResult,
    split: TemporalSplit,
    predictor: TicketPredictor,
    report: EvaluationReport,
) -> None:
    capacity = predictor.config.capacity
    outcomes = [
        evaluate_predictions(result, predictor.rank_week(result, week), week,
                             predictor.config.horizon_weeks)
        for week in split.test_weeks
    ]
    accuracy = float(np.mean([o.accuracy_at(capacity) for o in outcomes]))
    base_rate = float(np.mean([o.hits.mean() for o in outcomes]))
    cdf = urgency_cdf(outcomes, capacity, max_days=28)
    missed2 = missed_ticket_fraction(outcomes, capacity, 2)
    report.metrics["accuracy_at_capacity"] = accuracy
    report.metrics["base_ticket_rate"] = base_rate
    report.metrics["lift_at_capacity"] = accuracy / max(base_rate, 1e-12)
    report.metrics["cdf_14_days"] = float(cdf[14])
    report.metrics["missed_with_2day_fix"] = float(missed2)

    outage_rows = explain_incorrect_by_outage(result, outcomes[0], capacity)
    absence_obs = 0
    absence_hits = 0
    oracle = []
    for outcome in outcomes:
        incorrect = outcome.incorrect_top(capacity)
        o, a = explain_incorrect_by_absence(result.traffic, incorrect, outcome.day)
        absence_obs += o
        absence_hits += a
        oracle.append(ground_truth_problem_fraction(result, incorrect, outcome.day))
    report.metrics["incorrect_real_fault_fraction"] = float(np.mean(oracle))
    report.metrics["incorrect_with_outage_4wk"] = float(
        outage_rows[-1].incorrect_fraction
    )

    lines = [
        f"capacity N = {capacity}",
        f"accuracy@N = {accuracy:.3f} over base rate {base_rate:.4f} "
        f"(lift {accuracy / max(base_rate, 1e-12):.1f}x)",
        f"predicted tickets arriving within 14 days: {cdf[14]:.0%}",
        f"missed with a 2-day (Monday) fix SLA: {missed2:.1%}",
        f"'incorrect' predictions with a real active fault: "
        f"{np.mean(oracle):.0%}",
        f"incorrect on DSLAMs with an outage <= 4 wk: "
        f"{outage_rows[-1].incorrect_fraction:.1%} "
        f"(coef {outage_rows[-1].coefficient:+.3f}, "
        f"p {outage_rows[-1].p_value:.3f})",
        f"incorrect with traffic data: {absence_obs}, "
        f"of which not on site: {absence_hits}",
    ]
    report.sections["ticket predictor (Section 5)"] = "\n".join(lines)


def _locator_section(
    result: SimulationResult,
    locator_config: LocatorConfig,
    report: EvaluationReport,
) -> None:
    horizon = result.config.n_weeks * 7
    cut = int(horizon * 0.6)
    train = build_locator_dataset(result, 30, cut)
    test = build_locator_dataset(result, cut + 1, horizon)
    X = test.features.matrix
    ranks = {}
    for name, model in (
        ("basic", ExperienceModel(locator_config)),
        ("flat", FlatLocator(locator_config)),
        ("combined", CombinedLocator(locator_config)),
    ):
        ranks[name] = ranks_of_truth(
            model.fit(train).predict_proba(X), test.disposition
        )
    lines = [f"train dispatches: {train.n_examples}, test: {test.n_examples}"]
    for name, r in ranks.items():
        median = tests_to_locate(r)
        report.metrics[f"locator_median_{name}"] = float(median)
        lines.append(f"{name:>9}: median tests {median}, mean rank {r.mean():.1f}")
    deep_rows = rank_improvement_by_bin(ranks["basic"], ranks["combined"],
                                        bin_width=5)
    deep = [r for r in deep_rows if r["bin_low"] >= 16]
    if deep:
        gain = float(np.mean([r["mean_rank_change"] for r in deep]))
        report.metrics["locator_deep_gain_combined"] = gain
        lines.append(f"combined model deep-rank gain (Fig 10): {gain:+.1f}")
    report.sections["trouble locator (Section 6.3 / Fig 10)"] = "\n".join(lines)


def full_evaluation_report(
    result: SimulationResult,
    split: TemporalSplit,
    predictor: TicketPredictor | None = None,
    predictor_config: PredictorConfig | None = None,
    locator_config: LocatorConfig | None = None,
) -> EvaluationReport:
    """Run the paper's full evaluation program against a simulation.

    Args:
        result: a finished simulation.
        split: the temporal layout; a predictor is trained on it when one
            is not supplied.
        predictor: optionally a pre-trained predictor (must match split).
        predictor_config: configuration when training here.
        locator_config: locator training configuration.

    Returns:
        An :class:`EvaluationReport` with metrics and rendered sections.
    """
    report = EvaluationReport()
    _world_section(result, report)
    _disposition_section(result, report)
    if predictor is None:
        predictor = TicketPredictor(
            predictor_config or PredictorConfig()
        ).fit(result, split)
    _predictor_section(result, split, predictor, report)
    _locator_section(result, locator_config or LocatorConfig(), report)
    return report
