"""The closed NEVERMIND operational loop (Fig. 3, bottom box).

Runs the simulator forward week by week; after a warm-up period long
enough to train the predictor, every Saturday it

1. re-ranks all lines by ticket probability using the latest line test,
2. submits the top-``capacity`` lines to ATDS, which dispatches proactive
   fixes over the quiet weekend window (customer tickets keep priority --
   the proactive work only uses the residual capacity),
3. books the outcome: real problems found and fixed before a complaint,
   versus no-trouble-found dispatches.

This is the deployment mode the paper's conclusion says AT&T was trialing;
the offline benchmarks in :mod:`benchmarks` evaluate the components, while
this pipeline shows the end-to-end effect on the ticket stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

import numpy as np

from repro.core.predictor import PredictorConfig, TicketPredictor
from repro.data.splits import TemporalSplit, paper_style_split
from repro.netsim.simulator import DslSimulator, SimulationConfig
from repro.obs.history import HistoryStore
from repro.obs.log import get_logger, kv
from repro.obs.metrics import get_registry
from repro.obs.profile import current_rss_kb, peak_rss_kb, stage_profile
from repro.obs.tracing import span

LOG = get_logger("pipeline")

#: Weekly-stage durations: encode/score run milliseconds at test scale,
#: a retrain takes seconds at benchmark scale.
_STAGE_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

if TYPE_CHECKING:  # serve/fleet imports stay out of the core import path
    from repro.fleet.aggregation import TriageConfig
    from repro.serve.registry import ModelRegistry
    from repro.serve.store import LineWeekStore

__all__ = ["PipelineConfig", "WeeklyReport", "NevermindPipeline"]


@dataclass(frozen=True)
class PipelineConfig:
    """Operational-loop parameters.

    Attributes:
        warmup_weeks: weeks of purely reactive operation before the first
            model is trained (needs history + train + selection zones).
        retrain_every: retrain cadence in weeks (0 = train once).
        fix_delay_days: days after the Saturday test when proactive
            dispatches land (2 = by Monday, the Fig-8 reference point).
        predictor: ticket-predictor configuration.
        triage: plant-triage parameters (:mod:`repro.fleet`); None keeps
            the loop purely per-line -- scoring, ranking and dispatch
            stay bit-identical to a pipeline without the triage stage.
    """

    warmup_weeks: int = 16
    retrain_every: int = 0
    fix_delay_days: int = 2
    predictor: PredictorConfig = field(default_factory=PredictorConfig)
    triage: "TriageConfig | None" = None


@dataclass
class WeeklyReport:
    """What the proactive loop did in one week.

    Attributes:
        week: the week just completed.
        submitted: line ids sent to ATDS.
        real_problems: how many submissions had an active fault.
        fixed: how many of those the dispatch actually cleared.
        no_trouble_found: dispatches on healthy lines.
        mean_top_p: mean predicted P(ticket) of the submitted lines --
            compared against the realized precision this is the live
            calibration-drift signal (no second scoring pass needed).
        clusters_found: upstream plant clusters the triage stage found
            (0 when triage is disabled -- as are the fields below).
        suppressed: per-line dispatches collapsed into group dispatches.
        backfilled: freed top-N slots refilled from the ranked list.
        group_problems_found: group dispatches that found a real shared
            fault.
        group_fixed: group dispatches that cleared the shared fault.
    """

    week: int
    submitted: np.ndarray
    real_problems: int
    fixed: int
    no_trouble_found: int
    mean_top_p: float = 0.0
    clusters_found: int = 0
    suppressed: int = 0
    backfilled: int = 0
    group_problems_found: int = 0
    group_fixed: int = 0

    @property
    def precision(self) -> float:
        """Fraction of submissions that were real problems."""
        return self.real_problems / len(self.submitted) if len(self.submitted) else 0.0


class NevermindPipeline:
    """Couples a :class:`DslSimulator` with a :class:`TicketPredictor`."""

    def __init__(
        self,
        simulation: SimulationConfig | None = None,
        config: PipelineConfig | None = None,
        store: "LineWeekStore | None" = None,
        registry: "ModelRegistry | None" = None,
        on_week_end=None,
        history: HistoryStore | None = None,
    ):
        """Args:
            simulation: plant configuration (defaults as in DslSimulator).
            config: operational-loop parameters.
            store: optional line-week store; each completed week's
                campaign is appended instead of discarded, so the serving
                subsystem can re-score it without re-simulation.
            registry: optional model registry; every (re)trained
                predictor is published and activated as a new version.
            on_week_end: optional ``callback(week, report)`` invoked at
                the end of every completed week (``report`` is None
                during warm-up).  The lifecycle controller hangs its
                scheduler off this hook instead of duplicating the
                weekly cadence; it may also be assigned after
                construction via the ``on_week_end`` attribute.
            history: optional flight recorder
                (:class:`repro.obs.history.HistoryStore`); every live
                week appends one ``pipeline_week`` record with the
                quality gauges and per-stage resource costs, so trends
                survive the process and the health detector can read
                them back.
        """
        self.config = config or PipelineConfig()
        self.simulator = DslSimulator(simulation)
        self.predictor = TicketPredictor(self.config.predictor)
        self.store = store
        self.registry = registry
        self.on_week_end = on_week_end
        self.history = history
        self.reports: list[WeeklyReport] = []
        self._trained_at: int | None = None
        registry_m = get_registry()
        self._stage_seconds = registry_m.histogram(
            "repro_pipeline_stage_seconds",
            "Wall time per weekly pipeline stage",
            buckets=_STAGE_BUCKETS,
        )
        self._weeks_total = registry_m.counter(
            "repro_pipeline_weeks_total", "Live proactive weeks completed"
        )
        self._submitted_total = registry_m.counter(
            "repro_pipeline_submitted_total", "Lines submitted to ATDS"
        )
        self._real_total = registry_m.counter(
            "repro_pipeline_real_problems_total",
            "Submitted lines that had an active fault",
        )
        self._fixed_total = registry_m.counter(
            "repro_pipeline_fixed_total",
            "Submitted faults cleared before a customer complaint",
        )
        self._precision_gauge = registry_m.gauge(
            "repro_pipeline_precision",
            "Precision of the most recent weekly campaign",
        )
        self._drift_gauge = registry_m.gauge(
            "repro_pipeline_calibration_drift",
            "Mean predicted P of submitted lines minus realized precision",
        )
        self._clusters_total = registry_m.counter(
            "repro_triage_clusters_total",
            "Upstream plant clusters found by weekly triage",
        )
        self._suppressed_total = registry_m.counter(
            "repro_triage_suppressed_total",
            "Per-line dispatches suppressed into group dispatches",
        )
        self._backfilled_total = registry_m.counter(
            "repro_triage_backfilled_total",
            "Freed top-N slots refilled from the ranked list",
        )
        self._clusters_gauge = registry_m.gauge(
            "repro_triage_clusters",
            "Upstream clusters in the most recent weekly triage",
        )

    def _training_split(self, week: int) -> TemporalSplit:
        """A split ending at ``week`` with the horizon fully in the past."""
        horizon = self.config.predictor.horizon_weeks
        usable = week + 1 - horizon
        history = max(2, usable - 6)
        train = min(3, usable - history - 2)
        selection = usable - history - train
        return paper_style_split(
            n_weeks=week + 1,
            history=history,
            train=train,
            selection=selection,
            test=0,
            horizon_weeks=horizon,
        )

    def _maybe_train(self, week: int) -> None:
        cfg = self.config
        if week + 1 < cfg.warmup_weeks:
            return
        due = self._trained_at is None or (
            cfg.retrain_every > 0 and week - self._trained_at >= cfg.retrain_every
        )
        if due:
            self.retrain(week)

    def retrain(self, week: int) -> None:
        """(Re)fit the serving predictor on all data up to ``week``.

        The internal cadence (``_maybe_train``) and external schedulers
        (the lifecycle controller) share this path: it refits in place,
        stamps the training week, and -- when a registry is attached --
        publishes and activates the new version.
        """
        split = self._training_split(week)
        with span("pipeline.train", week=week), \
                self._stage_seconds.time(stage="train"), \
                stage_profile("pipeline.train"):
            self.predictor.fit(self.simulator.result(), split)
        self._trained_at = week
        LOG.info(kv(
            "pipeline.train",
            week=week,
            features=len(self.predictor.feature_names),
            rounds=len(self.predictor.model.learners) if self.predictor.model else 0,
        ))
        if self.registry is not None:
            from repro.serve.registry import ModelBundle

            self.registry.publish(
                ModelBundle(
                    predictor=self.predictor,
                    meta={
                        "trained_week": week,
                        "n_lines": self.simulator.result().n_lines,
                    },
                ),
                activate=True,
            )

    def train_challenger(
        self,
        week: int,
        backend: str | None = None,
        n_bins: int | None = None,
    ) -> TicketPredictor:
        """Fit a fresh predictor on data up to ``week`` without serving it.

        The active (champion) predictor keeps scoring; the returned
        challenger is the caller's to shadow-evaluate, publish, and --
        only if it passes the promotion gate -- :meth:`adopt`.

        Args:
            week: last week of training data.
            backend: optional training-backend override ("exact" or
                "hist"); ``None`` keeps the configured predictor
                backend.  The lifecycle controller passes its
                ``challenger_backend`` here so continuous retrains use
                the fast histogram path without touching the pipeline's
                own config.
            n_bins: optional histogram bin budget override; ``None``
                keeps the configured value.
        """
        predictor_config = self.config.predictor
        overrides = {}
        if backend is not None and backend != predictor_config.backend:
            overrides["backend"] = backend
        if n_bins is not None and n_bins != predictor_config.n_bins:
            overrides["n_bins"] = n_bins
        if overrides:
            predictor_config = replace(predictor_config, **overrides)
        challenger = TicketPredictor(predictor_config)
        split = self._training_split(week)
        with span("pipeline.train_challenger", week=week,
                  backend=predictor_config.backend), \
                self._stage_seconds.time(stage="train_challenger"), \
                stage_profile("pipeline.train_challenger"):
            challenger.fit(self.simulator.result(), split)
        LOG.info(kv(
            "pipeline.train_challenger",
            week=week,
            features=len(challenger.feature_names),
            backend=predictor_config.backend,
        ))
        return challenger

    def adopt(self, predictor: TicketPredictor, week: int) -> None:
        """Swap the serving predictor (a promoted challenger) in.

        Registry bookkeeping (publish/activate) is the caller's job --
        the lifecycle gate activates through the registry and then
        adopts, so the manifest and the in-process pipeline agree.
        """
        if predictor.model is None:
            raise ValueError("cannot adopt an unfitted predictor")
        self.predictor = predictor
        self._trained_at = week
        LOG.info(kv("pipeline.adopt", week=week))

    def _persist_week(self, week: int) -> None:
        """Append this Saturday's campaign to the line-week store."""
        if self.store is None or week in self.store.weeks:
            return
        with span("pipeline.persist", week=week), \
                self._stage_seconds.time(stage="persist"), \
                stage_profile("pipeline.persist"):
            result = self.simulator.result()
            day = int(result.measurements.saturday_day[week])
            self.store.append_week(
                week,
                day,
                result.measurements.week_matrix(week),
                result.ticket_log.last_ticket_day_before(result.n_lines, day),
            )

    def step(self) -> WeeklyReport | None:
        """Advance one week; returns the proactive report once live."""
        week = self.simulator.step()
        with span("pipeline.week", week=week):
            return self._step_week(week)

    def _step_week(self, week: int) -> WeeklyReport | None:
        self._persist_week(week)
        self._maybe_train(week)
        if self._trained_at is None:
            if self.on_week_end is not None:
                self.on_week_end(week, None)
            return None

        result = self.simulator.result()
        stage_costs: dict[str, "StageProfile"] = {}
        with span("pipeline.score", week=week), \
                self._stage_seconds.time(stage="score"), \
                stage_profile("pipeline.score") as score_prof:
            scores = self.predictor.score_week(result, week)
            # Stable descending sort: identical ids to predict_top, but the
            # scores are kept so calibration drift needs no second pass.
            submitted = np.argsort(-scores, kind="stable")
            submitted = submitted[: self.config.predictor.capacity]
        stage_costs["score"] = score_prof.profile
        plan = None
        if self.config.triage is not None:
            from repro.fleet import find_clusters, plan_dispatches

            with span("pipeline.triage", week=week), \
                    self._stage_seconds.time(stage="triage"), \
                    stage_profile("pipeline.triage") as triage_prof:
                triage = find_clusters(
                    scores, result.population.topology,
                    self.config.predictor.capacity, self.config.triage,
                )
                plan = plan_dispatches(
                    scores, self.config.predictor.capacity, triage, week=week
                )
                submitted = plan.line_ids
            stage_costs["triage"] = triage_prof.profile
        with span("pipeline.dispatch", week=week), \
                self._stage_seconds.time(stage="dispatch"), \
                stage_profile("pipeline.dispatch") as dispatch_prof:
            fix_day = (
                int(result.measurements.saturday_day[week])
                + self.config.fix_delay_days
            )
            records = self.simulator.apply_proactive_fixes(submitted, fix_day)
            group_records = (
                self.simulator.apply_group_fixes(plan.group_targets(), fix_day)
                if plan is not None and plan.group_dispatches
                else []
            )
        stage_costs["dispatch"] = dispatch_prof.profile
        real = sum(r.true_disposition >= 0 for r in records)
        fixed = sum(r.true_disposition >= 0 and r.fixed for r in records)
        mean_top_p = float(scores[submitted].mean()) if submitted.size else 0.0
        report = WeeklyReport(
            week=week,
            submitted=submitted,
            real_problems=real,
            fixed=fixed,
            no_trouble_found=sum(r.true_disposition < 0 for r in records),
            mean_top_p=mean_top_p,
            clusters_found=len(plan.group_dispatches) if plan else 0,
            suppressed=int(plan.suppressed_line_ids.size) if plan else 0,
            backfilled=int(plan.backfilled_line_ids.size) if plan else 0,
            group_problems_found=sum(r.found_fault for r in group_records),
            group_fixed=sum(r.fixed for r in group_records),
        )
        self.reports.append(report)
        if plan is not None:
            self._clusters_total.inc(report.clusters_found)
            self._suppressed_total.inc(report.suppressed)
            self._backfilled_total.inc(report.backfilled)
            self._clusters_gauge.set(report.clusters_found)

        drift = mean_top_p - report.precision
        self._weeks_total.inc()
        self._submitted_total.inc(len(submitted))
        self._real_total.inc(real)
        self._fixed_total.inc(fixed)
        self._precision_gauge.set(report.precision)
        self._drift_gauge.set(drift)
        if self.history is not None:
            values = {
                "precision": report.precision,
                "mean_top_p": mean_top_p,
                "calibration_drift": drift,
                "submitted": float(len(submitted)),
                "real_problems": float(real),
                "fixed": float(fixed),
                "rss_kb": current_rss_kb(),
                "peak_rss_kb": peak_rss_kb(),
            }
            for stage, prof in stage_costs.items():
                values[f"wall_seconds.{stage}"] = prof.wall_seconds
                values[f"cpu_seconds.{stage}"] = prof.cpu_seconds
            self.history.append("pipeline_week", values, week=week)
        LOG.info(kv(
            "pipeline.week",
            week=week,
            submitted=len(submitted),
            real_problems=real,
            fixed=fixed,
            precision=round(report.precision, 4),
            mean_top_p=round(mean_top_p, 4),
            calibration_drift=round(drift, 4),
        ))
        if self.on_week_end is not None:
            self.on_week_end(week, report)
        return report

    def run(self, n_weeks: int | None = None) -> list[WeeklyReport]:
        """Run the loop for ``n_weeks`` (default: the simulation horizon)."""
        target = (
            self.simulator.config.n_weeks
            if n_weeks is None
            else min(self.simulator.config.n_weeks, self.simulator.week + n_weeks)
        )
        while self.simulator.week < target:
            self.step()
        return self.reports

    def summary(self) -> dict[str, float]:
        """Aggregate proactive performance over the live weeks."""
        if not self.reports:
            return {"weeks": 0, "submitted": 0, "real_problems": 0, "fixed": 0,
                    "precision": 0.0}
        submitted = sum(len(r.submitted) for r in self.reports)
        real = sum(r.real_problems for r in self.reports)
        summary = {
            "weeks": len(self.reports),
            "submitted": submitted,
            "real_problems": real,
            "fixed": sum(r.fixed for r in self.reports),
            "precision": real / submitted if submitted else 0.0,
        }
        if self.config.triage is not None:
            summary["clusters_found"] = sum(
                r.clusters_found for r in self.reports
            )
            summary["suppressed"] = sum(r.suppressed for r in self.reports)
            summary["backfilled"] = sum(r.backfilled for r in self.reports)
            summary["group_problems_found"] = sum(
                r.group_problems_found for r in self.reports
            )
        return summary
