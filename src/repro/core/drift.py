"""Deployment drift monitoring for the ticket predictor.

Section 4.1 observes that *"the correlation between line measurements and
future customer tickets becomes weak as the time gap increases"* -- the
same applies to a deployed model as the plant, the subscriber mix and the
seasons move away from its training window.  The operational pipeline can
retrain on a schedule (``PipelineConfig.retrain_every``); this module
provides the evidence for choosing that schedule:

* :func:`weekly_performance` -- the deployed model's accuracy@N and
  calibration error tracked week over week;
* :func:`drift_report` -- a trend fit over those weeks with a
  retrain recommendation when accuracy decays materially below its
  launch level.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.analysis import evaluate_predictions
from repro.core.predictor import TicketPredictor
from repro.netsim.simulator import SimulationResult

__all__ = ["WeeklyPerformance", "DriftReport", "LiveDriftSignals",
           "weekly_performance", "drift_report", "live_drift_signals"]


@dataclass(frozen=True)
class WeeklyPerformance:
    """One week of deployed-model measurement.

    Attributes:
        week: prediction week.
        accuracy: precision over the top-capacity predictions.
        base_rate: population ticket rate that week (for lift context).
        calibration_error: |mean predicted probability - observed rate|
            over all lines, a scalar expected-calibration proxy.
    """

    week: int
    accuracy: float
    base_rate: float
    calibration_error: float

    @property
    def lift(self) -> float:
        return self.accuracy / self.base_rate if self.base_rate > 0 else 0.0


@dataclass(frozen=True)
class DriftReport:
    """Trend summary over the monitored weeks.

    Attributes:
        weekly: the per-week measurements, in week order.
        accuracy_slope: fitted accuracy change per week.
        relative_drop: (first-week accuracy - last-week accuracy) /
            first-week accuracy, clipped at 0.
        retrain_recommended: True when the decay crosses the threshold.
        threshold: the relative-drop threshold used.
    """

    weekly: tuple[WeeklyPerformance, ...]
    accuracy_slope: float
    relative_drop: float
    retrain_recommended: bool
    threshold: float

    def render(self) -> str:
        lines = [f"{'week':>5} {'acc@N':>7} {'base':>7} {'lift':>6} {'calib':>7}"]
        for w in self.weekly:
            lines.append(
                f"{w.week:>5} {w.accuracy:>7.3f} {w.base_rate:>7.4f} "
                f"{w.lift:>6.1f} {w.calibration_error:>7.4f}"
            )
        lines.append(
            f"accuracy slope {self.accuracy_slope:+.4f}/week, "
            f"relative drop {self.relative_drop:.0%} "
            f"-> retrain {'RECOMMENDED' if self.retrain_recommended else 'not needed'}"
        )
        return "\n".join(lines)


@dataclass(frozen=True)
class LiveDriftSignals:
    """Deployed-model degradation evidence from the live proactive loop.

    Unlike :func:`drift_report` -- which re-scores past weeks offline --
    these signals come for free from the campaigns the pipeline already
    ran: each :class:`~repro.core.pipeline.WeeklyReport` carries the
    realized precision and the mean predicted probability of the
    submitted lines, so drift is observable without a second scoring
    pass.  The lifecycle scheduler reads them every week.

    Attributes:
        n_reports: how many live weeks the signals cover.
        baseline_precision: mean precision over the earliest
            ``baseline_window`` reports (the model's launch level).
        recent_precision: mean precision over the latest
            ``recent_window`` reports.
        relative_drop: (baseline - recent) / baseline, clipped at 0.
        calibration_drift: mean |predicted P - realized precision| over
            the recent window.
    """

    n_reports: int
    baseline_precision: float
    recent_precision: float
    relative_drop: float
    calibration_drift: float


def live_drift_signals(
    reports,
    baseline_window: int = 3,
    recent_window: int = 2,
) -> LiveDriftSignals | None:
    """Summarise drift over a run of live weekly reports.

    Args:
        reports: :class:`~repro.core.pipeline.WeeklyReport` sequence for
            one deployed model, in week order (i.e. since its adoption).
        baseline_window: earliest reports forming the launch baseline.
        recent_window: latest reports forming the current level.

    Returns:
        The signals, or ``None`` while the run is too short for the
        baseline and recent windows not to overlap.
    """
    if baseline_window < 1 or recent_window < 1:
        raise ValueError("baseline_window and recent_window must be >= 1")
    if len(reports) < baseline_window + recent_window:
        return None
    baseline = float(np.mean([r.precision for r in reports[:baseline_window]]))
    recent_reports = reports[-recent_window:]
    recent = float(np.mean([r.precision for r in recent_reports]))
    drop = max(0.0, (baseline - recent) / baseline) if baseline > 0 else 0.0
    calibration = float(np.mean(
        [abs(r.mean_top_p - r.precision) for r in recent_reports]
    ))
    return LiveDriftSignals(
        n_reports=len(reports),
        baseline_precision=baseline,
        recent_precision=recent,
        relative_drop=drop,
        calibration_drift=calibration,
    )


def weekly_performance(
    result: SimulationResult,
    predictor: TicketPredictor,
    weeks: list[int],
    capacity: int | None = None,
) -> list[WeeklyPerformance]:
    """Measure the deployed model on each of the given prediction weeks.

    Every week must have a full label horizon inside the simulation.
    """
    if not weeks:
        raise ValueError("need at least one monitoring week")
    capacity = capacity or predictor.config.capacity
    horizon = predictor.config.horizon_weeks
    out: list[WeeklyPerformance] = []
    for week in weeks:
        scores = predictor.score_week(result, int(week))
        ranked = np.argsort(-scores, kind="stable")
        outcome = evaluate_predictions(result, ranked, int(week), horizon)
        base = float(np.mean(outcome.hits))
        out.append(
            WeeklyPerformance(
                week=int(week),
                accuracy=outcome.accuracy_at(capacity),
                base_rate=base,
                calibration_error=abs(float(np.mean(scores)) - base),
            )
        )
    return out


def drift_report(
    result: SimulationResult,
    predictor: TicketPredictor,
    weeks: list[int],
    capacity: int | None = None,
    relative_drop_threshold: float = 0.25,
) -> DriftReport:
    """Track the deployed model over ``weeks`` and recommend retraining.

    Args:
        relative_drop_threshold: recommend retraining once accuracy has
            fallen by this fraction from the first monitored week.
    """
    if not 0 < relative_drop_threshold < 1:
        raise ValueError("relative_drop_threshold must be in (0, 1)")
    weekly = weekly_performance(result, predictor, weeks, capacity)
    accuracies = np.array([w.accuracy for w in weekly])
    xs = np.array([w.week for w in weekly], dtype=float)
    if len(weekly) >= 2 and np.ptp(xs) > 0:
        slope = float(np.polyfit(xs, accuracies, 1)[0])
    else:
        slope = 0.0
    first = float(accuracies[0])
    last = float(accuracies[-1])
    drop = max(0.0, (first - last) / first) if first > 0 else 0.0
    return DriftReport(
        weekly=tuple(weekly),
        accuracy_slope=slope,
        relative_drop=drop,
        retrain_recommended=drop >= relative_drop_threshold,
        threshold=relative_drop_threshold,
    )
