"""Cost-aware dispatch triage (the paper's deferred Section-6.1 extension).

Section 6.1 lists three improvements over the experience model.  The paper
implements only the first (infer locations from line features) and defers
the second -- *"the time spent testing one location may differ
significantly from the time spent testing another, and, if these locations
have equal prior probabilities of being the cause of failures, a
technician will save time by starting with the one which is the fastest to
test"* -- because per-location test costs were not available to the
authors.

In the simulator we can attach test costs, so this module implements that
second improvement.  For a sequence of independent tests where disposition
``i`` is the true cause with probability ``p_i`` and testing it costs
``c_i`` minutes, the expected time to find the fault is minimised by
testing in decreasing ``p_i / c_i`` order (the classic search-ordering
result, provable by an adjacent-swap exchange argument).
"""

from __future__ import annotations

import numpy as np

from repro.netsim.components import DISPOSITIONS, Location

__all__ = [
    "DEFAULT_TEST_MINUTES",
    "cost_aware_order",
    "expected_search_cost",
    "expected_tests",
]

#: Nominal minutes to test one disposition's location, by major location.
#: Home-network checks are quick (the customer is right there); buried
#: F1/F2 plant needs test sets, bucket trucks or pair tracing; DSLAM-end
#: checks happen at the central office.
_LOCATION_MINUTES = {
    Location.HN: 6.0,
    Location.F2: 14.0,
    Location.F1: 18.0,
    Location.DS: 10.0,
}

#: Per-disposition test cost (minutes), catalog-aligned.
DEFAULT_TEST_MINUTES: np.ndarray = np.array(
    [_LOCATION_MINUTES[d.location] for d in DISPOSITIONS]
)


def _validate(probabilities: np.ndarray, costs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    probabilities = np.asarray(probabilities, dtype=float)
    costs = np.asarray(costs, dtype=float)
    if probabilities.ndim != 1:
        raise ValueError("probabilities must be a 1-D vector")
    if costs.shape != probabilities.shape:
        raise ValueError("costs must align with probabilities")
    if np.any(probabilities < 0):
        raise ValueError("probabilities must be non-negative")
    if np.any(costs <= 0):
        raise ValueError("costs must be positive")
    return probabilities, costs


def cost_aware_order(
    probabilities: np.ndarray, costs: np.ndarray | None = None
) -> np.ndarray:
    """Testing order minimising the expected time to locate the fault.

    Args:
        probabilities: per-disposition probability of being the cause
            (one locator row; need not be normalised).
        costs: per-disposition test cost; defaults to
            :data:`DEFAULT_TEST_MINUTES`.

    Returns:
        Disposition indices in decreasing ``p/c`` order.
    """
    if costs is None:
        costs = DEFAULT_TEST_MINUTES
    probabilities, costs = _validate(probabilities, costs)
    return np.argsort(-(probabilities / costs), kind="stable")


def expected_search_cost(
    probabilities: np.ndarray,
    order: np.ndarray,
    costs: np.ndarray | None = None,
) -> float:
    """Expected total test minutes following ``order``.

    The technician pays the cost of every test up to and including the one
    that finds the true disposition; if the fault is none of the listed
    dispositions (residual probability mass), she pays for the full sweep.
    """
    if costs is None:
        costs = DEFAULT_TEST_MINUTES
    probabilities, costs = _validate(probabilities, costs)
    order = np.asarray(order, dtype=int)
    if sorted(order.tolist()) != list(range(len(probabilities))):
        raise ValueError("order must be a permutation of all dispositions")
    total = float(np.sum(probabilities))
    if total > 1.0 + 1e-9:
        probabilities = probabilities / total
        total = 1.0
    cumulative_cost = np.cumsum(costs[order])
    expected = float(np.sum(probabilities[order] * cumulative_cost))
    expected += (1.0 - total) * float(cumulative_cost[-1])
    return expected


def expected_tests(probabilities: np.ndarray, order: np.ndarray) -> float:
    """Expected number of tests following ``order`` (unit costs)."""
    return expected_search_cost(
        probabilities, order, costs=np.ones(len(np.asarray(probabilities)))
    )
