"""Choosing the ATDS capacity N (the paper's tunable knob, economised).

Section 5.1: *"in our top-N AP method, N is a tunable parameter, which can
be enlarged when more predictions can be accommodated by ATDS."*  The
paper fixes N = 20K by fiat (the spare dispatch capacity); this module
answers the follow-up question an operator immediately asks: *what N is
actually worth running?*

Model: dispatching rank ``r`` costs ``dispatch_cost`` regardless of
outcome; if the line truly has a problem (probability = the measured
precision at that depth), the proactive fix avoids a future reactive
ticket worth ``avoided_ticket_value`` (call handling, expedited truck
roll, churn risk).  Because precision declines with depth, expected
marginal value crosses zero at some depth -- the economic capacity
:func:`optimal_capacity` finds it from an evaluated prediction outcome.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.analysis import PredictionOutcome

__all__ = ["CapacityEconomics", "value_curve", "optimal_capacity"]


@dataclass(frozen=True)
class CapacityEconomics:
    """Cost model for proactive dispatching.

    Attributes:
        dispatch_cost: cost of one proactive ATDS action (remote checks +
            amortised truck rolls).
        avoided_ticket_value: value of preventing one reactive ticket
            (agent time, expedited dispatch, dissatisfaction/churn risk).
        smoothing_window: ranks over which the empirical hit indicator is
            smoothed into a local precision estimate.
    """

    dispatch_cost: float = 1.0
    avoided_ticket_value: float = 4.0
    smoothing_window: int = 50

    def __post_init__(self) -> None:
        if self.dispatch_cost <= 0:
            raise ValueError("dispatch_cost must be positive")
        if self.avoided_ticket_value <= 0:
            raise ValueError("avoided_ticket_value must be positive")
        if self.smoothing_window < 1:
            raise ValueError("smoothing_window must be at least 1")


def _local_precision(hits: np.ndarray, window: int) -> np.ndarray:
    """Moving-average precision by rank (same length as ``hits``)."""
    hits = np.asarray(hits, dtype=float)
    if hits.size == 0:
        return hits
    window = min(window, hits.size)
    kernel = np.ones(window) / window
    return np.convolve(hits, kernel, mode="same")


def value_curve(
    outcomes: list[PredictionOutcome],
    economics: CapacityEconomics | None = None,
    max_n: int | None = None,
) -> np.ndarray:
    """Cumulative expected net value of dispatching the top n, for each n.

    Entry ``n-1`` is the net value of running capacity n, averaged over
    the supplied weeks:
    ``sum_{r<=n} (precision(r) * avoided_ticket_value - dispatch_cost)``.
    """
    economics = economics or CapacityEconomics()
    if not outcomes:
        raise ValueError("need at least one evaluated outcome")
    length = min(len(o.hits) for o in outcomes)
    if max_n is not None:
        length = min(length, max_n)
    marginal = np.zeros(length)
    for outcome in outcomes:
        hits = outcome.hits[:length].astype(float)
        marginal += (
            hits * economics.avoided_ticket_value - economics.dispatch_cost
        )
    marginal /= len(outcomes)
    return np.cumsum(marginal)


def optimal_capacity(
    outcomes: list[PredictionOutcome],
    economics: CapacityEconomics | None = None,
    max_n: int | None = None,
) -> tuple[int, float]:
    """The net-value-maximising capacity and its value.

    Uses the smoothed local precision to avoid choosing an N off the back
    of one lucky hit deep in the ranking.

    Returns:
        (best_n, net_value_at_best_n); best_n = 0 when even the first
        dispatch is not worth its cost.
    """
    economics = economics or CapacityEconomics()
    if not outcomes:
        raise ValueError("need at least one evaluated outcome")
    length = min(len(o.hits) for o in outcomes)
    if max_n is not None:
        length = min(length, max_n)
    precision = np.zeros(length)
    for outcome in outcomes:
        precision += _local_precision(
            outcome.hits[:length], economics.smoothing_window
        )
    precision /= len(outcomes)
    marginal = precision * economics.avoided_ticket_value - economics.dispatch_cost
    cumulative = np.cumsum(marginal)
    best = int(np.argmax(cumulative))
    if cumulative[best] <= 0:
        return 0, 0.0
    return best + 1, float(cumulative[best])
