"""NEVERMIND: the paper's contribution, built on the substrates.

* :mod:`repro.core.predictor` -- the ticket predictor (Section 4): Table-3
  encoding -> top-N AP feature selection -> BStump -> calibrated ranking
  of all lines by P(ticket within T).
* :mod:`repro.core.locator` -- the trouble locator (Section 6): the
  experience-model baseline, the flat one-vs-rest model, and the combined
  hierarchical model of Eq. 2.
* :mod:`repro.core.analysis` -- the Section-5 evaluations: accuracy@N
  curves, the Fig-8 urgency CDF, the Table-5 outage/IVR explanation of
  incorrect predictions, and the not-on-site traffic analysis.
* :mod:`repro.core.pipeline` -- the closed operational loop of Fig. 3
  (bottom box): predict every Saturday, submit the top-N to ATDS, fix
  problems before customers call.
"""

from repro.core.analysis import (
    OutageExplanation,
    PredictionOutcome,
    accuracy_curve,
    evaluate_predictions,
    explain_incorrect_by_absence,
    explain_incorrect_by_outage,
    ground_truth_problem_fraction,
    missed_ticket_fraction,
    urgency_cdf,
)
from repro.core.locator import (
    CombinedLocator,
    ExperienceModel,
    FlatLocator,
    LocatorConfig,
    rank_improvement_by_bin,
    ranks_of_truth,
    tests_to_locate,
)
from repro.core.pipeline import NevermindPipeline, PipelineConfig, WeeklyReport
from repro.core.predictor import PredictorConfig, TicketPredictor
from repro.core.triage import (
    DEFAULT_TEST_MINUTES,
    cost_aware_order,
    expected_search_cost,
    expected_tests,
)

__all__ = [
    "OutageExplanation",
    "PredictionOutcome",
    "accuracy_curve",
    "evaluate_predictions",
    "explain_incorrect_by_absence",
    "explain_incorrect_by_outage",
    "ground_truth_problem_fraction",
    "missed_ticket_fraction",
    "urgency_cdf",
    "CombinedLocator",
    "ExperienceModel",
    "FlatLocator",
    "LocatorConfig",
    "rank_improvement_by_bin",
    "ranks_of_truth",
    "tests_to_locate",
    "NevermindPipeline",
    "PipelineConfig",
    "WeeklyReport",
    "PredictorConfig",
    "TicketPredictor",
    "DEFAULT_TEST_MINUTES",
    "cost_aware_order",
    "expected_search_cost",
    "expected_tests",
]
