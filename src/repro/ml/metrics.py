"""Ranking and classification metrics used throughout the paper.

The central metric is the *top-N average precision* ``AP(N)`` from
Section 4.3:

.. math::

    AP(N) = \\frac{1}{N} \\sum_{r=1}^{N} Prec(r) \\cdot Tkt(u_r)

where ``Prec(r)`` is the precision over the first ``r`` ranked predictions
and ``Tkt(u_r)`` indicates whether the r-th ranked line actually produced a
ticket.  ``AP(N)`` rewards rankings that place true future tickets near the
top of the list, which is exactly what matters when only the top N
predictions can be dispatched.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "precision_at",
    "top_n_average_precision",
    "average_precision",
    "accuracy_at_n",
    "roc_curve",
    "auc",
    "entropy",
    "gain_ratio",
    "rank_by_score",
]


def rank_by_score(scores: np.ndarray) -> np.ndarray:
    """Return indices that sort ``scores`` in decreasing order.

    Ties are broken deterministically by original index so that repeated
    evaluations of the same scores produce identical rankings.
    """
    scores = np.asarray(scores, dtype=float)
    # ``np.argsort`` is ascending and stable with kind="stable"; negate for
    # a descending, first-index-wins ordering.
    return np.argsort(-scores, kind="stable")


def _ranked_labels(labels: np.ndarray, scores: np.ndarray | None) -> np.ndarray:
    labels = np.asarray(labels)
    if scores is None:
        return labels.astype(float)
    scores = np.asarray(scores, dtype=float)
    if scores.shape != labels.shape:
        raise ValueError(
            f"scores shape {scores.shape} != labels shape {labels.shape}"
        )
    return labels[rank_by_score(scores)].astype(float)


def precision_at(labels: np.ndarray, r: int, scores: np.ndarray | None = None) -> float:
    """Precision over the first ``r`` predictions.

    ``labels`` are binary ground-truth indicators.  When ``scores`` is
    given, labels are first ordered by decreasing score; otherwise
    ``labels`` must already be in rank order.
    """
    if r <= 0:
        raise ValueError(f"r must be positive, got {r}")
    ranked = _ranked_labels(labels, scores)
    r = min(r, len(ranked))
    return float(np.mean(ranked[:r]))


def top_n_average_precision(
    labels: np.ndarray, n: int, scores: np.ndarray | None = None
) -> float:
    """Top-N average precision AP(N) from Section 4.3 of the paper.

    AP(N) sums precision-at-r over the ranks ``r`` holding true positives
    within the top N and divides by N.  A perfect ranking over a list with
    at least N positives scores 1.0; a ranking whose top N contains no
    positives scores 0.0.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    ranked = _ranked_labels(labels, scores)
    top = ranked[:n]
    if top.size == 0:
        return 0.0
    hits = np.cumsum(top)
    ranks = np.arange(1, top.size + 1)
    precisions = hits / ranks
    return float(np.sum(precisions * top) / n)


def average_precision(labels: np.ndarray, scores: np.ndarray | None = None) -> float:
    """Classic average precision over the full ranked list (Table 4 baseline).

    Equal to the mean of precision-at-r over the ranks of the true
    positives; 0.0 when there are no positives.
    """
    ranked = _ranked_labels(labels, scores)
    total_pos = float(np.sum(ranked))
    if total_pos == 0:
        return 0.0
    hits = np.cumsum(ranked)
    ranks = np.arange(1, ranked.size + 1)
    precisions = hits / ranks
    return float(np.sum(precisions * ranked) / total_pos)


def accuracy_at_n(labels: np.ndarray, n: int, scores: np.ndarray | None = None) -> float:
    """The paper's evaluation "accuracy": precision over the top N.

    Section 5.1: *"the proportion of subscribers associated with the top N
    predictions who have issued tickets within 4 weeks"*.
    """
    return precision_at(labels, n, scores)


def roc_curve(labels: np.ndarray, scores: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Return (false-positive rate, true-positive rate) arrays.

    Points are produced at every distinct score threshold, in order of
    decreasing threshold, and include the (0, 0) and (1, 1) endpoints.
    """
    labels = np.asarray(labels, dtype=float)
    scores = np.asarray(scores, dtype=float)
    if labels.shape != scores.shape:
        raise ValueError("labels and scores must have the same shape")
    order = np.argsort(-scores, kind="stable")
    labels = labels[order]
    scores = scores[order]
    n_pos = float(np.sum(labels))
    n_neg = float(labels.size - n_pos)
    tp = np.cumsum(labels)
    fp = np.cumsum(1.0 - labels)
    # Only keep the last point of each tied-score run.
    distinct = np.r_[scores[1:] != scores[:-1], True]
    tp = tp[distinct]
    fp = fp[distinct]
    tpr = tp / n_pos if n_pos > 0 else np.zeros_like(tp)
    fpr = fp / n_neg if n_neg > 0 else np.zeros_like(fp)
    return np.r_[0.0, fpr], np.r_[0.0, tpr]


def auc(labels: np.ndarray, scores: np.ndarray) -> float:
    """Area under the ROC curve (trapezoidal).

    Degenerate inputs (single-class labels) return 0.5, the value of an
    uninformative ranking, so that feature-selection loops never crash on
    constant features.
    """
    labels = np.asarray(labels, dtype=float)
    if np.all(labels == labels.flat[0] if labels.size else True):
        return 0.5
    fpr, tpr = roc_curve(labels, scores)
    trapezoid = getattr(np, "trapezoid", None) or np.trapz
    return float(trapezoid(tpr, fpr))


def entropy(labels: np.ndarray) -> float:
    """Shannon entropy (bits) of a discrete label array."""
    labels = np.asarray(labels)
    if labels.size == 0:
        return 0.0
    _, counts = np.unique(labels, return_counts=True)
    probs = counts / labels.size
    return float(-np.sum(probs * np.log2(probs)))


def gain_ratio(
    feature: np.ndarray, labels: np.ndarray, n_bins: int = 10
) -> float:
    """Gain ratio of ``feature`` with respect to binary ``labels``.

    Table 4: *"the total entropy decrease of the result attribute by knowing
    one particular feature"*, normalised by the feature's own split
    entropy (Quinlan's gain ratio).  Continuous features are discretised
    into ``n_bins`` equal-frequency bins; missing values (NaN) form their
    own bin, mirroring how the stump learner abstains on them.
    """
    feature = np.asarray(feature, dtype=float)
    labels = np.asarray(labels)
    if feature.shape != labels.shape:
        raise ValueError("feature and labels must have the same shape")
    if feature.size == 0:
        return 0.0

    missing = np.isnan(feature)
    present = feature[~missing]
    bins = np.full(feature.shape, -1, dtype=int)
    if present.size:
        quantiles = np.quantile(present, np.linspace(0, 1, n_bins + 1)[1:-1])
        bins[~missing] = np.searchsorted(quantiles, present, side="right")

    base = entropy(labels)
    conditional = 0.0
    split_entropy = 0.0
    for value in np.unique(bins):
        mask = bins == value
        weight = float(np.mean(mask))
        conditional += weight * entropy(labels[mask])
        split_entropy -= weight * math.log2(weight)
    gain = base - conditional
    if split_entropy <= 0:
        return 0.0
    return float(gain / split_entropy)
