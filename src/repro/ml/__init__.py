"""Machine-learning substrate for the NEVERMIND reproduction.

Everything here is implemented from scratch on top of numpy:

* :mod:`repro.ml.stumps` -- confidence-rated one-level decision stumps
  (continuous and categorical features, abstention on missing values).
* :mod:`repro.ml.boostexter` -- ``BStump``: AdaBoost with decision stumps,
  the Boostexter-style learner the paper uses for both the ticket predictor
  and the trouble locator.
* :mod:`repro.ml.calibration` -- Platt (logistic) calibration of boosting
  margins into posterior probabilities.
* :mod:`repro.ml.logistic` -- logistic regression with Newton-Raphson
  fitting and Wald p-values (used for the combined locator model, Eq. 2,
  and the Table-5 outage correlation analysis).
* :mod:`repro.ml.pca` -- principal component analysis for the PCA
  feature-selection baseline (Table 4).
* :mod:`repro.ml.metrics` -- ranking metrics: precision@r, top-N average
  precision AP(N), ROC/AUC, accuracy@N, entropy and gain ratio.
* :mod:`repro.ml.ensemble_scoring` -- ``CompiledEnsemble``: fitted stump
  ensembles compiled into per-feature threshold/score tables so that
  scoring costs one ``searchsorted`` per used feature instead of one
  matrix pass per boosting round.
"""

from repro.ml.boostexter import BStump, BStumpConfig, WeakLearner
from repro.ml.calibration import PlattCalibrator
from repro.ml.ensemble_scoring import (
    CompiledEnsemble,
    compile_stumps,
    naive_grouped_margin,
)
from repro.ml.isotonic import IsotonicCalibrator, pool_adjacent_violators
from repro.ml.logistic import LogisticRegressionResult, fit_logistic_regression
from repro.ml.metrics import (
    accuracy_at_n,
    auc,
    average_precision,
    gain_ratio,
    precision_at,
    roc_curve,
    top_n_average_precision,
)
from repro.ml.pca import PCA
from repro.ml.serialize import (
    bstump_from_dict,
    bstump_to_dict,
    load_bstump,
    save_bstump,
)
from repro.ml.stumps import ColumnStumpBatch, Stump, StumpSearch, fit_stump

__all__ = [
    "BStump",
    "BStumpConfig",
    "WeakLearner",
    "CompiledEnsemble",
    "compile_stumps",
    "naive_grouped_margin",
    "PlattCalibrator",
    "IsotonicCalibrator",
    "pool_adjacent_violators",
    "LogisticRegressionResult",
    "fit_logistic_regression",
    "accuracy_at_n",
    "auc",
    "average_precision",
    "gain_ratio",
    "precision_at",
    "roc_curve",
    "top_n_average_precision",
    "PCA",
    "bstump_from_dict",
    "bstump_to_dict",
    "load_bstump",
    "save_bstump",
    "Stump",
    "StumpSearch",
    "ColumnStumpBatch",
    "fit_stump",
]
