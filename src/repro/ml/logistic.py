"""Logistic regression with Newton-Raphson fitting and Wald inference.

Two places in the paper need a proper logistic regression rather than a
boosted classifier:

* the **combined locator model** (Eq. 2) blends a disposition classifier's
  score with its parent major-location classifier's score through a
  logistic regression with coefficients gamma;
* the **Table-5 outage analysis** regresses future DSLAM outage events on
  the number of top-ranked predictions per DSLAM and reports coefficients
  and P-values.

We therefore implement maximum-likelihood logistic regression (IRLS /
Newton-Raphson with a small ridge term for stability) and Wald standard
errors from the inverse Hessian, with two-sided normal P-values computed
via :func:`scipy.stats.norm.sf`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

__all__ = ["LogisticRegressionResult", "fit_logistic_regression"]


@dataclass(frozen=True)
class LogisticRegressionResult:
    """A fitted logistic regression ``P(y=1|x) = sigmoid(intercept + x.w)``.

    Attributes:
        coefficients: fitted weights, one per input column.
        intercept: fitted bias term.
        std_errors: Wald standard errors of the coefficients (same order).
        intercept_std_error: Wald standard error of the intercept.
        p_values: two-sided Wald P-values of the coefficients.
        intercept_p_value: two-sided Wald P-value of the intercept.
        n_iter: Newton iterations performed.
        converged: whether the gradient tolerance was reached.
        log_likelihood: final (unpenalised) log-likelihood.
    """

    coefficients: np.ndarray
    intercept: float
    std_errors: np.ndarray
    intercept_std_error: float
    p_values: np.ndarray
    intercept_p_value: float
    n_iter: int
    converged: bool
    log_likelihood: float

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Return ``P(y = 1 | x)`` for each row of ``X``."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        z = self.intercept + X @ self.coefficients
        return _sigmoid(z)

    def predict(self, X: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        """Hard 0/1 labels at the given probability threshold."""
        return (self.predict_proba(X) >= threshold).astype(int)


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -500, 500)))


def fit_logistic_regression(
    X: np.ndarray,
    y: np.ndarray,
    max_iter: int = 100,
    tol: float = 1e-8,
    ridge: float = 1e-8,
) -> LogisticRegressionResult:
    """Fit a binary logistic regression by Newton-Raphson.

    Args:
        X: (n_samples, n_features) design matrix (an intercept column is
            added internally; do not include one).
        y: binary outcomes in {0, 1} (or {-1, +1}, converted).
        max_iter: Newton iteration cap.
        tol: infinity-norm gradient tolerance for convergence.
        ridge: tiny L2 penalty that keeps the Hessian invertible on
            separable or collinear data.

    Returns:
        A :class:`LogisticRegressionResult` with coefficients, Wald
        standard errors and two-sided P-values.
    """
    X = np.asarray(X, dtype=float)
    if X.ndim == 1:
        X = X[:, None]
    if X.ndim != 2:
        raise ValueError(f"X must be 1-D or 2-D, got shape {X.shape}")
    y = np.asarray(y, dtype=float)
    if set(np.unique(y).tolist()) <= {-1.0, 1.0} and -1.0 in y:
        y = (y > 0).astype(float)
    if not set(np.unique(y).tolist()) <= {0.0, 1.0}:
        raise ValueError("y must be binary")
    n, k = X.shape
    if y.shape != (n,):
        raise ValueError("y must have one entry per row of X")
    if n == 0:
        raise ValueError("cannot fit on empty data")

    design = np.column_stack([np.ones(n), X])
    beta = np.zeros(k + 1)
    converged = False
    n_iter = 0
    for n_iter in range(1, max_iter + 1):
        z = design @ beta
        p = _sigmoid(z)
        grad = design.T @ (y - p) - ridge * beta
        if float(np.max(np.abs(grad))) < tol:
            converged = True
            break
        w = np.clip(p * (1.0 - p), 1e-12, None)
        hessian = (design * w[:, None]).T @ design + ridge * np.eye(k + 1)
        try:
            step = np.linalg.solve(hessian, grad)
        except np.linalg.LinAlgError:
            step = np.linalg.lstsq(hessian, grad, rcond=None)[0]
        # Dampen huge steps that can occur on near-separable data.
        norm = float(np.max(np.abs(step)))
        if norm > 10.0:
            step *= 10.0 / norm
        beta = beta + step

    z = design @ beta
    p = _sigmoid(z)
    w = np.clip(p * (1.0 - p), 1e-12, None)
    hessian = (design * w[:, None]).T @ design + ridge * np.eye(k + 1)
    try:
        covariance = np.linalg.inv(hessian)
    except np.linalg.LinAlgError:
        covariance = np.linalg.pinv(hessian)
    std = np.sqrt(np.clip(np.diag(covariance), 0.0, None))
    with np.errstate(divide="ignore", invalid="ignore"):
        z_scores = np.where(std > 0, beta / std, np.inf)
    p_values = 2.0 * stats.norm.sf(np.abs(z_scores))

    eps = 1e-12
    log_likelihood = float(np.sum(y * np.log(p + eps) + (1 - y) * np.log(1 - p + eps)))

    return LogisticRegressionResult(
        coefficients=beta[1:].copy(),
        intercept=float(beta[0]),
        std_errors=std[1:].copy(),
        intercept_std_error=float(std[0]),
        p_values=p_values[1:].copy(),
        intercept_p_value=float(p_values[0]),
        n_iter=n_iter,
        converged=converged,
        log_likelihood=log_likelihood,
    )
