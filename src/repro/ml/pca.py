"""Principal component analysis for the PCA feature-selection baseline.

Table 4 lists "Top principal components" as one of the feature-selection
criteria NEVERMIND is compared against (Fig. 6).  Selecting *features* via
PCA is done the usual way: run PCA on the standardised feature matrix and
rank original features by their total squared loading on the leading
components, weighted by explained variance.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["PCA"]


@dataclass
class PCA:
    """Plain covariance-eigendecomposition PCA.

    Missing values (NaN) are imputed with the column mean before the
    decomposition, matching how the feature-selection baseline has to cope
    with modem-off gaps in the line measurements.

    Attributes:
        n_components: number of leading components to retain (None = all).
    """

    n_components: int | None = None
    components_: np.ndarray = field(default=None, repr=False)  # type: ignore[assignment]
    explained_variance_: np.ndarray = field(default=None, repr=False)  # type: ignore[assignment]
    explained_variance_ratio_: np.ndarray = field(default=None, repr=False)  # type: ignore[assignment]
    mean_: np.ndarray = field(default=None, repr=False)  # type: ignore[assignment]
    scale_: np.ndarray = field(default=None, repr=False)  # type: ignore[assignment]

    def _prepare(self, X: np.ndarray) -> np.ndarray:
        X = np.array(X, dtype=float, copy=True)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        col_mean = np.nanmean(np.where(np.isfinite(X), X, np.nan), axis=0)
        col_mean = np.where(np.isfinite(col_mean), col_mean, 0.0)
        mask = ~np.isfinite(X)
        X[mask] = np.broadcast_to(col_mean, X.shape)[mask]
        return X

    def fit(self, X: np.ndarray) -> "PCA":
        """Fit components on (NaN-imputed, standardised) ``X``."""
        X = self._prepare(X)
        self.mean_ = X.mean(axis=0)
        self.scale_ = X.std(axis=0)
        self.scale_[self.scale_ == 0] = 1.0
        Z = (X - self.mean_) / self.scale_
        cov = np.cov(Z, rowvar=False, ddof=1)
        cov = np.atleast_2d(cov)
        eigenvalues, eigenvectors = np.linalg.eigh(cov)
        order = np.argsort(eigenvalues)[::-1]
        eigenvalues = np.clip(eigenvalues[order], 0.0, None)
        eigenvectors = eigenvectors[:, order]
        k = self.n_components or len(eigenvalues)
        k = min(k, len(eigenvalues))
        self.components_ = eigenvectors[:, :k].T
        self.explained_variance_ = eigenvalues[:k]
        total = float(np.sum(eigenvalues))
        self.explained_variance_ratio_ = (
            self.explained_variance_ / total if total > 0 else self.explained_variance_
        )
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Project ``X`` onto the fitted components."""
        if self.components_ is None:
            raise RuntimeError("PCA is not fitted")
        X = self._prepare(X)
        Z = (X - self.mean_) / self.scale_
        return Z @ self.components_.T

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        """Fit and project in one call."""
        return self.fit(X).transform(X)

    def feature_scores(self) -> np.ndarray:
        """Variance-weighted squared loadings per original feature.

        The score of feature j is ``sum_c lambda_c * V[c, j]^2``; ranking
        features by this score yields the "top principal components"
        selection baseline of Table 4.
        """
        if self.components_ is None:
            raise RuntimeError("PCA is not fitted")
        weights = self.explained_variance_[:, None]
        return np.sum(weights * self.components_**2, axis=0)
