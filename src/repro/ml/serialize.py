"""Model serialization: save and load trained NEVERMIND models as JSON.

An operational deployment (Fig. 3) trains weekly-or-less but scores every
Saturday, usually on different machines; models therefore need a stable
on-disk form.  Everything in this reproduction serialises to plain JSON --
a BStump is just a list of stumps plus two calibration scalars, which is
also pleasantly auditable by operations staff.

Serving guarantees (used by :mod:`repro.serve`):

* every payload carries a ``checksum`` (SHA-256 over the canonical JSON
  of the model content) that the loader verifies, so a corrupted or
  hand-edited bundle fails loudly instead of scoring garbage;
* a loaded :class:`BStump` is compiled eagerly
  (:meth:`~repro.ml.boostexter.BStump.compiled`), so a save/load round
  trip hands back a model whose :class:`CompiledEnsemble` scorer produces
  margins *bit-identical* to the original's -- JSON floats round-trip
  exactly (``repr`` shortest form), the stumps are restored in round
  order, and compilation is deterministic;
* the Section-6 trouble locator (52 one-vs-rest models + 4 location
  models + the Eq.-2 blend) round-trips through
  :func:`combined_locator_to_dict` / :func:`combined_locator_from_dict`
  so a registry bundle can serve disposition rankings.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any

from repro.ml.boostexter import BStump, BStumpConfig, WeakLearner
from repro.ml.calibration import PlattCalibrator
from repro.ml.stumps import Stump

__all__ = [
    "payload_checksum",
    "bstump_to_dict",
    "bstump_from_dict",
    "save_bstump",
    "load_bstump",
    "combined_locator_to_dict",
    "combined_locator_from_dict",
]

_FORMAT_VERSION = 1
_LOCATOR_FORMAT_VERSION = 1
_CHECKSUM_FIELD = "checksum"


def payload_checksum(payload: dict[str, Any]) -> str:
    """SHA-256 over the canonical JSON of ``payload`` (checksum excluded).

    Canonical form is sorted keys with compact separators, so the digest
    is independent of insertion order and whitespace.
    """
    content = {k: v for k, v in payload.items() if k != _CHECKSUM_FIELD}
    blob = json.dumps(content, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def _verify_checksum(payload: dict[str, Any], what: str) -> None:
    """Validate an embedded checksum when one is present."""
    stored = payload.get(_CHECKSUM_FIELD)
    if stored is None:
        return  # pre-checksum payloads stay loadable
    actual = payload_checksum(payload)
    if stored != actual:
        raise ValueError(
            f"{what} checksum mismatch: payload says {stored[:12]}..., "
            f"content hashes to {actual[:12]}... (corrupted or edited file)"
        )


def bstump_to_dict(model: BStump) -> dict[str, Any]:
    """Serialise a fitted BStump (with its calibrator) to plain data."""
    if not model.learners:
        raise ValueError("cannot serialise an unfitted model")
    payload: dict[str, Any] = {
        "format_version": _FORMAT_VERSION,
        "config": {
            "n_rounds": model.config.n_rounds,
            "early_stop_z": model.config.early_stop_z,
            "calibrate": model.config.calibrate,
            "missing_policy": model.config.missing_policy,
            "max_split_points": model.config.max_split_points,
            # Training provenance: a promoted model's bundle records which
            # backend and bin budget produced it, so a retrain can
            # reproduce it.  Payloads written before these fields existed
            # load as backend="exact" via the dataclass defaults.
            "backend": model.config.backend,
            "n_bins": model.config.n_bins,
        },
        "n_features": model.n_features_,
        "learners": [
            {
                "feature": learner.stump.feature,
                "threshold": learner.stump.threshold,
                "s_lo": learner.stump.s_lo,
                "s_hi": learner.stump.s_hi,
                "s_miss": learner.stump.s_miss,
                "categorical": learner.stump.categorical,
                "z": learner.stump.z,
                "round_index": learner.round_index,
            }
            for learner in model.learners
        ],
    }
    if model.calibrator is not None:
        payload["calibrator"] = {"a": model.calibrator.a, "b": model.calibrator.b}
    payload[_CHECKSUM_FIELD] = payload_checksum(payload)
    return payload


def bstump_from_dict(payload: dict[str, Any]) -> BStump:
    """Rebuild a BStump from :func:`bstump_to_dict` output.

    Verifies the embedded checksum (when present) and compiles the
    ensemble eagerly, so the returned model round-trips with its
    :class:`~repro.ml.ensemble_scoring.CompiledEnsemble` scorer attached
    and produces bit-identical margins to the model that was saved.
    """
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported model format version: {version!r}")
    _verify_checksum(payload, "model")
    config = BStumpConfig(**payload["config"])
    model = BStump(config)
    model.n_features_ = int(payload["n_features"])
    model.learners = [
        WeakLearner(
            stump=Stump(
                feature=int(entry["feature"]),
                threshold=float(entry["threshold"]),
                s_lo=float(entry["s_lo"]),
                s_hi=float(entry["s_hi"]),
                s_miss=float(entry["s_miss"]),
                categorical=bool(entry["categorical"]),
                z=float(entry["z"]),
            ),
            round_index=int(entry["round_index"]),
            z=float(entry["z"]),
        )
        for entry in payload["learners"]
    ]
    model.train_z_ = [learner.z for learner in model.learners]
    if "calibrator" in payload:
        calibrator = PlattCalibrator()
        calibrator.a = float(payload["calibrator"]["a"])
        calibrator.b = float(payload["calibrator"]["b"])
        calibrator.fitted_ = True
        model.calibrator = calibrator
    model.compiled()  # eager compile: loading yields a scoring-ready model
    return model


def save_bstump(model: BStump, path: str | Path) -> None:
    """Write a fitted model to a JSON file."""
    Path(path).write_text(json.dumps(bstump_to_dict(model)))


def load_bstump(path: str | Path) -> BStump:
    """Read a model previously written by :func:`save_bstump`."""
    return bstump_from_dict(json.loads(Path(path).read_text()))


# ----- trouble locator ------------------------------------------------------


def combined_locator_to_dict(model) -> dict[str, Any]:
    """Serialise a fitted :class:`~repro.core.locator.CombinedLocator`.

    Captures everything ``predict_proba`` needs: the flat model's prior,
    per-disposition ensembles and Platt calibrators, the four
    major-location ensembles, and the Eq.-2 blend coefficients.  The
    out-of-fold training margins are fit-time scaffolding and are not
    persisted.
    """
    flat = model.flat
    if flat.prior_ is None:
        raise ValueError("cannot serialise an unfitted locator")
    payload: dict[str, Any] = {
        "format_version": _LOCATOR_FORMAT_VERSION,
        "config": {
            "n_rounds": model.config.n_rounds,
            "min_positive": model.config.min_positive,
            "prior_smoothing": model.config.prior_smoothing,
            "cv_folds": model.config.cv_folds,
            "cv_seed": model.config.cv_seed,
            "backend": model.config.backend,
            "n_bins": model.config.n_bins,
            "max_split_points": model.config.max_split_points,
        },
        "prior": [float(p) for p in flat.prior_],
        "disposition_models": {
            str(code): bstump_to_dict(m) for code, m in sorted(flat.models_.items())
        },
        "calibrators": {
            str(code): {"a": cal.a, "b": cal.b}
            for code, cal in sorted(flat.calibrators_.items())
        },
        "location_models": {
            str(loc): bstump_to_dict(m)
            for loc, m in sorted(model.location_models_.items())
        },
        "blend": {
            str(code): [float(g) for g in gammas]
            for code, gammas in sorted(model.blend_.items())
        },
    }
    payload[_CHECKSUM_FIELD] = payload_checksum(payload)
    return payload


def combined_locator_from_dict(payload: dict[str, Any]):
    """Rebuild a CombinedLocator from :func:`combined_locator_to_dict`."""
    from repro.core.locator import CombinedLocator, LocatorConfig

    import numpy as np

    version = payload.get("format_version")
    if version != _LOCATOR_FORMAT_VERSION:
        raise ValueError(f"unsupported locator format version: {version!r}")
    _verify_checksum(payload, "locator")
    config = dict(payload["config"])
    # Payloads written before the locator rode the shared-binning fabric
    # carry no backend knobs; those models were trained exact, and the
    # per-head BStump payloads (which record their own backend) agree.
    config.setdefault("backend", "exact")
    config.setdefault("n_bins", 256)
    config.setdefault("max_split_points", 256)
    model = CombinedLocator(LocatorConfig(**config))
    flat = model.flat
    flat.prior_ = np.asarray(payload["prior"], dtype=float)
    flat.models_ = {
        int(code): bstump_from_dict(entry)
        for code, entry in payload["disposition_models"].items()
    }
    flat.calibrators_ = {}
    for code, entry in payload["calibrators"].items():
        calibrator = PlattCalibrator()
        calibrator.a = float(entry["a"])
        calibrator.b = float(entry["b"])
        calibrator.fitted_ = True
        flat.calibrators_[int(code)] = calibrator
    model.location_models_ = {
        int(loc): bstump_from_dict(entry)
        for loc, entry in payload["location_models"].items()
    }
    model.blend_ = {
        int(code): (float(g[0]), float(g[1]), float(g[2]))
        for code, g in payload["blend"].items()
    }
    return model
