"""Model serialization: save and load trained NEVERMIND models as JSON.

An operational deployment (Fig. 3) trains weekly-or-less but scores every
Saturday, usually on different machines; models therefore need a stable
on-disk form.  Everything in this reproduction serialises to plain JSON --
a BStump is just a list of stumps plus two calibration scalars, which is
also pleasantly auditable by operations staff.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.ml.boostexter import BStump, BStumpConfig, WeakLearner
from repro.ml.calibration import PlattCalibrator
from repro.ml.stumps import Stump

__all__ = [
    "bstump_to_dict",
    "bstump_from_dict",
    "save_bstump",
    "load_bstump",
]

_FORMAT_VERSION = 1


def bstump_to_dict(model: BStump) -> dict[str, Any]:
    """Serialise a fitted BStump (with its calibrator) to plain data."""
    if not model.learners:
        raise ValueError("cannot serialise an unfitted model")
    payload: dict[str, Any] = {
        "format_version": _FORMAT_VERSION,
        "config": {
            "n_rounds": model.config.n_rounds,
            "early_stop_z": model.config.early_stop_z,
            "calibrate": model.config.calibrate,
            "missing_policy": model.config.missing_policy,
            "max_split_points": model.config.max_split_points,
        },
        "n_features": model.n_features_,
        "learners": [
            {
                "feature": learner.stump.feature,
                "threshold": learner.stump.threshold,
                "s_lo": learner.stump.s_lo,
                "s_hi": learner.stump.s_hi,
                "s_miss": learner.stump.s_miss,
                "categorical": learner.stump.categorical,
                "z": learner.stump.z,
                "round_index": learner.round_index,
            }
            for learner in model.learners
        ],
    }
    if model.calibrator is not None:
        payload["calibrator"] = {"a": model.calibrator.a, "b": model.calibrator.b}
    return payload


def bstump_from_dict(payload: dict[str, Any]) -> BStump:
    """Rebuild a BStump from :func:`bstump_to_dict` output."""
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported model format version: {version!r}")
    config = BStumpConfig(**payload["config"])
    model = BStump(config)
    model.n_features_ = int(payload["n_features"])
    model.learners = [
        WeakLearner(
            stump=Stump(
                feature=int(entry["feature"]),
                threshold=float(entry["threshold"]),
                s_lo=float(entry["s_lo"]),
                s_hi=float(entry["s_hi"]),
                s_miss=float(entry["s_miss"]),
                categorical=bool(entry["categorical"]),
                z=float(entry["z"]),
            ),
            round_index=int(entry["round_index"]),
            z=float(entry["z"]),
        )
        for entry in payload["learners"]
    ]
    model.train_z_ = [learner.z for learner in model.learners]
    if "calibrator" in payload:
        calibrator = PlattCalibrator()
        calibrator.a = float(payload["calibrator"]["a"])
        calibrator.b = float(payload["calibrator"]["b"])
        calibrator.fitted_ = True
        model.calibrator = calibrator
    return model


def save_bstump(model: BStump, path: str | Path) -> None:
    """Write a fitted model to a JSON file."""
    Path(path).write_text(json.dumps(bstump_to_dict(model)))


def load_bstump(path: str | Path) -> BStump:
    """Read a model previously written by :func:`save_bstump`."""
    return bstump_from_dict(json.loads(Path(path).read_text()))
