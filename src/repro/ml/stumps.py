"""Confidence-rated one-level decision stumps.

These are the weak learners inside ``BStump`` (Fig. 5 of the paper).  Each
stump tests a single line feature against a threshold ``delta``:

* continuous features -- output ``s_lo`` when the value is below ``delta``
  and ``s_hi`` otherwise;
* categorical features -- output ``s_hi`` when the value equals the chosen
  category and ``s_lo`` otherwise;
* missing values (NaN) -- by default routed to a third, *scored* block
  (``s_miss``).  A missed weekly record means the modem was off, which is
  itself evidence about the line (the paper's "modem" customer feature
  exists precisely because missingness is informative).  The
  Boostexter-style alternative -- abstain with output 0 -- is available
  via ``missing_policy="abstain"``; under heavy class imbalance pure
  abstention ranks every incomplete record above every scored one, which
  is why scoring the missing block is the default.

Scores are the confidence-rated values of Schapire & Singer: for a block
``b`` holding positive weight ``W+`` and negative weight ``W-``, the block
score is ``0.5 * ln((W+ + eps) / (W- + eps))`` and the stump is chosen to
minimise the normaliser ``Z = 2 * sum_b sqrt(W+_b W-_b)`` (the abstain
policy instead adds the raw abstained weight to Z).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.ml.binning import BinnedDataset
from repro.parallel import parallel_map, worker_count

__all__ = [
    "Stump",
    "fit_stump",
    "StumpSearch",
    "HistStumpSearch",
    "ColumnStumpBatch",
    "MISSING_POLICIES",
]

#: Engage the parallel fabric for per-round histogram builds only above
#: this many matrix cells (rows x continuous features).  Below it the
#: per-round thread-pool spin-up costs more than the histograms.
_HIST_PARALLEL_MIN_CELLS = 2_000_000

_EPS_SCALE = 0.5  # eps = _EPS_SCALE / n, the standard 1/(2n) smoothing

MISSING_POLICIES = ("score", "abstain")


@dataclass(frozen=True)
class Stump:
    """A fitted one-level decision stump.

    Attributes:
        feature: column index the stump tests.
        threshold: split value ``delta``.  For continuous features the test
            is ``x < threshold``; for categorical features it is
            ``x == threshold``.
        s_lo: score emitted when the test routes to the "low"/unequal block.
        s_hi: score emitted for the "high"/equal block.
        s_miss: score emitted for missing values (0 under the abstain
            policy).
        categorical: whether the feature is categorical.
        z: the Z-value (weighted normaliser) achieved during fitting; lower
            is a stronger weak learner.
    """

    feature: int
    threshold: float
    s_lo: float
    s_hi: float
    s_miss: float = 0.0
    categorical: bool = False
    z: float = 1.0

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Return per-row stump outputs for feature matrix ``X``."""
        # Slice the tested column out first: casting after the slice keeps
        # the conversion O(n) instead of copying the whole matrix when X
        # is not float64 already.
        return self.predict_column(
            np.asarray(np.asarray(X)[:, self.feature], dtype=float)
        )

    def predict_column(self, col: np.ndarray) -> np.ndarray:
        """Stump outputs for an already-cast 1-D float column.

        Callers that evaluate many stumps against the same matrix (the
        naive ensemble scorer) cast ``X`` to float64 once and feed each
        stump its column through here, instead of paying a cast per
        stump via :meth:`predict`.
        """
        out = np.full(col.shape[0], self.s_miss, dtype=float)
        present = ~np.isnan(col)
        if self.categorical:
            hi = present & (col == self.threshold)
        else:
            hi = present & (col >= self.threshold)
        lo = present & ~hi
        out[hi] = self.s_hi
        out[lo] = self.s_lo
        return out


def _block_score(w_pos: float, w_neg: float, eps: float) -> float:
    # Round-off in cumulative sums can leave weights a hair below zero.
    w_pos = max(w_pos, 0.0)
    w_neg = max(w_neg, 0.0)
    return 0.5 * math.log((w_pos + eps) / (w_neg + eps))


def _missing_block_terms(
    wp_miss: np.ndarray, wn_miss: np.ndarray, eps: float, missing_policy: str
) -> tuple[np.ndarray, np.ndarray]:
    """(z_miss, s_miss) per feature for a missing-value policy."""
    if missing_policy == "score":
        z_miss = 2.0 * np.sqrt(np.clip(wp_miss * wn_miss, 0.0, None))
        s_miss = 0.5 * np.log((wp_miss + eps) / (wn_miss + eps))
        s_miss = np.where(wp_miss + wn_miss > 0, s_miss, 0.0)
    else:
        z_miss = wp_miss + wn_miss
        s_miss = np.zeros_like(wp_miss)
    return z_miss, s_miss


def _check_policy(missing_policy: str) -> None:
    if missing_policy not in MISSING_POLICIES:
        raise ValueError(
            f"missing_policy must be one of {MISSING_POLICIES}, got {missing_policy!r}"
        )


def fit_stump(
    column: np.ndarray,
    y: np.ndarray,
    weights: np.ndarray,
    feature: int = 0,
    categorical: bool = False,
    missing_policy: str = "score",
) -> Stump:
    """Fit the best stump on a single feature column.

    Args:
        column: 1-D float array of feature values; NaN marks missing.
        y: labels in {-1, +1}.
        weights: non-negative sample weights (need not be normalised).
        feature: index recorded in the returned stump.
        categorical: treat values as category codes instead of ordered
            reals.
        missing_policy: "score" (default) gives missing values their own
            confidence-rated block; "abstain" outputs 0 on missing.

    Returns:
        The Z-minimising :class:`Stump` for this column.
    """
    _check_policy(missing_policy)
    column = np.asarray(column, dtype=float)
    y = np.asarray(y, dtype=float)
    weights = np.asarray(weights, dtype=float)
    if not (column.shape == y.shape == weights.shape):
        raise ValueError("column, y and weights must share a shape")
    if column.size == 0:
        raise ValueError("cannot fit a stump on an empty column")

    n = column.size
    eps = _EPS_SCALE / n
    present = ~np.isnan(column)
    wp_miss = float(np.sum(weights[~present & (y > 0)]))
    wn_miss = float(np.sum(weights[~present & (y <= 0)]))
    if missing_policy == "score":
        z_miss = 2.0 * math.sqrt(wp_miss * wn_miss)
        s_miss = _block_score(wp_miss, wn_miss, eps) if (wp_miss + wn_miss) > 0 else 0.0
    else:
        z_miss = wp_miss + wn_miss
        s_miss = 0.0
    w_pos_tot = float(np.sum(weights[present & (y > 0)]))
    w_neg_tot = float(np.sum(weights[present & (y <= 0)]))

    if not np.any(present):
        # Fully-missing column: only the missing block exists.
        return Stump(feature, math.inf, 0.0, 0.0, s_miss, categorical, z=z_miss)

    best: Stump | None = None

    if categorical:
        for value in np.unique(column[present]):
            eq = present & (column == value)
            wp_eq = float(np.sum(weights[eq & (y > 0)]))
            wn_eq = float(np.sum(weights[eq & (y <= 0)]))
            wp_ne = w_pos_tot - wp_eq
            wn_ne = w_neg_tot - wn_eq
            z = 2.0 * (math.sqrt(wp_eq * wn_eq) + math.sqrt(wp_ne * wn_ne)) + z_miss
            if best is None or z < best.z:
                best = Stump(
                    feature,
                    float(value),
                    s_lo=_block_score(wp_ne, wn_ne, eps),
                    s_hi=_block_score(wp_eq, wn_eq, eps),
                    s_miss=s_miss,
                    categorical=True,
                    z=z,
                )
        assert best is not None
        return best

    order = np.argsort(column, kind="stable")  # NaNs sort last
    sorted_vals = column[order]
    sorted_w = weights[order]
    sorted_pos = sorted_w * (y[order] > 0)
    sorted_neg = sorted_w * (y[order] <= 0)
    m = int(np.sum(present))

    cum_pos = np.concatenate([[0.0], np.cumsum(sorted_pos[:m])])
    cum_neg = np.concatenate([[0.0], np.cumsum(sorted_neg[:m])])

    for k in range(m + 1):
        if 0 < k < m and sorted_vals[k - 1] == sorted_vals[k]:
            continue  # cannot split between equal values
        wp_lo, wn_lo = cum_pos[k], cum_neg[k]
        # Round-off in the cumulative sums can dip a hair below zero.
        wp_hi = max(w_pos_tot - wp_lo, 0.0)
        wn_hi = max(w_neg_tot - wn_lo, 0.0)
        z = 2.0 * (math.sqrt(wp_lo * wn_lo) + math.sqrt(wp_hi * wn_hi)) + z_miss
        if best is None or z < best.z:
            if k == 0:
                threshold = -math.inf
            elif k == m:
                threshold = math.inf
            else:
                threshold = 0.5 * (sorted_vals[k - 1] + sorted_vals[k])
            best = Stump(
                feature,
                float(threshold),
                s_lo=_block_score(wp_lo, wn_lo, eps),
                s_hi=_block_score(wp_hi, wn_hi, eps),
                s_miss=s_miss,
                categorical=False,
                z=z,
            )
    assert best is not None
    return best


class StumpSearch:
    """Vectorised best-stump search over a whole feature matrix.

    The expensive parts that do not depend on the boosting weights -- the
    per-column sort orders and tie masks -- are computed once at
    construction, so each boosting round only costs a weight gather, a
    cumulative sum and an argmin over all features simultaneously.
    """

    def __init__(
        self,
        X: np.ndarray,
        y: np.ndarray,
        categorical: np.ndarray | None = None,
        missing_policy: str = "score",
        max_split_points: int = 256,
    ):
        """Args:
            X: (n, F) float matrix, NaN = missing.
            y: labels in {-1, +1}.
            categorical: per-feature categorical mask.
            missing_policy: "score" or "abstain" (see module docstring).
            max_split_points: cap on candidate thresholds per feature per
                round.  Above this, candidates are taken on an even grid
                of the sorted order (quantile splits) -- a standard
                boosting approximation that trades exactness of each weak
                learner for a large constant-factor speedup; with
                ``n <= max_split_points`` the search is exact.
        """
        _check_policy(missing_policy)
        if max_split_points < 2:
            raise ValueError("max_split_points must be at least 2")
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        y = np.asarray(y, dtype=float)
        if y.shape != (X.shape[0],):
            raise ValueError("y must be 1-D with one label per row of X")
        n, n_features = X.shape
        if n == 0 or n_features == 0:
            raise ValueError("X must be non-empty")

        if categorical is None:
            categorical = np.zeros(n_features, dtype=bool)
        else:
            categorical = np.asarray(categorical, dtype=bool)
            if categorical.shape != (n_features,):
                raise ValueError("categorical mask must have one entry per feature")

        self.n = n
        self.n_features = n_features
        self.eps = _EPS_SCALE / n
        self.y = y
        self.X = X
        self.categorical = categorical
        self.missing_policy = missing_policy
        self._cont_cols = np.flatnonzero(~categorical)
        self._cat_cols = np.flatnonzero(categorical)

        if self._cont_cols.size:
            sub = X[:, self._cont_cols]
            self._order = np.argsort(sub, axis=0, kind="stable")  # NaNs last
            sorted_vals = np.take_along_axis(sub, self._order, axis=0)
            self._present_cont = ~np.isnan(sub)
            self._present_counts = np.sum(self._present_cont, axis=0)
            # split k is valid when the value at k-1 differs from k (or k is
            # at either extreme); splits beyond the present count are invalid.
            valid = np.ones((n + 1, self._cont_cols.size), dtype=bool)
            with np.errstate(invalid="ignore"):
                interior_tie = sorted_vals[:-1] == sorted_vals[1:]
            valid[1:n, :] = ~interior_tie
            ks = np.arange(n + 1)[:, None]
            valid &= ks <= self._present_counts[None, :]
            # Candidate split grid: exact below the cap, quantile-strided
            # above it (always keeping the no-split endpoints).
            if n + 1 > max_split_points:
                grid = np.unique(
                    np.round(np.linspace(0, n, max_split_points)).astype(int)
                )
            else:
                grid = np.arange(n + 1)
            self._grid = grid
            self._valid = valid[grid, :]
            self._sorted_vals = sorted_vals
            # Each round needs the cumulative (positive) weight below every
            # candidate split, but only at the G grid positions -- never at
            # all n+1 of them.  So instead of a per-round sorted gather plus
            # a full-length cumulative sum (O(n) reads AND writes per
            # column), precompute for every cell which inter-grid *segment*
            # its row's sorted position falls into; a round then reduces to
            # one weighted ``bincount`` over segments (output is G x C,
            # cache-resident) and a tiny prefix sum.
            C = self._cont_cols.size
            G = grid.size
            inv_order = np.empty_like(self._order)
            np.put_along_axis(
                inv_order, self._order, np.arange(n)[:, None], axis=0
            )
            segment = np.searchsorted(grid, inv_order, side="right") - 1
            np.clip(segment, 0, G - 2, out=segment)
            self._flat_segment = (segment * C + np.arange(C)[None, :]).ravel()
            self._n_segment_bins = (G - 1) * C
            # Per-round scratch buffers, allocated once: each boosting
            # round fills these in place instead of reallocating.
            # ``best_stump`` / ``best_stumps_per_column`` are therefore NOT
            # thread-safe on a shared instance (each fit owns its own
            # search object; parallel selection chunks build their own).
            self._buf_wcol = np.empty((n, C))
            self._buf_wposcol = np.empty((n, C))
            # Row 0 of the cumulative buffers is the "split before
            # everything" boundary and stays 0; each round only writes
            # rows 1..G-1.
            self._buf_wp_lo = np.zeros((G, C))
            self._buf_wn_lo = np.zeros((G, C))
            self._buf_wp_hi = np.empty((G, C))
            self._buf_wn_hi = np.empty((G, C))
            self._buf_z = np.empty((G, C))

        # Categorical columns: cache unique values and equality masks.
        self._cat_values: list[np.ndarray] = []
        self._cat_masks: list[np.ndarray] = []
        for col_idx in self._cat_cols:
            col = X[:, col_idx]
            present = ~np.isnan(col)
            values = np.unique(col[present])
            self._cat_values.append(values)
            self._cat_masks.append(present[:, None] & (col[:, None] == values[None, :]))

    def _missing_terms(
        self, wp_miss: np.ndarray, wn_miss: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """(z_miss, s_miss) per feature for the configured policy."""
        wp_miss = np.asarray(wp_miss, dtype=float)
        wn_miss = np.asarray(wn_miss, dtype=float)
        if self.missing_policy == "score":
            z_miss = 2.0 * np.sqrt(np.clip(wp_miss * wn_miss, 0.0, None))
            s_miss = 0.5 * np.log((wp_miss + self.eps) / (wn_miss + self.eps))
            s_miss = np.where(wp_miss + wn_miss > 0, s_miss, 0.0)
        else:
            z_miss = wp_miss + wn_miss
            s_miss = np.zeros_like(wp_miss)
        return z_miss, s_miss

    def best_stump(self, weights: np.ndarray) -> Stump:
        """Return the Z-minimising stump over all features for ``weights``."""
        weights = np.asarray(weights, dtype=float)
        if weights.shape != (self.n,):
            raise ValueError("weights must be 1-D with one entry per row")

        best: Stump | None = None
        if self._cont_cols.size:
            best = self._best_continuous(weights)
        for slot, col_idx in enumerate(self._cat_cols):
            cand = self._best_categorical(weights, slot, int(col_idx))
            if cand is not None and (best is None or cand.z < best.z):
                best = cand
        if best is None:
            raise ValueError("no usable feature found")
        return best

    def _fill_continuous_z(
        self,
        w_pos_tot: np.ndarray,
        w_neg_tot: np.ndarray,
        z_miss: np.ndarray,
    ) -> np.ndarray:
        """Fill the split-Z table from the already-filled weight buffers.

        Expects ``_buf_wcol`` / ``_buf_wposcol`` to hold this round's
        present-masked (and positive-masked) weights.  The cumulative
        weight below each candidate split is only ever read at the G grid
        positions, so it is built from per-segment totals (one weighted
        ``bincount`` whose G x C output stays cache-resident) followed by
        a prefix sum over segments -- O(n) reads but only O(G) writes per
        column, instead of a full sorted gather + length-n cumulative sum.
        """
        seg_w = np.bincount(
            self._flat_segment,
            weights=self._buf_wcol.ravel(),
            minlength=self._n_segment_bins,
        ).reshape(-1, self._buf_wcol.shape[1])
        seg_wpos = np.bincount(
            self._flat_segment,
            weights=self._buf_wposcol.ravel(),
            minlength=self._n_segment_bins,
        ).reshape(-1, self._buf_wcol.shape[1])

        wp_lo = self._buf_wp_lo
        wn_lo = self._buf_wn_lo
        np.cumsum(seg_wpos, axis=0, out=wp_lo[1:])
        np.cumsum(seg_w, axis=0, out=wn_lo[1:])
        np.subtract(wn_lo, wp_lo, out=wn_lo)
        wp_hi = np.subtract(w_pos_tot[None, :], wp_lo, out=self._buf_wp_hi)
        wn_hi = np.subtract(w_neg_tot[None, :], wn_lo, out=self._buf_wn_hi)
        # Numerical guard: cumsum round-off can leave tiny negatives.
        np.clip(wp_hi, 0.0, None, out=wp_hi)
        np.clip(wn_hi, 0.0, None, out=wn_hi)
        np.clip(wn_lo, 0.0, None, out=wn_lo)

        z = self._buf_z
        np.multiply(wp_lo, wn_lo, out=z)
        np.sqrt(z, out=z)
        tmp = np.sqrt(wp_hi * wn_hi)
        np.add(z, tmp, out=z)
        np.multiply(z, 2.0, out=z)
        np.add(z, z_miss[None, :], out=z)
        z[~self._valid] = np.inf
        return z

    def _continuous_threshold(self, k: int, slot: int) -> float:
        m = int(self._present_counts[slot])
        if k == 0:
            return -math.inf
        if k >= m:
            return math.inf
        return 0.5 * float(
            self._sorted_vals[k - 1, slot] + self._sorted_vals[k, slot]
        )

    def _best_continuous(self, weights: np.ndarray) -> Stump:
        cols = self._cont_cols
        y_pos = self.y > 0

        present = self._present_cont
        w_col = np.multiply(weights[:, None], present, out=self._buf_wcol)
        w_pos_col = np.multiply(w_col, y_pos[:, None], out=self._buf_wposcol)
        w_pos_tot = np.sum(w_pos_col, axis=0)
        w_tot = np.sum(w_col, axis=0)
        w_neg_tot = w_tot - w_pos_tot

        total_pos = float(np.sum(weights[y_pos]))
        total = float(np.sum(weights))
        wp_miss = np.clip(total_pos - w_pos_tot, 0.0, None)
        wn_miss = np.clip((total - total_pos) - w_neg_tot, 0.0, None)
        z_miss, s_miss = self._missing_terms(wp_miss, wn_miss)

        z = self._fill_continuous_z(w_pos_tot, w_neg_tot, z_miss)

        flat = int(np.argmin(z))
        row, slot = divmod(flat, cols.size)
        k = int(self._grid[row])
        return Stump(
            feature=int(cols[slot]),
            threshold=self._continuous_threshold(k, slot),
            s_lo=_block_score(
                float(self._buf_wp_lo[row, slot]),
                float(self._buf_wn_lo[row, slot]),
                self.eps,
            ),
            s_hi=_block_score(
                float(self._buf_wp_hi[row, slot]),
                float(self._buf_wn_hi[row, slot]),
                self.eps,
            ),
            s_miss=float(s_miss[slot]),
            categorical=False,
            z=float(z[row, slot]),
        )

    def _best_categorical(
        self, weights: np.ndarray, slot: int, col_idx: int
    ) -> Stump | None:
        values = self._cat_values[slot]
        if values.size == 0:
            return None
        masks = self._cat_masks[slot]  # (n, n_values)
        col = self.X[:, col_idx]
        present = ~np.isnan(col)
        y_pos = self.y > 0

        w_present = weights * present
        wp_tot = float(np.sum(w_present[y_pos]))
        wn_tot = float(np.sum(w_present[~y_pos]))
        wp_miss = float(np.sum(weights[~present & y_pos]))
        wn_miss = float(np.sum(weights[~present & ~y_pos]))
        z_miss_arr, s_miss_arr = self._missing_terms(
            np.array([wp_miss]), np.array([wn_miss])
        )
        z_miss = float(z_miss_arr[0])
        s_miss = float(s_miss_arr[0])

        wp_eq = np.sum((weights * y_pos)[:, None] * masks, axis=0)
        wn_eq = np.sum((weights * ~y_pos)[:, None] * masks, axis=0)
        wp_ne = np.clip(wp_tot - wp_eq, 0.0, None)
        wn_ne = np.clip(wn_tot - wn_eq, 0.0, None)
        z = 2.0 * (np.sqrt(wp_eq * wn_eq) + np.sqrt(wp_ne * wn_ne)) + z_miss
        j = int(np.argmin(z))
        return Stump(
            feature=col_idx,
            threshold=float(values[j]),
            s_lo=_block_score(float(wp_ne[j]), float(wn_ne[j]), self.eps),
            s_hi=_block_score(float(wp_eq[j]), float(wn_eq[j]), self.eps),
            s_miss=s_miss,
            categorical=True,
            z=float(z[j]),
        )

    # ----- batched per-column search (one independent stump per feature) --

    def best_stumps_per_column(self, weights: np.ndarray) -> "ColumnStumpBatch":
        """Best stump of *each* column under per-column example weights.

        Unlike :meth:`best_stump`, which races all features against each
        other for one global winner, this treats every column as an
        independent single-feature boosting problem: column ``j`` is
        searched under the weight vector ``weights[:, j]``.  All continuous
        columns are solved in one vectorised pass (shared sorted gather,
        cumulative sums, and a per-column argmin), which is what makes the
        batched single-feature selection sweep in
        :mod:`repro.features.selection` cheap.

        Args:
            weights: (n, n_features) non-negative weights, one independent
                weight vector per column.

        Returns:
            A :class:`ColumnStumpBatch` with one stump parameterisation per
            column, aligned with the columns of ``X``.
        """
        weights = np.asarray(weights, dtype=float)
        if weights.shape != (self.n, self.n_features):
            raise ValueError(
                "weights must be (n_rows, n_features) with one weight "
                "vector per column"
            )
        F = self.n_features
        threshold = np.full(F, math.inf)
        s_lo = np.zeros(F)
        s_hi = np.zeros(F)
        s_miss = np.zeros(F)
        z = np.full(F, math.inf)

        if self._cont_cols.size:
            self._batch_continuous(
                weights[:, self._cont_cols], threshold, s_lo, s_hi, s_miss, z
            )
        for slot, col_idx in enumerate(self._cat_cols):
            cand = self._best_categorical(weights[:, col_idx], slot, int(col_idx))
            if cand is None:
                continue
            threshold[col_idx] = cand.threshold
            s_lo[col_idx] = cand.s_lo
            s_hi[col_idx] = cand.s_hi
            s_miss[col_idx] = cand.s_miss
            z[col_idx] = cand.z
        return ColumnStumpBatch(
            threshold=threshold,
            s_lo=s_lo,
            s_hi=s_hi,
            s_miss=s_miss,
            categorical=self.categorical.copy(),
            z=z,
        )

    def _batch_continuous(
        self,
        W: np.ndarray,
        threshold: np.ndarray,
        s_lo: np.ndarray,
        s_hi: np.ndarray,
        s_miss_out: np.ndarray,
        z_out: np.ndarray,
    ) -> None:
        cols = self._cont_cols
        y_pos = self.y > 0
        C = cols.size

        present = self._present_cont
        w_col = np.multiply(W, present, out=self._buf_wcol)
        w_pos_col = np.multiply(w_col, y_pos[:, None], out=self._buf_wposcol)
        # Per-column 1-D sums, NOT one axis-0 matrix reduction: the matrix
        # reduction accumulates in a different order than the 1-D pairwise
        # sum a single-column search performs, and the resulting last-ULP
        # drift in the weight totals can flip near-tied split choices.
        # Column slices reduce exactly like contiguous 1-D arrays, keeping
        # every column of the batch bit-identical to the one-column path.
        w_pos_tot = np.empty(C)
        w_tot = np.empty(C)
        total = np.empty(C)
        total_pos = np.empty(C)
        for k in range(C):
            w_pos_tot[k] = np.sum(w_pos_col[:, k])
            w_tot[k] = np.sum(w_col[:, k])
            total[k] = np.sum(W[:, k])
            total_pos[k] = np.sum(W[y_pos, k])
        w_neg_tot = w_tot - w_pos_tot

        wp_miss = np.clip(total_pos - w_pos_tot, 0.0, None)
        wn_miss = np.clip((total - total_pos) - w_neg_tot, 0.0, None)
        z_miss, s_miss = self._missing_terms(wp_miss, wn_miss)

        z = self._fill_continuous_z(w_pos_tot, w_neg_tot, z_miss)

        rows = np.argmin(z, axis=0)
        eps = self.eps
        for k in range(C):
            col = int(cols[k])
            row = int(rows[k])
            split = int(self._grid[row])
            threshold[col] = self._continuous_threshold(split, k)
            s_lo[col] = _block_score(
                float(self._buf_wp_lo[row, k]), float(self._buf_wn_lo[row, k]), eps
            )
            s_hi[col] = _block_score(
                float(self._buf_wp_hi[row, k]), float(self._buf_wn_hi[row, k]), eps
            )
            z_out[col] = z[row, k]
        s_miss_out[cols] = s_miss


@dataclass(frozen=True)
class ColumnStumpBatch:
    """Per-column best stumps from :meth:`StumpSearch.best_stumps_per_column`.

    Each array has one entry per input column.  Columns that admit no
    split (e.g. an empty categorical column) carry ``z = inf`` and zero
    scores.  ``predict`` evaluates every column's stump against its own
    column of a feature matrix in one vectorised pass.
    """

    threshold: np.ndarray
    s_lo: np.ndarray
    s_hi: np.ndarray
    s_miss: np.ndarray
    categorical: np.ndarray
    z: np.ndarray

    def stump(self, column: int) -> Stump:
        """The single-column :class:`Stump` for ``column``."""
        return Stump(
            feature=int(column),
            threshold=float(self.threshold[column]),
            s_lo=float(self.s_lo[column]),
            s_hi=float(self.s_hi[column]),
            s_miss=float(self.s_miss[column]),
            categorical=bool(self.categorical[column]),
            z=float(self.z[column]),
        )

    def predict(self, X: np.ndarray) -> np.ndarray:
        """(n, F) matrix of per-column stump outputs for ``X``.

        Column ``j`` of the result is ``self.stump(j).predict`` applied to
        ``X[:, j]`` only -- the vectorised form of a bank of independent
        single-feature weak learners.
        """
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != self.threshold.size:
            raise ValueError(
                f"X must be 2-D with {self.threshold.size} columns, got {X.shape}"
            )
        present = ~np.isnan(X)
        with np.errstate(invalid="ignore"):
            hi = np.where(
                self.categorical[None, :],
                X == self.threshold[None, :],
                X >= self.threshold[None, :],
            )
        out = np.where(
            present,
            np.where(hi, self.s_hi[None, :], self.s_lo[None, :]),
            self.s_miss[None, :],
        )
        return out


class HistStumpSearch:
    """Histogram-binned best-stump search over a pre-binned matrix.

    The LightGBM trick applied to Schapire-Singer stumps: features are
    quantised once into a :class:`~repro.ml.binning.BinnedDataset`, and
    each boosting round builds per-bin class-weight histograms with one
    weighted ``np.bincount`` per feature, then scans the ~``max_bins``
    bin boundaries instead of ``n`` sorted row positions.  Per-round cost
    drops from O(n) weight gathers + grid sums per feature to a single
    O(n) bincount per feature with an O(bins) candidate scan.

    Candidate thresholds are the dataset's bin edges, which
    :meth:`BinnedDataset.from_matrix` places exactly where the exact
    search puts *its* candidates: at every distinct-value midpoint when a
    feature has at most ``max_bins`` distinct values (the regime where
    this search scans the identical candidate set as the uncapped exact
    search and recovers the same stump), and on the exact search's
    quantile-rank grid above that.  Missing values live in a dedicated
    trailing bin, so both ``missing_policy`` values behave exactly as in
    :class:`StumpSearch` -- with the missing block's weights read straight
    off the histogram instead of by subtraction.

    Class-weight histograms are fused: bin codes are pre-shifted to
    ``2 * code + (y > 0)`` so one ``bincount`` per feature yields the
    positive- and negative-class histograms in its even/odd slots,
    halving the per-round passes over the rows.  When the matrix is large
    enough to amortise pool dispatch (``rows x features`` at least
    ``_HIST_PARALLEL_MIN_CELLS``), the per-feature histogram builds fan
    out over :func:`repro.parallel.parallel_map` in contiguous feature
    blocks; results are written into disjoint buffer rows, so the output
    is identical for every worker count.
    """

    def __init__(
        self,
        binned: BinnedDataset,
        y: np.ndarray,
        missing_policy: str = "score",
        workers: int | None = None,
    ):
        """Args:
            binned: the pre-binned feature matrix (built once, shared
                with selection and any other consumer).
            y: labels in {-1, +1}.
            missing_policy: "score" or "abstain" (see module docstring).
            workers: explicit fabric worker count for the per-round
                histogram fan-out; ``None`` reads ``REPRO_WORKERS``.
        """
        _check_policy(missing_policy)
        y = np.asarray(y, dtype=float)
        n = binned.n_rows
        if y.shape != (n,):
            raise ValueError("y must be 1-D with one label per binned row")
        self.binned = binned
        self.n = n
        self.n_features = binned.n_features
        self.eps = _EPS_SCALE / n
        self.y = y
        self.missing_policy = missing_policy
        self.categorical = binned.categorical
        self._cont_slots = np.flatnonzero(~binned.categorical)
        self._cat_slots = np.flatnonzero(binned.categorical)

        F = self.n_features
        self._nvb = binned.n_value_bins.astype(np.int64)
        W = int(self._nvb.max()) + 1  # value bins + the missing bin
        self._W = W
        # Fused class-and-bin codes: slot 2b+1 of the per-feature bincount
        # is the positive-class weight of bin b, slot 2b the negative.
        # The label-independent ``2 * code`` half is cached on the binned
        # dataset, so multi-head consumers sharing one binning (the
        # locator) widen and shift the code matrix only once.
        self._codes2 = binned.shifted_codes() + (y > 0)
        self._hp = np.empty((F, W))
        self._hn = np.empty((F, W))
        C = self._cont_slots.size
        if C:
            nvb_c = self._nvb[self._cont_slots]
            self._rows_c = np.arange(C)
            # Candidate boundary k of feature f is valid for k = 0..nvb[f];
            # padding boundaries of narrower features never win.
            self._invalid_c = np.arange(W)[None, :] > nvb_c[:, None]
            # Boundary-k buffers; column 0 is the "split before everything"
            # boundary and stays 0, rounds only write columns 1..W-1.
            self._buf_wp_lo = np.zeros((C, W))
            self._buf_wn_lo = np.zeros((C, W))
            self._buf_wp_hi = np.empty((C, W))
            self._buf_wn_hi = np.empty((C, W))
            self._buf_z = np.empty((C, W))
        self._workers = workers
        n_workers = worker_count(workers)
        if n_workers > 1 and n * F >= _HIST_PARALLEL_MIN_CELLS:
            bounds = np.linspace(0, F, n_workers + 1).astype(int)
            self._blocks = [
                (int(a), int(b))
                for a, b in zip(bounds[:-1], bounds[1:])
                if b > a
            ]
        else:
            self._blocks = None

    # ----- per-round histogram build ------------------------------------

    def _fill_block(self, block: tuple[int, int], weights: np.ndarray) -> None:
        lo, hi = block
        width = 2 * self._W
        for f in range(lo, hi):
            h2 = np.bincount(
                self._codes2[f], weights=weights, minlength=width
            ).reshape(-1, 2)
            self._hn[f] = h2[:, 0]
            self._hp[f] = h2[:, 1]

    def _fill_histograms(self, weights: np.ndarray) -> None:
        if self._blocks is not None:
            parallel_map(
                lambda block: self._fill_block(block, weights),
                self._blocks,
                workers=self._workers,
                task_label="train.hist_block",
            )
        else:
            self._fill_block((0, self.n_features), weights)

    # ----- search --------------------------------------------------------

    def best_stump(self, weights: np.ndarray) -> Stump:
        """Return the Z-minimising stump over all features for ``weights``."""
        weights = np.asarray(weights, dtype=float)
        if weights.shape != (self.n,):
            raise ValueError("weights must be 1-D with one entry per row")
        self._fill_histograms(weights)
        best: Stump | None = None
        if self._cont_slots.size:
            best = self._best_continuous()
        for slot in self._cat_slots:
            cand = self._best_categorical(int(slot))
            if cand is not None and (best is None or cand.z < best.z):
                best = cand
        if best is None:
            raise ValueError("no usable feature found")
        return best

    def _best_continuous(self) -> Stump:
        slots = self._cont_slots
        C = slots.size
        rows = self._rows_c
        nvb = self._nvb[slots]
        hp = self._hp[slots]
        hn = self._hn[slots]
        wp_miss = hp[rows, nvb].copy()
        wn_miss = hn[rows, nvb].copy()
        # The missing bin sits past each feature's value bins; zero it so
        # the boundary prefix sums cover present weight only.
        hp[rows, nvb] = 0.0
        hn[rows, nvb] = 0.0

        wp_lo = self._buf_wp_lo
        wn_lo = self._buf_wn_lo
        np.cumsum(hp[:, :-1], axis=1, out=wp_lo[:, 1:])
        np.cumsum(hn[:, :-1], axis=1, out=wn_lo[:, 1:])
        wp_tot = wp_lo[rows, nvb]
        wn_tot = wn_lo[rows, nvb]
        wp_hi = np.subtract(wp_tot[:, None], wp_lo, out=self._buf_wp_hi)
        wn_hi = np.subtract(wn_tot[:, None], wn_lo, out=self._buf_wn_hi)
        np.clip(wp_hi, 0.0, None, out=wp_hi)
        np.clip(wn_hi, 0.0, None, out=wn_hi)

        z_miss, s_miss = _missing_block_terms(
            wp_miss, wn_miss, self.eps, self.missing_policy
        )
        z = self._buf_z
        np.multiply(wp_lo, wn_lo, out=z)
        np.sqrt(z, out=z)
        tmp = np.sqrt(wp_hi * wn_hi)
        np.add(z, tmp, out=z)
        np.multiply(z, 2.0, out=z)
        np.add(z, z_miss[:, None], out=z)
        z[self._invalid_c] = np.inf

        # Boundary-major argmin, matching the exact search's tie-break
        # (lowest candidate split first, then lowest feature slot).
        flat = int(np.argmin(z.T))
        k, c = divmod(flat, C)
        feature = int(slots[c])
        m = int(nvb[c])
        if k == 0:
            threshold = -math.inf
        elif k >= m:
            threshold = math.inf
        else:
            threshold = float(self.binned.edges[feature][k - 1])
        return Stump(
            feature=feature,
            threshold=threshold,
            s_lo=_block_score(float(wp_lo[c, k]), float(wn_lo[c, k]), self.eps),
            s_hi=_block_score(float(wp_hi[c, k]), float(wn_hi[c, k]), self.eps),
            s_miss=float(s_miss[c]),
            categorical=False,
            z=float(z[c, k]),
        )

    def _best_categorical(self, slot: int) -> Stump | None:
        values = self.binned.values[slot]
        if values is None or values.size == 0:
            return None
        ncat = values.size
        nvb = int(self._nvb[slot])
        wp_eq = self._hp[slot, :ncat]
        wn_eq = self._hn[slot, :ncat]
        wp_miss = float(self._hp[slot, nvb])
        wn_miss = float(self._hn[slot, nvb])
        z_miss_arr, s_miss_arr = _missing_block_terms(
            np.array([wp_miss]), np.array([wn_miss]),
            self.eps, self.missing_policy,
        )
        wp_tot = float(np.sum(wp_eq))
        wn_tot = float(np.sum(wn_eq))
        wp_ne = np.clip(wp_tot - wp_eq, 0.0, None)
        wn_ne = np.clip(wn_tot - wn_eq, 0.0, None)
        z = 2.0 * (np.sqrt(wp_eq * wn_eq) + np.sqrt(wp_ne * wn_ne)) + float(
            z_miss_arr[0]
        )
        j = int(np.argmin(z))
        return Stump(
            feature=int(slot),
            threshold=float(values[j]),
            s_lo=_block_score(float(wp_ne[j]), float(wn_ne[j]), self.eps),
            s_hi=_block_score(float(wp_eq[j]), float(wn_eq[j]), self.eps),
            s_miss=float(s_miss_arr[0]),
            categorical=True,
            z=float(z[j]),
        )

    # ----- per-round outputs from bin codes ------------------------------

    def score_table(self, stump: Stump) -> np.ndarray:
        """Per-bin output table of a stump over its feature's bins.

        Entry ``b`` is the stump's output for every row in bin ``b`` of
        ``stump.feature`` (the last entry is the missing bin), so the
        per-row outputs are a single table gather over the bin codes --
        no float comparisons against the rows at all.
        """
        f = stump.feature
        nvb = int(self._nvb[f])
        table = np.full(nvb + 1, stump.s_lo)
        if stump.categorical:
            values = self.binned.values[f]
            j = int(np.searchsorted(values, stump.threshold))
            if j < values.size and values[j] == stump.threshold:
                table[j] = stump.s_hi
        else:
            if stump.threshold == -math.inf:
                k = 0
            elif stump.threshold == math.inf:
                k = nvb
            else:
                edges = self.binned.edges[f]
                k = int(np.searchsorted(edges, stump.threshold, side="left")) + 1
            table[k:nvb] = stump.s_hi
        table[nvb] = stump.s_miss
        return table

    def round_outputs(self, stump: Stump) -> np.ndarray:
        """Per-row outputs ``h_t`` of a stump fitted by this search.

        Equals ``stump.predict`` on the original matrix whenever the
        stump's threshold is one of the feature's bin edges (always true
        for stumps this search returns), because bin membership and the
        stump test are the same ``x >= edge`` comparison.
        """
        return self.score_table(stump)[self.binned.codes[stump.feature]]
