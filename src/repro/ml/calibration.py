"""Platt (logistic) calibration of classifier margins.

The paper converts BStump's additive score ``f(x)`` into a posterior
probability "using logistic calibration" (Section 4.4).  Platt's method
fits a two-parameter sigmoid

.. math::

    P(y = +1 | f) = \\frac{1}{1 + \\exp(A f + B)}

by regularised maximum likelihood.  We use Platt's target smoothing
(Lin, Lin & Weng 2007 formulation) and Newton's method with backtracking,
which is numerically stable even for perfectly separated margins.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

__all__ = ["PlattCalibrator"]


@dataclass
class PlattCalibrator:
    """Maps real-valued margins to calibrated probabilities.

    Attributes:
        a: slope of the fitted sigmoid (negative for a well-oriented
            classifier whose larger margins mean "more positive").
        b: intercept of the fitted sigmoid.
        max_iter: Newton iteration cap.
        tol: gradient-norm convergence tolerance.
    """

    a: float = field(default=-1.0)
    b: float = field(default=0.0)
    max_iter: int = 100
    tol: float = 1e-10
    fitted_: bool = False

    def fit(self, margins: np.ndarray, labels: np.ndarray) -> "PlattCalibrator":
        """Fit the sigmoid on training ``margins`` and {-1,+1}/{0,1} labels."""
        f = np.asarray(margins, dtype=float)
        y = np.asarray(labels, dtype=float)
        if f.shape != y.shape or f.ndim != 1:
            raise ValueError("margins and labels must be equal-length 1-D arrays")
        if f.size == 0:
            raise ValueError("cannot calibrate on empty data")
        pos = y > 0

        n_pos = float(np.sum(pos))
        n_neg = float(f.size - n_pos)
        # Platt's smoothed targets avoid infinite log-likelihood on
        # separable data.
        t_pos = (n_pos + 1.0) / (n_pos + 2.0)
        t_neg = 1.0 / (n_neg + 2.0)
        t = np.where(pos, t_pos, t_neg)

        a = 0.0
        b = math.log((n_neg + 1.0) / (n_pos + 1.0))

        def negative_log_likelihood(a_: float, b_: float) -> float:
            z = a_ * f + b_
            # log(1 + e^z) - (1 - t) * z, computed stably.
            return float(np.sum(np.logaddexp(0.0, z) - (1.0 - t) * z))

        loss = negative_log_likelihood(a, b)
        for _ in range(self.max_iter):
            z = a * f + b
            p = 1.0 / (1.0 + np.exp(np.clip(z, -500, 500)))  # P(y=+1)
            d = (1.0 - p) - (1.0 - t)  # dNLL/dz = sigmoid(z) - (1 - t)
            grad_a = float(np.sum(d * f))
            grad_b = float(np.sum(d))
            w = p * (1.0 - p)
            h_aa = float(np.sum(w * f * f)) + 1e-12
            h_ab = float(np.sum(w * f))
            h_bb = float(np.sum(w)) + 1e-12
            det = h_aa * h_bb - h_ab * h_ab
            if abs(det) < 1e-30:
                break
            step_a = (h_bb * grad_a - h_ab * grad_b) / det
            step_b = (h_aa * grad_b - h_ab * grad_a) / det
            if math.hypot(grad_a, grad_b) < self.tol:
                break
            # Backtracking line search keeps the update monotone.
            scale = 1.0
            for _ in range(30):
                new_a = a - scale * step_a
                new_b = b - scale * step_b
                new_loss = negative_log_likelihood(new_a, new_b)
                if new_loss <= loss + 1e-12:
                    a, b, loss = new_a, new_b, new_loss
                    break
                scale *= 0.5
            else:
                break

        self.a = float(a)
        self.b = float(b)
        self.fitted_ = True
        return self

    def transform(self, margins: np.ndarray) -> np.ndarray:
        """Return ``P(y = +1 | margin)`` for each margin."""
        if not self.fitted_:
            raise RuntimeError("calibrator is not fitted")
        f = np.asarray(margins, dtype=float)
        z = np.clip(self.a * f + self.b, -500, 500)
        return 1.0 / (1.0 + np.exp(z))

    def fit_transform(self, margins: np.ndarray, labels: np.ndarray) -> np.ndarray:
        """Convenience: fit on (margins, labels) and return probabilities."""
        return self.fit(margins, labels).transform(margins)
