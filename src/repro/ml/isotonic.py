"""Isotonic-regression calibration (alternative to Platt scaling).

The paper calibrates BStump margins with a logistic sigmoid (Platt).
Platt assumes the margin-to-probability map is sigmoidal; when boosting
has run long enough to distort that shape, the non-parametric alternative
is isotonic regression -- fit the best *monotone* step function by
pool-adjacent-violators (PAV).

This module provides :class:`IsotonicCalibrator` with the same interface
as :class:`repro.ml.calibration.PlattCalibrator`, so either can back a
model.  Rule of thumb (borne out by the tests): Platt wins on small
calibration sets (isotonic overfits steps), isotonic wins when the true
map is badly non-sigmoidal and data is plentiful.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["IsotonicCalibrator", "pool_adjacent_violators"]


def pool_adjacent_violators(
    values: np.ndarray, weights: np.ndarray | None = None
) -> np.ndarray:
    """Weighted isotonic (non-decreasing) fit of ``values`` by PAV.

    Args:
        values: target values in their x-order.
        weights: optional positive weights per value.

    Returns:
        The isotonic fit, same length as ``values``.
    """
    values = np.asarray(values, dtype=float)
    n = values.size
    if n == 0:
        return values.copy()
    if weights is None:
        weights = np.ones(n)
    else:
        weights = np.asarray(weights, dtype=float)
        if weights.shape != values.shape:
            raise ValueError("weights must align with values")
        if np.any(weights <= 0):
            raise ValueError("weights must be positive")

    # Blocks as (mean, weight, count) with pooling of adjacent violators.
    means: list[float] = []
    block_weights: list[float] = []
    counts: list[int] = []
    for value, weight in zip(values, weights):
        means.append(float(value))
        block_weights.append(float(weight))
        counts.append(1)
        while len(means) > 1 and means[-2] > means[-1]:
            w = block_weights[-2] + block_weights[-1]
            m = (means[-2] * block_weights[-2] + means[-1] * block_weights[-1]) / w
            c = counts[-2] + counts[-1]
            means.pop(); block_weights.pop(); counts.pop()
            means[-1], block_weights[-1], counts[-1] = m, w, c
    out = np.empty(n)
    cursor = 0
    for mean, count in zip(means, counts):
        out[cursor:cursor + count] = mean
        cursor += count
    return out


@dataclass
class IsotonicCalibrator:
    """Monotone non-parametric margin-to-probability calibration.

    Attributes:
        min_block: adjacent-duplicate pooling granularity -- margins are
            first averaged in blocks of at least this many samples, which
            regularises the step function on small data.
        clip: probabilities are clipped into [clip, 1 - clip] so
            downstream log-loss stays finite.
    """

    min_block: int = 20
    clip: float = 1e-4
    fitted_: bool = False
    _x: np.ndarray = field(default=None, repr=False)  # type: ignore[assignment]
    _y: np.ndarray = field(default=None, repr=False)  # type: ignore[assignment]

    def fit(self, margins: np.ndarray, labels: np.ndarray) -> "IsotonicCalibrator":
        """Fit on margins and binary labels ({0,1} or {-1,+1})."""
        margins = np.asarray(margins, dtype=float)
        labels = np.asarray(labels, dtype=float)
        if margins.shape != labels.shape or margins.ndim != 1:
            raise ValueError("margins and labels must be equal-length 1-D arrays")
        if margins.size == 0:
            raise ValueError("cannot calibrate on empty data")
        y = (labels > 0).astype(float)

        order = np.argsort(margins, kind="stable")
        x_sorted = margins[order]
        y_sorted = y[order]

        # Pre-binning: average into blocks for stability.
        block = max(1, min(self.min_block, x_sorted.size // 2 or 1))
        n_blocks = int(np.ceil(x_sorted.size / block))
        xs = np.empty(n_blocks)
        ys = np.empty(n_blocks)
        ws = np.empty(n_blocks)
        for i in range(n_blocks):
            sl = slice(i * block, min((i + 1) * block, x_sorted.size))
            xs[i] = x_sorted[sl].mean()
            ys[i] = y_sorted[sl].mean()
            ws[i] = sl.stop - sl.start

        fit = pool_adjacent_violators(ys, ws)
        self._x = xs
        self._y = np.clip(fit, self.clip, 1.0 - self.clip)
        self.fitted_ = True
        return self

    def transform(self, margins: np.ndarray) -> np.ndarray:
        """Interpolated calibrated probabilities for new margins."""
        if not self.fitted_:
            raise RuntimeError("calibrator is not fitted")
        margins = np.asarray(margins, dtype=float)
        return np.interp(margins, self._x, self._y)

    def fit_transform(self, margins: np.ndarray, labels: np.ndarray) -> np.ndarray:
        """Convenience: fit then transform the same margins."""
        return self.fit(margins, labels).transform(margins)
