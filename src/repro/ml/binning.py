"""Shared feature pre-binning for histogram-based stump training.

The exact stump search pays a sorted-domain pass over all rows for every
feature every boosting round.  At the paper's scale (800 rounds over
millions of line-weeks, retrained continuously by the lifecycle loop)
that makes *training* the dominant recurring cost.  The standard remedy
-- LightGBM's histogram trick -- is to quantise each feature **once** up
front into a small number of bins and make every boosting round operate
on per-bin aggregates instead of per-row sorted scans.

:class:`BinnedDataset` is that one-time quantisation, shared by every
consumer that would otherwise re-sort the same matrix:

* ``BStump.fit(backend="hist")`` via
  :class:`repro.ml.stumps.HistStumpSearch` (per-round histograms from
  ``np.bincount`` over the bin codes);
* the AP(N) selection sweep (:mod:`repro.features.sweep`), whose
  single-feature boosting recurrence collapses onto per-bin weights;
* the ticket predictor's select-then-train path, which bins the feature
  matrix exactly once and reuses column subsets
  (:meth:`BinnedDataset.select` / :meth:`BinnedDataset.hstack`) for the
  final model fit.

Bin-edge placement mirrors the exact search's candidate thresholds:

* a feature with at most ``max_bins`` distinct present values gets one
  bin per value, with edges at the midpoints between adjacent distinct
  values -- exactly the thresholds the uncapped exact search scans, which
  is what makes the hist backend's split search *identical* to the exact
  one in this regime (see DESIGN.md section 7);
* above that, edges sit at the midpoints of the same quantile-rank grid
  ``StumpSearch`` caps its candidate splits to, so both backends scan
  the same ~``max_bins`` candidate thresholds on high-cardinality
  columns;
* missing values (NaN) take a dedicated trailing bin -- missingness is
  informative here (the paper's "modem" feature), so the NaN bin is a
  scored block exactly like the exact search's missing block;
* categorical features get one bin per category (the stump test is
  equality, not order).

Bin codes are ``uint8`` when they fit and ``uint16`` otherwise, so the
per-round histogram pass streams 1-2 bytes per cell instead of the 8-byte
floats the exact search gathers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["BinnedDataset", "DEFAULT_MAX_BINS"]

#: Default bin budget per feature, aligned with ``StumpSearch``'s default
#: ``max_split_points`` so both backends scan comparable candidate sets.
DEFAULT_MAX_BINS = 256


def _split_grid(n: int, max_split_points: int) -> np.ndarray:
    """Candidate split positions 0..n -- the same grid as StumpSearch."""
    if n + 1 > max_split_points:
        return np.unique(np.round(np.linspace(0, n, max_split_points)).astype(int))
    return np.arange(n + 1)


def _continuous_edges(
    column: np.ndarray, n_rows: int, max_bins: int
) -> tuple[np.ndarray, bool]:
    """Bin-edge thresholds for one continuous column.

    Returns ``(edges, exact)`` where ``edges`` is strictly increasing and
    ``exact`` is True when every distinct present value got its own bin
    (the regime with the exact-equivalence guarantee).  Bin membership is
    defined *by* the edges under the stump's own ``x >= threshold`` test:
    ``bin(x) = searchsorted(edges, x, side="right")``, so a stump at edge
    ``b`` routes exactly the rows of bins ``<= b`` to its low block.
    """
    present = column[~np.isnan(column)]
    if present.size == 0:
        return np.empty(0), True
    vals = np.sort(present)
    m = vals.size
    distinct = np.flatnonzero(vals[1:] != vals[:-1]) + 1  # boundary ranks
    if distinct.size + 1 <= max_bins:
        ranks = distinct
        exact = True
    else:
        grid = _split_grid(n_rows, max_bins)
        ranks = grid[(grid >= 1) & (grid <= m - 1)]
        ranks = ranks[vals[ranks - 1] != vals[ranks]]  # ties cannot split
        exact = False
    if ranks.size == 0:
        return np.empty(0), exact
    edges = 0.5 * (vals[ranks - 1] + vals[ranks])
    # Adjacent floats can midpoint-round onto a neighbour; keep edges
    # strictly increasing so every bin is a non-empty half-open interval.
    return np.unique(edges), exact


@dataclass(frozen=True)
class BinnedDataset:
    """A feature matrix quantised once for histogram-based training.

    Attributes:
        codes: (n_features, n_rows) bin codes, feature-major so each
            feature's row is contiguous for the per-round ``bincount``.
            Continuous feature ``f``: code ``b`` means
            ``edges[f][b-1] <= x < edges[f][b]`` (with the obvious open
            ends); categorical: code ``b`` means ``x == values[f][b]``.
            Missing values carry ``n_value_bins[f]``.
        n_value_bins: (n_features,) count of non-missing bins per
            feature; the missing bin's code equals this value.
        edges: per continuous feature, the strictly increasing candidate
            thresholds separating adjacent bins (``None`` for
            categorical features).
        values: per categorical feature, the category value of each bin
            (``None`` for continuous features).
        categorical: (n_features,) categorical mask.
        exact: (n_features,) True where binning kept every distinct
            value separate -- the regime in which the hist search scans
            the identical candidate set as the uncapped exact search.
        max_bins: the bin budget the dataset was built with.
    """

    codes: np.ndarray
    n_value_bins: np.ndarray
    edges: list[np.ndarray | None]
    values: list[np.ndarray | None]
    categorical: np.ndarray
    exact: np.ndarray
    max_bins: int

    @property
    def n_features(self) -> int:
        return self.codes.shape[0]

    @property
    def n_rows(self) -> int:
        return self.codes.shape[1]

    @property
    def n_bins_total(self) -> int:
        """Histogram width: value bins plus the missing bin, maximised."""
        return int(self.n_value_bins.max()) + 1 if self.n_value_bins.size else 1

    @classmethod
    def from_matrix(
        cls,
        X: np.ndarray,
        categorical: np.ndarray | None = None,
        max_bins: int = DEFAULT_MAX_BINS,
    ) -> "BinnedDataset":
        """Quantise ``X`` (NaN = missing) into per-feature bin codes.

        Args:
            X: (n_rows, n_features) float matrix.
            categorical: per-feature categorical mask (default: none).
            max_bins: bin budget per feature, excluding the missing bin.
                Features with at most this many distinct values are
                binned exactly (one bin per value).
        """
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        n, F = X.shape
        if n == 0 or F == 0:
            raise ValueError("X must be non-empty")
        if max_bins < 2:
            raise ValueError("max_bins must be at least 2")
        if categorical is None:
            categorical = np.zeros(F, dtype=bool)
        else:
            categorical = np.asarray(categorical, dtype=bool)
            if categorical.shape != (F,):
                raise ValueError("categorical mask must have one entry per feature")

        n_value_bins = np.empty(F, dtype=np.int64)
        edges: list[np.ndarray | None] = []
        values: list[np.ndarray | None] = []
        exact = np.ones(F, dtype=bool)
        codes64 = np.empty((F, n), dtype=np.int64)
        for f in range(F):
            col = X[:, f]
            missing = np.isnan(col)
            if categorical[f]:
                cats = np.unique(col[~missing])
                code = np.zeros(n, dtype=np.int64)
                if cats.size:
                    code[~missing] = np.searchsorted(cats, col[~missing])
                nb = max(int(cats.size), 1)
                code[missing] = nb
                edges.append(None)
                values.append(cats)
            else:
                col_edges, col_exact = _continuous_edges(col, n, max_bins)
                exact[f] = col_exact
                code = np.searchsorted(col_edges, col, side="right")
                nb = int(col_edges.size) + 1
                code[missing] = nb
                edges.append(col_edges)
                values.append(None)
            n_value_bins[f] = nb
            codes64[f] = code
        dtype = np.uint8 if int(n_value_bins.max()) <= np.iinfo(np.uint8).max \
            else np.uint16
        return cls(
            codes=codes64.astype(dtype),
            n_value_bins=n_value_bins,
            edges=edges,
            values=values,
            categorical=categorical.copy(),
            exact=exact,
            max_bins=max_bins,
        )

    def rows(self, rows: Sequence[int] | np.ndarray) -> "BinnedDataset":
        """A new dataset holding only the given rows (mask or indices).

        The row-subset analogue of :meth:`select`, built for
        cross-validation refits: a fold's training subset keeps the
        *parent* matrix's bin edges, category values, and ``exact``
        flags, so every fold scans the one-time quantised codes (a byte
        gather) instead of re-binning and re-sorting ``X[rest]``.  Fold
        models therefore share a single candidate-threshold grid with
        the full-set models -- see DESIGN.md section 11.

        Args:
            rows: boolean mask over the parent rows, or integer row
                indices in the desired order.
        """
        idx = np.asarray(rows)
        if idx.ndim != 1:
            raise ValueError("rows must be a 1-D mask or index sequence")
        if idx.dtype == bool:
            if idx.size != self.n_rows:
                raise ValueError(
                    f"row mask must have {self.n_rows} entries, got {idx.size}"
                )
            idx = np.flatnonzero(idx)
        else:
            idx = idx.astype(np.int64)
            if idx.size and (idx.min() < 0 or idx.max() >= self.n_rows):
                raise IndexError("row index out of range")
        return BinnedDataset(
            codes=self.codes[:, idx],
            n_value_bins=self.n_value_bins,
            edges=self.edges,
            values=self.values,
            categorical=self.categorical,
            exact=self.exact,
            max_bins=self.max_bins,
        )

    def shifted_codes(self) -> np.ndarray:
        """The bin codes pre-shifted left by one, cached on the dataset.

        :class:`~repro.ml.stumps.HistStumpSearch` fuses its per-round
        class histograms by binning on ``2 * code + (y > 0)``; the
        ``2 * code`` part depends only on the dataset, so many heads
        trained over one shared binning (the locator's 52 one-vs-rest
        models) reuse this widened copy instead of each re-shifting the
        full code matrix.  Treat the returned array as read-only.
        """
        cached = getattr(self, "_shifted_codes", None)
        if cached is None:
            code2_max = 2 * int(self.n_value_bins.max()) + 1
            dtype = (
                np.uint16
                if code2_max <= np.iinfo(np.uint16).max
                else np.uint32
            )
            cached = self.codes.astype(dtype)
            cached <<= 1
            # Frozen dataclass; the cache is idempotent, so a racing
            # double-compute is benign.
            object.__setattr__(self, "_shifted_codes", cached)
        return cached

    def select(self, columns: Sequence[int] | np.ndarray) -> "BinnedDataset":
        """A new dataset holding only ``columns``, in the given order.

        This is what lets a select-then-train run bin the feature matrix
        exactly once: the final model trains on a column subset of the
        selection-time binning instead of re-binning.
        """
        cols = np.asarray(columns, dtype=np.int64)
        if cols.ndim != 1:
            raise ValueError("columns must be a 1-D index sequence")
        if cols.size and (cols.min() < 0 or cols.max() >= self.n_features):
            raise IndexError("column index out of range")
        return BinnedDataset(
            codes=self.codes[cols],
            n_value_bins=self.n_value_bins[cols],
            edges=[self.edges[int(c)] for c in cols],
            values=[self.values[int(c)] for c in cols],
            categorical=self.categorical[cols],
            exact=self.exact[cols],
            max_bins=self.max_bins,
        )

    @staticmethod
    def hstack(parts: Sequence["BinnedDataset"]) -> "BinnedDataset":
        """Concatenate datasets column-wise (same rows, same bin budget)."""
        parts = [p for p in parts if p.n_features]
        if not parts:
            raise ValueError("nothing to stack")
        n_rows = parts[0].n_rows
        max_bins = parts[0].max_bins
        for p in parts[1:]:
            if p.n_rows != n_rows:
                raise ValueError("all parts must share the same rows")
            if p.max_bins != max_bins:
                raise ValueError("all parts must share the same bin budget")
        n_value_bins = np.concatenate([p.n_value_bins for p in parts])
        dtype = np.uint8 if int(n_value_bins.max()) <= np.iinfo(np.uint8).max \
            else np.uint16
        return BinnedDataset(
            codes=np.concatenate(
                [p.codes.astype(dtype, copy=False) for p in parts], axis=0
            ),
            n_value_bins=n_value_bins,
            edges=[e for p in parts for e in p.edges],
            values=[v for p in parts for v in p.values],
            categorical=np.concatenate([p.categorical for p in parts]),
            exact=np.concatenate([p.exact for p in parts]),
            max_bins=max_bins,
        )

    def matches(self, X: np.ndarray) -> bool:
        """Cheap shape/dtype sanity check against a feature matrix."""
        X = np.asarray(X)
        return X.ndim == 2 and X.shape == (self.n_rows, self.n_features)
