"""Compiled scoring of stump ensembles.

The deployment in Fig. 3 of the paper scores *millions* of lines every
Saturday with an 800-round BStump.  The naive scorer walks the ensemble
round by round -- ``margin += stump_t.predict(X)`` -- which touches every
row T times and rebuilds per-row masks T times.  But a stump ensemble is
just a sum of one-dimensional step functions, so it can be *compiled* by
feature:

* group the fitted stumps by the feature they test;
* for a **continuous** feature with stump thresholds ``d_1 <= ... <= d_T``,
  a present value ``v`` falls into one of ``T + 1`` buckets (how many
  thresholds are ``<= v``), and every value in a bucket receives the same
  total score from that feature's stumps -- precompute the ``T + 1``
  bucket totals once and scoring becomes one ``np.searchsorted`` plus one
  table gather per feature;
* for a **categorical** feature, a value either equals one of the tested
  category codes (one precomputed total per distinct code) or none of
  them (a single "no match" total);
* a missing (NaN) value receives the feature's precomputed total of
  ``s_miss`` scores.

Scoring therefore costs ``O(n log T_j)`` per *used feature* instead of
``O(n)`` per *round*, a ~``T / F_used`` speedup for deep ensembles, and
never materialises per-round intermediates.

Exactness: the bucket tables are accumulated stump-by-stump **in round
order within each feature**, and the final margin folds the per-feature
totals in ascending feature order.  Both are plain IEEE-754 double
additions, so the compiled margin is *bit-identical* to a naive scorer
that sums ``Stump.predict`` outputs grouped the same way (see
``naive_grouped_margin``).  Against the historical round-interleaved sum
the result agrees to within a few ULPs (float addition is not
associative); ranking consumers are unaffected.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "CompiledEnsemble",
    "MultiHeadEnsemble",
    "compile_stumps",
    "compile_multihead",
    "naive_grouped_margin",
]


@dataclass(frozen=True)
class _FeatureGroup:
    """All stumps of one (feature, kind) compiled into lookup tables.

    For a continuous group, ``keys`` holds the sorted stump thresholds and
    ``table`` the ``len(keys) + 1`` bucket totals: bucket ``k`` is the
    total score for a value with exactly ``k`` thresholds ``<= v``.

    For a categorical group, ``keys`` holds the distinct tested category
    codes, ``table`` the per-code totals when the value matches that code,
    and ``no_match`` the total when it matches none of them.

    ``miss`` is the total of the group's ``s_miss`` scores, emitted for
    NaN values regardless of kind.
    """

    feature: int
    categorical: bool
    keys: np.ndarray
    table: np.ndarray
    no_match: float
    miss: float


def _compile_continuous(stumps: list) -> tuple[np.ndarray, np.ndarray]:
    """Sorted thresholds and the T+1 bucket-total table for one feature.

    The table is accumulated one stump at a time in the order given (round
    order), so each entry is the exact left-fold of that bucket's branch
    scores -- the property the bit-identity tests rely on.
    """
    thresholds = np.array([s.threshold for s in stumps], dtype=float)
    order = np.argsort(thresholds, kind="stable")
    # rank[i] = position of stump i's threshold in the sorted array.
    rank = np.empty(len(stumps), dtype=np.intp)
    rank[order] = np.arange(len(stumps))
    buckets = np.arange(len(stumps) + 1)
    table = np.zeros(len(stumps) + 1)
    for i, stump in enumerate(stumps):
        # Bucket k counts thresholds <= v; stump i fires "high" iff its
        # threshold is among them, i.e. iff its sorted rank is < k.
        table += np.where(buckets > rank[i], stump.s_hi, stump.s_lo)
    return thresholds[order], table


def _compile_categorical(stumps: list) -> tuple[np.ndarray, np.ndarray, float]:
    """Distinct codes, per-code totals, and the no-match total."""
    values = np.unique(np.array([s.threshold for s in stumps], dtype=float))
    table = np.zeros(values.size)
    no_match = 0.0
    for stump in stumps:
        table += np.where(values == stump.threshold, stump.s_hi, stump.s_lo)
        no_match += stump.s_lo
    return values, table, no_match


def compile_stumps(stumps: list, n_features: int) -> "CompiledEnsemble":
    """Compile a list of fitted :class:`~repro.ml.stumps.Stump` learners.

    Args:
        stumps: the ensemble's stumps in round order.
        n_features: width of the feature matrices the ensemble scores.

    Returns:
        A :class:`CompiledEnsemble` ready to score.
    """
    if n_features <= 0:
        raise ValueError("n_features must be positive")
    by_group: dict[tuple[int, bool], list] = {}
    for stump in stumps:
        if not 0 <= stump.feature < n_features:
            raise ValueError(
                f"stump feature {stump.feature} out of range for "
                f"{n_features}-column input"
            )
        by_group.setdefault((stump.feature, bool(stump.categorical)), []).append(stump)

    groups: list[_FeatureGroup] = []
    for (feature, categorical) in sorted(by_group):
        members = by_group[(feature, categorical)]
        miss = 0.0
        for stump in members:
            miss += stump.s_miss
        if categorical:
            keys, table, no_match = _compile_categorical(members)
        else:
            keys, table = _compile_continuous(members)
            no_match = 0.0
        groups.append(
            _FeatureGroup(
                feature=feature,
                categorical=categorical,
                keys=keys,
                table=table,
                no_match=no_match,
                miss=miss,
            )
        )
    return CompiledEnsemble(n_features=n_features, groups=tuple(groups))


@dataclass(frozen=True)
class CompiledEnsemble:
    """A stump ensemble compiled to per-feature threshold/score tables.

    Build with :func:`compile_stumps` (or ``BStump.compiled()``).  Scoring
    runs one ``searchsorted`` + table gather per used feature and is
    independent of the number of boosting rounds.
    """

    n_features: int
    groups: tuple[_FeatureGroup, ...]

    @property
    def n_used_features(self) -> int:
        """How many distinct feature columns the ensemble actually reads."""
        return len({g.feature for g in self.groups})

    @property
    def used_features(self) -> np.ndarray:
        """Sorted distinct feature columns the ensemble actually reads."""
        return np.array(sorted({g.feature for g in self.groups}), dtype=np.intp)

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Additive margin ``f(x) = sum_t h_t(x)`` for each row of ``X``."""
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != self.n_features:
            raise ValueError(
                f"X must be 2-D with {self.n_features} columns, got {X.shape}"
            )
        margin = np.zeros(X.shape[0])
        for group in self.groups:
            margin += self._group_contribution(group, X[:, group.feature])
        return margin

    def decision_function_columns(self, column, n_rows: int) -> np.ndarray:
        """Additive margin from a columnar feature source.

        ``column(j)`` must return the length-``n_rows`` values of feature
        column ``j``.  Only the ensemble's *used* features are requested,
        so a columnar store (or a lazy derived-feature provider) never
        materialises columns the model does not read.  The per-group fold
        order matches :meth:`decision_function`, so the margins are
        bit-identical to scoring the fully assembled row matrix.

        Args:
            column: callable mapping a feature index to its column.
            n_rows: number of rows being scored.

        Returns:
            The (n_rows,) margin vector.
        """
        if n_rows < 0:
            raise ValueError(f"n_rows must be >= 0, got {n_rows}")
        margin = np.zeros(n_rows)
        for group in self.groups:
            col = np.asarray(column(group.feature), dtype=float)
            if col.shape != (n_rows,):
                raise ValueError(
                    f"column {group.feature} must have shape ({n_rows},), "
                    f"got {col.shape}"
                )
            margin += self._group_contribution(group, col)
        return margin

    @staticmethod
    def _group_contribution(group: _FeatureGroup, col: np.ndarray) -> np.ndarray:
        missing = np.isnan(col)
        if group.categorical:
            # NaN queries sort past every key; the clip makes the gather
            # safe and the equality check then fails, which is correct.
            idx = np.searchsorted(group.keys, col)
            np.minimum(idx, group.keys.size - 1, out=idx)
            contrib = np.where(
                group.keys[idx] == col, group.table[idx], group.no_match
            )
        else:
            # Bucket k = number of thresholds <= v, so side="right"; NaN
            # lands in the last bucket and is overwritten below.
            idx = np.searchsorted(group.keys, col, side="right")
            contrib = group.table[idx]
        return np.where(missing, group.miss, contrib)


# ----- stacked multi-head scoring -----------------------------------------


@dataclass(frozen=True)
class _MergedGroup:
    """One (feature, kind) column shared by several compiled heads.

    ``keys`` is the union of the participating heads' keys (sorted
    thresholds for a continuous column, distinct category codes for a
    categorical one).  Each head's bucket table is *expanded* onto the
    merged key grid so one ``searchsorted`` over the column serves every
    head; ``tables[h]`` has ``len(keys) + 2`` entries -- the merged
    buckets (continuous) or merged codes plus a no-match slot
    (categorical), followed by a trailing missing-value slot.  The
    expansion is a pure gather of each head's own bucket totals, so the
    per-head contributions are the exact doubles
    :meth:`CompiledEnsemble._group_contribution` produces.
    """

    feature: int
    categorical: bool
    keys: np.ndarray
    head_positions: np.ndarray
    tables: np.ndarray


def _expand_continuous(group: _FeatureGroup, merged: np.ndarray) -> np.ndarray:
    """One head's T+1 bucket table re-indexed by merged-grid bucket."""
    # Merged bucket i >= 1 means the largest merged key <= v is
    # merged[i - 1]; the head's bucket is then the number of *its*
    # thresholds <= merged[i - 1] (its keys are a subset of the merged
    # grid, so none lie strictly between merged[i - 1] and v).
    own = np.searchsorted(group.keys, merged, side="right")
    table = np.empty(merged.size + 2)
    table[0] = group.table[0]
    table[1 : merged.size + 1] = group.table[own]
    table[merged.size + 1] = group.miss
    return table


def _expand_categorical(group: _FeatureGroup, merged: np.ndarray) -> np.ndarray:
    """One head's per-code totals re-indexed by merged category code."""
    pos = np.searchsorted(group.keys, merged)
    np.minimum(pos, group.keys.size - 1, out=pos)
    table = np.empty(merged.size + 2)
    table[: merged.size] = np.where(
        group.keys[pos] == merged, group.table[pos], group.no_match
    )
    table[merged.size] = group.no_match
    table[merged.size + 1] = group.miss
    return table


def compile_multihead(
    heads: dict[int, CompiledEnsemble], n_heads: int, n_features: int
) -> "MultiHeadEnsemble":
    """Stack several compiled heads into one multi-head scorer.

    Args:
        heads: mapping from output column (0..n_heads-1) to that head's
            compiled ensemble; all heads must score the same feature
            width.
        n_heads: width of the stacked margin matrix.
        n_features: width of the feature matrices being scored.

    Returns:
        A :class:`MultiHeadEnsemble` whose per-head margins are
        bit-identical to each head's own ``decision_function``.
    """
    if n_heads <= 0:
        raise ValueError("n_heads must be positive")
    if n_features <= 0:
        raise ValueError("n_features must be positive")
    columns = np.array(sorted(heads), dtype=np.intp)
    if columns.size and (columns[0] < 0 or columns[-1] >= n_heads):
        raise ValueError("head column out of range")
    position = {int(col): pos for pos, col in enumerate(columns)}

    by_key: dict[tuple[int, bool], list[tuple[int, _FeatureGroup]]] = {}
    for col in columns:
        head = heads[int(col)]
        if head.n_features != n_features:
            raise ValueError(
                f"head {int(col)} scores {head.n_features} features, "
                f"expected {n_features}"
            )
        for group in head.groups:
            by_key.setdefault((group.feature, group.categorical), []).append(
                (position[int(col)], group)
            )

    merged_groups: list[_MergedGroup] = []
    for (feature, categorical) in sorted(by_key):
        members = by_key[(feature, categorical)]
        merged = np.unique(np.concatenate([g.keys for _, g in members]))
        expand = _expand_categorical if categorical else _expand_continuous
        merged_groups.append(
            _MergedGroup(
                feature=feature,
                categorical=categorical,
                keys=merged,
                head_positions=np.array([p for p, _ in members], dtype=np.intp),
                tables=np.stack([expand(g, merged) for _, g in members]),
            )
        )
    return MultiHeadEnsemble(
        n_features=n_features,
        n_heads=n_heads,
        head_columns=columns,
        groups=tuple(merged_groups),
    )


@dataclass(frozen=True)
class MultiHeadEnsemble:
    """Many compiled stump ensembles scored in one pass over the columns.

    Build with :func:`compile_multihead`.  Where the naive path walks
    each head separately -- 52 ``decision_function`` calls for the
    trouble locator, each re-reading its feature columns -- this scorer
    visits every *merged* (feature, kind) column once: one
    ``searchsorted`` (or category match) per column, then one table
    gather per participating head.  Heads usually share their most
    informative features, so the per-column bucketing cost is paid once
    instead of per head.

    Exactness: each head's expanded tables hold the same bucket-total
    doubles as its own :class:`CompiledEnsemble`, and a head's groups
    are accumulated in the same ascending (feature, kind) order, so
    every margin column is *bit-identical* to that head's
    ``decision_function``.
    """

    n_features: int
    n_heads: int
    head_columns: np.ndarray
    groups: tuple[_MergedGroup, ...]

    def decision_matrix(
        self, X: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        """The stacked (n, n_heads) margin matrix.

        Args:
            X: (n, n_features) rows to score.
            out: optional (n, n_heads) matrix to write into; columns
                without a head are left untouched (callers pre-fill
                prior log-odds there), head columns are overwritten.

        Returns:
            ``out`` (or a fresh zero-initialised matrix).
        """
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != self.n_features:
            raise ValueError(
                f"X must be 2-D with {self.n_features} columns, got {X.shape}"
            )
        n = X.shape[0]
        if out is None:
            out = np.zeros((n, self.n_heads))
        elif out.shape != (n, self.n_heads):
            raise ValueError(
                f"out must have shape ({n}, {self.n_heads}), got {out.shape}"
            )
        if not self.head_columns.size:
            return out
        acc = np.zeros((n, self.head_columns.size))
        for group in self.groups:
            col = X[:, group.feature]
            missing = np.isnan(col)
            size = group.keys.size
            if group.categorical:
                idx = np.searchsorted(group.keys, col)
                np.minimum(idx, size - 1, out=idx)
                slot = np.where(group.keys[idx] == col, idx, size)
            else:
                slot = np.searchsorted(group.keys, col, side="right")
            slot = np.where(missing, size + 1, slot)
            for pos, table in zip(group.head_positions, group.tables):
                acc[:, pos] += table[slot]
        out[:, self.head_columns] = acc
        return out


def naive_grouped_margin(stumps: list, X: np.ndarray, n_features: int) -> np.ndarray:
    """Reference scorer: per-stump ``predict`` summed in compiled order.

    Sums each (feature, kind) group's ``Stump.predict`` outputs in round
    order, then folds the group subtotals in ascending (feature, kind)
    order -- the exact addition sequence :class:`CompiledEnsemble` encodes
    in its tables.  Used by the equivalence tests to assert bit-identity;
    O(rounds) per row, so keep it out of hot paths.
    """
    X = np.asarray(X, dtype=float)
    by_group: dict[tuple[int, bool], list] = {}
    for stump in stumps:
        by_group.setdefault((stump.feature, bool(stump.categorical)), []).append(stump)
    del n_features  # shape is taken from X; kept for signature symmetry
    margin = np.zeros(X.shape[0])
    for key in sorted(by_group):
        subtotal = np.zeros(X.shape[0])
        for stump in by_group[key]:
            subtotal += stump.predict(X)
        margin += subtotal
    return margin
